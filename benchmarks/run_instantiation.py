#!/usr/bin/env python
"""Regenerate the Figure 6/7 data: instantiation time and success rate.

Usage::

    python benchmarks/run_instantiation.py               # single-start
    python benchmarks/run_instantiation.py --starts 8    # multi-start
    python benchmarks/run_instantiation.py --trials 10

For every Figure 5 benchmark circuit this prints the mean wall-clock
instantiation time for OpenQudit (AOT included) and the baseline
framework, the speedup, and both success rates — the two panels of the
paper's Figures 6 and 7.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.baseline import (
    BaselineInstantiater,
    build_qsearch_ansatz_baseline,
)
from repro.circuit import FIG5_BENCHMARKS, fig5_circuit
from repro.instantiation import Instantiater


def run_one(
    name: str, starts: int, trials: int, seed_base: int = 1000
) -> dict:
    qudits, depth, radix = FIG5_BENCHMARKS[name]
    fast_times, slow_times = [], []
    fast_successes = slow_successes = 0

    for trial in range(trials):
        circ = fig5_circuit(name)
        p_true = np.random.default_rng(seed_base + trial).uniform(
            -np.pi, np.pi, circ.num_params
        )
        target = circ.get_unitary(p_true)

        t0 = time.perf_counter()
        engine = Instantiater(circ)  # AOT compile, counted
        result = engine.instantiate(target, starts=starts, rng=trial)
        fast_times.append(time.perf_counter() - t0)
        fast_successes += result.success

        base = build_qsearch_ansatz_baseline(qudits, depth, radix)
        t0 = time.perf_counter()
        result = BaselineInstantiater(base).instantiate(
            target, starts=starts, rng=trial
        )
        slow_times.append(time.perf_counter() - t0)
        slow_successes += result.success

    return {
        "name": name,
        "fast": float(np.mean(fast_times)),
        "slow": float(np.mean(slow_times)),
        "fast_rate": fast_successes / trials,
        "slow_rate": slow_successes / trials,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--starts", type=int, default=1)
    parser.add_argument("--trials", type=int, default=5)
    args = parser.parse_args()

    # Warm the process-wide ExpressionCache first: each unique QGL
    # expression is JIT-compiled once per process (paper section IV-B),
    # so measured AOT time covers lowering, pathfinding, bytecode
    # generation and TNVM initialization — not expression compilation.
    for name in FIG5_BENCHMARKS:
        Instantiater(fig5_circuit(name))

    figure = "Figure 7" if args.starts > 1 else "Figure 6"
    print(f"{figure}: {args.starts}-start instantiation, "
          f"{args.trials} targets per benchmark\n")
    print(f"{'benchmark':<18} {'openqudit(s)':>13} {'baseline(s)':>12} "
          f"{'speedup':>8} {'oq rate':>8} {'base rate':>10}")
    for name in FIG5_BENCHMARKS:
        row = run_one(name, args.starts, args.trials)
        print(
            f"{row['name']:<18} {row['fast']:>13.3f} "
            f"{row['slow']:>12.3f} {row['slow'] / row['fast']:>7.1f}x "
            f"{row['fast_rate']:>7.0%} {row['slow_rate']:>9.0%}"
        )


if __name__ == "__main__":
    main()
