#!/usr/bin/env python
"""Regenerate the Figure 6/7 data: instantiation time and success rate.

Usage::

    python benchmarks/run_instantiation.py               # single-start
    python benchmarks/run_instantiation.py --starts 8    # multi-start
    python benchmarks/run_instantiation.py --trials 10
    python benchmarks/run_instantiation.py --starts 8 \
        --json BENCH_multistart.json                     # emit artifact
    python benchmarks/run_instantiation.py --fused-eval \
        --json BENCH_fused_eval.json                     # backend compare
    python benchmarks/run_instantiation.py --verify-overhead \
        --json BENCH_verify.json                         # verifier cost

For every Figure 5 benchmark circuit this prints the mean wall-clock
instantiation time for OpenQudit (AOT included) and the baseline
framework, the speedup, and both success rates — the two panels of the
paper's Figures 6 and 7.  For multi-start runs (``--starts > 1``) the
OpenQudit engine is measured under *both* execution strategies —
``sequential`` (one scalar TNVM pass per start) and ``batched`` (all
starts in one vectorized BatchedTNVM sweep) — and the comparison can
be written to a JSON artifact for CI tracking.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.baseline import (
    BaselineInstantiater,
    build_qsearch_ansatz_baseline,
)
from repro.checkpoint import atomic_write_json
from repro.circuit import FIG5_BENCHMARKS, build_qsearch_ansatz, fig5_circuit
from repro.instantiation import BatchedInstantiater, Instantiater


def run_one(
    name: str,
    starts: int,
    trials: int,
    seed_base: int = 1000,
    with_batched: bool = False,
    with_baseline: bool = True,
) -> dict:
    qudits, depth, radix = FIG5_BENCHMARKS[name]
    fast_times, batched_times, slow_times = [], [], []
    fast_successes = batched_successes = slow_successes = 0

    for trial in range(trials):
        circ = fig5_circuit(name)
        p_true = np.random.default_rng(seed_base + trial).uniform(
            -np.pi, np.pi, circ.num_params
        )
        target = circ.get_unitary(p_true)

        t0 = time.perf_counter()
        engine = Instantiater(circ)  # AOT compile, counted
        result = engine.instantiate(target, starts=starts, rng=trial)
        fast_times.append(time.perf_counter() - t0)
        fast_successes += result.success

        if with_batched:
            # Same timing envelope as the sequential row: circuit
            # construction outside, AOT compile + optimize inside.
            t0 = time.perf_counter()
            engine = BatchedInstantiater(circ)
            result = engine.instantiate(target, starts=starts, rng=trial)
            batched_times.append(time.perf_counter() - t0)
            batched_successes += result.success

        if with_baseline:
            base = build_qsearch_ansatz_baseline(qudits, depth, radix)
            t0 = time.perf_counter()
            result = BaselineInstantiater(base).instantiate(
                target, starts=starts, rng=trial
            )
            slow_times.append(time.perf_counter() - t0)
            slow_successes += result.success

    row = {
        "name": name,
        "sequential_seconds": float(np.mean(fast_times)),
        "sequential_rate": fast_successes / trials,
    }
    if with_batched:
        row["batched_seconds"] = float(np.mean(batched_times))
        row["batched_rate"] = batched_successes / trials
    if with_baseline:
        row["baseline_seconds"] = float(np.mean(slow_times))
        row["baseline_rate"] = slow_successes / trials
    return row


def fused_eval_suite(calls: int, json_path: str) -> None:
    """Backend comparison: closures vs fused ``evaluate_with_grad``.

    Times the raw hot path — one gradient sweep of the compiled TNVM
    program — per template dimension (the 1-3 qubit shapes synthesis
    instantiates by the thousands), reports the per-dim speedup and
    the dispatch-count collapse (instruction closures -> one
    megakernel), and appends the O(D^3)-trace-vs-O(D^2)-overlap micro
    from the cost-function fix.
    """
    from repro.tnvm import TNVM

    def time_sweep(vm, params, n):
        vm.evaluate_with_grad(params)  # warm (binds/JITs outside timer)
        t0 = time.perf_counter()
        for _ in range(n):
            vm.evaluate_with_grad(params)
        return (time.perf_counter() - t0) / n

    print(f"fused-eval: evaluate_with_grad, {calls} calls per backend\n")
    print(f"{'program':<12} {'dim':>4} {'closures(us)':>13} "
          f"{'fused(us)':>10} {'speedup':>8} {'dispatch':>9} {'npcalls':>8}")
    rows = []
    # (1, 1): build_qsearch_ansatz ignores depth for single-qudit
    # circuits (just the opening U3 layer), so label it as built.
    for qudits, depth in ((1, 1), (2, 2), (3, 2)):
        circ = build_qsearch_ansatz(qudits, depth, 2)
        program = circ.compile()
        params = np.random.default_rng(0).uniform(
            -np.pi, np.pi, circ.num_params
        )
        closures = TNVM(program, backend="closures")
        fused = TNVM(program, backend="fused")
        t_closures = time_sweep(closures, params, calls)
        t_fused = time_sweep(fused, params, calls)
        kernel = fused.fused_kernel
        row = {
            "name": f"{qudits}q-depth{depth}",
            "qudits": qudits,
            "dim": program.dim,
            "num_params": program.num_params,
            "closures_us": t_closures * 1e6,
            "fused_us": t_fused * 1e6,
            "speedup": t_closures / t_fused,
            "dispatch_closures": len(program.dynamic_section),
            "dispatch_fused": 1,
            "fused_numpy_calls": kernel.num_numpy_calls,
            "fused_write_stores": kernel.num_write_stores,
        }
        rows.append(row)
        print(f"{row['name']:<12} {row['dim']:>4} "
              f"{row['closures_us']:>13.1f} {row['fused_us']:>10.1f} "
              f"{row['speedup']:>7.2f}x "
              f"{row['dispatch_closures']:>6}->1 "
              f"{row['fused_numpy_calls']:>8}")

    # The cost-hot-path satellite: Tr(T^dag @ U) as a full matmul vs
    # the O(D^2) elementwise overlap sum.
    dim = 8
    rng = np.random.default_rng(1)
    t_mat = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    u_mat = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    n = max(calls, 2000)
    t0 = time.perf_counter()
    for _ in range(n):
        np.trace(t_mat.conj().T @ u_mat)
    t_trace = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        np.vdot(t_mat, u_mat)
    t_vdot = (time.perf_counter() - t0) / n
    trace_row = {
        "dim": dim,
        "matmul_trace_us": t_trace * 1e6,
        "elementwise_us": t_vdot * 1e6,
        "speedup": t_trace / t_vdot,
    }
    print(f"\ncost overlap (dim {dim}): matmul-trace {t_trace*1e6:.2f}us, "
          f"elementwise {t_vdot*1e6:.2f}us "
          f"({trace_row['speedup']:.1f}x)")

    report = {
        "mode": "fused-eval",
        "calls": calls,
        "programs": rows,
        "cost_trace_fix": trace_row,
        # Minimum over programs fusion can actually collapse (more
        # than one dynamic instruction); a single-WRITE program has
        # nothing to fuse and legitimately measures ~1.0x.
        "min_speedup_multi_instruction": min(
            r["speedup"] for r in rows if r["dispatch_closures"] > 1
        ),
    }
    if json_path:
        # Atomic write-then-rename: a kill mid-dump must not leave a
        # truncated artifact for the CI upload to collect.
        atomic_write_json(json_path, report)
        print(f"wrote {json_path}")


def verify_overhead_suite(trials: int, json_path: str) -> None:
    """Cost of static verification on the engine-compilation path.

    Builds every Figure 5 engine ``trials`` times with the
    ``repro.analysis`` verifier off and again with it on
    (``REPRO_VERIFY=1``), recording the per-build ``aot_seconds`` each
    engine reports into two telemetry histograms.  The timed region is
    the steady state synthesis lives in — the process-wide caches (QGL
    expression JIT, kernel-lint clean-source memo) are warmed outside
    the timer, exactly like the figure suite warms the
    ExpressionCache — and the one-time cold cost of verifying each
    unique program/kernel is measured directly and reported as its own
    histogram.  The artifact carries all three histograms, the
    steady-state overhead fraction (acceptance bar: < 5%), and the
    ``analysis.*`` counters the verified pass accumulated.
    """
    import os

    from repro import telemetry
    from repro.analysis import verify_kernel, verify_program
    from repro.tnvm.fused import fused_kernel_for

    registry = telemetry.metrics()
    hists = {
        "off": registry.histogram("bench.aot_seconds.verify_off"),
        "on": registry.histogram("bench.aot_seconds.verify_on"),
    }
    cold = registry.histogram("bench.analysis_cold_seconds")
    names = list(FIG5_BENCHMARKS)

    # Warm the process-wide ExpressionCache so neither mode pays the
    # one-time JIT of the QGL expressions inside its timed region.
    engines = {name: Instantiater(fig5_circuit(name)) for name in names}

    # One-time cost: verify each unique program and lint each unique
    # kernel once, cold.  This doubles as the warm-up of the lint's
    # clean-source memo for the steady-state pass below.
    for name, engine in engines.items():
        program = engine.program
        t0 = time.perf_counter()
        verify_program(program).raise_if_failed()
        cold.observe(time.perf_counter() - t0)
        vm = engine.vm
        if getattr(vm, "fused_kernel", None) is not None:
            kernel = fused_kernel_for(
                program, vm.compiled, grad=True, batched=False
            )
            t0 = time.perf_counter()
            verify_kernel(kernel).raise_if_failed()
            cold.observe(time.perf_counter() - t0)

    samples: dict[tuple[str, str], list[float]] = {}
    saved = os.environ.get("REPRO_VERIFY")
    try:
        # Interleave the two modes within each trial so slow drift
        # (cache pressure, CPU frequency) cancels out of the ratio.
        for _ in range(trials):
            for mode, env in (("off", "0"), ("on", "1")):
                os.environ["REPRO_VERIFY"] = env
                for name in names:
                    circ = fig5_circuit(name)
                    engine = Instantiater(circ)
                    hists[mode].observe(engine.aot_seconds)
                    samples.setdefault((mode, name), []).append(
                        engine.aot_seconds
                    )
    finally:
        if saved is None:
            os.environ.pop("REPRO_VERIFY", None)
        else:
            os.environ["REPRO_VERIFY"] = saved

    off = hists["off"].state()
    on = hists["on"].state()
    # Headline overhead from per-circuit medians (the circuits span an
    # order of magnitude in build time, so a pooled median is
    # multimodal, and single-build timings have heavy outlier tails):
    # median over trials for each (circuit, mode), then compare the
    # suite totals.
    med = {
        mode: sum(
            float(np.median(samples[(mode, name)])) for name in names
        )
        for mode in ("off", "on")
    }
    overhead = med["on"] / med["off"] - 1.0
    overhead_mean = on["mean"] / off["mean"] - 1.0
    counters = {
        name: value
        for name, value in registry.snapshot().items()
        if name.startswith("analysis.")
    }

    print(f"verify-overhead: {trials} builds x {len(names)} circuits "
          f"per mode\n")
    print(f"{'mode':<10} {'builds':>7} {'suite med(ms)':>14} "
          f"{'mean(ms)':>10} {'min(ms)':>9} {'max(ms)':>9}")
    for mode, state in (("off", off), ("on", on)):
        print(f"{mode:<10} {state['count']:>7} "
              f"{med[mode] * 1e3:>14.2f} {state['mean'] * 1e3:>10.2f} "
              f"{state['min'] * 1e3:>9.2f} {state['max'] * 1e3:>9.2f}")
    print(f"\nsteady-state verification overhead: {overhead:+.2%} of "
          f"the suite's median aot_seconds (acceptance bar < 5%; "
          f"mean-based {overhead_mean:+.2%})")
    print(f"one-time cold verify/lint: {cold.count} subjects, "
          f"mean {cold.mean * 1e3:.2f}ms, max {cold.max * 1e3:.2f}ms")
    for name in sorted(counters):
        print(f"  {name} = {counters[name]}")

    report = {
        "mode": "verify-overhead",
        "trials": trials,
        "circuits": names,
        "aot_seconds": {
            "verify_off": off,
            "verify_on": on,
            "verify_off_suite_median": med["off"],
            "verify_on_suite_median": med["on"],
        },
        "overhead_fraction": overhead,
        "overhead_fraction_mean": overhead_mean,
        "cold_verify_seconds": cold.state(),
        "telemetry_metrics": counters,
    }
    if json_path:
        atomic_write_json(json_path, report)
        print(f"wrote {json_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--starts", type=int, default=1)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--circuits",
        default="",
        help="comma-separated subset of Figure 5 benchmark names",
    )
    parser.add_argument(
        "--skip-baseline",
        action="store_true",
        help="measure only the OpenQudit engines (fast CI smoke)",
    )
    parser.add_argument(
        "--fused-eval",
        action="store_true",
        help="compare the closures and fused TNVM backends on the raw "
        "evaluate_with_grad hot path (emits BENCH_fused_eval.json "
        "with --json)",
    )
    parser.add_argument(
        "--eval-calls",
        type=int,
        default=2000,
        metavar="N",
        help="gradient sweeps per backend in --fused-eval mode",
    )
    parser.add_argument(
        "--verify-overhead",
        action="store_true",
        help="measure the repro.analysis verifier's cost on engine "
        "compilation: aot_seconds histograms with verification off "
        "vs on (emits BENCH_verify.json with --json)",
    )
    parser.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the results (e.g. BENCH_multistart.json)",
    )
    args = parser.parse_args()

    if args.verify_overhead:
        # Builds the fixed Figure 5 engine set twice; only --trials
        # (builds per mode) and --json carry over from the figure suite.
        if (
            args.fused_eval
            or args.circuits
            or args.skip_baseline
            or args.starts != parser.get_default("starts")
        ):
            parser.error(
                "--verify-overhead is exclusive with --fused-eval/"
                "--starts/--circuits/--skip-baseline (use --trials)"
            )
        if args.trials < 1:
            parser.error("--trials must be >= 1")
        verify_overhead_suite(args.trials, args.json)
        return

    if args.fused_eval:
        # The backend comparison runs fixed 1-3 qubit templates on the
        # raw gradient sweep; the figure-suite flags do not apply.
        if (
            args.circuits
            or args.skip_baseline
            or args.starts != parser.get_default("starts")
            or args.trials != parser.get_default("trials")
        ):
            parser.error(
                "--fused-eval is exclusive with --starts/--trials/"
                "--circuits/--skip-baseline (use --eval-calls)"
            )
        if args.eval_calls < 1:
            parser.error("--eval-calls must be >= 1")
        fused_eval_suite(args.eval_calls, args.json)
        return

    names = list(FIG5_BENCHMARKS)
    if args.circuits:
        wanted = [n.strip() for n in args.circuits.split(",") if n.strip()]
        unknown = [n for n in wanted if n not in FIG5_BENCHMARKS]
        if unknown:
            parser.error(f"unknown circuits: {unknown}; known: {names}")
        names = wanted

    # Warm the process-wide ExpressionCache first: each unique QGL
    # expression is JIT-compiled once per process (paper section IV-B),
    # so measured AOT time covers lowering, pathfinding, bytecode
    # generation and TNVM initialization — not expression compilation.
    with_batched = args.starts > 1
    with_baseline = not args.skip_baseline

    for name in names:
        circ = fig5_circuit(name)
        engine = Instantiater(
            circ, strategy="batched" if with_batched else "sequential"
        )
        if with_batched:
            # Also warm the lazily-compiled batched expression writers:
            # seeding start 0 with the exact solution makes this a
            # single batched evaluation, not a full optimization.
            p = np.zeros(circ.num_params)
            engine.instantiate(circ.get_unitary(p), starts=2, x0=p)

    figure = "Figure 7" if args.starts > 1 else "Figure 6"
    print(f"{figure}: {args.starts}-start instantiation, "
          f"{args.trials} targets per benchmark\n")
    header = f"{'benchmark':<18} {'sequential(s)':>14}"
    if with_batched:
        header += f" {'batched(s)':>11}"
    if with_baseline:
        header += f" {'baseline(s)':>12} {'speedup':>8}"
    header += f" {'seq rate':>9}"
    if with_batched:
        header += f" {'bat rate':>9}"
    print(header)

    rows = []
    for name in names:
        row = run_one(
            name,
            args.starts,
            args.trials,
            with_batched=with_batched,
            with_baseline=with_baseline,
        )
        rows.append(row)
        line = f"{row['name']:<18} {row['sequential_seconds']:>14.3f}"
        if with_batched:
            line += f" {row['batched_seconds']:>11.3f}"
        if with_baseline:
            speedup = row["baseline_seconds"] / row["sequential_seconds"]
            line += f" {row['baseline_seconds']:>12.3f} {speedup:>7.1f}x"
        line += f" {row['sequential_rate']:>8.0%}"
        if with_batched:
            line += f" {row['batched_rate']:>8.0%}"
        print(line)

    report = {
        "starts": args.starts,
        "trials": args.trials,
        "circuits": rows,
    }
    if with_batched:
        seq_total = sum(r["sequential_seconds"] for r in rows)
        bat_total = sum(r["batched_seconds"] for r in rows)
        report["sequential_total_seconds"] = seq_total
        report["batched_total_seconds"] = bat_total
        report["batched_speedup"] = seq_total / bat_total
        print(
            f"\nsuite total: sequential {seq_total:.3f}s, "
            f"batched {bat_total:.3f}s "
            f"({seq_total / bat_total:.2f}x batched speedup)"
        )

    if args.json:
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
