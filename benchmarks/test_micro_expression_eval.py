"""Micro-benchmark: single U3 evaluation (paper section VII-A).

The paper contrasts a JIT'd OpenQudit U3 evaluation (<100 ns native)
with general frameworks (~6 us with JAX).  Here the JIT'd writer is
compared against the traditional class-based ``get_unitary`` /
``get_grad`` pair; absolute numbers differ in Python but the JIT'd
straight-line form must win clearly.
"""

import numpy as np
import pytest

from repro.baseline.gates import U3Gate
from repro.circuit import gates

PARAMS = (0.7, 0.3, -1.1)


@pytest.fixture(scope="module")
def compiled_u3():
    return gates.u3().compiled(grad=True)


def test_u3_eval_jit(benchmark, compiled_u3):
    benchmark.group = "micro-u3-eval"
    out = np.zeros((2, 2), dtype=np.complex128)
    compiled_u3.write_constants(out)
    write = compiled_u3.write
    grad = np.zeros((3, 2, 2), dtype=np.complex128)
    compiled_u3.write_constants(out, grad)
    benchmark(write, PARAMS, out, grad)


def test_u3_eval_baseline_class(benchmark):
    benchmark.group = "micro-u3-eval"
    gate = U3Gate()

    def eval_both():
        gate.get_unitary(PARAMS)
        gate.get_grad(PARAMS)

    benchmark(eval_both)


def test_u3_unitary_only_jit(benchmark):
    benchmark.group = "micro-u3-unitary"
    compiled = gates.u3().compiled(grad=False)
    out = np.zeros((2, 2), dtype=np.complex128)
    compiled.write_constants(out)
    benchmark(compiled.write, PARAMS, out)


def test_u3_unitary_only_baseline(benchmark):
    benchmark.group = "micro-u3-unitary"
    gate = U3Gate()
    benchmark(gate.get_unitary, PARAMS)
