#!/usr/bin/env python
"""Run the synthesis workload suite and emit a CI-trackable report.

Usage::

    python benchmarks/run_synthesis.py                       # full console run
    python benchmarks/run_synthesis.py --random-targets 2 \
        --json BENCH_synthesis.json                          # CI smoke artifact
    python benchmarks/run_synthesis.py --compare-workers 1,4 \
        --random-targets 1 --json BENCH_parallel_synthesis.json
    python benchmarks/run_synthesis.py --backends closures,fused \
        --random-targets 2 --json BENCH_backend_synthesis.json
    python benchmarks/run_synthesis.py --state-prep \
        --json BENCH_state_prep.json

Default mode synthesizes the 2-qubit QFT plus ``--random-targets``
seeded Haar-random 2-qubit unitaries with
:class:`repro.synthesis.SynthesisSearch` (U3+CNOT gate set, one shared
engine pool), then compresses a deliberately deep ansatz with
:class:`repro.synthesis.Resynthesizer`.  The JSON report records, per
target: solved or not, infidelity, entangling-gate count,
instantiation calls, engine-cache hits/misses, and wall time — the
figures of merit for the paper's section II-B workload.

``--compare-workers`` switches to the serial-vs-parallel comparison:
3-qubit targets (QFT-3 plus seeded *reachable* random unitaries, whose
expansions branch three ways and therefore batch multiple candidates
per round) are synthesized once per worker count, a deep ansatz is
compressed with full scan waves, and the report records per-config
wall time, parallel efficiency, the speedup over the serial run, and
whether the results were bit-identical (they must be: candidate seeds
derive from structure keys, not draw order).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro import telemetry
from repro.checkpoint import atomic_write_json, snapshot_count
from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.instantiation import Instantiater
from repro.synthesis import Resynthesizer, SynthesisSearch
from repro.utils import Statevector, random_unitary


def default_suite(args) -> None:
    search = SynthesisSearch(
        starts=args.starts,
        workers=args.workers,
        expansion_width=args.expansion_width or 1,
    )
    targets = [("qft2", build_qft_circuit(2).get_unitary(()))]
    targets += [
        (f"random-{k}", random_unitary(4, rng=args.seed_base + k))
        for k in range(args.random_targets)
    ]

    print(f"synthesis: {len(targets)} 2-qubit targets, U3+CNOT gate set, "
          f"{args.starts} starts per candidate, {args.workers} worker(s)\n")
    print(f"{'target':<12} {'solved':>6} {'CX':>3} {'infidelity':>11} "
          f"{'calls':>6} {'hits':>5} {'seconds':>8}")

    rows = []
    for k, (name, target) in enumerate(targets):
        # Per-target checkpoint directories: snapshots carry a target
        # fingerprint, so two targets can never share one store.
        ckpt = (
            os.path.join(args.checkpoint_dir, name)
            if args.checkpoint_dir
            else None
        )
        if ckpt and args.resume and snapshot_count(ckpt):
            result = search.synthesize(target, resume_from=ckpt)
            if result.resumed_from_round is not None:
                print(f"{name}: resumed from round "
                      f"{result.resumed_from_round}")
        else:
            result = search.synthesize(target, rng=k, checkpoint_dir=ckpt)
        rows.append({
            "target": name,
            "solved": result.success,
            "infidelity": result.infidelity,
            "cx_count": result.count("CX"),
            "operations": result.circuit.num_operations,
            "instantiation_calls": result.instantiation_calls,
            "engine_cache_hits": result.engine_cache_hits,
            "engine_cache_misses": result.engine_cache_misses,
            "nodes_expanded": result.nodes_expanded,
            "wall_seconds": result.wall_seconds,
            "workers": result.workers,
            "parallel_efficiency": result.parallel_efficiency,
            "resumed_from_round": result.resumed_from_round,
        })
        print(f"{name:<12} {str(result.success):>6} "
              f"{result.count('CX'):>3} {result.infidelity:>11.2e} "
              f"{result.instantiation_calls:>6} "
              f"{result.engine_cache_hits:>5} "
              f"{result.wall_seconds:>8.2f}")

    # Compression: fit a deliberately deep ansatz to a 1-block target,
    # then strip the redundancy (the Section II-B gate-deletion loop).
    deep = build_qsearch_ansatz(2, 3, 2)
    shallow = build_qsearch_ansatz(2, 1, 2)
    compress_target = shallow.get_unitary(
        np.random.default_rng(42).uniform(-np.pi, np.pi, shallow.num_params)
    )
    resynth_ckpt = (
        os.path.join(args.checkpoint_dir, "resynthesis")
        if args.checkpoint_dir
        else None
    )
    resynth = Resynthesizer(
        starts=args.starts, pool=search.pool, executor=search.executor,
        checkpoint_dir=resynth_ckpt,
    )
    if resynth_ckpt and args.resume and snapshot_count(resynth_ckpt):
        compressed = resynth.resynthesize(
            deep, target=compress_target, resume_from=resynth_ckpt
        )
    else:
        compressed = resynth.resynthesize(
            deep, target=compress_target, rng=5
        )
    search.close()
    print(f"\nresynthesis: {deep.num_operations} -> "
          f"{compressed.circuit.num_operations} gates "
          f"({deep.gate_counts().get('CX', 0)} -> "
          f"{compressed.count('CX')} CX), "
          f"{compressed.instantiation_calls} instantiation calls, "
          f"{compressed.wall_seconds:.2f}s")

    solved = sum(r["solved"] for r in rows)
    report = {
        "starts": args.starts,
        "workers": args.workers,
        "targets_total": len(rows),
        "targets_solved": solved,
        "instantiation_calls_total": sum(
            r["instantiation_calls"] for r in rows
        ),
        "wall_seconds_total": sum(r["wall_seconds"] for r in rows),
        "targets": rows,
        "resynthesis": {
            "operations_before": deep.num_operations,
            "operations_after": compressed.circuit.num_operations,
            "cx_before": deep.gate_counts().get("CX", 0),
            "cx_after": compressed.count("CX"),
            "solved": compressed.success,
            "instantiation_calls": compressed.instantiation_calls,
            "wall_seconds": compressed.wall_seconds,
        },
    }
    print(f"\nsuite: {solved}/{len(rows)} targets solved, "
          f"{report['instantiation_calls_total']} instantiation calls, "
          f"{report['wall_seconds_total']:.2f}s synthesis wall time")

    if args.json:
        # Atomic write-then-rename: a kill mid-dump must not leave a
        # truncated artifact for the CI upload to collect.
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")


def reachable_3q_target(seed: int) -> np.ndarray:
    """A random unitary a depth-3 3-qubit search can actually reach."""
    ansatz = build_qsearch_ansatz(3, 3, 2)
    params = np.random.default_rng(seed).uniform(
        -np.pi, np.pi, ansatz.num_params
    )
    return ansatz.get_unitary(params)


def compare_over_workers(name, worker_counts, run, extra_fields):
    """Run one workload once per worker count and compare the results.

    ``run(workers) -> SynthesisResult`` executes the workload;
    ``extra_fields(result) -> dict`` contributes workload-specific JSON
    columns.  Returns ``(runs, identical)`` where ``identical`` holds
    iff every run returned the serial run's circuit, params,
    infidelity, and instantiation-call count — the bit-identical
    contract of the candidate executors.  Prints one table row per run.
    """
    runs = []
    reference = None
    identical = True
    for workers in worker_counts:
        t0 = time.perf_counter()
        result = run(workers)
        wall = time.perf_counter() - t0
        if reference is None:
            reference = result
        else:
            identical = identical and (
                reference.circuit.structure_key()
                == result.circuit.structure_key()
                and np.array_equal(reference.params, result.params)
                and reference.infidelity == result.infidelity
                and reference.instantiation_calls
                == result.instantiation_calls
            )
        speedup = runs[0]["wall_seconds"] / wall if runs else 1.0
        row = {
            "workers": workers,
            "solved": result.success,
            "instantiation_calls": result.instantiation_calls,
            "parallel_efficiency": result.parallel_efficiency,
            "wall_seconds": wall,
            "speedup_vs_serial": speedup,
        }
        row.update(extra_fields(result))
        runs.append(row)
        print(f"{name:<12} {workers:>7} {str(result.success):>6} "
              f"{result.instantiation_calls:>6} "
              f"{(result.parallel_efficiency or 0.0):>5.2f} "
              f"{wall:>8.2f} {speedup:>8.2f} {str(identical):>9}")
    return runs, identical


def compare_workers_suite(args, worker_counts: list[int]) -> None:
    width = args.expansion_width or 2
    targets = [("qft3", build_qft_circuit(3).get_unitary(()))]
    targets += [
        (f"random3q-{k}", reachable_3q_target(args.seed_base + k))
        for k in range(args.random_targets)
    ]

    # One persistent search per worker count, reused across every
    # target (mirroring the default suite's shared pool), with an
    # untimed warm-up synthesize that pays expression JIT, common AOT
    # compiles, and — for parallel configs — process-pool boot and
    # worker imports *before* the timers start.  Without this, the
    # parallel measurements would carry pool cold-start the serial
    # runs never pay, biasing the comparison against parallelism.
    warm_target = build_qsearch_ansatz(3, 1, 2).get_unitary(
        np.zeros(build_qsearch_ansatz(3, 1, 2).num_params)
    )
    searches = {}
    for workers in worker_counts:
        search = SynthesisSearch(
            starts=args.starts, workers=workers, expansion_width=width
        )
        search.synthesize(warm_target, rng=0)
        searches[workers] = search

    print(f"parallel synthesis comparison: {len(targets)} 3-qubit targets, "
          f"workers {worker_counts}, expansion_width={width}, "
          f"{args.starts} starts, {os.cpu_count()} CPU core(s)\n")
    print(f"{'target':<12} {'workers':>7} {'solved':>6} {'calls':>6} "
          f"{'eff':>5} {'seconds':>8} {'speedup':>8} {'identical':>9}")

    target_rows = []
    totals = {w: 0.0 for w in worker_counts}
    all_identical = True
    for name, target in targets:

        def run_search(workers, target=target):
            return searches[workers].synthesize(target, rng=7)

        runs, identical = compare_over_workers(
            name,
            worker_counts,
            run_search,
            lambda r: {
                "infidelity": r.infidelity,
                "nodes_expanded": r.nodes_expanded,
            },
        )
        for row in runs:
            totals[row["workers"]] += row["wall_seconds"]
        all_identical = all_identical and identical
        target_rows.append({
            "target": name,
            "identical_across_workers": identical,
            "runs": runs,
        })

    # Compression comparison: the default suite's over-deep 2-qubit
    # ansatz, but with full scan waves, so every wave batches
    # (operations) concurrent candidate fits.
    deep = build_qsearch_ansatz(2, 3, 2)
    shallow = build_qsearch_ansatz(2, 1, 2)
    compress_target = shallow.get_unitary(
        np.random.default_rng(42).uniform(-np.pi, np.pi, shallow.num_params)
    )

    def run_resynth(workers):
        # Ride the worker count's warm search: same pool (AOT already
        # paid for shared shapes) and same booted process pool.
        search = searches[workers]
        resynth = Resynthesizer(
            starts=args.starts,
            scan_batch=None,
            pool=search.pool,
            executor=search.executor,
        )
        return resynth.resynthesize(deep, target=compress_target, rng=5)

    resynth_runs, resynth_identical = compare_over_workers(
        "resynth2q",
        worker_counts,
        run_resynth,
        lambda r: {
            "operations_before": deep.num_operations,
            "operations_after": r.circuit.num_operations,
        },
    )
    all_identical = all_identical and resynth_identical
    for search in searches.values():
        search.close()

    serial = worker_counts[0]
    speedups = {
        str(w): totals[serial] / totals[w] for w in worker_counts[1:]
    }
    report = {
        "mode": "parallel-comparison",
        "cpu_count": os.cpu_count(),
        "starts": args.starts,
        "expansion_width": width,
        "worker_counts": worker_counts,
        "identical_across_workers": all_identical,
        "targets": target_rows,
        "resynthesis": {
            "operations_before": deep.num_operations,
            "identical_across_workers": resynth_identical,
            "runs": resynth_runs,
        },
        "synthesis_wall_seconds": {str(w): totals[w] for w in worker_counts},
        "synthesis_speedup_vs_serial": speedups,
    }
    print(f"\ncomparison: identical={all_identical}, "
          + ", ".join(
              f"{w} workers -> {speedups[str(w)]:.2f}x"
              for w in worker_counts[1:]
          ))
    if os.cpu_count() is not None and os.cpu_count() < max(worker_counts):
        print(f"note: only {os.cpu_count()} CPU core(s) available; "
              "wall-clock speedup needs at least as many cores as workers")

    if args.json:
        # Atomic write-then-rename: a kill mid-dump must not leave a
        # truncated artifact for the CI upload to collect.
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")


def compare_backends_suite(args, backends: list[str]) -> None:
    """Serial synthesis once per TNVM backend, bit-identity checked.

    The fused megakernel backend must return exactly the closures
    backend's ``SynthesisResult`` (same circuit, params, infidelity,
    call counts) — the backend is an execution detail — while spending
    measurably less wall time in the instantiation inner loop.
    """
    targets = [("qft2", build_qft_circuit(2).get_unitary(()))]
    targets += [
        (f"random-{k}", random_unitary(4, rng=args.seed_base + k))
        for k in range(args.random_targets)
    ]
    deep = build_qsearch_ansatz(2, 3, 2)
    shallow = build_qsearch_ansatz(2, 1, 2)
    compress_target = shallow.get_unitary(
        np.random.default_rng(42).uniform(-np.pi, np.pi, shallow.num_params)
    )

    print(f"backend comparison: {len(targets)} 2-qubit targets + "
          f"resynthesis, backends {backends}, {args.starts} starts\n")
    print(f"{'backend':<10} {'solved':>6} {'calls':>6} {'seconds':>8} "
          f"{'speedup':>8} {'identical':>9}")

    runs = []
    reference = None
    identical = True
    for backend in backends:
        search = SynthesisSearch(starts=args.starts, backend=backend)
        t0 = time.perf_counter()
        results = [search.synthesize(t, rng=k)
                   for k, (_, t) in enumerate(targets)]
        compressed = Resynthesizer(
            starts=args.starts, pool=search.pool, executor=search.executor
        ).resynthesize(deep, target=compress_target, rng=5)
        wall = time.perf_counter() - t0
        search.close()
        snapshot = [
            (
                r.circuit.structure_key(),
                tuple(np.asarray(r.params).tolist()),
                r.infidelity,
                r.instantiation_calls,
            )
            for r in results + [compressed]
        ]
        if reference is None:
            reference = snapshot
        else:
            identical = identical and snapshot == reference
        row = {
            "backend": backend,
            "solved": sum(r.success for r in results),
            "targets": len(results),
            "resynthesis_solved": compressed.success,
            "instantiation_calls": sum(
                r.instantiation_calls for r in results
            ) + compressed.instantiation_calls,
            "wall_seconds": wall,
            "speedup_vs_first": (
                runs[0]["wall_seconds"] / wall if runs else 1.0
            ),
        }
        runs.append(row)
        print(f"{backend:<10} {row['solved']:>4}/{row['targets']} "
              f"{row['instantiation_calls']:>6} {wall:>8.2f} "
              f"{row['speedup_vs_first']:>7.2f}x {str(identical):>9}")

    report = {
        "mode": "backend-comparison",
        "starts": args.starts,
        "backends": backends,
        "identical_across_backends": identical,
        "runs": runs,
    }
    print(f"\ncomparison: identical={identical}, "
          + ", ".join(
              f"{r['backend']} -> {r['speedup_vs_first']:.2f}x"
              for r in runs[1:]
          ))
    if args.json:
        # Atomic write-then-rename: a kill mid-dump must not leave a
        # truncated artifact for the CI upload to collect.
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")


def random_state(dim: int, seed: int) -> np.ndarray:
    """A Haar-ish random pure state (normalized complex Gaussian)."""
    rng = np.random.default_rng(seed)
    amps = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return amps / np.linalg.norm(amps)


def state_prep_suite(args) -> None:
    """State-preparation synthesis: GHZ + random states, 2-3 qubits.

    Four measurements feed ``BENCH_state_prep.json``:

    1. each target synthesized once per TNVM backend
       (closures vs fused), bit-identity checked;
    2. GHZ-3 synthesized serially and with 2 workers, bit-identity
       checked (state-prep rounds ride the same process-pool payload
       plumbing as unitary rounds);
    3. a per-candidate cost micro: the *same* compiled engine fits a
       reachable unitary target and its own first column as a state
       target — the O(D) state residual stack vs the O(D^2) unitary
       one, per LM evaluation;
    4. a column-vs-full engine micro at D=8/16/27: one batched
       ``evaluate_with_grad`` (batch = the multistart width, exactly
       the per-candidate engine configuration a fit runs) through a
       ``COLUMN(0)``-contract program vs the full-unitary program
       (``backend="auto"`` for both, so each side gets its own
       fused/closures resolution) — the output-contract speedup every
       state-prep candidate fit now rides.
    """
    backends = ["closures", "fused"]
    targets = [
        ("ghz2", Statevector.ghz(2)),
        ("ghz3", Statevector.ghz(3)),
        ("random2q", random_state(4, args.seed_base)),
        ("random3q", random_state(8, args.seed_base + 1)),
    ]

    print(f"state-preparation synthesis: {len(targets)} targets, "
          f"U3+CNOT gate set, {args.starts} starts, backends {backends}\n")
    print(f"{'target':<10} {'backend':<9} {'solved':>6} {'CX':>3} "
          f"{'infidelity':>11} {'calls':>6} {'seconds':>8} {'identical':>9}")

    per_backend: dict[str, list] = {}
    backend_walls: dict[str, float] = {}
    for backend in backends:
        search = SynthesisSearch(starts=args.starts, backend=backend)
        t0 = time.perf_counter()
        per_backend[backend] = [
            search.synthesize(target, rng=k)
            for k, (_, target) in enumerate(targets)
        ]
        backend_walls[backend] = time.perf_counter() - t0
        search.close()

    target_rows = []
    identical_backends = True
    reference = per_backend[backends[0]]
    for k, (name, _) in enumerate(targets):
        ref = reference[k]
        identical = all(
            per_backend[b][k].circuit.structure_key()
            == ref.circuit.structure_key()
            and np.array_equal(per_backend[b][k].params, ref.params)
            and per_backend[b][k].infidelity == ref.infidelity
            and per_backend[b][k].instantiation_calls
            == ref.instantiation_calls
            for b in backends[1:]
        )
        identical_backends = identical_backends and identical
        runs = []
        for b in backends:
            r = per_backend[b][k]
            runs.append({
                "backend": b,
                "solved": r.success,
                "infidelity": r.infidelity,
                "cx_count": r.count("CX"),
                "operations": r.circuit.num_operations,
                "instantiation_calls": r.instantiation_calls,
                "wall_seconds": r.wall_seconds,
            })
            print(f"{name:<10} {b:<9} {str(r.success):>6} "
                  f"{r.count('CX'):>3} {r.infidelity:>11.2e} "
                  f"{r.instantiation_calls:>6} {r.wall_seconds:>8.2f} "
                  f"{str(identical):>9}")
        target_rows.append({
            "target": name,
            "identical_across_backends": identical,
            "runs": runs,
        })

    # Serial vs 2-worker GHZ-3: state-prep rounds on the process pool.
    ghz3 = Statevector.ghz(3)
    worker_runs = []
    w_reference = None
    identical_workers = True
    for workers in (1, 2):
        with SynthesisSearch(
            starts=args.starts, workers=workers, expansion_width=2
        ) as search:
            t0 = time.perf_counter()
            result = search.synthesize(ghz3, rng=7)
            wall = time.perf_counter() - t0
        if w_reference is None:
            w_reference = result
        else:
            identical_workers = (
                w_reference.circuit.structure_key()
                == result.circuit.structure_key()
                and np.array_equal(w_reference.params, result.params)
                and w_reference.infidelity == result.infidelity
                and w_reference.instantiation_calls
                == result.instantiation_calls
            )
        worker_runs.append({
            "workers": workers,
            "solved": result.success,
            "infidelity": result.infidelity,
            "instantiation_calls": result.instantiation_calls,
            "wall_seconds": wall,
        })
    print(f"\nghz3 workers 1 vs 2: identical={identical_workers}")

    # Per-candidate evaluation cost: the same batched VM evaluates one
    # residual+Jacobian call against a unitary target and against its
    # own first column as a state target.  Both share the VM gradient
    # sweep; the unitary fit then assembles 2D^2 residual rows and a
    # (S, 2D^2, P) Jacobian where state prep assembles 2D and
    # (S, 2D, P) — an O(D) vs O(D^2) gap that widens with dimension.
    from repro.instantiation import (
        BatchedHilbertSchmidtResiduals,
        BatchedStateResiduals,
    )
    from repro.tnvm import BatchedTNVM, Differentiation

    def best_of(fn, arg, reps=200, rounds=3):
        """Median-free best-of-N microtiming (1-core CI jitter)."""
        fn(arg)  # warm
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn(arg)
            best = min(best, (time.perf_counter() - t0) / reps)
        return best

    eval_rows = []
    for num_qudits in (3, 4):
        ansatz = build_qsearch_ansatz(num_qudits, 2, 2)
        dim = 2**num_qudits
        ref_params = np.random.default_rng(args.seed_base + 7).uniform(
            -np.pi, np.pi, ansatz.num_params
        )
        target_u = ansatz.get_unitary(ref_params)
        target_s = np.ascontiguousarray(target_u[:, 0])
        vm = BatchedTNVM(
            ansatz.compile(), args.starts, diff=Differentiation.GRADIENT
        )
        rows = np.tile(ref_params, (args.starts, 1))
        res_u = BatchedHilbertSchmidtResiduals(vm, target_u)
        res_s = BatchedStateResiduals(vm, target_s)
        us_u = best_of(res_u.residuals_and_jacobian, rows) * 1e6
        us_s = best_of(res_s.residuals_and_jacobian, rows) * 1e6
        eval_rows.append({
            "dim": dim,
            "num_params": ansatz.num_params,
            "batch": args.starts,
            "residual_rows_unitary": 2 * dim * dim,
            "residual_rows_state": 2 * dim,
            "unitary_us_per_call": us_u,
            "state_us_per_call": us_s,
            "state_speedup": us_u / us_s,
        })
        print(f"per-candidate eval D={dim:<3} ({ansatz.num_params} params, "
              f"batch {args.starts}): unitary {us_u:7.1f} us/call, "
              f"state {us_s:7.1f} us/call -> "
              f"{us_u / us_s:.2f}x cheaper")
    state_speedup = eval_rows[-1]["state_speedup"]

    # Column-vs-full engine micro: the tentpole measurement.  Batched
    # VMs at the multistart width under backend="auto" — exactly the
    # per-candidate engine configuration a fit runs — so the number is
    # the real per-candidate evaluate_with_grad speedup, not a
    # single-start abstraction.  One row per radix family — qubits
    # (D=8), ququarts (D=16), qutrits (D=27) — the contract machinery
    # is radix-generic.  The two sides run in interleaved rounds
    # (full, column, full, ...) so slow machine drift lands on both
    # equally instead of biasing whichever side happened to run later.
    from repro.tensornet import OutputContract

    def best_of_pair(fn_a, fn_b, arg, reps=150, rounds=6):
        fn_a(arg)
        fn_b(arg)  # warm both before the first timed round
        best_a = best_b = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn_a(arg)
            best_a = min(best_a, (time.perf_counter() - t0) / reps)
            t0 = time.perf_counter()
            for _ in range(reps):
                fn_b(arg)
            best_b = min(best_b, (time.perf_counter() - t0) / reps)
        return best_a, best_b

    column_rows = []
    for label, ansatz in (
        ("3 qubits", build_qsearch_ansatz(3, 2, 2)),
        ("2 ququarts", build_qsearch_ansatz(2, 2, 4)),
        ("3 qutrits", build_qsearch_ansatz(3, 2, 3)),
    ):
        dim = ansatz.compile().dim
        xs = np.random.default_rng(args.seed_base + 13).uniform(
            -np.pi, np.pi, (args.starts, ansatz.num_params)
        )
        vm_full = BatchedTNVM(
            ansatz.compile(),
            args.starts,
            diff=Differentiation.GRADIENT,
            backend="auto",
        )
        vm_col = BatchedTNVM(
            ansatz.compile(contract=OutputContract.column(0)),
            args.starts,
            diff=Differentiation.GRADIENT,
            backend="auto",
        )
        t_full, t_col = best_of_pair(
            vm_full.evaluate_with_grad, vm_col.evaluate_with_grad, xs
        )
        us_full, us_col = t_full * 1e6, t_col * 1e6
        column_rows.append({
            "system": label,
            "dim": dim,
            "num_params": ansatz.num_params,
            "batch": args.starts,
            "full_backend": vm_full.backend,
            "column_backend": vm_col.backend,
            "full_us_per_call": us_full,
            "column_us_per_call": us_col,
            "column_speedup": us_full / us_col,
        })
        print(f"column vs full D={dim:<3} ({label}, "
              f"{ansatz.num_params} params, batch {args.starts}): "
              f"full[{vm_full.backend}] {us_full:7.1f} us/call, "
              f"column[{vm_col.backend}] {us_col:7.1f} us/call -> "
              f"{us_full / us_col:.2f}x")
    column_speedup_d16 = next(
        r["column_speedup"] for r in column_rows if r["dim"] == 16
    )

    # Whole-fit context at D=8: same engine, both target types (the
    # state landscape is flatter — rank-deficient Jacobian — so it
    # spends more LM iterations even though each one is cheaper).
    ansatz = build_qsearch_ansatz(3, 2, 2)
    ref_params = np.random.default_rng(args.seed_base + 7).uniform(
        -np.pi, np.pi, ansatz.num_params
    )
    target_u = ansatz.get_unitary(ref_params)
    target_s = np.ascontiguousarray(target_u[:, 0])
    engine = Instantiater(ansatz, strategy="batched")
    engine.instantiate(target_u, starts=args.starts, rng=0)  # warm-up
    engine.instantiate(target_s, starts=args.starts, rng=0)
    trials = 3
    fit = {"unitary": {"seconds": 0.0, "evaluations": 0},
           "state": {"seconds": 0.0, "evaluations": 0}}
    for s in range(trials):
        for kind, target in (("unitary", target_u), ("state", target_s)):
            r = engine.instantiate(target, starts=args.starts, rng=100 + s)
            fit[kind]["seconds"] += r.optimize_seconds
            fit[kind]["evaluations"] += r.total_evaluations
    for kind in fit:
        fit[kind]["seconds_per_evaluation"] = (
            fit[kind]["seconds"] / max(1, fit[kind]["evaluations"])
        )

    solved = sum(r["runs"][0]["solved"] for r in target_rows)
    report = {
        "mode": "state-prep",
        "starts": args.starts,
        "backends": backends,
        "targets_total": len(target_rows),
        "targets_solved": solved,
        "identical_across_backends": identical_backends,
        "identical_across_workers": identical_workers,
        "targets": target_rows,
        "backend_wall_seconds": backend_walls,
        "ghz3_workers": worker_runs,
        "per_candidate_evaluation": eval_rows,
        "state_speedup_per_evaluation": state_speedup,
        "column_vs_full": column_rows,
        "column_speedup_d16": column_speedup_d16,
        "whole_fit_d8": {
            "num_params": ansatz.num_params,
            "starts": args.starts,
            "trials": trials,
            "unitary": fit["unitary"],
            "state": fit["state"],
        },
    }
    print(f"\nstate-prep suite: {solved}/{len(target_rows)} targets solved, "
          f"identical backends={identical_backends}, "
          f"workers={identical_workers}")
    if args.json:
        # Atomic write-then-rename: a kill mid-dump must not leave a
        # truncated artifact for the CI upload to collect.
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--random-targets", type=int, default=5)
    parser.add_argument("--starts", type=int, default=8)
    parser.add_argument("--seed-base", type=int, default=100)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="candidate-evaluation workers for the default suite",
    )
    parser.add_argument(
        "--expansion-width",
        type=int,
        default=None,
        metavar="W",
        help="frontier expansions per round (default: 1; comparison "
        "mode: 2)",
    )
    parser.add_argument(
        "--compare-workers",
        default="",
        metavar="N,M,...",
        help="run the serial-vs-parallel comparison over these worker "
        "counts (e.g. 1,4) instead of the default suite",
    )
    parser.add_argument(
        "--backends",
        default="",
        metavar="B,B",
        help="run the TNVM-backend comparison over these backends "
        "(e.g. closures,fused) instead of the default suite",
    )
    parser.add_argument(
        "--state-prep",
        action="store_true",
        help="run the state-preparation suite (GHZ + random states, "
        "closures vs fused, 1 vs 2 workers, per-candidate cost micro) "
        "instead of the default suite",
    )
    parser.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the report (e.g. BENCH_synthesis.json or "
        "BENCH_parallel_synthesis.json)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default="",
        metavar="DIR",
        help="durable checkpoint/resume for the default suite: each "
        "target snapshots its round-boundary state into DIR/<target> "
        "(and the compression leg into DIR/resynthesis)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir: resume each pass from its latest "
        "valid snapshot (bit-identical to an uninterrupted run; "
        "already-finished passes return their stored result)",
    )
    parser.add_argument(
        "--trace",
        default="",
        metavar="PATH",
        help="enable the telemetry tracer for the whole run and write "
        "a Chrome-trace JSON (e.g. TRACE_synthesis.json; open in "
        "Perfetto / chrome://tracing); with --json the flat metrics "
        "snapshot is merged into the report as 'telemetry_metrics'",
    )
    args = parser.parse_args()

    exclusive = [
        bool(args.compare_workers), bool(args.backends), args.state_prep
    ]
    if sum(exclusive) > 1:
        parser.error(
            "--compare-workers, --backends, and --state-prep are exclusive"
        )
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.checkpoint_dir and any(exclusive):
        parser.error(
            "--checkpoint-dir applies to the default suite only (the "
            "comparison suites re-run passes on purpose)"
        )
    if args.trace:
        telemetry.enable()
        metrics_before = telemetry.metrics().snapshot()

    if args.state_prep:
        state_prep_suite(args)
    elif args.compare_workers:
        worker_counts = [
            int(tok) for tok in args.compare_workers.split(",") if tok
        ]
        if len(worker_counts) < 2:
            parser.error("--compare-workers needs at least two counts")
        compare_workers_suite(args, worker_counts)
    elif args.backends:
        backends = [tok.strip() for tok in args.backends.split(",") if tok]
        if len(backends) < 2:
            parser.error("--backends needs at least two backends")
        compare_backends_suite(args, backends)
    else:
        default_suite(args)

    if args.trace:
        telemetry.write_chrome_trace(args.trace)
        spans = telemetry.disable()
        print(f"wrote {args.trace} ({len(spans)} spans)")
        if args.json and os.path.exists(args.json):
            metrics = telemetry.delta(
                metrics_before, telemetry.metrics().snapshot()
            )
            with open(args.json) as fh:
                report = json.load(fh)
            report["telemetry_metrics"] = metrics
            atomic_write_json(args.json, report)
            print(f"merged {len(metrics)} telemetry metrics "
                  f"into {args.json}")


if __name__ == "__main__":
    main()
