#!/usr/bin/env python
"""Run the synthesis workload suite and emit a CI-trackable report.

Usage::

    python benchmarks/run_synthesis.py                       # full console run
    python benchmarks/run_synthesis.py --random-targets 2 \
        --json BENCH_synthesis.json                          # CI smoke artifact

Synthesizes the 2-qubit QFT plus ``--random-targets`` seeded Haar-random
2-qubit unitaries with :class:`repro.synthesis.SynthesisSearch` (U3+CNOT
gate set, one shared engine pool), then compresses a deliberately deep
ansatz with :class:`repro.synthesis.Resynthesizer`.  The JSON report
records, per target: solved or not, infidelity, entangling-gate count,
instantiation calls, engine-cache hits/misses, and wall time — the
figures of merit for the paper's section II-B workload.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.synthesis import Resynthesizer, SynthesisSearch
from repro.utils import random_unitary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--random-targets", type=int, default=5)
    parser.add_argument("--starts", type=int, default=8)
    parser.add_argument("--seed-base", type=int, default=100)
    parser.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the report (e.g. BENCH_synthesis.json)",
    )
    args = parser.parse_args()

    search = SynthesisSearch(starts=args.starts)
    targets = [("qft2", build_qft_circuit(2).get_unitary(()))]
    targets += [
        (f"random-{k}", random_unitary(4, rng=args.seed_base + k))
        for k in range(args.random_targets)
    ]

    print(f"synthesis: {len(targets)} 2-qubit targets, U3+CNOT gate set, "
          f"{args.starts} starts per candidate\n")
    print(f"{'target':<12} {'solved':>6} {'CX':>3} {'infidelity':>11} "
          f"{'calls':>6} {'hits':>5} {'seconds':>8}")

    rows = []
    for k, (name, target) in enumerate(targets):
        result = search.synthesize(target, rng=k)
        rows.append({
            "target": name,
            "solved": result.success,
            "infidelity": result.infidelity,
            "cx_count": result.count("CX"),
            "operations": result.circuit.num_operations,
            "instantiation_calls": result.instantiation_calls,
            "engine_cache_hits": result.engine_cache_hits,
            "engine_cache_misses": result.engine_cache_misses,
            "nodes_expanded": result.nodes_expanded,
            "wall_seconds": result.wall_seconds,
        })
        print(f"{name:<12} {str(result.success):>6} "
              f"{result.count('CX'):>3} {result.infidelity:>11.2e} "
              f"{result.instantiation_calls:>6} "
              f"{result.engine_cache_hits:>5} "
              f"{result.wall_seconds:>8.2f}")

    # Compression: fit a deliberately deep ansatz to a 1-block target,
    # then strip the redundancy (the Section II-B gate-deletion loop).
    deep = build_qsearch_ansatz(2, 3, 2)
    shallow = build_qsearch_ansatz(2, 1, 2)
    compress_target = shallow.get_unitary(
        np.random.default_rng(42).uniform(-np.pi, np.pi, shallow.num_params)
    )
    compressed = Resynthesizer(
        starts=args.starts, pool=search.pool
    ).resynthesize(deep, target=compress_target, rng=5)
    print(f"\nresynthesis: {deep.num_operations} -> "
          f"{compressed.circuit.num_operations} gates "
          f"({deep.gate_counts().get('CX', 0)} -> "
          f"{compressed.count('CX')} CX), "
          f"{compressed.instantiation_calls} instantiation calls, "
          f"{compressed.wall_seconds:.2f}s")

    solved = sum(r["solved"] for r in rows)
    report = {
        "starts": args.starts,
        "targets_total": len(rows),
        "targets_solved": solved,
        "instantiation_calls_total": sum(
            r["instantiation_calls"] for r in rows
        ),
        "wall_seconds_total": sum(r["wall_seconds"] for r in rows),
        "targets": rows,
        "resynthesis": {
            "operations_before": deep.num_operations,
            "operations_after": compressed.circuit.num_operations,
            "cx_before": deep.gate_counts().get("CX", 0),
            "cx_after": compressed.count("CX"),
            "solved": compressed.success,
            "instantiation_calls": compressed.instantiation_calls,
            "wall_seconds": compressed.wall_seconds,
        },
    }
    print(f"\nsuite: {solved}/{len(rows)} targets solved, "
          f"{report['instantiation_calls_total']} instantiation calls, "
          f"{report['wall_seconds_total']:.2f}s synthesis wall time")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
