"""Figure 4: circuit construction time, OpenQudit vs the baseline.

The paper builds QFT and DTC circuits at power-of-two sizes (QFT up to
1023 qubits, DTC up to 512) and shows OpenQudit's expression caching
beating per-append-validated frameworks by 4-18x.  The pytest harness
covers sizes up to 256; ``python benchmarks/run_fig4.py --full``
regenerates the full-size figure data.
"""

import pytest

from repro.baseline import (
    build_dtc_circuit_baseline,
    build_qft_circuit_baseline,
)
from repro.circuit import build_dtc_circuit, build_qft_circuit

QFT_SIZES = [16, 64, 256]
DTC_SIZES = [16, 64, 256]


@pytest.mark.parametrize("n", QFT_SIZES)
def test_qft_construction_openqudit(benchmark, n):
    benchmark.group = f"fig4-qft-{n}"
    circ = benchmark(build_qft_circuit, n)
    assert len(circ) == n * (n + 1) // 2 + n // 2


@pytest.mark.parametrize("n", QFT_SIZES)
def test_qft_construction_baseline(benchmark, n):
    benchmark.group = f"fig4-qft-{n}"
    circ = benchmark(build_qft_circuit_baseline, n)
    assert len(circ) == n * (n + 1) // 2 + n // 2


@pytest.mark.parametrize("n", DTC_SIZES)
def test_dtc_construction_openqudit(benchmark, n):
    benchmark.group = f"fig4-dtc-{n}"
    circ = benchmark(build_dtc_circuit, n, 1)
    assert len(circ) == 2 * n + (n - 1)


@pytest.mark.parametrize("n", DTC_SIZES)
def test_dtc_construction_baseline(benchmark, n):
    benchmark.group = f"fig4-dtc-{n}"
    circ = benchmark(build_dtc_circuit_baseline, n, 1)
    assert len(circ) == 2 * n + (n - 1)
