#!/usr/bin/env python
"""Regenerate the Figure 4 data series: construction time vs size.

Usage::

    python benchmarks/run_fig4.py          # sizes up to 256
    python benchmarks/run_fig4.py --full   # QFT to 1023, DTC to 512

Prints one row per (benchmark, size): OpenQudit seconds, baseline
seconds, and the speedup — the series plotted in the paper's Figure 4.
"""

from __future__ import annotations

import argparse
import time

from repro.baseline import (
    build_dtc_circuit_baseline,
    build_qft_circuit_baseline,
)
from repro.circuit import build_dtc_circuit, build_qft_circuit


def timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full sizes (QFT 1023, DTC 512)",
    )
    args = parser.parse_args()

    if args.full:
        qft_sizes = [4, 8, 16, 32, 64, 128, 256, 512, 1023]
        dtc_sizes = [4, 8, 16, 32, 64, 128, 256, 512]
    else:
        qft_sizes = [4, 8, 16, 32, 64, 128, 256]
        dtc_sizes = [4, 8, 16, 32, 64, 128, 256]

    print(f"{'benchmark':<12} {'n':>5} {'openqudit(s)':>13} "
          f"{'baseline(s)':>12} {'speedup':>8}")
    for n in qft_sizes:
        fast = timed(build_qft_circuit, n)
        slow = timed(build_qft_circuit_baseline, n)
        print(f"{'QFT':<12} {n:>5} {fast:>13.4f} {slow:>12.4f} "
              f"{slow / fast:>7.1f}x")
    for n in dtc_sizes:
        fast = timed(build_dtc_circuit, n, 1)
        slow = timed(build_dtc_circuit_baseline, n, 1)
        print(f"{'DTC':<12} {n:>5} {fast:>13.4f} {slow:>12.4f} "
              f"{slow / fast:>7.1f}x")


if __name__ == "__main__":
    main()
