"""Synthesis-workload benchmarks: the engine driving a compiler pass.

The paper's motivating workload (section II-B) is a synthesis loop
calling ``instantiate()`` per candidate template.  These benchmarks
time :class:`~repro.synthesis.SynthesisSearch` end-to-end on 2-qubit
targets — QFT-2 and Haar-random unitaries — and the
:class:`~repro.synthesis.Resynthesizer` compression loop, in two
configurations per target:

* ``cold`` — a fresh engine pool: every template shape pays AOT;
* ``warm`` — a session-scoped shared pool: the steady-state cost of a
  synthesis pass inside a longer compilation (pure instantiation).

The gap between the two is the engine-pool amortization this PR adds
on top of the batched multi-start sweeps.
"""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.instantiation import EnginePool
from repro.synthesis import Resynthesizer, SynthesisSearch
from repro.utils import random_unitary

TARGETS = {
    "qft2": lambda: build_qft_circuit(2).get_unitary(()),
    "random-su4": lambda: random_unitary(4, rng=1234),
}


@pytest.fixture(scope="module")
def warm_pool():
    pool = EnginePool()
    # Pre-pay every template shape the searches below will visit.
    SynthesisSearch(pool=pool).synthesize(random_unitary(4, rng=999), rng=0)
    return pool


def run_search(target: np.ndarray, pool: EnginePool | None) -> bool:
    search = (
        SynthesisSearch(pool=pool) if pool is not None else SynthesisSearch()
    )
    return search.synthesize(target, rng=7).success


@pytest.mark.parametrize("name", list(TARGETS))
def test_search_cold(benchmark, name):
    benchmark.group = f"synthesis-{name}"
    target = TARGETS[name]()
    benchmark.pedantic(
        run_search, args=(target, None), rounds=2, iterations=1
    )


@pytest.mark.parametrize("name", list(TARGETS))
def test_search_warm_pool(benchmark, name, warm_pool):
    benchmark.group = f"synthesis-{name}"
    target = TARGETS[name]()
    benchmark.pedantic(
        run_search, args=(target, warm_pool), rounds=2, iterations=1
    )


def test_resynthesis_compression(benchmark, warm_pool):
    benchmark.group = "synthesis-resynth"
    deep = build_qsearch_ansatz(2, 3, 2)
    shallow = build_qsearch_ansatz(2, 1, 2)
    target = shallow.get_unitary(
        np.random.default_rng(42).uniform(-np.pi, np.pi, shallow.num_params)
    )

    def compress() -> int:
        result = Resynthesizer(pool=warm_pool).resynthesize(
            deep, target=target, rng=3
        )
        assert result.success
        return result.circuit.num_operations

    benchmark.pedantic(compress, rounds=2, iterations=1)
