"""Micro-benchmark: f32 vs f64 TNVM gradient evaluation.

Paper section VI-C reports a 1.27x speedup for f32 gradient evaluation
of the 3-qubit shallow circuit (25.59 us vs 32.579 us).  The TNVM's
precision is a generic parameter, so the same program runs at both.
"""

import numpy as np
import pytest

from repro.circuit import fig5_circuit
from repro.tnvm import TNVM, Differentiation


@pytest.fixture(scope="module")
def program_and_params():
    circ = fig5_circuit("3-qubit shallow")
    params = tuple(
        np.random.default_rng(0).uniform(-np.pi, np.pi, circ.num_params)
    )
    return circ.compile(), params


@pytest.mark.parametrize("precision", ["f64", "f32"])
def test_gradient_eval_precision(benchmark, program_and_params, precision):
    benchmark.group = "micro-precision-grad"
    program, params = program_and_params
    vm = TNVM(
        program, precision=precision, diff=Differentiation.GRADIENT
    )
    benchmark(vm.evaluate_with_grad, params)


@pytest.mark.parametrize("precision", ["f64", "f32"])
def test_unitary_eval_precision(benchmark, program_and_params, precision):
    benchmark.group = "micro-precision-unitary"
    program, params = program_and_params
    vm = TNVM(program, precision=precision, diff=Differentiation.NONE)
    benchmark(vm.evaluate, params)


def test_memory_footprint_matches_paper_order(program_and_params):
    """The paper reports 211KB for this workload in f64 + gradients."""
    program, _ = program_and_params
    vm = TNVM(program, precision="f64", diff=Differentiation.GRADIENT)
    assert vm.memory_bytes < 4_000_000
