"""Figure 7 (left): 8-start multi-start instantiation time.

This is where the paper's AOT trade-off pays off (19.6x on the 3-qubit
shallow case): OpenQudit pays compilation once and short-circuits on
the first successful start, while the baseline re-pays its per-
iteration evaluation cost in every start.

Both OpenQudit execution strategies are benchmarked per circuit:
``sequential`` (one scalar TNVM pass per start, the seed behaviour)
and ``batched`` (all starts advance through one vectorized BatchedTNVM
sweep per LM round).  They share a ``fig7-<name>`` benchmark group
with the baseline, so ``pytest benchmarks --benchmark-group-by=group``
reads as a three-way comparison.
"""

import numpy as np
import pytest

from repro.baseline import (
    BaselineInstantiater,
    build_qsearch_ansatz_baseline,
)
from repro.circuit import FIG5_BENCHMARKS, fig5_circuit
from repro.instantiation import Instantiater

from .conftest import make_target

NAMES = list(FIG5_BENCHMARKS)
STARTS = 8  # BQSKit -O3 default, per the paper


def openqudit_multi_start(
    name: str, target: np.ndarray, strategy: str
) -> bool:
    circ = fig5_circuit(name)
    engine = Instantiater(circ, strategy=strategy)
    return engine.instantiate(target, starts=STARTS, rng=1).success


def baseline_multi_start(name: str, target: np.ndarray) -> bool:
    qudits, depth, radix = FIG5_BENCHMARKS[name]
    circ = build_qsearch_ansatz_baseline(qudits, depth, radix)
    engine = BaselineInstantiater(circ)
    return engine.instantiate(target, starts=STARTS, rng=1).success


@pytest.mark.parametrize("strategy", ["sequential", "batched"])
@pytest.mark.parametrize("name", NAMES)
def test_multi_start_openqudit(benchmark, name, strategy):
    benchmark.group = f"fig7-{name}"
    target = make_target(name, seed=11)
    benchmark.pedantic(
        openqudit_multi_start, args=(name, target, strategy),
        rounds=2, iterations=1,
    )


@pytest.mark.parametrize("name", NAMES)
def test_multi_start_baseline(benchmark, name):
    benchmark.group = f"fig7-{name}"
    target = make_target(name, seed=11)
    benchmark.pedantic(
        baseline_multi_start, args=(name, target),
        rounds=2, iterations=1,
    )
