"""Figure 6 (left): single-start instantiation time.

One LM run per benchmark circuit against a reachable random target.
OpenQudit timings include the full one-time AOT compilation + TNVM
initialization, as in the paper; the baseline has no AOT phase.
"""

import numpy as np
import pytest

from repro.baseline import (
    BaselineInstantiater,
    build_qsearch_ansatz_baseline,
)
from repro.circuit import FIG5_BENCHMARKS, fig5_circuit
from repro.instantiation import Instantiater

from .conftest import make_target

NAMES = list(FIG5_BENCHMARKS)


def openqudit_single_start(name: str, target: np.ndarray) -> float:
    circ = fig5_circuit(name)
    engine = Instantiater(circ)  # AOT, counted
    return engine.instantiate(target, starts=1, rng=0).infidelity


def baseline_single_start(name: str, target: np.ndarray) -> float:
    qudits, depth, radix = FIG5_BENCHMARKS[name]
    circ = build_qsearch_ansatz_baseline(qudits, depth, radix)
    engine = BaselineInstantiater(circ)
    return engine.instantiate(target, starts=1, rng=0).infidelity


@pytest.mark.parametrize("name", NAMES)
def test_single_start_openqudit(benchmark, name):
    benchmark.group = f"fig6-{name}"
    target = make_target(name, seed=7)
    benchmark.pedantic(
        openqudit_single_start, args=(name, target),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("name", NAMES)
def test_single_start_baseline(benchmark, name):
    benchmark.group = f"fig6-{name}"
    target = make_target(name, seed=7)
    benchmark.pedantic(
        baseline_single_start, args=(name, target),
        rounds=3, iterations=1,
    )
