"""Shared benchmark fixtures.

The expression cache is warmed once per session so AOT timings measure
tensor-network lowering, pathfinding, bytecode generation and TNVM
initialization — matching the paper's setup, where each unique QGL
expression is JIT-compiled once per process and reused across tasks
(section IV-B's ExpressionCache amortization).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import FIG5_BENCHMARKS, fig5_circuit
from repro.instantiation import Instantiater


def warm_expression_cache() -> None:
    for name in FIG5_BENCHMARKS:
        circ = fig5_circuit(name)
        Instantiater(circ)


@pytest.fixture(scope="session", autouse=True)
def _warm_cache():
    warm_expression_cache()


def make_target(name: str, seed: int) -> np.ndarray:
    """A reachable target: the ansatz evaluated at random parameters."""
    circ = fig5_circuit(name)
    params = np.random.default_rng(seed).uniform(
        -np.pi, np.pi, circ.num_params
    )
    return circ.get_unitary(params)
