"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each group isolates one architectural decision from the paper:

* ``ablate-simplify``  — e-graph simplification of expressions
  (section III-C) on/off: per-evaluation gradient cost of the JIT'd U3.
* ``ablate-fusion``    — transpose fusion (section IV-A) on/off:
  TNVM evaluation of a circuit full of reversed/nonadjacent gates.
* ``ablate-hoist``     — constant-section hoisting (section IV-A)
  on/off: evaluation of a DTC-like circuit that is mostly constant.
* ``ablate-path``      — contraction pathfinding (hybrid vs naive
  sequential folding) on a deep circuit.
* ``ablate-optimizer`` — naive LM vs Adam on the same TNVM
  (discussion VI-A: the engine is optimizer-agnostic).
"""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_dtc_circuit, fig5_circuit, gates
from repro.instantiation import (
    AdamOptions,
    HilbertSchmidtResiduals,
    InfidelityFunction,
    LMOptions,
    adam_minimize,
    levenberg_marquardt,
)
from repro.jit import CompiledExpression
from repro.tnvm import TNVM, Differentiation

# ----------------------------------------------------------------------
# E-graph simplification
# ----------------------------------------------------------------------


@pytest.mark.parametrize("simplify", [True, False], ids=["on", "off"])
def test_ablate_simplification(benchmark, simplify):
    benchmark.group = "ablate-simplify"
    compiled = CompiledExpression(
        gates.u3().matrix, grad=True, simplify=simplify
    )
    out = np.zeros((2, 2), dtype=np.complex128)
    grad = np.zeros((3, 2, 2), dtype=np.complex128)
    compiled.write_constants(out, grad)
    benchmark(compiled.write, (0.7, 0.3, -1.1), out, grad)


# ----------------------------------------------------------------------
# Transpose fusion
# ----------------------------------------------------------------------


def _reversed_gate_circuit() -> QuditCircuit:
    """Every CX placed on a reversed/nonadjacent location, so an
    unfused compile is full of runtime TRANSPOSEs."""
    circ = QuditCircuit.pure([2, 2, 2])
    u3 = circ.cache_operation(gates.u3())
    cx = circ.cache_operation(gates.cx())
    for a, b in [(1, 0), (2, 0), (2, 1), (1, 0), (2, 0)]:
        circ.append_ref(u3, a)
        circ.append_ref(u3, b)
        circ.append_ref_constant(cx, (a, b))
    return circ


@pytest.mark.parametrize("fusion", [True, False], ids=["on", "off"])
def test_ablate_fusion(benchmark, fusion):
    benchmark.group = "ablate-fusion"
    circ = _reversed_gate_circuit()
    program = circ.compile(fusion=fusion)
    vm = TNVM(program, diff=Differentiation.GRADIENT)
    params = tuple(
        np.random.default_rng(0).uniform(-np.pi, np.pi, circ.num_params)
    )
    benchmark(vm.evaluate_with_grad, params)


def test_fusion_removes_transposes():
    circ = _reversed_gate_circuit()
    fused = circ.compile(fusion=True)
    unfused = circ.compile(fusion=False)

    def transposes(program):
        return sum(
            1
            for instr in program.const_section + program.dynamic_section
            if instr.opcode == "TRANSPOSE"
        )

    assert transposes(fused) < transposes(unfused)


# ----------------------------------------------------------------------
# Constant-section hoisting
# ----------------------------------------------------------------------


def _mostly_constant_circuit() -> QuditCircuit:
    """One free parameter in a sea of constant DTC-style gates."""
    circ = build_dtc_circuit(4, layers=2)
    rx = circ.cache_operation(gates.rx())
    circ.append_ref(rx, 0)
    return circ


@pytest.mark.parametrize("hoist", [True, False], ids=["on", "off"])
def test_ablate_constant_hoisting(benchmark, hoist):
    benchmark.group = "ablate-hoist"
    circ = _mostly_constant_circuit()
    program = circ.compile(hoist_constants=hoist)
    vm = TNVM(program, diff=Differentiation.GRADIENT)
    benchmark(vm.evaluate_with_grad, (0.5,))


def test_hoisting_preserves_semantics():
    circ = _mostly_constant_circuit()
    a = TNVM(circ.compile(hoist_constants=True),
             diff=Differentiation.NONE)
    b = TNVM(circ.compile(hoist_constants=False),
             diff=Differentiation.NONE)
    assert np.allclose(a.evaluate((0.5,)), b.evaluate((0.5,)), atol=1e-12)


# ----------------------------------------------------------------------
# Contraction pathfinding
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "strategy", ["auto", "sequential"], ids=["hybrid", "sequential"]
)
def test_ablate_pathfinding(benchmark, strategy):
    benchmark.group = "ablate-path"
    circ = fig5_circuit("3-qubit deep")
    program = circ.compile(path_strategy=strategy)
    vm = TNVM(program, diff=Differentiation.GRADIENT)
    params = tuple(
        np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
    )
    benchmark(vm.evaluate_with_grad, params)


def test_path_strategies_agree():
    circ = fig5_circuit("3-qubit shallow")
    params = tuple(
        np.random.default_rng(2).uniform(-np.pi, np.pi, circ.num_params)
    )
    results = []
    for strategy in ("auto", "optimal", "greedy", "sequential"):
        vm = TNVM(
            circ.compile(path_strategy=strategy),
            diff=Differentiation.NONE,
        )
        results.append(vm.evaluate(params).copy())
    for other in results[1:]:
        assert np.allclose(results[0], other, atol=1e-10)


# ----------------------------------------------------------------------
# Optimizer choice (Discussion VI-A)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def optimizer_problem():
    circ = fig5_circuit("2-qubit shallow")
    vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
    rng = np.random.default_rng(3)
    p_true = rng.uniform(-np.pi, np.pi, circ.num_params)
    target = circ.get_unitary(p_true)
    x0 = rng.uniform(-np.pi, np.pi, circ.num_params)
    return circ, vm, target, x0


def test_ablate_optimizer_lm(benchmark, optimizer_problem):
    benchmark.group = "ablate-optimizer"
    circ, vm, target, x0 = optimizer_problem
    residuals = HilbertSchmidtResiduals(vm, target)
    opts = LMOptions(success_cost=2 * circ.dim * 1e-8)

    def run():
        return levenberg_marquardt(
            residuals.residuals_and_jacobian, x0, opts
        ).cost

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_ablate_optimizer_adam(benchmark, optimizer_problem):
    benchmark.group = "ablate-optimizer"
    circ, vm, target, x0 = optimizer_problem
    fn = InfidelityFunction(vm, target)
    opts = AdamOptions(max_iterations=400, success_infidelity=1e-8)

    def run():
        return adam_minimize(fn, x0, opts).infidelity

    benchmark.pedantic(run, rounds=3, iterations=1)
