"""Tests for the ExpressionCache (paper section IV-B)."""

import threading

from repro.circuit import gates
from repro.expression import UnitaryExpression
from repro.jit.cache import ExpressionCache, canonical_key


class TestCanonicalKey:
    def test_alpha_equivalence(self):
        a = UnitaryExpression(
            "G(x) { [[cos(x), ~sin(x)], [sin(x), cos(x)]] }"
        )
        b = UnitaryExpression(
            "G(zz) { [[cos(zz), ~sin(zz)], [sin(zz), cos(zz)]] }"
        )
        assert canonical_key(a.matrix, True, True) == canonical_key(
            b.matrix, True, True
        )

    def test_distinct_semantics_distinct_keys(self):
        a = gates.rx().matrix
        b = gates.ry().matrix
        assert canonical_key(a, True, True) != canonical_key(
            b, True, True
        )

    def test_flags_partition_cache(self):
        m = gates.rx().matrix
        assert canonical_key(m, True, True) != canonical_key(
            m, False, True
        )


class TestCache:
    def test_hit_miss_accounting(self):
        cache = ExpressionCache()
        cache.get(gates.rx().matrix)
        cache.get(gates.rx().matrix)
        cache.get(gates.ry().matrix)
        assert cache.misses == 2
        assert cache.hits == 1
        assert len(cache) == 2

    def test_alpha_equivalent_gates_share(self):
        cache = ExpressionCache()
        a = UnitaryExpression("A(u) { [[1, 0], [0, e^(i*u)]] }")
        b = UnitaryExpression("B(v) { [[1, 0], [0, e^(i*v)]] }")
        assert cache.get(a.matrix) is cache.get(b.matrix)

    def test_clear(self):
        cache = ExpressionCache()
        cache.get(gates.rx().matrix)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == 0

    def test_concurrent_access_single_artifact(self):
        cache = ExpressionCache()
        results = []

        def worker():
            results.append(cache.get(gates.u3().matrix))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 1
        assert all(r is results[0] for r in results)
