"""Unit tests for the expression code generator."""

import numpy as np

from repro.jit.codegen import compile_writer, generate_source
from repro.symbolic import expr as E

X = E.var("t0_param")


def simple_entries():
    # out[0,0] = cos(p); out[0,1] = 0; out[1,0] = sin(p); out[1,1] = 1
    p = E.var("p")
    return [
        ((0, 0), E.cos(p), E.ZERO),
        ((0, 1), E.ZERO, E.ZERO),
        ((1, 0), E.sin(p), E.ZERO),
        ((1, 1), E.ONE, E.ZERO),
    ]


class TestSourceGeneration:
    def test_constant_dynamic_split(self):
        src, n_dyn, n_const, _cost = generate_source(
            simple_entries(), [], ("p",)
        )
        assert n_dyn == 2
        assert n_const == 2
        assert "def qgl_write(params, out, grad=None):" in src
        assert "def qgl_write_constants_out(out):" in src
        assert "def qgl_write_constants_grad(grad):" in src

    def test_param_unpacking_only_used(self):
        entries = [((0, 0), E.sin(E.var("b")), E.ZERO)]
        src, *_ = generate_source(entries, [], ("a", "b"))
        assert "p1 = params[1]" in src
        assert "p0 = params[0]" not in src

    def test_shared_subexpression_emitted_once(self):
        p = E.var("p")
        s = E.sin(p)
        entries = [
            ((0, 0), s, E.ZERO),
            ((0, 1), s * s, E.ZERO),
        ]
        src, *_ = generate_source(entries, [], ("p",))
        assert src.count("sin(") == 1

    def test_complex_entry_uses_complex(self):
        p = E.var("p")
        entries = [((0, 0), E.cos(p), E.sin(p))]
        src, *_ = generate_source(entries, [], ("p",))
        assert "complex(" in src

    def test_real_entry_skips_complex(self):
        entries = [((0, 0), E.cos(E.var("p")), E.ZERO)]
        src, *_ = generate_source(entries, [], ("p",))
        assert "complex(" not in src

    def test_gradient_entries(self):
        p = E.var("p")
        grads = [((0, 0, 0), -(E.sin(p)), E.ZERO)]
        src, *_ = generate_source(
            [((0, 0), E.cos(p), E.ZERO)], grads, ("p",)
        )
        assert "grad[0, 0, 0]" in src

    def test_empty_function_bodies_valid(self):
        src, *_ = generate_source([], [], ())
        compile(src, "<test>", "exec")


class TestCompiledWriter:
    def test_write_and_constants(self):
        result = compile_writer(simple_entries(), [], ("p",))
        out = np.zeros((2, 2), dtype=np.complex128)
        result.write_constants(out)
        result.write((0.7,), out)
        expected = np.array(
            [[np.cos(0.7), 0], [np.sin(0.7), 1]], dtype=complex
        )
        assert np.allclose(out, expected)

    def test_counts(self):
        result = compile_writer(simple_entries(), [], ("p",))
        assert result.num_dynamic_entries == 2
        assert result.num_constant_entries == 2
        assert result.total_cost > 0

    def test_pi_constant_available(self):
        entries = [((0, 0), E.PI, E.ZERO)]
        result = compile_writer(entries, [], ())
        out = np.zeros((1, 1), dtype=np.complex128)
        result.write_constants(out)
        assert out[0, 0] == np.pi

    def test_source_is_reexecutable(self):
        result = compile_writer(simple_entries(), [], ("p",))
        namespace = {"sin": np.sin, "cos": np.cos, "pi": np.pi}
        exec(result.source, namespace)
        assert "qgl_write" in namespace
