"""CompiledExpression correctness across the whole gate library."""

import numpy as np
import pytest

from repro.circuit import gates
from repro.jit.compiled import CompiledExpression

ALL_GATES = [
    gates.u1(), gates.u2(), gates.u3(), gates.h(), gates.x(),
    gates.y(), gates.z(), gates.s(), gates.t(), gates.sx(),
    gates.rx(), gates.ry(), gates.rz(), gates.p(),
    gates.cx(), gates.cz(), gates.ch(), gates.cp(), gates.crz(),
    gates.swap(), gates.iswap(), gates.rxx(), gates.ryy(), gates.rzz(),
    gates.ccx(), gates.cswap(),
    gates.shift(3), gates.clock(3), gates.qudit_hadamard(3),
    gates.csum(3), gates.qutrit_phase(), gates.embedded_u3(3, 0, 2),
    gates.rdiag(4),
]


@pytest.mark.parametrize(
    "gate", ALL_GATES, ids=[g.name or "?" for g in ALL_GATES]
)
def test_compiled_matches_reference(gate):
    compiled = CompiledExpression(gate.matrix)
    params = np.random.default_rng(3).uniform(
        -np.pi, np.pi, gate.num_params
    )
    u = compiled.unitary(params)
    assert np.allclose(u, gate.unitary(params), atol=1e-12)


@pytest.mark.parametrize(
    "gate",
    [g for g in ALL_GATES if g.num_params],
    ids=[g.name or "?" for g in ALL_GATES if g.num_params],
)
def test_compiled_gradient_matches_finite_difference(gate):
    compiled = CompiledExpression(gate.matrix)
    params = np.random.default_rng(5).uniform(
        -np.pi, np.pi, gate.num_params
    )
    u, grad = compiled.unitary_and_grad(params)
    eps = 1e-7
    for k in range(gate.num_params):
        bumped = params.copy()
        bumped[k] += eps
        fd = (gate.unitary(bumped) - u) / eps
        assert np.allclose(grad[k], fd, atol=1e-5), (
            f"{gate.name} parameter {k}"
        )


class TestSimplificationEffect:
    def test_u3_trig_count_is_minimal(self):
        compiled = CompiledExpression(gates.u3().matrix)
        # sin/cos of theta/2, phi, lambda: six trig calls total for the
        # unitary *and* its full gradient.
        trig_calls = compiled.source.count("sin(") + compiled.source.count(
            "cos("
        )
        assert trig_calls == 6

    def test_unsimplified_is_no_better(self):
        fast = CompiledExpression(gates.u3().matrix, simplify=True)
        slow = CompiledExpression(gates.u3().matrix, simplify=False)
        assert fast.total_cost <= slow.total_cost
        p = (0.3, 0.9, -1.2)
        assert np.allclose(fast.unitary(p), slow.unitary(p))

    def test_no_complex_exponentials_in_source(self):
        compiled = CompiledExpression(gates.rz().matrix)
        assert "exp(" not in compiled.source  # lowered to sin/cos


class TestPrecision:
    def test_f32_write(self):
        compiled = CompiledExpression(gates.u3().matrix)
        u32 = compiled.unitary((0.5, 0.2, 0.1), dtype=np.complex64)
        u64 = compiled.unitary((0.5, 0.2, 0.1))
        assert u32.dtype == np.complex64
        assert np.allclose(u32, u64, atol=1e-6)


class TestErrors:
    def test_wrong_param_count(self):
        compiled = CompiledExpression(gates.u3().matrix)
        with pytest.raises(ValueError):
            compiled.unitary((0.5,))
