"""PreemptionGuard latching and PassCheckpointer round boundaries."""

import os
import signal

import pytest

from repro.checkpoint import (
    CheckpointStore,
    PassCheckpointer,
    PreemptedError,
    PreemptionGuard,
)


class TestPreemptionGuard:
    def test_latches_sigterm_without_raising(self):
        with PreemptionGuard() as guard:
            assert guard.pending is None
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.pending == signal.SIGTERM

    def test_restores_previous_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with PreemptionGuard():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_first_sigint_latches_second_raises(self):
        with PreemptionGuard() as guard:
            os.kill(os.getpid(), signal.SIGINT)
            assert guard.pending == signal.SIGINT
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                signal.default_int_handler  # force a bytecode boundary


class _Abandonable:
    def __init__(self):
        self.abandoned = 0

    def abandon(self):
        self.abandoned += 1


def checkpointer(tmp_path, **kwargs):
    store = CheckpointStore(str(tmp_path))
    kwargs.setdefault("kind", "search")
    kwargs.setdefault("target", "t")
    kwargs.setdefault("config", "c")
    return PassCheckpointer(store, **kwargs)


class TestPassCheckpointer:
    def test_every_rounds_cadence(self, tmp_path):
        ck = checkpointer(tmp_path, every_rounds=2)
        with ck:
            for r in range(5):
                ck.round_boundary(r, lambda: {"round": r})
        # Rounds 0, 2, 4 are due under every_rounds=2.
        assert len(ck.store.snapshots()) == 3
        state, _ = ck.store.load_latest()
        assert state["round"] == 4
        assert state["complete"] is False
        assert state["kind"] == "search"

    def test_seconds_only_cadence_skips_fast_rounds(self, tmp_path):
        ck = checkpointer(
            tmp_path, every_rounds=None, every_seconds=3600.0
        )
        with ck:
            for r in range(5):
                ck.round_boundary(r, lambda: {})
        assert ck.store.snapshots() == []

    def test_preemption_flushes_tears_down_and_raises(self, tmp_path):
        executor = _Abandonable()
        ck = checkpointer(tmp_path, every_rounds=None, executor=executor)
        with ck:
            ck.round_boundary(0, lambda: {"round": 0})  # not due: no write
            assert ck.store.snapshots() == []
            ck.guard.pending = signal.SIGTERM
            with pytest.raises(PreemptedError) as err:
                ck.round_boundary(3, lambda: {"round": 3})
        assert executor.abandoned == 1
        assert err.value.round_index == 3
        assert err.value.signum == signal.SIGTERM
        assert os.path.exists(err.value.snapshot_path)
        state, path = ck.store.load_latest()
        assert path == err.value.snapshot_path
        assert state["round"] == 3

    def test_complete_snapshot_carries_result(self, tmp_path):
        ck = checkpointer(tmp_path)
        ck.complete(7, result={"the": "result"})
        state, _ = ck.store.load_latest()
        assert state["complete"] is True
        assert state["round"] == 7
        assert state["result"] == {"the": "result"}
