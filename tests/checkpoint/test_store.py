"""CheckpointStore: atomic snapshots, integrity fallback, pruning."""

import os
import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointSchemaError,
    CheckpointStore,
    atomic_write_json,
    snapshot_count,
)


def listing(directory):
    return sorted(os.listdir(directory))


class TestSave:
    def test_snapshot_names_and_no_temp_leftovers(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.save({"round": 1})
        assert os.path.basename(path) == "ckpt-00000001.rpck"
        store.save({"round": 2})
        assert listing(tmp_path) == [
            "ckpt-00000001.rpck", "ckpt-00000002.rpck"
        ]  # no .tmp-* files survive a successful save

    def test_keep_prunes_oldest(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        for i in range(5):
            store.save({"round": i})
        assert listing(tmp_path) == [
            "ckpt-00000004.rpck", "ckpt-00000005.rpck"
        ]
        state, _ = store.load_latest()
        assert state["round"] == 4

    def test_sequence_continues_after_reopen(self, tmp_path):
        CheckpointStore(str(tmp_path)).save({"round": 0})
        path = CheckpointStore(str(tmp_path)).save({"round": 1})
        assert os.path.basename(path) == "ckpt-00000002.rpck"

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep=0)

    def test_write_telemetry(self, tmp_path):
        before = telemetry.metrics().snapshot()
        CheckpointStore(str(tmp_path)).save({"x": np.arange(4)})
        delta = telemetry.delta(before, telemetry.metrics().snapshot())
        assert delta.get("checkpoint.writes") == 1
        assert delta.get("checkpoint.bytes", 0) > 0


class TestLoadLatest:
    def test_round_trips_numpy_state(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"params": np.linspace(0, 1, 7), "tick": 3})
        state, path = store.load_latest()
        assert state["tick"] == 3
        np.testing.assert_array_equal(
            state["params"], np.linspace(0, 1, 7)
        )
        assert os.path.isabs(path)

    def test_empty_directory_is_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load_latest() is None

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"round": 1})
        latest = store.save({"round": 2})
        with open(latest, "r+b") as fh:
            fh.seek(48)
            fh.write(b"\xff\xff\xff")
        before = telemetry.metrics().snapshot()
        state, path = store.load_latest()
        assert state["round"] == 1
        assert path.endswith("ckpt-00000001.rpck")
        delta = telemetry.delta(before, telemetry.metrics().snapshot())
        assert delta.get("checkpoint.fallbacks") == 1

    def test_truncated_latest_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"round": 1})
        latest = store.save({"round": 2})
        with open(latest, "r+b") as fh:
            fh.truncate(10)  # shorter than the envelope header
        state, _ = store.load_latest()
        assert state["round"] == 1

    def test_every_snapshot_corrupt_is_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for i in range(2):
            path = store.save({"round": i})
            with open(path, "r+b") as fh:
                fh.truncate(5)
        assert store.load_latest() is None

    def test_foreign_file_is_skipped_not_decoded(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"round": 1})
        bogus = tmp_path / "ckpt-00000002.rpck"
        bogus.write_bytes(b"NOPE" + pickle.dumps({"round": 99}))
        state, _ = store.load_latest()
        assert state["round"] == 1

    def test_schema_mismatch_is_a_pointed_error(self, tmp_path):
        CheckpointStore(str(tmp_path), schema=SCHEMA_VERSION + 1).save(
            {"round": 9}
        )
        with pytest.raises(CheckpointSchemaError, match="schema version"):
            CheckpointStore(str(tmp_path)).load_latest()


class TestHelpers:
    def test_snapshot_count(self, tmp_path):
        assert snapshot_count(str(tmp_path / "missing")) == 0
        store = CheckpointStore(str(tmp_path))
        assert snapshot_count(str(tmp_path)) == 0
        store.save({})
        store.save({})
        (tmp_path / "unrelated.json").write_text("{}")
        assert snapshot_count(str(tmp_path)) == 2

    def test_atomic_write_json(self, tmp_path):
        import json

        path = tmp_path / "BENCH_x.json"
        atomic_write_json(str(path), {"a": 1})
        atomic_write_json(str(path), {"a": 2})  # overwrite in place
        assert json.loads(path.read_text()) == {"a": 2}
        assert listing(tmp_path) == ["BENCH_x.json"]
