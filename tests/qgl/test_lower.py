"""Unit tests for QGL lowering semantics."""

import math

import numpy as np
import pytest

from repro.qgl import parse_unitary
from repro.qgl.errors import QGLSemanticError
from repro.qgl.lower import lower_expression
from repro.qgl.parser import parse_expression_text
from repro.symbolic import expr as E
from repro.symbolic.complexexpr import ComplexExpr


def scalar(text: str, params=()) -> ComplexExpr:
    return lower_expression(parse_expression_text(text), params)


class TestReservedConstants:
    def test_i(self):
        assert scalar("i").constant_value() == 1j

    def test_i_squared(self):
        assert scalar("i * i").constant_value() == pytest.approx(-1)

    def test_pi(self):
        assert scalar("pi").constant_value() == pytest.approx(math.pi)

    def test_e_as_value(self):
        assert scalar("e").constant_value() == pytest.approx(math.e)

    def test_e_in_arithmetic(self):
        assert scalar("2 * e").constant_value() == pytest.approx(2 * math.e)


class TestExponentials:
    def test_euler_identity(self):
        assert scalar("e^(i*pi)").constant_value() == pytest.approx(-1)

    def test_cis_lowering_is_sincos(self):
        z = scalar("e^(i*x)", ("x",))
        assert z.re is E.cos(E.var("x"))
        assert z.im is E.sin(E.var("x"))

    def test_negated_phase(self):
        z = scalar("e^(~i*x/2)", ("x",))
        v = z.evaluate({"x": 0.8})
        assert v == pytest.approx(np.exp(-0.4j))

    def test_general_complex_exponent(self):
        z = scalar("e^(x + i*y)", ("x", "y"))
        assert z.evaluate({"x": 0.3, "y": 0.5}) == pytest.approx(
            np.exp(0.3 + 0.5j)
        )

    def test_exp_function(self):
        z = scalar("exp(i*x)", ("x",))
        assert z.evaluate({"x": 0.9}) == pytest.approx(np.exp(0.9j))


class TestFunctions:
    def test_trig(self):
        assert scalar("sin(1)").constant_value() == pytest.approx(
            math.sin(1)
        )
        assert scalar("cos(1)").constant_value() == pytest.approx(
            math.cos(1)
        )

    def test_tan_canonicalizes_to_sin_cos(self):
        z = scalar("tan(x)", ("x",))
        assert z.re.op == "/"
        assert z.re.children[0].op == "sin"
        assert z.re.children[1].op == "cos"

    def test_sqrt_and_ln(self):
        assert scalar("sqrt(2)").constant_value() == pytest.approx(
            math.sqrt(2)
        )
        assert scalar("ln(e)").constant_value() == pytest.approx(1.0)

    def test_complex_trig_arg_rejected(self):
        with pytest.raises(QGLSemanticError):
            scalar("sin(i)")

    def test_unknown_variable(self):
        with pytest.raises(QGLSemanticError):
            scalar("mystery")

    def test_cis(self):
        z = scalar("cis(x)", ("x",))
        assert z.evaluate({"x": 1.1}) == pytest.approx(np.exp(1.1j))


class TestPowers:
    def test_integer_matrix_power(self):
        m = lower_expression(
            parse_expression_text("[[0, 1], [1, 0]] ^ 2")
        )
        assert np.allclose(m.evaluate(()), np.eye(2))

    def test_negative_matrix_power_is_inverse(self):
        m = lower_expression(
            parse_expression_text("[[0, ~i], [i, 0]] ^ -1")
        )
        assert np.allclose(
            m.evaluate(()), np.array([[0, -1j], [1j, 0]])
        )

    def test_matrix_exponent_rejected(self):
        with pytest.raises(QGLSemanticError):
            lower_expression(
                parse_expression_text("2 ^ [[1, 0], [0, 1]]")
            )

    def test_fractional_matrix_power_rejected(self):
        with pytest.raises(QGLSemanticError):
            lower_expression(
                parse_expression_text("[[1, 0], [0, 1]] ^ 0.5")
            )

    def test_real_power(self):
        z = scalar("2 ^ 0.5")
        assert z.constant_value() == pytest.approx(math.sqrt(2))

    def test_complex_base_integer_exponent(self):
        assert scalar("(i)^3").constant_value() == pytest.approx(-1j)


class TestMatrixSemantics:
    def test_scalar_times_matrix(self):
        m = lower_expression(
            parse_expression_text("(1/sqrt(2)) * [[1, 1], [1, ~1]]")
        )
        assert np.allclose(
            m.evaluate(()),
            np.array([[1, 1], [1, -1]]) / math.sqrt(2),
        )

    def test_matrix_product(self):
        m = lower_expression(
            parse_expression_text("[[0, 1], [1, 0]] * [[0, 1], [1, 0]]")
        )
        assert np.allclose(m.evaluate(()), np.eye(2))

    def test_matrix_sum(self):
        m = lower_expression(
            parse_expression_text("[[1, 0], [0, 1]] + [[1, 0], [0, 1]]")
        )
        assert np.allclose(m.evaluate(()), 2 * np.eye(2))

    def test_matrix_scalar_add_rejected(self):
        with pytest.raises(QGLSemanticError):
            lower_expression(
                parse_expression_text("[[1, 0], [0, 1]] + 2")
            )

    def test_division_by_matrix_rejected(self):
        with pytest.raises(QGLSemanticError):
            lower_expression(
                parse_expression_text("1 / [[1, 0], [0, 1]]")
            )

    def test_nested_matrices_rejected(self):
        with pytest.raises(QGLSemanticError):
            lower_expression(
                parse_expression_text("[[[[1]], 0], [0, 1]]")
            )


class TestDefinitionValidation:
    def test_scalar_body_rejected(self):
        with pytest.raises(QGLSemanticError):
            parse_unitary("G() { 42 }")

    def test_non_square_rejected(self):
        with pytest.raises(QGLSemanticError):
            parse_unitary("G() { [[1, 0, 0], [0, 1, 0]] }")

    def test_radix_mismatch_rejected(self):
        with pytest.raises(QGLSemanticError):
            parse_unitary("G<3>() { [[1, 0], [0, 1]] }")

    def test_power_of_two_rule(self):
        with pytest.raises(QGLSemanticError) as err:
            parse_unitary(
                "G() { [[1, 0, 0], [0, 1, 0], [0, 0, 1]] }"
            )
        assert "power of two" in str(err.value)

    def test_qutrit_with_radices_ok(self):
        g = parse_unitary(
            "G<3>() { [[1, 0, 0], [0, 1, 0], [0, 0, 1]] }"
        )
        assert g.radices == (3,)

    def test_mixed_radices(self):
        g = parse_unitary(
            "G<2, 3>() { ["
            "[1,0,0,0,0,0],[0,1,0,0,0,0],[0,0,1,0,0,0],"
            "[0,0,0,1,0,0],[0,0,0,0,1,0],[0,0,0,0,0,1]] }"
        )
        assert g.radices == (2, 3)

    def test_param_order_is_declaration_order(self):
        g = parse_unitary(
            "G(z, a) { [[cos(z), ~sin(a)], [sin(a), cos(z)]] }"
        )
        assert g.params == ("z", "a")

    def test_reserved_param_rejected(self):
        with pytest.raises(QGLSemanticError):
            parse_unitary("G(i) { [[1, 0], [0, 1]] }")
