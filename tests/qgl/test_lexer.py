"""Unit tests for the QGL lexer."""

import pytest

from repro.qgl.errors import QGLSyntaxError
from repro.qgl.lexer import TokenStream, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


class TestTokens:
    def test_symbols(self):
        assert kinds("( ) { } [ ] < > , ; + - * / ^ ~") == [
            "LPAREN", "RPAREN", "LBRACE", "RBRACE", "LBRACKET",
            "RBRACKET", "LANGLE", "RANGLE", "COMMA", "SEMI", "PLUS",
            "MINUS", "STAR", "SLASH", "CARET", "TILDE",
        ]

    def test_unicode_operator_variants(self):
        # The paper's typeset listings use ˆ and ˜.
        assert kinds("ˆ ˜") == ["CARET", "TILDE"]

    def test_numbers(self):
        toks = tokenize("0 42 3.14 1e5 2.5e-3")
        values = [t.text for t in toks[:-1]]
        assert values == ["0", "42", "3.14", "1e5", "2.5e-3"]
        assert all(t.kind == "NUMBER" for t in toks[:-1])

    def test_leading_dot_number(self):
        toks = tokenize(".5")
        assert toks[0].kind == "NUMBER"
        assert toks[0].text == ".5"

    def test_identifiers_including_greek(self):
        toks = tokenize("theta θ ϕ λ _tmp x1")
        assert all(t.kind == "IDENT" for t in toks[:-1])

    def test_number_then_ident(self):
        toks = tokenize("2x")
        assert [t.kind for t in toks[:-1]] == ["NUMBER", "IDENT"]

    def test_comments_skipped(self):
        assert kinds("1 # a comment\n2") == ["NUMBER", "NUMBER"]
        assert kinds("1 // c++ style\n2") == ["NUMBER", "NUMBER"]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(QGLSyntaxError) as err:
            tokenize("a $ b")
        assert "unexpected character" in str(err.value)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestTokenStream:
    def test_peek_and_next(self):
        s = TokenStream(tokenize("a b"))
        assert s.peek().text == "a"
        assert s.next().text == "a"
        assert s.peek().text == "b"

    def test_peek_offset(self):
        s = TokenStream(tokenize("a b c"))
        assert s.peek(2).text == "c"

    def test_expect_failure(self):
        s = TokenStream(tokenize("a"))
        with pytest.raises(QGLSyntaxError):
            s.expect("NUMBER")

    def test_accept(self):
        s = TokenStream(tokenize("a"))
        assert s.accept("NUMBER") is None
        assert s.accept("IDENT") is not None
        assert s.at_end

    def test_next_at_eof_is_sticky(self):
        s = TokenStream(tokenize(""))
        assert s.next().kind == "EOF"
        assert s.next().kind == "EOF"
