"""QGL gate definitions versus NumPy reference matrices.

These are the paper's Listing 2 and Listing 4 definitions, validated
numerically against hand-written references on random parameter draws.
"""

import numpy as np
import pytest

from repro.qgl import parse_unitary

U3_SRC = """U3(θ, ϕ, λ) {
    [[cos(θ/2), ~e^(i*λ)*sin(θ/2)],
     [e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2)]]
}"""

RX_SRC = """RX(theta) {
    [[cos(theta/2), ~i*sin(theta/2)],
     [~i*sin(theta/2), cos(theta/2)]]
}"""

RZZ_SRC = """RZZ(theta) {
    [[e^(~i*theta/2), 0, 0, 0],
     [0, e^(i*theta/2), 0, 0],
     [0, 0, e^(i*theta/2), 0],
     [0, 0, 0, e^(~i*theta/2)]]
}"""

RZ_SRC = """RZ(theta) {
    [[e^(~i*theta/2), 0],
     [0, e^(i*theta/2)]]
}"""


def u3_ref(t, p, l):
    return np.array(
        [
            [np.cos(t / 2), -np.exp(1j * l) * np.sin(t / 2)],
            [
                np.exp(1j * p) * np.sin(t / 2),
                np.exp(1j * (p + l)) * np.cos(t / 2),
            ],
        ]
    )


@pytest.mark.parametrize("seed", range(5))
def test_u3_matches_reference(seed):
    u3 = parse_unitary(U3_SRC)
    params = np.random.default_rng(seed).uniform(-np.pi, np.pi, 3)
    assert np.allclose(u3.evaluate(params), u3_ref(*params))


@pytest.mark.parametrize("seed", range(5))
def test_listing4_gates(seed):
    rng = np.random.default_rng(seed)
    t = rng.uniform(-np.pi, np.pi)

    rx = parse_unitary(RX_SRC)
    c, s = np.cos(t / 2), -1j * np.sin(t / 2)
    assert np.allclose(rx.evaluate([t]), [[c, s], [s, c]])

    rz = parse_unitary(RZ_SRC)
    assert np.allclose(
        rz.evaluate([t]),
        np.diag([np.exp(-0.5j * t), np.exp(0.5j * t)]),
    )

    rzz = parse_unitary(RZZ_SRC)
    em, ep = np.exp(-0.5j * t), np.exp(0.5j * t)
    assert np.allclose(rzz.evaluate([t]), np.diag([em, ep, ep, em]))


@pytest.mark.parametrize(
    "source",
    [U3_SRC, RX_SRC, RZ_SRC, RZZ_SRC],
    ids=["u3", "rx", "rz", "rzz"],
)
def test_definitions_are_unitary(source):
    gate = parse_unitary(source)
    params = np.random.default_rng(0).uniform(
        -np.pi, np.pi, gate.num_params
    )
    assert gate.is_unitary(params)


def test_gradients_match_finite_difference():
    u3 = parse_unitary(U3_SRC)
    params = [0.5, -0.8, 1.9]
    grads = u3.gradient()
    base = u3.evaluate(params)
    eps = 1e-7
    for k, g in enumerate(grads):
        bumped = list(params)
        bumped[k] += eps
        fd = (u3.evaluate(bumped) - base) / eps
        assert np.allclose(g.evaluate(params), fd, atol=1e-5)
