"""Unit tests for the QGL recursive-descent parser (Figure 2 grammar)."""

import pytest

from repro.qgl import ast as A
from repro.qgl.errors import QGLSyntaxError
from repro.qgl.parser import parse_definition, parse_expression_text


class TestDefinitions:
    def test_simple_definition(self):
        d = parse_definition("G() { [[1, 0], [0, 1]] }")
        assert d.name == "G"
        assert d.params == ()
        assert d.radices is None
        assert isinstance(d.body, A.MatrixLiteral)

    def test_params(self):
        d = parse_definition("G(a, b, c) { [[1, 0], [0, 1]] }")
        assert d.params == ("a", "b", "c")

    def test_radices(self):
        d = parse_definition("G<2, 3>() { [[1]] }")
        assert d.radices == (2, 3)

    def test_optional_semicolon(self):
        parse_definition("G() { [[1, 0], [0, 1]] };")

    def test_duplicate_params_rejected(self):
        with pytest.raises(QGLSyntaxError):
            parse_definition("G(a, a) { [[1]] }")

    def test_non_integer_radix_rejected(self):
        with pytest.raises(QGLSyntaxError):
            parse_definition("G<2.5>() { [[1]] }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QGLSyntaxError):
            parse_definition("G() { [[1]] } garbage")

    def test_greek_parameter_names(self):
        d = parse_definition("U(θ, ϕ, λ) { [[1, 0], [0, 1]] }")
        assert d.params == ("θ", "ϕ", "λ")


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expression_text("a + b * c")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_power_binds_tightest(self):
        e = parse_expression_text("a * b ^ c")
        assert e.op == "*"
        assert isinstance(e.right, A.Binary) and e.right.op == "^"

    def test_power_right_associative(self):
        e = parse_expression_text("a ^ b ^ c")
        assert e.op == "^"
        assert isinstance(e.right, A.Binary) and e.right.op == "^"

    def test_left_associative_subtraction(self):
        e = parse_expression_text("a - b - c")
        assert e.op == "-"
        assert isinstance(e.left, A.Binary) and e.left.op == "-"

    def test_tilde_negates_whole_term(self):
        e = parse_expression_text("~a * b")
        assert isinstance(e, A.Unary)
        assert isinstance(e.operand, A.Binary) and e.operand.op == "*"

    def test_double_tilde_cancels(self):
        e = parse_expression_text("~~a")
        assert isinstance(e, A.Variable)

    def test_parentheses_override(self):
        e = parse_expression_text("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.left, A.Binary) and e.left.op == "+"


class TestPrimary:
    def test_number(self):
        e = parse_expression_text("2.5")
        assert isinstance(e, A.Number) and e.value == 2.5

    def test_function_call(self):
        e = parse_expression_text("cos(x / 2)")
        assert isinstance(e, A.Call)
        assert e.func == "cos"
        assert len(e.args) == 1

    def test_non_builtin_paren_is_not_call(self):
        # "f (x)" where f is not a builtin parses as f * ... no —
        # it's a variable followed by a parse error at the paren.
        with pytest.raises(QGLSyntaxError):
            parse_expression_text("f(x)")

    def test_ascii_minus_literal(self):
        e = parse_expression_text("-1")
        assert isinstance(e, A.Unary)

    def test_unexpected_token(self):
        with pytest.raises(QGLSyntaxError):
            parse_expression_text("* 2")


class TestMatrix:
    def test_rows(self):
        e = parse_expression_text("[[a, b], [c, d]]")
        assert isinstance(e, A.MatrixLiteral)
        assert len(e.rows) == 2
        assert len(e.rows[0]) == 2

    def test_trailing_comma(self):
        e = parse_expression_text("[[a, b], [c, d],]")
        assert len(e.rows) == 2

    def test_ragged_rejected(self):
        with pytest.raises(QGLSyntaxError):
            parse_expression_text("[[a, b], [c]]")

    def test_matrix_in_expression(self):
        e = parse_expression_text("(1/2) * [[1, 1], [1, ~1]]")
        assert isinstance(e, A.Binary) and e.op == "*"

    def test_error_reports_position(self):
        with pytest.raises(QGLSyntaxError) as err:
            parse_definition("G() {\n  [[a, b], [c]]\n}")
        assert err.value.line == 2
