"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.circuit import BaselineCircuit
from repro.circuit import QuditCircuit, gates


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_params(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-np.pi, np.pi, n)


# A pool of (repro gate factory, baseline gate instance, radix) pairs
# used by the cross-framework property tests.
def paired_gate_pool():
    from repro.baseline import gates as bg

    return [
        (gates.u3(), bg.U3Gate(), 2),
        (gates.rx(), bg.RXGate(), 2),
        (gates.ry(), bg.RYGate(), 2),
        (gates.rz(), bg.RZGate(), 2),
        (gates.h(), bg.HGate(), 2),
        (gates.x(), bg.XGate(), 2),
        (gates.cx(), bg.CXGate(), 2),
        (gates.cz(), bg.CZGate(), 2),
        (gates.swap(), bg.SwapGate(), 2),
        (gates.rzz(), bg.RZZGate(), 2),
        (gates.cp(), bg.CPGate(), 2),
    ]


def build_random_circuit_pair(
    seed: int, num_qudits: int = 3, num_ops: int = 8
) -> tuple[QuditCircuit, BaselineCircuit, int]:
    """Build matching OpenQudit/baseline random qubit circuits.

    Returns (circuit, baseline_circuit, num_params).
    """
    rng = np.random.default_rng(seed)
    pool = paired_gate_pool()
    circ = QuditCircuit.pure([2] * num_qudits)
    base = BaselineCircuit([2] * num_qudits)
    refs = {}
    for _ in range(num_ops):
        expr, bgate, _ = pool[rng.integers(len(pool))]
        k = bgate.num_qudits
        if k > num_qudits:
            continue
        loc = tuple(
            int(q) for q in rng.choice(num_qudits, size=k, replace=False)
        )
        key = expr.name
        if key not in refs:
            refs[key] = circ.cache_operation(expr)
        if bgate.num_params and rng.random() < 0.5:
            # constant binding
            vals = tuple(rng.uniform(-np.pi, np.pi, bgate.num_params))
            circ.append_ref_constant(refs[key], loc, vals)
            base.append_gate(bgate, loc, vals)
        else:
            circ.append_ref(refs[key], loc)
            base.append_gate(bgate, loc, parameterized=True)
    return circ, base, circ.num_params
