"""Chaos suite: fault-tolerant candidate execution.

The headline contract extends the executor's determinism guarantee to
*failure* paths: a synthesis pass that loses a worker mid-round
recovers by rebuilding the pool and retrying the unresolved jobs, and
— because candidate seeds derive from structure keys, not draw order
or attempt count — returns a ``SynthesisResult`` bit-identical to a
fault-free run.  Hangs are bounded by deadlines, non-finite fits are
quarantined without poisoning the frontier, and repeated pool breakage
falls back to in-process serial evaluation instead of erroring.

Faults are injected with :mod:`repro.testing.faults`, armed through
the environment so spawned workers (``mp_context="spawn"`` — fresh
processes that read ``os.environ`` at start) see them; tick markers in
a per-test ``tmp_path`` make "fail exactly once" exact across
processes.
"""

import signal
import time

import numpy as np
import pytest

from repro import telemetry
from repro.circuit import build_qsearch_ansatz
from repro.instantiation import EnginePool, Instantiater
from repro.instantiation.gd import adam_minimize
from repro.instantiation.lm import (
    batched_levenberg_marquardt,
    levenberg_marquardt,
)
from repro.synthesis import (
    FitJob,
    ProcessCandidateExecutor,
    Resynthesizer,
    SerialCandidateExecutor,
    SynthesisSearch,
    candidate_seed,
)
from repro.testing import faults


def reachable_target(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p)


def assert_identical(a, b):
    """The bit-identical subset of SynthesisResult (wall/efficiency
    and the degradation counters legitimately differ)."""
    assert a.circuit.structure_key() == b.circuit.structure_key()
    assert np.array_equal(a.params, b.params)
    assert a.infidelity == b.infidelity
    assert a.success == b.success
    assert a.instantiation_calls == b.instantiation_calls
    assert a.engine_cache_hits == b.engine_cache_hits
    assert a.engine_cache_misses == b.engine_cache_misses
    assert a.nodes_expanded == b.nodes_expanded


def metrics_delta(before):
    return telemetry.delta(before, telemetry.metrics().snapshot())


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_parsing(self):
        assert faults.parse_spec(None) is None
        assert faults.parse_spec("") is None
        assert faults.parse_spec("crash") == faults.FaultSpec(
            "crash", "first", 1
        )
        assert faults.parse_spec("hang:once") == faults.FaultSpec(
            "hang", "first", 1
        )
        assert faults.parse_spec("nan:first3") == faults.FaultSpec(
            "nan", "first", 3
        )
        assert faults.parse_spec("crash:tick2") == faults.FaultSpec(
            "crash", "tick", 2
        )
        assert faults.parse_spec("crash:seed99") == faults.FaultSpec(
            "crash", "seed", 99
        )
        assert faults.parse_spec("nan:always") == faults.FaultSpec(
            "nan", "always"
        )
        with pytest.raises(ValueError):
            faults.parse_spec("explode:once")
        with pytest.raises(ValueError):
            faults.parse_spec("crash:sometimes")

    def test_tick_claims_are_unique(self, tmp_path):
        claimed = [faults._claim_tick(str(tmp_path)) for _ in range(5)]
        assert claimed == [0, 1, 2, 3, 4]

    def test_soft_fault_fires_once(self, tmp_path):
        with faults.activate("nan:once", str(tmp_path)):
            assert faults.maybe_fault("worker_fit", key=1) == "nan"
            assert faults.maybe_fault("worker_fit", key=1) is None
        # Deactivated on exit.
        assert faults.maybe_fault("worker_fit", key=1) is None

    def test_seed_selector_is_sticky(self, tmp_path):
        with faults.activate("nan:seed7", str(tmp_path)):
            assert faults.maybe_fault("worker_fit", key=7) == "nan"
            assert faults.maybe_fault("worker_fit", key=8) is None
            assert faults.maybe_fault("worker_fit", key=7) == "nan"

    def test_crash_is_inert_in_main_process(self, tmp_path):
        # A crash spec must never kill the parent (the serial-fallback
        # safety property): in the main process it is a no-op.
        with faults.activate("crash:always", str(tmp_path)):
            assert faults.maybe_fault("worker_fit", key=1) is None

    def test_point_grammar(self):
        # Pointless specs keep the pre-point default (worker_fit).
        assert faults.parse_spec("crash").point == faults.DEFAULT_POINT
        assert faults.parse_spec("sigterm@round:seed2") == faults.FaultSpec(
            "sigterm", "seed", 2, "round"
        )
        assert faults.parse_spec("nan@round:once") == faults.FaultSpec(
            "nan", "first", 1, "round"
        )
        with pytest.raises(ValueError):
            faults.parse_spec("boom@round:once")

    def test_non_matching_point_does_not_claim_ticks(self, tmp_path):
        # A hit at the wrong point must neither fire nor consume the
        # one tick a `once` spec has — otherwise arming a round-level
        # fault would be defused by the first worker-level hit.
        with faults.activate("nan@round:once", str(tmp_path)):
            assert faults.maybe_fault("worker_fit", key=1) is None
            assert faults.maybe_fault("round", key=1) == "nan"

    def test_sigterm_fires_in_main_process_only(self, tmp_path):
        # The mirror asymmetry of crash: sigterm targets the *parent*
        # (provoking the checkpoint preemption flush).  Latch it with
        # the guard so the test process survives the signal.
        from repro.checkpoint import PreemptionGuard

        with faults.activate("sigterm:once", str(tmp_path)):
            with PreemptionGuard() as guard:
                assert faults.maybe_fault("worker_fit", key=1) is None
                assert guard.pending == signal.SIGTERM


def _snapshot_writer(directory):
    """run_and_kill victim: snapshots forever until killed."""
    from repro.checkpoint import CheckpointStore

    store = CheckpointStore(directory, keep=10)
    for i in range(10_000):
        store.save({"round": i})
        time.sleep(0.05)


class TestRunAndKill:
    def test_kills_once_snapshots_appear(self, tmp_path):
        d = str(tmp_path / "ckpt")
        report = faults.run_and_kill(
            _snapshot_writer, (d,), watch_dir=d, snapshots=2
        )
        assert report.killed
        assert report.exitcode == -signal.SIGKILL
        assert report.snapshots >= 2

    def test_times_out_when_no_snapshots_appear(self, tmp_path):
        d = str(tmp_path / "never")
        with pytest.raises(TimeoutError):
            faults.run_and_kill(
                time.sleep, (30,), watch_dir=d, timeout=1.0
            )


# ----------------------------------------------------------------------
# Numerical robustness: NaN/Inf guards in the optimizers and engines
# ----------------------------------------------------------------------


class TestNonFiniteGuards:
    def test_scalar_lm_nan_start_fails_with_inf_cost(self):
        def residual_fn(_x):
            return np.array([np.nan]), np.array([[np.nan]])

        run = levenberg_marquardt(residual_fn, np.array([0.5]))
        assert run.stop_reason == "non-finite"
        assert run.cost == float("inf")
        assert not run.converged

    def test_batched_lm_retires_nan_start_individually(self):
        def residual_fn(X):
            R = np.zeros((X.shape[0], 2))
            R[1] = np.nan  # start 1 is poisoned, the others are fine
            J = np.zeros((X.shape[0], 2, X.shape[1]))
            return R, J

        runs = batched_levenberg_marquardt(
            residual_fn, np.zeros((3, 1))
        )
        assert runs[1].stop_reason == "non-finite"
        assert runs[1].cost == float("inf")
        assert runs[0].stop_reason == "gradient-tolerance"
        assert runs[2].stop_reason == "gradient-tolerance"
        assert all(np.isfinite(r.cost) for r in (runs[0], runs[2]))

    def test_adam_stops_on_non_finite(self):
        class NanFn:
            calls = 0

            def value_and_grad(self, x):
                self.calls += 1
                if self.calls == 1:
                    return 0.5, np.ones_like(x)
                return np.nan, np.full_like(x, np.nan)

        result = adam_minimize(NanFn(), np.array([0.1]))
        assert result.stop_reason == "non-finite"
        assert np.isfinite(result.infidelity)

    @pytest.mark.parametrize("strategy", ["sequential", "batched"])
    def test_engine_reports_inf_not_nan(self, strategy):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = np.full((4, 4), np.nan, dtype=complex)
        engine = Instantiater(circuit, strategy=strategy)
        result = engine.instantiate(target, starts=4, rng=1)
        assert result.infidelity == float("inf")  # inf, never NaN
        assert not result.success

    def test_serial_executor_quarantines_nan_target(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        bad = np.full((4, 4), np.nan, dtype=complex)
        good = reachable_target(circuit, 11)
        before = telemetry.metrics().snapshot()
        outcomes = SerialCandidateExecutor(EnginePool()).run([
            FitJob(circuit, bad, 2, candidate_seed(1, "bad")),
            FitJob(circuit, good, 2, candidate_seed(1, "good")),
        ])
        assert outcomes[0].failed
        assert outcomes[0].infidelity == float("inf")
        assert not outcomes[1].failed
        assert np.isfinite(outcomes[1].infidelity)
        delta = metrics_delta(before)
        assert delta.get("executor.failed_candidates") == 1


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_serial_round_timeout_degrades_leftovers(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 13)
        jobs = [
            FitJob(circuit, target, 4, candidate_seed(2, ("t", k)))
            for k in range(3)
        ]
        # The budget admits the first job (the deadline is checked
        # before each job, microseconds after it was set) and expires
        # during its multi-millisecond fit, so the rest degrade.
        outcomes = SerialCandidateExecutor(EnginePool()).run(
            jobs, round_timeout=1e-3
        )
        assert not outcomes[0].failed
        assert [o.failure for o in outcomes[1:]] == ["round-timeout"] * 2
        assert all(o.infidelity == float("inf") for o in outcomes[1:])

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            SynthesisSearch(job_timeout=0.0)
        with pytest.raises(ValueError):
            SynthesisSearch(round_timeout=-1.0)
        with pytest.raises(ValueError):
            Resynthesizer(job_timeout=-2.0)
        with pytest.raises(ValueError):
            ProcessCandidateExecutor(EnginePool(), 2, job_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessCandidateExecutor(EnginePool(), 2, max_retries=-1)


# ----------------------------------------------------------------------
# Executor lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_close_is_idempotent_and_restartable(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 17)
        jobs = [FitJob(circuit, target, 2, candidate_seed(4, "x"))]
        proc = ProcessCandidateExecutor(EnginePool(), workers=2)
        try:
            first = proc.run(jobs)
            proc.close()
            proc.close()  # idempotent
            second = proc.run(jobs)  # an explicit close() is a restart
        finally:
            proc.close()
        assert np.array_equal(first[0].params, second[0].params)
        assert first[0].infidelity == second[0].infidelity

    def test_context_manager_exit_is_terminal(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 17)
        with ProcessCandidateExecutor(EnginePool(), workers=2) as proc:
            pass
        with pytest.raises(RuntimeError, match="context manager"):
            proc.run([FitJob(circuit, target, 2, 1)])

    def test_keyboard_interrupt_tears_down_without_waiting(self):
        class FakeFuture:
            def result(self, timeout=None):
                raise KeyboardInterrupt

            def cancel(self):
                pass

        class FakeExecutor:
            def __init__(self):
                self.shutdown_calls = []
                self._processes = {}

            def submit(self, *_args, **_kwargs):
                return FakeFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append((wait, cancel_futures))

        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 17)
        proc = ProcessCandidateExecutor(EnginePool(), workers=2)
        fake = FakeExecutor()
        proc._executor = fake
        with pytest.raises(KeyboardInterrupt):
            proc.run([FitJob(circuit, target, 2, 1)])
        # Non-blocking teardown: wait=False + cancel_futures=True (the
        # old path blocked on shutdown(wait=True) — for a hung worker,
        # forever), and the executor is dropped for a clean rebuild.
        assert fake.shutdown_calls == [(False, True)]
        assert proc._executor is None
        assert proc._shipped == set()


# ----------------------------------------------------------------------
# Chaos: injected faults against real spawned worker pools
# ----------------------------------------------------------------------


class TestChaos:
    def test_worker_crash_recovers_bit_identically(self, tmp_path):
        # One worker is killed mid-round; the pass must rebuild the
        # pool, retry the unresolved job, and return the exact result
        # of a fault-free run (structure-keyed seeds make the retried
        # fit reproduce its clean-run numbers bit for bit).
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 21)
        with SynthesisSearch() as search:
            clean = search.synthesize(target, rng=5)
        assert clean.success

        pool = EnginePool()
        executor = ProcessCandidateExecutor(
            pool, workers=2, mp_context="spawn"
        )
        try:
            with faults.activate("crash:once", str(tmp_path)):
                with SynthesisSearch(pool=pool, executor=executor) as s:
                    recovered = s.synthesize(target, rng=5)
        finally:
            executor.close()
        assert_identical(clean, recovered)
        assert recovered.retries >= 1
        assert recovered.failed_candidates == 0
        assert "degraded" in recovered.report()

    def test_hang_is_bounded_and_pass_returns(self, tmp_path):
        # A hung worker must not stall the pass: the job deadline
        # expires, the candidate degrades to a failed outcome, the
        # hung pool is torn down (killed, not joined), and the search
        # still solves the target through later rounds.
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 21)
        pool = EnginePool()
        executor = ProcessCandidateExecutor(
            pool, workers=2, mp_context="spawn", job_timeout=3.0
        )
        t0 = time.monotonic()
        try:
            with faults.activate(
                "hang:once", str(tmp_path), hang_seconds=60.0
            ):
                with SynthesisSearch(pool=pool, executor=executor) as s:
                    result = s.synthesize(target, rng=5)
        finally:
            executor.close()
        wall = time.monotonic() - t0
        # The hang hit the root fit (the first task); the root then
        # degraded, its successors still solved the target.
        assert result.success
        assert result.timed_out == 1
        assert result.failed_candidates == 1
        assert wall < 40.0  # deadline-bounded, nowhere near the 60s hang

    def test_nan_injection_quarantines_without_poisoning(self, tmp_path):
        # Which task claims the fault tick depends on scheduling, so
        # assert positionally: exactly one outcome failed (with an
        # *infinite*, ordered infidelity — never NaN), and every other
        # outcome is bit-identical to its serial counterpart.
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 23)
        jobs = [
            FitJob(circuit, target, 4, candidate_seed(9, ("nan", k)))
            for k in range(3)
        ]
        serial = SerialCandidateExecutor(EnginePool()).run(jobs)
        before = telemetry.metrics().snapshot()
        with faults.activate("nan:once", str(tmp_path)):
            with ProcessCandidateExecutor(
                EnginePool(), workers=2, mp_context="spawn"
            ) as proc:
                outcomes = proc.run(jobs)
        failed = [o for o in outcomes if o.failed]
        assert len(failed) == 1
        assert failed[0].infidelity == float("inf")
        assert failed[0].failure == "non-finite"
        for a, b in zip(serial, outcomes):
            if not b.failed:
                assert np.array_equal(a.params, b.params)
                assert a.infidelity == b.infidelity
        delta = metrics_delta(before)
        assert delta.get("executor.nonfinite_results") == 1

    def test_poison_job_is_quarantined(self, tmp_path):
        # A candidate that kills its worker on *every* attempt burns
        # its retry budget and is quarantined as a failed outcome; the
        # executor stays usable for the jobs that follow.
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 29)
        poison = FitJob(circuit, target, 2, candidate_seed(6, "poison"))
        before = telemetry.metrics().snapshot()
        proc = ProcessCandidateExecutor(
            EnginePool(), workers=2, mp_context="spawn",
            max_retries=1, max_pool_rebuilds=10,
        )
        try:
            with faults.activate(
                f"crash:seed{poison.seed}", str(tmp_path)
            ):
                [outcome] = proc.run([poison])
                assert outcome.failed
                assert outcome.failure == "quarantined"
                assert outcome.infidelity == float("inf")
                # The pool survives the poison: later batches fit.
                ok = FitJob(
                    circuit, target, 2, candidate_seed(6, "healthy")
                )
                [healthy] = proc.run([ok])
        finally:
            proc.close()
        assert not healthy.failed
        assert np.isfinite(healthy.infidelity)
        delta = metrics_delta(before)
        assert delta.get("executor.quarantined") == 1
        assert delta.get("executor.retries") == 1
        assert delta.get("executor.pool_rebuilds") == 2

    def test_repeated_breakage_falls_back_to_serial(self, tmp_path):
        # When the pool keeps dying under jobs still inside their
        # retry budgets, the round finishes in-process — and because
        # the crash injector is inert in the main process (like a real
        # worker-environment failure that doesn't afflict the parent),
        # the fallback produces the true, bit-identical outcomes.
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 31)
        jobs = [
            FitJob(circuit, target, 2, candidate_seed(8, ("s", k)))
            for k in range(2)
        ]
        serial = SerialCandidateExecutor(EnginePool()).run(jobs)
        before = telemetry.metrics().snapshot()
        proc = ProcessCandidateExecutor(
            EnginePool(), workers=2, mp_context="spawn",
            max_retries=5, max_pool_rebuilds=1,
        )
        try:
            with faults.activate("crash:always", str(tmp_path)):
                outcomes = proc.run(jobs)
        finally:
            proc.close()
        for a, b in zip(serial, outcomes):
            assert not b.failed
            assert np.array_equal(a.params, b.params)
            assert a.infidelity == b.infidelity
        delta = metrics_delta(before)
        assert delta.get("executor.serial_fallbacks") == 1
        assert delta.get("executor.pool_rebuilds") == 2
