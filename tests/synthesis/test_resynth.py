"""Tests for gate-deletion resynthesis and window-partitioned synthesis."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.synthesis import (
    PartitionedSynthesizer,
    Resynthesizer,
    SynthesisSearch,
)
from repro.utils import hilbert_schmidt_infidelity


def reachable_target(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p), p


class TestResynthesizer:
    def test_compresses_overdeep_ansatz(self):
        # The target needs one entangling block; fit it with three and
        # let the deletion loop strip the excess.
        shallow = build_qsearch_ansatz(2, 1, 2)
        target, _ = reachable_target(shallow, 60)
        deep = build_qsearch_ansatz(2, 3, 2)
        result = Resynthesizer().resynthesize(deep, target=target, rng=0)
        assert result.success
        assert result.infidelity <= 1e-8
        assert result.count("CX") <= 1
        assert result.circuit.num_operations < deep.num_operations
        assert (
            hilbert_schmidt_infidelity(
                target, result.circuit.get_unitary(result.params)
            )
            <= 1e-8
        )

    def test_preserves_own_unitary(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        target, p = reachable_target(circ, 61)
        result = Resynthesizer().resynthesize(circ, params=p, rng=1)
        assert result.success
        assert (
            hilbert_schmidt_infidelity(
                target, result.circuit.get_unitary(result.params)
            )
            <= 1e-8
        )
        assert result.circuit.num_operations <= circ.num_operations

    def test_unreachable_baseline_fails_cleanly(self):
        circ = QuditCircuit.qubits(2)
        circ.append_ref(circ.cache_operation(gates.u3()), 0)
        from repro.utils import random_unitary

        result = Resynthesizer().resynthesize(
            circ, target=random_unitary(4, rng=7), rng=0
        )
        assert not result.success
        # No deletions are attempted from an invalid starting point.
        assert result.nodes_expanded == 0
        assert result.circuit.num_operations == 1

    def test_max_passes_caps_work(self):
        deep = build_qsearch_ansatz(2, 3, 2)
        shallow = build_qsearch_ansatz(2, 1, 2)
        target, _ = reachable_target(shallow, 62)
        capped = Resynthesizer(max_passes=1).resynthesize(
            deep, target=target, rng=0
        )
        uncapped = Resynthesizer().resynthesize(deep, target=target, rng=0)
        assert (
            capped.circuit.num_operations >= uncapped.circuit.num_operations
        )

    def test_engine_pool_counters_reported(self):
        deep = build_qsearch_ansatz(2, 2, 2)
        target, p = reachable_target(deep, 63)
        result = Resynthesizer().resynthesize(deep, params=p, rng=0)
        assert (
            result.engine_cache_hits + result.engine_cache_misses
            == result.instantiation_calls
        )


class TestScanOrders:
    def test_invalid_scan_order_rejected(self):
        with pytest.raises(ValueError):
            Resynthesizer(scan_order="random")
        with pytest.raises(ValueError):
            Resynthesizer(scan_batch=0)

    def test_scan_index_orders(self):
        deep = build_qsearch_ansatz(2, 2, 2)  # s s | e s s | e s s
        n = deep.num_operations
        ops = list(deep)
        entanglers = [i for i in range(n) if len(ops[i].location) > 1]
        backward = Resynthesizer(scan_order="backward")._scan_indices(deep)
        forward = Resynthesizer(scan_order="forward")._scan_indices(deep)
        ent_first = Resynthesizer(
            scan_order="entangler-first"
        )._scan_indices(deep)
        assert backward == list(reversed(range(n)))
        assert forward == list(range(n))
        assert sorted(ent_first) == list(range(n))
        # Every entangling block is tried before any single-qudit gate,
        # back to front within each group.
        assert ent_first[: len(entanglers)] == sorted(
            entanglers, reverse=True
        )

    def test_entangler_first_compresses(self):
        shallow = build_qsearch_ansatz(2, 1, 2)
        target, _ = reachable_target(shallow, 66)
        deep = build_qsearch_ansatz(2, 3, 2)
        result = Resynthesizer(scan_order="entangler-first").resynthesize(
            deep, target=target, rng=0
        )
        assert result.success
        assert result.count("CX") <= 1
        assert result.circuit.num_operations < deep.num_operations

    def test_forward_scan_compresses(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        target, p = reachable_target(circ, 67)
        result = Resynthesizer(scan_order="forward").resynthesize(
            circ, params=p, rng=1
        )
        assert result.success
        assert result.circuit.num_operations <= circ.num_operations


class TestPartitionedSynthesizer:
    def test_three_qubit_circuit_in_two_qubit_windows(self):
        circ = build_qsearch_ansatz(3, 2, 2)
        _, p = reachable_target(circ, 70)
        synth = PartitionedSynthesizer(window=2)
        result = synth.synthesize_circuit(circ, p, rng=0)
        assert result.success
        assert len(result.windows) > 1
        assert all(w.success for w in result.windows)
        assert (
            hilbert_schmidt_infidelity(
                circ.get_unitary(p),
                result.circuit.get_unitary(result.params),
            )
            <= 1e-7
        )

    def test_output_circuit_spans_full_register(self):
        circ = build_qsearch_ansatz(4, 3, 2)
        _, p = reachable_target(circ, 71)
        result = PartitionedSynthesizer(window=2).synthesize_circuit(
            circ, p, rng=1
        )
        assert result.circuit.radices == circ.radices
        touched = {q for op in result.circuit for q in op.location}
        assert touched == set(range(4))

    def test_counters_aggregate_windows(self):
        circ = build_qsearch_ansatz(3, 2, 2)
        _, p = reachable_target(circ, 72)
        result = PartitionedSynthesizer(window=2).synthesize_circuit(
            circ, p, rng=2
        )
        assert result.instantiation_calls == sum(
            w.instantiation_calls for w in result.windows
        )

    def test_gate_wider_than_window_rejected(self):
        circ = QuditCircuit.qubits(3)
        circ.append_ref(circ.cache_operation(gates.ccx()), (0, 1, 2))
        with pytest.raises(ValueError):
            PartitionedSynthesizer(window=2).synthesize_circuit(circ, ())

    def test_param_length_validated(self):
        circ = build_qsearch_ansatz(3, 1, 2)
        with pytest.raises(ValueError):
            PartitionedSynthesizer(window=2).synthesize_circuit(
                circ, np.zeros(1)
            )

    def test_empty_circuit(self):
        result = PartitionedSynthesizer(window=2).synthesize_circuit(
            QuditCircuit.qubits(3), ()
        )
        assert result.success
        assert result.circuit.num_operations == 0
        assert result.windows == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionedSynthesizer(window=1)

    def test_shared_search_pool(self):
        search = SynthesisSearch()
        synth = PartitionedSynthesizer(search=search, window=2)
        circ = build_qsearch_ansatz(3, 2, 2)
        _, p = reachable_target(circ, 73)
        first = synth.synthesize_circuit(circ, p, rng=3)
        second = synth.synthesize_circuit(circ, p, rng=4)
        assert second.engine_cache_misses <= first.engine_cache_misses
