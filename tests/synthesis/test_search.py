"""Tests for the frontier-based synthesis search.

``TestAcceptance`` holds the PR's acceptance bar: the 2-qubit QFT and
five seeded Haar-random 2-qubit unitaries, all recovered in the U3+CNOT
gate set to infidelity <= 1e-8.
"""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, build_qsearch_ansatz, gates
from repro.instantiation import EnginePool
from repro.synthesis import QSearchLayerGenerator, SynthesisSearch, infer_radices
from repro.utils import hilbert_schmidt_infidelity, random_unitary


@pytest.fixture(scope="module")
def search():
    # Module-scoped so the engine pool amortizes template AOT compiles
    # across every test in this file (the workload the pool exists for).
    return SynthesisSearch()


class TestAcceptance:
    def test_recovers_qft2(self, search):
        target = build_qft_circuit(2).get_unitary(())
        result = search.synthesize(target, rng=0)
        assert result.success
        assert result.infidelity <= 1e-8
        assert result.count("CX") <= 3
        assert (
            hilbert_schmidt_infidelity(
                target, result.circuit.get_unitary(result.params)
            )
            <= 1e-8
        )

    def test_recovers_random_2q_suite(self, search):
        for seed in range(5):
            target = random_unitary(4, rng=100 + seed)
            result = search.synthesize(target, rng=seed)
            assert result.success, f"seed {seed} not recovered"
            assert result.infidelity <= 1e-8
            assert result.count("CX") <= 3  # the generic SU(4) bound
            assert (
                hilbert_schmidt_infidelity(
                    target, result.circuit.get_unitary(result.params)
                )
                <= 1e-8
            )

    def test_pool_amortizes_across_targets(self):
        fresh = SynthesisSearch()
        first = fresh.synthesize(random_unitary(4, rng=200), rng=0)
        second = fresh.synthesize(random_unitary(4, rng=201), rng=1)
        # Every template shape the second search needed was already
        # AOT-compiled by the first.
        assert first.engine_cache_misses > 0
        assert second.engine_cache_misses == 0
        assert second.engine_cache_hits == second.instantiation_calls


class TestSearchBehaviour:
    def test_identity_solved_at_root(self, search):
        result = search.synthesize(np.eye(4), rng=0)
        assert result.success
        assert result.count("CX") == 0
        assert result.nodes_expanded == 0

    def test_single_qubit_target(self, search):
        result = search.synthesize(random_unitary(2, rng=5), rng=0)
        assert result.success
        assert result.circuit.num_operations == 1

    def test_dijkstra_finds_minimal_blocks(self):
        # A target one entangling block away from the root.
        ansatz = build_qsearch_ansatz(2, 1, 2)
        p = np.random.default_rng(8).uniform(-np.pi, np.pi, ansatz.num_params)
        target = ansatz.get_unitary(p)
        result = SynthesisSearch(heuristic="dijkstra").synthesize(
            target, rng=0
        )
        assert result.success
        assert result.count("CX") == 1

    def test_budget_exhaustion_returns_best_effort(self):
        shallow = SynthesisSearch(max_layers=1)
        result = shallow.synthesize(random_unitary(4, rng=300), rng=0)
        assert not result.success
        assert result.infidelity > 1e-8  # best candidate, honestly reported
        assert result.circuit.num_operations >= 2
        assert result.instantiation_calls >= 1

    def test_max_expansions_budget(self):
        capped = SynthesisSearch(max_expansions=0)
        result = capped.synthesize(random_unitary(4, rng=301), rng=0)
        assert not result.success
        assert result.nodes_expanded == 0

    def test_custom_heuristic_callable(self):
        seen = []

        def h(infidelity, layers):
            seen.append((infidelity, layers))
            return layers + infidelity

        target = build_qft_circuit(2).get_unitary(())
        result = SynthesisSearch(heuristic=h).synthesize(target, rng=0)
        assert result.success
        assert seen  # the callable drove the frontier order

    def test_invalid_heuristic_rejected(self):
        with pytest.raises(ValueError):
            SynthesisSearch(heuristic="greedy")
        with pytest.raises(ValueError):
            SynthesisSearch(heuristic=3.5)  # not a string or callable

    def test_shared_pool_injection(self):
        pool = EnginePool()
        a = SynthesisSearch(pool=pool)
        b = SynthesisSearch(pool=pool)
        a.synthesize(random_unitary(4, rng=400), rng=0)
        result = b.synthesize(random_unitary(4, rng=401), rng=0)
        assert result.engine_cache_misses == 0  # b rides a's compiles

    def test_conflicting_pool_config_rejected(self):
        from repro.synthesis import Resynthesizer

        # Engine options belong to the pool when one is injected...
        with pytest.raises(ValueError):
            SynthesisSearch(pool=EnginePool(), strategy="sequential")
        with pytest.raises(ValueError):
            Resynthesizer(pool=EnginePool(), precision="f32")
        # ...and a pool threshold looser than the pass threshold would
        # make pooled engines short-circuit above the pass's bar.
        with pytest.raises(ValueError):
            SynthesisSearch(success_threshold=1e-12, pool=EnginePool())
        # A matching (or tighter) pool threshold is fine.
        SynthesisSearch(
            success_threshold=1e-6,
            pool=EnginePool(success_threshold=1e-8),
        )

    def test_qutrit_gate_set(self):
        gen = QSearchLayerGenerator()
        ansatz = gen.initial((3, 3))
        p = np.random.default_rng(9).uniform(-np.pi, np.pi, ansatz.num_params)
        target = ansatz.get_unitary(p)
        result = SynthesisSearch(layer_generator=gen).synthesize(
            target, radices=(3, 3), rng=0
        )
        assert result.success
        assert result.circuit.radices == (3, 3)


class TestTargetValidation:
    def test_infer_radices(self):
        assert infer_radices(8) == (2, 2, 2)
        assert infer_radices(9) == (3, 3)
        with pytest.raises(ValueError):
            infer_radices(5)

    def test_non_square_rejected(self, search):
        with pytest.raises(ValueError):
            search.synthesize(np.zeros((2, 3)))

    def test_radices_dimension_mismatch(self, search):
        with pytest.raises(ValueError):
            search.synthesize(np.eye(4), radices=(2, 2, 2))

    def test_custom_entangler_search(self):
        # CZ is as universal as CX when sandwiched in U3 layers.
        ansatz = build_qsearch_ansatz(2, 1, 2)
        p = np.random.default_rng(10).uniform(
            -np.pi, np.pi, ansatz.num_params
        )
        target = ansatz.get_unitary(p)
        gen = QSearchLayerGenerator(single=gates.u3(), entangler=gates.cz())
        result = SynthesisSearch(layer_generator=gen).synthesize(
            target, rng=0
        )
        assert result.success
        assert "CZ" in result.gate_counts or result.count("CX") == 0
