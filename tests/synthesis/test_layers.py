"""Tests for the layer-generator template grammars."""

import pytest

from repro.circuit import gates
from repro.expression import UnitaryExpression
from repro.synthesis import (
    CustomLayerGenerator,
    LayerGenerator,
    QSearchLayerGenerator,
)


class TestQSearchGenerator:
    def test_initial_is_single_layer(self):
        gen = QSearchLayerGenerator()
        root = gen.initial((2, 2))
        assert root.num_operations == 2
        assert root.num_params == 6  # two U3s
        assert root.gate_counts() == {"U3": 2}

    def test_successors_add_one_block_per_pair(self):
        gen = QSearchLayerGenerator()
        root = gen.initial((2, 2, 2))
        children = list(gen.successors(root))
        assert len(children) == 3  # all unordered pairs of 3 wires
        for child in children:
            assert child.num_operations == root.num_operations + 3
            assert child.gate_counts()["CX"] == 1
        # Distinct couplings give distinct template shapes.
        keys = {c.structure_key() for c in children}
        assert len(keys) == 3

    def test_expansion_reuses_cached_refs(self):
        gen = QSearchLayerGenerator()
        root = gen.initial((2, 2))
        child = next(iter(gen.successors(root)))
        # No new expression-table entries: the child appended purely by
        # the refs cached on the root (the O(1) expansion fast path).
        assert len(child._expr_keys) == len(root._expr_keys)
        grandchild = next(iter(gen.successors(child)))
        assert len(grandchild._expr_keys) == len(root._expr_keys)

    def test_qutrit_defaults(self):
        gen = QSearchLayerGenerator()
        root = gen.initial((3, 3))
        assert root.gate_counts() == {"P3": 2}
        child = next(iter(gen.successors(root)))
        assert child.gate_counts()["CSUM3"] == 1

    def test_mixed_radix_pairs_skipped_by_default(self):
        gen = QSearchLayerGenerator()
        root = gen.initial((2, 3))
        assert list(gen.successors(root)) == []

    def test_explicit_couplings(self):
        gen = QSearchLayerGenerator(couplings=[(0, 1)])
        root = gen.initial((2, 2, 2))
        children = list(gen.successors(root))
        assert len(children) == 1
        assert list(children[0])[-3].location == (0, 1)  # the entangler
        with pytest.raises(ValueError):
            QSearchLayerGenerator(couplings=[(0, 5)]).initial((2, 2))

    def test_custom_single_and_entangler(self):
        gen = QSearchLayerGenerator(
            single=gates.rx(), entangler=gates.cz()
        )
        root = gen.initial((2, 2))
        assert root.gate_counts() == {"RX": 2}
        child = next(iter(gen.successors(root)))
        assert child.gate_counts()["CZ"] == 1

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            QSearchLayerGenerator(single=gates.cx())
        with pytest.raises(ValueError):
            QSearchLayerGenerator(entangler=gates.u3())

    def test_protocol_conformance(self):
        assert isinstance(QSearchLayerGenerator(), LayerGenerator)


class TestCustomGenerator:
    def test_multiple_entanglers_widen_branching(self):
        gen = CustomLayerGenerator(
            single=gates.u3(), entanglers=[gates.cx(), gates.cz()]
        )
        root = gen.initial((2, 2))
        children = list(gen.successors(root))
        assert len(children) == 2
        names = {list(c.gate_counts())[-1] for c in children}
        assert names == {"CX", "CZ"}

    def test_qgl_defined_gate_set(self):
        # A gate set defined from scratch in QGL text.
        single = UnitaryExpression(
            "RY2(theta) { [[cos(theta/2), ~sin(theta/2)],"
            " [sin(theta/2), cos(theta/2)]] }"
        )
        gen = CustomLayerGenerator(single=single, entanglers=gates.cz())
        root = gen.initial((2, 2))
        assert root.num_params == 2
        child = next(iter(gen.successors(root)))
        assert child.num_params == 4

    def test_per_radix_singles(self):
        gen = CustomLayerGenerator(
            single={2: gates.u3(), 3: gates.qutrit_phase()},
            entanglers=gates.cx(),
        )
        root = gen.initial((2, 3))
        assert root.gate_counts() == {"U3": 1, "P3": 1}
        # CX only couples qubit pairs; none exist here.
        assert list(gen.successors(root)) == []

    def test_missing_radix_raises(self):
        gen = CustomLayerGenerator(single=gates.u3(), entanglers=gates.cx())
        with pytest.raises(ValueError):
            gen.initial((2, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            CustomLayerGenerator(single=gates.u3(), entanglers=[])
        with pytest.raises(ValueError):
            CustomLayerGenerator(single=gates.u3(), entanglers=[gates.h()])
        with pytest.raises(ValueError):
            CustomLayerGenerator(
                single={3: gates.u3()}, entanglers=gates.cx()
            )
