"""Tests for parallel candidate evaluation.

The headline contract: a synthesis pass returns a bit-identical
``SynthesisResult`` (circuit, params, infidelity, instantiation_calls,
cache counters) for any worker count, because candidate RNG seeds
derive from structure keys rather than draw order and batch outcomes
are scanned in deterministic job order.
"""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.instantiation import EnginePool
from repro.synthesis import (
    FitJob,
    ProcessCandidateExecutor,
    Resynthesizer,
    SerialCandidateExecutor,
    SynthesisSearch,
    candidate_seed,
    make_executor,
)


def reachable_target(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p)


def assert_identical(a, b):
    """The bit-identical subset of SynthesisResult (wall/efficiency
    legitimately differ)."""
    assert a.circuit.structure_key() == b.circuit.structure_key()
    assert np.array_equal(a.params, b.params)
    assert a.infidelity == b.infidelity
    assert a.success == b.success
    assert a.instantiation_calls == b.instantiation_calls
    assert a.engine_cache_hits == b.engine_cache_hits
    assert a.engine_cache_misses == b.engine_cache_misses
    assert a.nodes_expanded == b.nodes_expanded


class TestCandidateSeed:
    def test_stable_and_key_dependent(self):
        key_a = ("shape", 1)
        key_b = ("shape", 2)
        assert candidate_seed(7, key_a) == candidate_seed(7, key_a)
        assert candidate_seed(7, key_a) != candidate_seed(7, key_b)
        assert candidate_seed(7, key_a) != candidate_seed(8, key_a)

    def test_seed_is_valid_for_numpy(self):
        seed = candidate_seed(0, ("x",))
        np.random.default_rng(seed)  # must not raise
        assert seed >= 0


class TestExecutors:
    def test_serial_and_process_agree(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 21)
        jobs = [
            FitJob(circuit, target, 4, candidate_seed(3, ("job", k)))
            for k in range(3)
        ]
        serial = SerialCandidateExecutor(EnginePool())
        serial_out = serial.run(jobs)
        with ProcessCandidateExecutor(EnginePool(), workers=2) as proc:
            proc_out = proc.run(jobs)
        for a, b in zip(serial_out, proc_out):
            assert np.array_equal(a.params, b.params)
            assert a.infidelity == b.infidelity
            assert a.engine_call and b.engine_call

    def test_constant_candidates_skip_engines(self):
        circuit = build_qft_circuit(2)  # fully constant
        target = circuit.get_unitary(())
        job = FitJob(circuit, target, 4, 0)
        pool = EnginePool()
        with make_executor(pool, 2) as executor:
            [outcome] = executor.run([job])
        assert not outcome.engine_call
        assert outcome.infidelity <= 1e-12
        assert pool.misses == 0  # never touched an engine

    def test_make_executor_selects_backend(self):
        pool = EnginePool()
        assert isinstance(make_executor(pool, 1), SerialCandidateExecutor)
        assert isinstance(make_executor(pool, 2), ProcessCandidateExecutor)
        with pytest.raises(ValueError):
            make_executor(pool, 0)
        with pytest.raises(ValueError):
            ProcessCandidateExecutor(pool, workers=1)

    def test_injected_executor_must_wrap_pool(self):
        foreign = SerialCandidateExecutor(EnginePool())
        with pytest.raises(ValueError):
            SynthesisSearch(executor=foreign)
        with pytest.raises(ValueError):
            Resynthesizer(executor=foreign)
        pool = EnginePool()
        search = SynthesisSearch(
            pool=pool, executor=SerialCandidateExecutor(pool)
        )
        assert search.workers == 1

    def test_conflicting_workers_and_executor_rejected(self):
        pool = EnginePool()
        serial = SerialCandidateExecutor(pool)
        with pytest.raises(ValueError):
            SynthesisSearch(pool=pool, executor=serial, workers=4)
        with pytest.raises(ValueError):
            Resynthesizer(pool=pool, executor=serial, workers=4)
        # Matching (or default) worker counts are fine.
        SynthesisSearch(pool=pool, executor=serial, workers=1)


class TestPayloadDedup:
    def test_worker_signals_missing_engine(self):
        # Unit-level protocol check: a key-only task whose engine is
        # absent from the worker LRU yields the needs-payload signal
        # instead of fitting; with the payload attached it fits.
        from repro.synthesis.executor import (
            _WORKER_ENGINES,
            NEEDS_PAYLOAD,
            _worker_fit,
        )

        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 5)
        pool = EnginePool()
        payload = pool.serialized_bytes(circuit)
        key = ("test-dedup", circuit.structure_key())
        _WORKER_ENGINES.pop(key, None)
        assert _worker_fit(key, None, target, 2, 1, None) == NEEDS_PAYLOAD
        params, infidelity, busy, spans, metrics = _worker_fit(
            key, payload, target, 2, 1, None
        )
        assert params.shape == (circuit.num_params,)
        # Tracing was off, so no spans ship; the task's metrics delta
        # always does.
        assert spans == []
        assert metrics.get("instantiate.fits", 0) == 1
        # Now the LRU holds the engine: key-only tasks fit directly.
        again = _worker_fit(key, None, target, 2, 1, None)
        assert np.array_equal(again[0], params)
        _WORKER_ENGINES.pop(key, None)

    def test_steady_state_tasks_are_key_only(self):
        circuit = build_qsearch_ansatz(2, 1, 2)
        target = reachable_target(circuit, 23)
        jobs = [
            FitJob(circuit, target, 4, candidate_seed(9, ("dedup", k)))
            for k in range(3)
        ]
        serial_out = SerialCandidateExecutor(EnginePool()).run(jobs)
        with ProcessCandidateExecutor(EnginePool(), workers=2) as proc:
            first = proc.run(jobs)
            # Every first-batch task of the new shape carried bytes.
            assert proc.payloads_shipped >= len(jobs)
            assert proc.payloads_skipped == 0
            second = proc.run(jobs)
            # Steady state: the shape is marked shipped, so tasks go
            # key-only (resends only where a worker the first batch
            # never reached picks one up).
            assert proc.payloads_skipped == len(jobs)
            assert proc.payload_resends <= len(jobs)
        for outcome in (first, second):
            for a, b in zip(serial_out, outcome):
                assert np.array_equal(a.params, b.params)
                assert a.infidelity == b.infidelity

    def test_close_resets_shipped_shapes(self):
        pool = EnginePool()
        proc = ProcessCandidateExecutor(pool, workers=2)
        proc._shipped.add(("k",))
        proc.close()
        assert proc._shipped == set()


class TestSearchEquivalence:
    def test_workers_do_not_change_results(self):
        # A 3-qubit reachable target: expansions branch 3 ways, so
        # parallel rounds genuinely batch multiple candidates.
        target = reachable_target(build_qsearch_ansatz(3, 1, 2), 31)
        reference = None
        for workers in (1, 3):
            with SynthesisSearch(
                workers=workers, expansion_width=2
            ) as search:
                result = search.synthesize(target, rng=5)
            assert result.success
            assert result.workers == workers
            assert result.parallel_efficiency is not None
            if reference is None:
                reference = result
            else:
                assert_identical(reference, result)

    def test_qft2_workers_equivalence(self):
        target = build_qft_circuit(2).get_unitary(())
        with SynthesisSearch() as serial:
            a = serial.synthesize(target, rng=7)
        with SynthesisSearch(workers=2) as parallel:
            b = parallel.synthesize(target, rng=7)
        assert_identical(a, b)

    def test_expansion_width_validation(self):
        with pytest.raises(ValueError):
            SynthesisSearch(expansion_width=0)
        with pytest.raises(ValueError):
            SynthesisSearch(workers=0)

    def test_same_rng_reproducible_on_warm_pool(self):
        # Candidate seeds derive from structure keys, so a warm pool
        # (different hit/miss pattern) cannot perturb the numbers.
        pool = EnginePool()
        target = build_qft_circuit(2).get_unitary(())
        first = SynthesisSearch(pool=pool).synthesize(target, rng=3)
        second = SynthesisSearch(pool=pool).synthesize(target, rng=3)
        assert np.array_equal(first.params, second.params)
        assert first.infidelity == second.infidelity


class TestResynthesisEquivalence:
    def test_workers_do_not_change_results(self):
        deep = build_qsearch_ansatz(2, 3, 2)
        target = reachable_target(build_qsearch_ansatz(2, 1, 2), 64)
        reference = None
        for workers in (1, 2):
            with Resynthesizer(workers=workers, scan_batch=4) as resynth:
                result = resynth.resynthesize(deep, target=target, rng=2)
            assert result.success
            if reference is None:
                reference = result
            else:
                assert_identical(reference, result)

    def test_scan_batch_changes_only_call_count(self):
        # The accepted deletion is the first fitting one in scan order
        # and candidate seeds are order-independent, so the wave size
        # affects how much speculative work is done — never the result.
        deep = build_qsearch_ansatz(2, 3, 2)
        target = reachable_target(build_qsearch_ansatz(2, 1, 2), 65)
        short = Resynthesizer(scan_batch=1).resynthesize(
            deep, target=target, rng=4
        )
        full = Resynthesizer(scan_batch=None).resynthesize(
            deep, target=target, rng=4
        )
        assert short.circuit.structure_key() == full.circuit.structure_key()
        assert np.array_equal(short.params, full.params)
        assert short.infidelity == full.infidelity
        # The full-wave scan speculatively evaluates more candidates.
        assert full.instantiation_calls >= short.instantiation_calls
