"""State-preparation synthesis tests: the acceptance-bar scenarios.

A GHZ-3 preparation circuit must synthesize to threshold with
bit-identical results across TNVM backends (closures vs fused) and
worker counts (1 vs 2), and state targets must flow through the
compression pass and the shared engine pool.
"""

import numpy as np
import pytest

from repro.instantiation import EnginePool
from repro.synthesis import Resynthesizer, SynthesisSearch
from repro.utils import Statevector, state_prep_infidelity


def result_snapshot(result):
    return (
        result.circuit.structure_key(),
        tuple(np.asarray(result.params).tolist()),
        result.infidelity,
        result.instantiation_calls,
    )


class TestStateSearch:
    def test_ghz2_synthesizes(self):
        search = SynthesisSearch()
        result = search.synthesize(Statevector.ghz(2), rng=0)
        assert result.success
        assert result.count("CX") == 1  # GHZ-2 (Bell) needs one CX
        prepared = result.circuit.get_unitary(result.params)
        assert state_prep_infidelity(Statevector.ghz(2), prepared) < 1e-8

    def test_ghz3_synthesizes_to_threshold(self):
        search = SynthesisSearch()
        result = search.synthesize(Statevector.ghz(3), rng=7)
        assert result.success
        assert result.infidelity <= search.success_threshold
        assert result.count("CX") == 2  # GHZ-3 needs two entanglers
        sv = Statevector([2, 2, 2]).apply_unitary(
            result.circuit.get_unitary(result.params)
        )
        assert Statevector.ghz(3).fidelity(sv) == pytest.approx(
            1.0, abs=1e-8
        )

    def test_radices_come_from_the_statevector(self):
        # A two-qutrit state: no explicit radices, taken from the
        # Statevector itself (dim 9 would otherwise infer (3, 3) too,
        # but the state carries them authoritatively).  |00> is the
        # only state the default diagonal-phase + CSUM qutrit gate set
        # can reach from |00>, so the root template already fits.
        search = SynthesisSearch()
        result = search.synthesize(Statevector([3, 3]), rng=3)
        assert result.circuit.radices == (3, 3)
        assert result.success

    def test_amplitude_vector_target(self):
        search = SynthesisSearch()
        amps = Statevector.ghz(2).amplitudes
        r1 = search.synthesize(amps, rng=0)
        r2 = search.synthesize(Statevector.ghz(2), rng=0)
        assert result_snapshot(r1) == result_snapshot(r2)

    def test_rejects_bad_target_rank(self):
        with pytest.raises(ValueError):
            SynthesisSearch().synthesize(np.zeros((2, 2, 2)), rng=0)

    def test_backends_bit_identical(self):
        ghz = Statevector.ghz(3)
        snaps = []
        for backend in ("closures", "fused"):
            search = SynthesisSearch(backend=backend)
            snaps.append(result_snapshot(search.synthesize(ghz, rng=7)))
        assert snaps[0] == snaps[1]

    def test_workers_bit_identical(self):
        ghz = Statevector.ghz(3)
        serial = SynthesisSearch(expansion_width=2).synthesize(ghz, rng=7)
        with SynthesisSearch(workers=2, expansion_width=2) as parallel:
            spawned = parallel.synthesize(ghz, rng=7)
        assert result_snapshot(serial) == result_snapshot(spawned)
        assert spawned.workers == 2

    def test_state_and_unitary_engines_coexist_in_the_pool(self):
        # Engines are keyed by (structure, contract): a state pass
        # warms COLUMN(0) engines, a unitary pass over the same shapes
        # compiles its own FULL engines — and neither evicts or
        # shadows the other, so a repeat of either pass is all hits.
        pool = EnginePool()
        search = SynthesisSearch(pool=pool)
        r1 = search.synthesize(Statevector.ghz(2), rng=0)
        misses_after_state = pool.misses
        search.synthesize(Statevector.ghz(2), rng=0)
        # Same state pass again: every column engine is already pooled.
        assert pool.misses == misses_after_state
        target = r1.circuit.get_unitary(r1.params)
        search.synthesize(target, rng=1)
        misses_after_unitary = pool.misses
        # The unitary pass needed its own full-unitary engines...
        assert misses_after_unitary > misses_after_state
        # ...but did not displace the column engines: re-running both
        # passes adds no further misses.
        search.synthesize(Statevector.ghz(2), rng=0)
        search.synthesize(target, rng=1)
        assert pool.misses == misses_after_unitary


class TestStateResynthesis:
    def test_compression_against_state_target(self):
        # Preserving U|0> is weaker than preserving U: an over-deep
        # prep circuit compresses further against the state.
        ghz = Statevector.ghz(2)
        search = SynthesisSearch()
        found = search.synthesize(ghz, rng=0)
        assert found.success
        resynth = Resynthesizer(pool=search.pool)
        compressed = resynth.resynthesize(
            found.circuit, found.params, target=ghz, rng=2
        )
        assert compressed.success
        assert (
            compressed.circuit.num_operations
            <= found.circuit.num_operations
        )
        prepared = compressed.circuit.get_unitary(compressed.params)
        assert state_prep_infidelity(ghz, prepared) < 1e-8
