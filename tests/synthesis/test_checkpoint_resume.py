"""Durable checkpoint/resume for the synthesis passes.

The headline contract: a synthesis pass SIGKILLed mid-round (parent
death — no cleanup code runs) and resumed from its latest snapshot
returns a ``SynthesisResult`` bit-identical — circuit, params,
infidelity, deterministic counters — to an uninterrupted run.  The
same holds for graceful preemption (SIGTERM flushes a final snapshot,
abandons the worker pool, and raises :class:`PreemptedError`) and for
a corrupted latest snapshot (the store falls back to the previous
one; the resume just replays one more round).

Bit-identity works because candidate seeds derive from
``candidate_seed(base_seed, structure_key)`` — never draw order — so
restoring the frontier heap, counters, and base seed replays the
exact trajectory.  Parent death is injected with
:func:`repro.testing.faults.run_and_kill` (a subprocess harness that
SIGKILLs the pass once snapshots appear); preemption with the
``sigterm@round`` fault point.
"""

import os
import shutil
import signal

import numpy as np
import pytest

from repro import telemetry
from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointSchemaError,
    CheckpointStore,
    PreemptedError,
    snapshot_count,
)
from repro.circuit import build_qsearch_ansatz
from repro.instantiation import EnginePool
from repro.synthesis import (
    PartitionedSynthesizer,
    ProcessCandidateExecutor,
    Resynthesizer,
    SynthesisSearch,
)
from repro.testing import faults
from repro.testing.faults import run_and_kill


def reachable_target(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p)


def make_search(**kwargs):
    kwargs.setdefault("expansion_width", 2)
    kwargs.setdefault("max_expansions", 24)
    return SynthesisSearch(**kwargs)


def assert_resumed_identical(resumed, clean):
    """The resume contract: circuit, params, infidelity, and the
    deterministic counters match an uninterrupted run.  Engine-cache
    hits/misses are process-local (a resume starts with a cold pool)
    and legitimately differ."""
    assert resumed.circuit.structure_key() == clean.circuit.structure_key()
    assert np.array_equal(resumed.params, clean.params)
    assert resumed.infidelity == clean.infidelity
    assert resumed.success == clean.success
    assert resumed.instantiation_calls == clean.instantiation_calls
    assert resumed.nodes_expanded == clean.nodes_expanded


def metrics_delta(before):
    return telemetry.delta(before, telemetry.metrics().snapshot())


def _victim_target():
    return reachable_target(build_qsearch_ansatz(2, 2, 2), 7)


def _search_victim(ckpt_dir):
    """Spawn-picklable chaos victim: a checkpointed parallel search the
    harness SIGKILLs mid-pass (workers=2 under spawn, per the headline
    acceptance criterion)."""
    pool = EnginePool()
    executor = ProcessCandidateExecutor(pool, workers=2, mp_context="spawn")
    search = SynthesisSearch(
        pool=pool,
        executor=executor,
        expansion_width=2,
        max_expansions=24,
        checkpoint_dir=ckpt_dir,
    )
    search.synthesize(_victim_target(), rng=5)


# ----------------------------------------------------------------------
# Parent death: SIGKILL mid-round, resume in a fresh process
# ----------------------------------------------------------------------


class TestParentDeath:
    def test_sigkill_mid_pass_then_resume_is_bit_identical(self, tmp_path):
        # CI points this at a workspace-relative dir so the checkpoint
        # store can be uploaded as an artifact when the test fails.
        base = os.environ.get("REPRO_CHECKPOINT_SMOKE_DIR") or str(tmp_path)
        ckpt = os.path.join(base, "search-kill")
        shutil.rmtree(ckpt, ignore_errors=True)  # stale smoke dirs

        report = run_and_kill(
            _search_victim, (ckpt,), watch_dir=ckpt, snapshots=1
        )
        assert report.killed
        assert report.exitcode == -signal.SIGKILL  # died, not exited
        assert report.snapshots >= 1

        # Resume in this (fresh) process, again parallel under spawn.
        pool = EnginePool()
        executor = ProcessCandidateExecutor(
            pool, workers=2, mp_context="spawn"
        )
        try:
            search = SynthesisSearch(
                pool=pool,
                executor=executor,
                expansion_width=2,
                max_expansions=24,
            )
            resumed = search.synthesize(_victim_target(), resume_from=ckpt)
        finally:
            executor.close()

        with make_search() as clean_search:
            clean = clean_search.synthesize(_victim_target(), rng=5)

        assert resumed.resumed_from_round is not None
        assert_resumed_identical(resumed, clean)


# ----------------------------------------------------------------------
# Graceful preemption: SIGTERM flush, then resume
# ----------------------------------------------------------------------


def preempted_search_dir(tmp_path, target, at_round=1):
    """Run a checkpointed serial search that is SIGTERMed at the given
    round boundary; returns its checkpoint directory."""
    ckpt = tmp_path / "ckpt"
    fault_dir = tmp_path / "faults"
    fault_dir.mkdir(exist_ok=True)
    with faults.activate(f"sigterm@round:seed{at_round}", str(fault_dir)):
        with pytest.raises(PreemptedError) as err:
            make_search(checkpoint_dir=str(ckpt)).synthesize(target, rng=5)
    assert err.value.round_index == at_round
    assert os.path.exists(err.value.snapshot_path)
    assert "resume_from" in str(err.value)
    return str(ckpt)


class TestPreemption:
    def test_sigterm_flush_then_resume_is_bit_identical(self, tmp_path):
        target = _victim_target()
        with make_search() as search:
            clean = search.synthesize(target, rng=5)

        ckpt = preempted_search_dir(tmp_path, target, at_round=1)

        before = telemetry.metrics().snapshot()
        resumed = make_search().synthesize(target, resume_from=ckpt)
        assert metrics_delta(before).get("checkpoint.resumes") == 1
        assert resumed.resumed_from_round == 1
        assert_resumed_identical(resumed, clean)
        assert "resumed from round 1" in resumed.report()
        assert "resumed" not in clean.report()

    def test_corrupt_latest_snapshot_falls_back_on_resume(self, tmp_path):
        target = _victim_target()
        with make_search() as search:
            clean = search.synthesize(target, rng=5)

        ckpt = preempted_search_dir(tmp_path, target, at_round=1)
        store = CheckpointStore(ckpt)
        snaps = store.snapshots()
        assert len(snaps) >= 2  # round-0 cadence + round-1 flush
        with open(snaps[-1], "r+b") as fh:
            fh.seek(48)
            fh.write(b"\xff\xff\xff\xff")  # poison the payload bytes

        before = telemetry.metrics().snapshot()
        resumed = make_search().synthesize(target, resume_from=ckpt)
        delta = metrics_delta(before)
        assert delta.get("checkpoint.fallbacks", 0) >= 1
        assert delta.get("checkpoint.resumes") == 1
        # Fell back one boundary: replays from round 0, same answer.
        assert resumed.resumed_from_round == 0
        assert_resumed_identical(resumed, clean)


# ----------------------------------------------------------------------
# Resume validation: completion no-op, schema and identity mismatches
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    """One checkpointed search run to completion, shared by the
    validation tests (none of them mutate the store)."""
    target = _victim_target()
    ckpt = str(tmp_path_factory.mktemp("completed"))
    with make_search(checkpoint_dir=ckpt) as search:
        result = search.synthesize(target, rng=5)
    return target, ckpt, result


class TestResumeValidation:
    def test_resume_after_completion_is_a_noop(self, completed_run):
        target, ckpt, result = completed_run
        count = snapshot_count(ckpt)
        before = telemetry.metrics().snapshot()
        again = make_search().synthesize(target, resume_from=ckpt)
        delta = metrics_delta(before)
        # The stored result comes back without redoing (or re-writing)
        # anything — not even a new snapshot.
        assert delta.get("checkpoint.resumes") == 1
        assert delta.get("checkpoint.writes", 0) == 0
        assert snapshot_count(ckpt) == count
        assert_resumed_identical(again, result)
        assert again.wall_seconds == result.wall_seconds
        assert again.engine_cache_hits == result.engine_cache_hits

    def test_target_mismatch_is_refused(self, completed_run):
        _, ckpt, _ = completed_run
        other = reachable_target(build_qsearch_ansatz(2, 2, 2), 8)
        with pytest.raises(
            CheckpointError, match="different synthesis target"
        ):
            make_search().synthesize(other, resume_from=ckpt)

    def test_config_mismatch_is_refused(self, completed_run):
        target, ckpt, _ = completed_run
        with pytest.raises(
            CheckpointError, match="different search configuration"
        ):
            make_search(heuristic_weight=5.0).synthesize(
                target, resume_from=ckpt
            )

    def test_pass_kind_mismatch_is_refused(self, completed_run):
        _, ckpt, _ = completed_run
        circ = build_qsearch_ansatz(2, 2, 2)
        p = np.zeros(circ.num_params)
        with pytest.raises(CheckpointError, match="pass types"):
            Resynthesizer().resynthesize(circ, p, resume_from=ckpt)

    def test_schema_mismatch_is_a_pointed_error(self, tmp_path):
        CheckpointStore(str(tmp_path), schema=SCHEMA_VERSION + 1).save(
            {"kind": "search", "round": 0}
        )
        with pytest.raises(CheckpointSchemaError, match="schema version"):
            make_search().synthesize(
                _victim_target(), resume_from=str(tmp_path)
            )

    def test_empty_directory_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            make_search().synthesize(
                _victim_target(), resume_from=str(tmp_path)
            )


# ----------------------------------------------------------------------
# The compression passes checkpoint and resume too
# ----------------------------------------------------------------------


class TestResynthesizerResume:
    def test_sigterm_then_resume_is_bit_identical(self, tmp_path):
        circ = build_qsearch_ansatz(2, 2, 2)
        p = np.random.default_rng(3).uniform(-np.pi, np.pi, circ.num_params)
        clean = Resynthesizer(max_passes=2).resynthesize(circ, p, rng=9)

        ckpt = tmp_path / "ckpt"
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        with faults.activate("sigterm@round:seed2", str(fault_dir)):
            with pytest.raises(PreemptedError):
                Resynthesizer(
                    max_passes=2, checkpoint_dir=str(ckpt)
                ).resynthesize(circ, p, rng=9)

        resumed = Resynthesizer(max_passes=2).resynthesize(
            circ, p, resume_from=str(ckpt)
        )
        assert resumed.resumed_from_round == 2
        assert_resumed_identical(resumed, clean)


class TestPartitionedResume:
    def test_sigterm_then_resume_is_bit_identical(self, tmp_path):
        circ = build_qsearch_ansatz(3, 2, 2)
        p = np.random.default_rng(4).uniform(-np.pi, np.pi, circ.num_params)
        clean = PartitionedSynthesizer(
            make_search(), window=2
        ).synthesize_circuit(circ, p, rng=11)
        assert len(clean.windows) >= 2

        ckpt = tmp_path / "ckpt"
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        with faults.activate("sigterm@round:seed1", str(fault_dir)):
            with pytest.raises(PreemptedError) as err:
                PartitionedSynthesizer(
                    make_search(), window=2, checkpoint_dir=str(ckpt)
                ).synthesize_circuit(circ, p, rng=11)
        assert err.value.round_index == 1  # window 0 done, 1 in flight

        resumed = PartitionedSynthesizer(
            make_search(), window=2
        ).synthesize_circuit(circ, p, resume_from=str(ckpt))
        assert resumed.resumed_from_round == 1
        assert_resumed_identical(resumed, clean)
        # The restored prefix is the *same* per-window result, not a
        # re-synthesis of it.
        assert np.array_equal(
            resumed.windows[0].params, clean.windows[0].params
        )
