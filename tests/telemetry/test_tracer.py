"""Unit tests for the span tracer and Chrome-trace export."""

import json
import logging
import time

import pytest

from repro import telemetry
from repro.telemetry import NoopTracer, Tracer, chrome_trace


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with the no-op tracer installed."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert isinstance(telemetry.tracer(), NoopTracer)
        assert not telemetry.tracing_enabled()

    def test_enable_swaps_in_a_recording_tracer(self):
        tracer = telemetry.enable()
        assert isinstance(tracer, Tracer)
        assert telemetry.tracer() is tracer
        assert telemetry.tracing_enabled()

    def test_enable_is_idempotent(self):
        assert telemetry.enable() is telemetry.enable()

    def test_disable_returns_recorded_spans(self):
        telemetry.enable()
        with telemetry.tracer().span("work"):
            pass
        spans = telemetry.disable()
        assert [s.name for s in spans] == ["work"]
        assert isinstance(telemetry.tracer(), NoopTracer)


class TestSpans:
    def test_nesting_assigns_parent_ids(self):
        tracer = telemetry.enable()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.span.parent_id == outer.span.span_id
        assert outer.span.parent_id is None
        # Containment: the inner interval sits inside the outer one.
        assert outer.span.start <= inner.span.start
        assert inner.span.end <= outer.span.end

    def test_span_args_and_set(self):
        tracer = telemetry.enable()
        with tracer.span("fit", category="instantiate", dim=8) as handle:
            handle.set(starts_used=3)
        span = telemetry.disable()[0]
        assert span.category == "instantiate"
        assert span.args == {"dim": 8, "starts_used": 3}

    def test_noop_tracer_accepts_the_full_surface(self):
        noop = telemetry.tracer()
        with noop.span("x", category="y", a=1) as handle:
            handle.set(b=2)
        noop.instant("marker")
        noop.ingest([], label="w")
        assert noop.drain() == []


class TestCrossProcessIngest:
    def test_ingest_rebases_into_local_clock(self):
        tracer = telemetry.enable()
        # A fake worker whose perf_counter epoch differs by 1000s:
        # identical wall-clock instants differ by 1000 in span time.
        state = {
            "name": "fit", "category": "instantiate",
            "start": 5.0, "end": 6.0, "args": None,
            "span_id": 1, "parent_id": None,
            "pid": 99999, "tid": 1,
            "wall_offset": tracer.wall_offset + 1000.0,
        }
        tracer.ingest([state], label="worker-99999")
        span = tracer.spans()[0]
        assert span.start == pytest.approx(1005.0)
        assert span.end == pytest.approx(1006.0)
        assert span.wall_offset == tracer.wall_offset
        assert tracer.track_names() == {99999: "worker-99999"}


class TestChromeTrace:
    def test_export_is_valid_chrome_trace_json(self, tmp_path):
        tracer = telemetry.enable()
        with tracer.span("outer", category="synthesize"):
            with tracer.span("inner", category="compile", dim=4):
                pass
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(path)
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            assert e["dur"] >= 0
            assert isinstance(e["ts"], float)
        assert meta and meta[0]["args"]["name"] == "repro main"

    def test_unfinished_spans_are_skipped(self):
        tracer = telemetry.enable()
        handle = tracer.span("open")
        with tracer.span("closed"):
            pass
        trace = chrome_trace(tracer.spans() + [handle.span])
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names == ["closed"]


class TestOverhead:
    def test_disabled_tracer_overhead_smoke(self):
        # The no-op span must stay within interpreter noise: bound it
        # against an equally trivial context manager. Generous 5x bound
        # (CI machines are noisy); the real contract is "no locks, no
        # allocation, no time syscalls".
        import contextlib

        @contextlib.contextmanager
        def trivial():
            yield

        n = 20_000
        noop = telemetry.tracer()
        t0 = time.perf_counter()
        for _ in range(n):
            with noop.span("x"):
                pass
        noop_cost = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            with trivial():
                pass
        baseline = time.perf_counter() - t0
        assert noop_cost < 5 * baseline + 0.05


class TestLogging:
    def test_debug_span_logging_behind_flag(self, caplog):
        telemetry.enable(log_spans=True)
        with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
            with telemetry.tracer().span("fit", category="instantiate"):
                pass
        messages = [r.getMessage() for r in caplog.records]
        assert any("span start instantiate:fit" in m for m in messages)
        assert any("span stop instantiate:fit" in m for m in messages)

    def test_no_span_logging_by_default(self, caplog, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LOG", raising=False)
        telemetry.enable()
        with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
            with telemetry.tracer().span("quiet"):
                pass
        assert not caplog.records

    def test_package_root_has_null_handler(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)
