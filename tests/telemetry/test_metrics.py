"""Unit tests for the telemetry metrics registry."""

import pytest

from repro.telemetry import Counter, MetricsRegistry, delta


class TestCounter:
    def test_add_and_value(self):
        c = Counter("x")
        c.add()
        c.add(4)
        c.add(0.5)
        assert c.value == 5.5

    def test_child_mirrors_into_parent(self):
        parent = Counter("pool.hits")
        a, b = parent.child(), parent.child()
        a.add(3)
        b.add(2)
        assert (a.value, b.value, parent.value) == (3, 2, 5)


class TestRegistry:
    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_state(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        state = h.state()
        assert state["count"] == 3
        assert state["sum"] == 15.0
        assert state["min"] == 2.0
        assert state["max"] == 8.0
        assert state["mean"] == 5.0

    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").add(2)
        reg.gauge("a").set(7)
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == 7
        assert snap["b"] == 2
        assert snap["c"]["count"] == 1

    def test_merge_accumulates(self):
        # The cross-process path: a worker ships its delta, the parent
        # folds it in.
        parent = MetricsRegistry()
        parent.counter("fits").add(2)
        parent.histogram("wall").observe(1.0)
        worker = {"fits": 3, "wall": {"count": 2, "sum": 4.0, "min": 1.5,
                                      "max": 2.5}}
        parent.merge(worker)
        snap = parent.snapshot()
        assert snap["fits"] == 5
        assert snap["wall"]["count"] == 3
        assert snap["wall"]["sum"] == 5.0
        assert snap["wall"]["min"] == 1.0
        assert snap["wall"]["max"] == 2.5


class TestDelta:
    def test_delta_of_counters(self):
        reg = MetricsRegistry()
        reg.counter("calls").add(2)
        reg.counter("untouched").add(1)
        before = reg.snapshot()
        reg.counter("calls").add(3)
        reg.counter("fresh").add(1)
        d = delta(before, reg.snapshot())
        assert d == {"calls": 3, "fresh": 1}

    def test_delta_of_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("wall").observe(1.0)
        before = reg.snapshot()
        reg.histogram("wall").observe(3.0)
        reg.histogram("wall").observe(5.0)
        d = delta(before, reg.snapshot())
        assert d["wall"]["count"] == 2
        assert d["wall"]["sum"] == 8.0
        assert d["wall"]["mean"] == 4.0

    def test_zero_change_dropped(self):
        reg = MetricsRegistry()
        reg.counter("calls").add(2)
        snap = reg.snapshot()
        assert delta(snap, snap) == {}
