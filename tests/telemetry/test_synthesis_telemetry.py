"""Telemetry-inertness and coverage over a full GHZ-3 synthesis.

The tentpole contract: a synthesis run with tracing enabled returns a
``SynthesisResult`` bit-identical to the run with tracing disabled —
for the scalar and batched engines, serial and under spawned workers —
while the recorded spans cover every layer of the stack
(compile → pathfind → fuse → instantiate → synthesize), including
spans recorded inside worker processes.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.synthesis import SynthesisSearch
from repro.synthesis.executor import ProcessCandidateExecutor
from repro.utils import Statevector


@pytest.fixture(autouse=True)
def _tracer_off():
    telemetry.disable()
    yield
    telemetry.disable()


def result_snapshot(result):
    """The deterministic face of a SynthesisResult."""
    return (
        result.circuit.structure_key(),
        tuple(np.asarray(result.params).tolist()),
        result.infidelity,
        result.success,
        result.instantiation_calls,
        result.engine_cache_hits,
        result.engine_cache_misses,
        result.nodes_expanded,
    )


def run_ghz3(strategy=None, workers=1, trace=False, spawn=False):
    if trace:
        telemetry.enable()
    search = SynthesisSearch(
        strategy=strategy, workers=workers, expansion_width=2
    )
    if spawn and workers > 1:
        search._executor = ProcessCandidateExecutor(
            search.pool, workers, mp_context="spawn"
        )
    try:
        result = search.synthesize(Statevector.ghz(3), rng=7)
    finally:
        search.close()
    spans = telemetry.tracer().spans() if trace else []
    if trace:
        telemetry.disable()
    return result, spans


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", ["sequential", "batched"])
    def test_trace_on_off_identical_serial(self, strategy):
        off, _ = run_ghz3(strategy=strategy)
        on, spans = run_ghz3(strategy=strategy, trace=True)
        assert result_snapshot(off) == result_snapshot(on)
        assert on.success
        assert spans  # the traced run actually recorded something

    def test_trace_on_off_identical_spawn_workers(self):
        off, _ = run_ghz3(workers=1)
        on, spans = run_ghz3(workers=2, trace=True, spawn=True)
        assert result_snapshot(off) == result_snapshot(on)
        worker_spans = [s for s in spans if s.pid != os.getpid()]
        assert worker_spans, "spawned workers shipped no spans"


class TestFiveLayerCoverage:
    def test_trace_covers_all_layers(self, tmp_path):
        _, spans = run_ghz3(trace=True)
        categories = {s.category for s in spans}
        assert {"compile", "pathfind", "fuse", "instantiate",
                "synthesize"} <= categories
        # And the export round-trips as valid Chrome trace JSON.
        path = tmp_path / "trace.json"
        telemetry.enable()
        telemetry.tracer().ingest([s.state() for s in spans])
        telemetry.write_chrome_trace(path)
        telemetry.disable()
        trace = json.loads(path.read_text())
        assert {e["cat"] for e in trace["traceEvents"] if e["ph"] == "X"} >= {
            "compile", "pathfind", "fuse", "instantiate", "synthesize"
        }


class TestCrossProcessMerge:
    def test_worker_spans_merge_into_parent_timeline(self):
        result, spans = run_ghz3(workers=2, trace=True, spawn=True)
        parent_pid = os.getpid()
        worker_spans = [s for s in spans if s.pid != parent_pid]
        assert worker_spans
        # Merged spans were re-based into the parent's clock domain...
        offsets = {s.wall_offset for s in spans}
        assert len(offsets) == 1
        # ...and land inside the pass's wall interval.
        pass_spans = [s for s in spans if s.name == "synthesize"]
        assert pass_spans
        lo, hi = pass_spans[0].start, pass_spans[0].end
        slack = 0.25  # clock re-basing is exact only up to wall jitter
        for s in worker_spans:
            assert s.start >= lo - slack
            assert s.end <= hi + slack
        # The export names one track per worker process.
        trace = telemetry.chrome_trace(
            spans, {s.pid: f"worker-{s.pid}" for s in worker_spans},
            main_pid=parent_pid,
        )
        tracks = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert "repro main" in tracks
        assert any(t.startswith("repro worker-") for t in tracks)

    def test_worker_metrics_merge_into_result(self):
        result, _ = run_ghz3(workers=2, trace=True, spawn=True)
        # Fits executed inside workers surface in the pass's metrics
        # delta (shipped back and merged by the parent).
        assert result.metrics.get("instantiate.fits", 0) >= \
            result.instantiation_calls


class TestReport:
    def test_report_renders_timing_breakdown(self):
        result, _ = run_ghz3()
        text = result.report()
        assert "timing breakdown" in text
        assert "compile (AOT)" in text
        assert "optimize (LM)" in text
        assert "engine cache" in text
        assert "LM iterations" in text
