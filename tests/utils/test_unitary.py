"""Tests for unitary utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    closest_phase,
    global_phase_distance,
    hilbert_schmidt_infidelity,
    is_unitary,
    random_unitary,
)


class TestRandomUnitary:
    @pytest.mark.parametrize("dim", [2, 3, 4, 8])
    def test_is_unitary(self, dim):
        assert is_unitary(random_unitary(dim, rng=0))

    def test_seed_reproducible(self):
        assert np.allclose(
            random_unitary(4, rng=7), random_unitary(4, rng=7)
        )

    def test_seeds_differ(self):
        assert not np.allclose(
            random_unitary(4, rng=1), random_unitary(4, rng=2)
        )


class TestInfidelity:
    def test_zero_for_self(self):
        u = random_unitary(4, rng=0)
        assert hilbert_schmidt_infidelity(u, u) == pytest.approx(0.0)

    def test_phase_invariant(self):
        u = random_unitary(4, rng=1)
        assert hilbert_schmidt_infidelity(
            u, np.exp(1.2j) * u
        ) == pytest.approx(0.0, abs=1e-12)

    def test_bounded(self):
        a = random_unitary(4, rng=2)
        b = random_unitary(4, rng=3)
        l = hilbert_schmidt_infidelity(a, b)
        assert 0.0 <= l <= 1.0

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_symmetric(self, seed):
        a = random_unitary(3, rng=seed)
        b = random_unitary(3, rng=seed + 1000)
        assert hilbert_schmidt_infidelity(a, b) == pytest.approx(
            hilbert_schmidt_infidelity(b, a)
        )


class TestPhaseAlignment:
    def test_closest_phase_recovers(self):
        u = random_unitary(4, rng=5)
        phase = np.exp(0.77j)
        assert closest_phase(u, phase * u) == pytest.approx(phase)

    def test_distance_zero_after_alignment(self):
        u = random_unitary(4, rng=6)
        assert global_phase_distance(u, np.exp(2.1j) * u) < 1e-12

    def test_distance_positive_otherwise(self):
        a = random_unitary(4, rng=7)
        b = random_unitary(4, rng=8)
        assert global_phase_distance(a, b) > 0.1


class TestIsUnitary:
    def test_rejects_nonunitary(self):
        assert not is_unitary(np.diag([1.0, 2.0]))

    def test_accepts_identity(self):
        assert is_unitary(np.eye(5))
