"""Tests for the example-supporting state-vector simulator."""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, gates
from repro.utils import Statevector, state_prep_infidelity


class TestStatevector:
    def test_initial_state(self):
        sv = Statevector([2, 2])
        assert sv.amplitudes[0] == 1
        assert sv.probabilities().sum() == pytest.approx(1.0)

    def test_from_amplitudes_validates_norm(self):
        with pytest.raises(ValueError):
            Statevector.from_amplitudes(np.array([1.0, 1.0]), [2])

    def test_from_amplitudes_accepts_f32_normalized(self):
        # Regression: a vector normalized in f32 carries ~dim*eps_f32
        # norm error, which the old fixed 1e-9 tolerance rejected.
        rng = np.random.default_rng(0)
        amps = (rng.normal(size=8) + 1j * rng.normal(size=8)).astype(
            np.complex64
        )
        amps /= np.linalg.norm(amps)
        assert abs(float(np.linalg.norm(amps.astype(np.complex128))) - 1.0) \
            > 1e-12  # genuinely off unit norm in f64
        sv = Statevector.from_amplitudes(amps, [2, 2, 2])
        assert sv.dim == 8
        # Accepted-but-loose vectors are polished to unit f64 norm, so
        # every constructed Statevector passes the engines' (tighter)
        # norm validation no matter how large dim * eps_f32 grows.
        assert abs(float(np.linalg.norm(sv.amplitudes)) - 1.0) < 1e-12

    def test_from_amplitudes_f64_tolerance_still_tight(self):
        off = np.array([1.0 + 1e-7, 0.0], dtype=np.complex128)
        with pytest.raises(ValueError):
            Statevector.from_amplitudes(off, [2])

    def test_from_amplitudes_normalize(self):
        sv = Statevector.from_amplitudes(
            np.array([3.0, 4.0]), [2], normalize=True
        )
        assert np.allclose(sv.amplitudes, [0.6, 0.8])
        with pytest.raises(ValueError):
            Statevector.from_amplitudes(
                np.zeros(2), [2], normalize=True
            )

    def test_ghz(self):
        ghz = Statevector.ghz(3)
        assert ghz.probabilities()[0] == pytest.approx(0.5)
        assert ghz.probabilities()[7] == pytest.approx(0.5)
        assert ghz.probabilities().sum() == pytest.approx(1.0)
        qutrit = Statevector.ghz(2, radix=3)
        assert np.flatnonzero(qutrit.amplitudes).tolist() == [0, 4, 8]

    def test_state_prep_infidelity(self):
        ghz = Statevector.ghz(2)
        u = np.eye(4, dtype=np.complex128)
        assert state_prep_infidelity(ghz, u) == pytest.approx(0.5)
        # Global phase on the prepared column is ignored.
        h = gates.h().unitary()
        cx = gates.cx().unitary()
        circ_u = cx @ np.kron(h, np.eye(2))
        assert state_prep_infidelity(ghz, circ_u) == pytest.approx(
            0.0, abs=1e-12
        )
        assert state_prep_infidelity(
            ghz, np.exp(1.3j) * circ_u
        ) == pytest.approx(0.0, abs=1e-12)

    def test_apply_gate_x(self):
        sv = Statevector([2]).apply_gate(gates.x().unitary(), (0,))
        assert sv.amplitudes[1] == pytest.approx(1.0)

    def test_apply_gate_on_wire(self):
        sv = Statevector([2, 2]).apply_gate(gates.x().unitary(), (1,))
        assert abs(sv.amplitudes[0b01]) == pytest.approx(1.0)

    def test_bell_state(self):
        sv = Statevector([2, 2])
        sv = sv.apply_gate(gates.h().unitary(), (0,))
        sv = sv.apply_gate(gates.cx().unitary(), (0, 1))
        probs = sv.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_qft_creates_uniform_superposition(self):
        u = build_qft_circuit(3).get_unitary(())
        sv = Statevector([2, 2, 2]).apply_unitary(u)
        assert np.allclose(sv.probabilities(), 1 / 8)

    def test_fidelity(self):
        a = Statevector([2])
        b = Statevector([2]).apply_gate(gates.x().unitary(), (0,))
        assert a.fidelity(a) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_qutrit_state(self):
        sv = Statevector([3]).apply_gate(
            gates.shift(3).unitary(), (0,)
        )
        assert abs(sv.amplitudes[1]) == pytest.approx(1.0)
