"""Tests for the example-supporting state-vector simulator."""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, gates
from repro.utils import Statevector


class TestStatevector:
    def test_initial_state(self):
        sv = Statevector([2, 2])
        assert sv.amplitudes[0] == 1
        assert sv.probabilities().sum() == pytest.approx(1.0)

    def test_from_amplitudes_validates_norm(self):
        with pytest.raises(ValueError):
            Statevector.from_amplitudes(np.array([1.0, 1.0]), [2])

    def test_apply_gate_x(self):
        sv = Statevector([2]).apply_gate(gates.x().unitary(), (0,))
        assert sv.amplitudes[1] == pytest.approx(1.0)

    def test_apply_gate_on_wire(self):
        sv = Statevector([2, 2]).apply_gate(gates.x().unitary(), (1,))
        assert abs(sv.amplitudes[0b01]) == pytest.approx(1.0)

    def test_bell_state(self):
        sv = Statevector([2, 2])
        sv = sv.apply_gate(gates.h().unitary(), (0,))
        sv = sv.apply_gate(gates.cx().unitary(), (0, 1))
        probs = sv.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_qft_creates_uniform_superposition(self):
        u = build_qft_circuit(3).get_unitary(())
        sv = Statevector([2, 2, 2]).apply_unitary(u)
        assert np.allclose(sv.probabilities(), 1 / 8)

    def test_fidelity(self):
        a = Statevector([2])
        b = Statevector([2]).apply_gate(gates.x().unitary(), (0,))
        assert a.fidelity(a) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_qutrit_state(self):
        sv = Statevector([3]).apply_gate(
            gates.shift(3).unitary(), (0,)
        )
        assert abs(sv.amplitudes[1]) == pytest.approx(1.0)
