"""Shared subjects for the static-verification suite.

Session-scoped clean programs and fused-kernel sources covering every
backend-relevant shape: qubit/qutrit radices, fused and unfused
bytecode, hoisted and unhoisted constant sections, full/column/overlap
contracts, and scalar/batched × grad/no-grad kernels.
"""

from __future__ import annotations

import pytest

from repro.circuit import (
    build_dtc_circuit,
    build_qft_circuit,
    build_qsearch_ansatz,
)
from repro.tensornet.contract import OutputContract
from repro.tnvm import TNVM, Differentiation
from repro.tnvm.fused import fused_kernel_for

PROGRAM_BUILDERS = {
    "ansatz-2q": lambda: build_qsearch_ansatz(2, 2, 2).compile(),
    "ansatz-3q": lambda: build_qsearch_ansatz(3, 4, 2).compile(),
    "ansatz-qutrit": lambda: build_qsearch_ansatz(2, 2, 3).compile(),
    "qft-3": lambda: build_qft_circuit(3).compile(),
    "dtc-3": lambda: build_dtc_circuit(3, 2).compile(),
    "no-fusion": lambda: build_qsearch_ansatz(3, 4, 2).compile(
        fusion=False
    ),
    "no-hoist": lambda: build_qsearch_ansatz(3, 4, 2).compile(
        hoist_constants=False
    ),
    "column": lambda: build_qsearch_ansatz(3, 4, 2).compile(
        contract=OutputContract.column(0)
    ),
    "column-qutrit": lambda: build_qsearch_ansatz(2, 2, 3).compile(
        contract=OutputContract.column(1)
    ),
}


@pytest.fixture(scope="session")
def clean_programs():
    return {name: build() for name, build in PROGRAM_BUILDERS.items()}


@pytest.fixture(scope="session")
def clean_kernels(clean_programs):
    """(name, grad, batched) -> FusedKernel for a subject spread."""
    kernels = {}
    for name in ("ansatz-2q", "ansatz-qutrit", "column", "dtc-3"):
        program = clean_programs[name]
        vm = TNVM(program, diff=Differentiation.NONE)
        for grad in (False, True):
            for batched in (False, True):
                kernels[(name, grad, batched)] = fused_kernel_for(
                    program, vm.compiled, grad=grad, batched=batched
                )
    return kernels
