"""Fused-kernel source lint: clean acceptance and rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    KERNEL_VIOLATION_CODES,
    lint_kernel_source,
    verify_kernel,
)
from repro.analysis.mutations import (
    MUTATION_CLASSES,
    NotApplicable,
    mutate_kernel,
)

KERNEL_CLASSES = [c for c in MUTATION_CLASSES if c.kind == "kernel"]


class TestCleanAcceptance:
    def test_every_generated_kernel_lints(self, clean_kernels):
        for (name, grad, batched), kernel in clean_kernels.items():
            report = lint_kernel_source(
                kernel.source,
                batched=batched,
                subject=f"{name} grad={grad} batched={batched}",
            )
            assert report.ok, report.render()

    def test_verify_kernel_duck_types(self, clean_kernels):
        kernel = clean_kernels[("ansatz-2q", True, False)]
        report = verify_kernel(kernel)
        assert report.ok
        assert "grad=True" in report.subject

    def test_verify_kernel_rejects_non_string_source(self):
        class Broken:
            source = b"def make_fused(): pass"
            batched = False
            grad = False

        report = verify_kernel(Broken())
        assert "kernel-structure" in report.codes()


class TestMutationRejection:
    @pytest.mark.parametrize(
        "cls", KERNEL_CLASSES, ids=[c.name for c in KERNEL_CLASSES]
    )
    def test_class_caught_on_every_applicable_kernel(
        self, clean_kernels, cls
    ):
        applicable = 0
        for i, (key, kernel) in enumerate(
            sorted(clean_kernels.items())
        ):
            rng = np.random.default_rng([13, i])
            try:
                mutated = mutate_kernel(cls.name, kernel.source, rng)
            except NotApplicable:
                continue
            applicable += 1
            report = lint_kernel_source(mutated, batched=key[2])
            assert not report.ok, (cls.name, key)
            assert report.codes() & cls.expected_codes, (
                cls.name,
                key,
                report.render(),
            )
        assert applicable > 0, f"{cls.name} never applicable"

    def test_expected_codes_are_known(self):
        for cls in KERNEL_CLASSES:
            unknown = cls.expected_codes - set(KERNEL_VIOLATION_CODES)
            assert not unknown, (cls.name, unknown)


class TestStructuralChecks:
    def test_syntax_error_reported_not_raised(self):
        report = lint_kernel_source("def make_fused(:\n")
        assert "kernel-syntax" in report.codes()

    def test_rogue_module_level_statement(self):
        source = (
            "import os\n"
            "def make_fused(values, grads, dtype):\n"
            "    def fused_run(params):\n"
            "        pass\n"
            "    return fused_run\n"
        )
        report = lint_kernel_source(source)
        assert "kernel-structure" in report.codes()

    def test_wrong_factory_arity_for_batched(self, clean_kernels):
        kernel = clean_kernels[("ansatz-2q", False, False)]
        report = lint_kernel_source(kernel.source, batched=True)
        assert "kernel-structure" in report.codes()

    def test_non_whitelisted_numpy_attribute(self):
        source = (
            "def make_fused(values, grads, dtype):\n"
            "    i0_v = values[0].reshape(2, 2)\n"
            "    def fused_run(params):\n"
            "        np.frombuffer(i0_v)\n"
            "    return fused_run\n"
        )
        report = lint_kernel_source(source)
        assert "kernel-rogue-callable" in report.codes()

    def test_unbound_name_in_store(self):
        source = (
            "def make_fused(values, grads, dtype):\n"
            "    def fused_run(params):\n"
            "        i9_v[0, 0] = 1.0\n"
            "    return fused_run\n"
        )
        report = lint_kernel_source(source)
        assert "kernel-unbound-name" in report.codes()

    def test_copyto_aliasing_destination(self):
        source = (
            "def make_fused(values, grads, dtype):\n"
            "    i0_a = values[0].reshape(2, 2)\n"
            "    i0_b = values[0].reshape(2, 2)\n"
            "    def fused_run(params):\n"
            "        np.copyto(i0_a, i0_b)\n"
            "    return fused_run\n"
        )
        report = lint_kernel_source(source)
        assert "kernel-out-aliasing" in report.codes()

    def test_distinct_arena_slots_do_not_alias(self):
        source = (
            "def make_fused(values, grads, dtype):\n"
            "    i0_a = values[0].reshape(2, 2)\n"
            "    i1_b = values[1].reshape(2, 2)\n"
            "    def fused_run(params):\n"
            "        np.copyto(i1_b, i0_a)\n"
            "    return fused_run\n"
        )
        report = lint_kernel_source(source)
        assert report.ok, report.render()
