"""Trust-boundary wiring: env switch, compile, rehydration, telemetry."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import (
    VerificationError,
    maybe_verify_program,
    verification_enabled,
)
from repro.circuit import build_qsearch_ansatz
from repro.instantiation import Instantiater
from repro.tnvm import TNVM, Differentiation
from repro.tnvm.fused import fused_kernel_for


def _corrupt(program):
    """A metadata-corrupt copy: dynamic tail truncated."""
    mutant = type(program).from_bytes(program.to_bytes())
    mutant.dynamic_section.pop()
    return mutant


class TestEnvSwitch:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verification_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_env_turns_on(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert verification_enabled()

    @pytest.mark.parametrize("value", ["", "0"])
    def test_env_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert not verification_enabled()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert not verification_enabled(False)
        monkeypatch.delenv("REPRO_VERIFY")
        assert verification_enabled(True)

    def test_maybe_verify_is_noop_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        # A wildly corrupt "program" never reaches the verifier.
        maybe_verify_program(object())


class TestCompileBoundary:
    def test_compile_verify_true_accepts_clean(self):
        program = build_qsearch_ansatz(2, 2, 2).compile(verify=True)
        assert program.dynamic_section

    def test_compile_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        before = telemetry.metrics().counter(
            "analysis.programs_verified"
        ).value
        build_qsearch_ansatz(2, 2, 2).compile()
        after = telemetry.metrics().counter(
            "analysis.programs_verified"
        ).value
        assert after == before + 1

    def test_corrupt_program_raises_pointed_error(self):
        program = build_qsearch_ansatz(2, 2, 2).compile()
        with pytest.raises(VerificationError) as info:
            maybe_verify_program(_corrupt(program), verify=True)
        message = str(info.value)
        assert "violation" in message
        assert info.value.report.violations  # structured access

    def test_violations_counter_bumps(self):
        program = build_qsearch_ansatz(2, 2, 2).compile()
        counter = telemetry.metrics().counter("analysis.violations")
        before = counter.value
        with pytest.raises(VerificationError):
            maybe_verify_program(_corrupt(program), verify=True)
        assert counter.value > before


class TestRehydrationBoundary:
    @pytest.fixture(scope="class")
    def payload(self):
        program = build_qsearch_ansatz(2, 2, 2).compile()
        engine = Instantiater(program=program, backend="fused")
        engine.instantiate(np.eye(4, dtype=complex), starts=1, rng=0)
        return engine.serialize()

    def test_clean_payload_rehydrates_under_verify(self, payload):
        engine = Instantiater.from_serialized(payload, verify=True)
        assert engine.program is payload.program

    def test_corrupt_program_in_payload_rejected(self, payload):
        bad = dataclasses.replace(
            payload, program=_corrupt(payload.program)
        )
        with pytest.raises(VerificationError) as info:
            Instantiater.from_serialized(bad, verify=True)
        assert "serialized engine" in str(info.value)

    def test_truncated_expression_table_rejected(self, payload):
        bad = dataclasses.replace(
            payload, compiled=payload.compiled[:-1]
        )
        with pytest.raises(VerificationError) as info:
            Instantiater.from_serialized(bad, verify=True)
        assert "compiled expressions" in str(info.value)

    def test_bad_precision_rejected(self, payload):
        bad = dataclasses.replace(payload, precision="f128")
        with pytest.raises(VerificationError) as info:
            Instantiater.from_serialized(bad, verify=True)
        assert "precision" in str(info.value)

    def test_stale_kernel_rejected(self, payload):
        # A kernel fused from a different program: instruction count
        # disagrees with the shipped bytecode.
        (key, kernel), *rest = list(payload.fused_kernels)
        stale = dataclasses.replace(
            kernel, num_instructions=kernel.num_instructions + 7
        )
        bad = dataclasses.replace(
            payload, fused_kernels=((key, stale),) + tuple(rest)
        )
        with pytest.raises(VerificationError) as info:
            Instantiater.from_serialized(bad, verify=True)
        assert "stale" in str(info.value)

    def test_engines_counter_bumps(self, payload, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        counter = telemetry.metrics().counter(
            "analysis.engines_verified"
        )
        before = counter.value
        Instantiater.from_serialized(payload)
        assert counter.value == before + 1


class TestKernelBindBoundary:
    def test_corrupt_kernel_source_rejected_at_bind(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        program = build_qsearch_ansatz(2, 2, 2).compile()
        vm = TNVM(program, diff=Differentiation.NONE)
        kernel = fused_kernel_for(
            program, vm.compiled, grad=False, batched=False
        )
        hacked = dataclasses.replace(
            kernel,
            source=kernel.source.replace("np.matmul", "np.dot", 1),
        )
        program.__dict__["_fused_kernels"][(False, False)] = hacked
        with pytest.raises(VerificationError) as info:
            TNVM(program, diff=Differentiation.NONE, backend="fused")
        assert "kernel-rogue-callable" in str(info.value)

    def test_clean_kernel_binds_under_verify(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        program = build_qsearch_ansatz(2, 2, 2).compile()
        counter = telemetry.metrics().counter("analysis.kernels_linted")
        before = counter.value
        vm = TNVM(program, backend="fused")
        assert counter.value > before
        params = np.random.default_rng(0).uniform(
            -np.pi, np.pi, program.num_params
        )
        u, _ = vm.evaluate_with_grad(params)
        assert u.shape == (4, 4)
