"""The seeded mutation corpus: the verifier is not vacuous."""

from __future__ import annotations

import pytest

from repro.analysis.mutations import (
    MUTATION_CLASSES,
    run_mutation_corpus,
)


def _subjects(clean_programs, clean_kernels):
    programs = [
        clean_programs[name]
        for name in (
            "ansatz-2q",
            "no-fusion",  # TRANSPOSE sites for corrupt-perm
            "column",
            "qft-3",
        )
    ]
    kernels = [
        kernel.source
        for (name, _, _), kernel in sorted(clean_kernels.items())
        if name in ("ansatz-2q", "column")
    ]
    return programs, kernels


def test_corpus_has_at_least_eight_classes():
    assert len(MUTATION_CLASSES) >= 8
    assert len({c.name for c in MUTATION_CLASSES}) == len(
        MUTATION_CLASSES
    )


@pytest.mark.parametrize("seed", [0, 1234, 99991])
def test_every_class_caught(clean_programs, clean_kernels, seed):
    programs, kernels = _subjects(clean_programs, clean_kernels)
    result = run_mutation_corpus(programs, kernels, seed=seed)
    assert result.all_caught, result.render()
    # Every class found at least one applicable subject...
    for cls in MUTATION_CLASSES:
        assert result.applied[cls.name] > 0, cls.name
        # ...and caught every mutant it produced.
        assert result.caught[cls.name] == result.applied[cls.name]


def test_corpus_is_deterministic(clean_programs, clean_kernels):
    programs, kernels = _subjects(clean_programs, clean_kernels)
    a = run_mutation_corpus(programs, kernels, seed=7)
    b = run_mutation_corpus(programs, kernels, seed=7)
    assert a.applied == b.applied
    assert a.caught == b.caught
    assert a.missed == b.missed


def test_corpus_rejects_unclean_subject(clean_programs):
    program = clean_programs["ansatz-2q"]
    mutant = type(program).from_bytes(program.to_bytes())
    mutant.dynamic_section.pop()
    with pytest.raises(ValueError, match="not clean"):
        run_mutation_corpus([mutant], [], seed=0)
