"""Bytecode verifier: clean acceptance and per-class rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PROGRAM_VIOLATION_CODES,
    verify_program,
)
from repro.analysis.mutations import (
    MUTATION_CLASSES,
    NotApplicable,
    mutate_program,
)

from .conftest import PROGRAM_BUILDERS

PROGRAM_CLASSES = [c for c in MUTATION_CLASSES if c.kind == "program"]


class TestCleanAcceptance:
    @pytest.mark.parametrize("name", sorted(PROGRAM_BUILDERS))
    def test_compiled_program_verifies(self, clean_programs, name):
        report = verify_program(clean_programs[name], subject=name)
        assert report.ok, report.render()

    def test_report_subject_defaults_to_shape(self, clean_programs):
        report = verify_program(clean_programs["ansatz-2q"])
        assert "program" in report.subject

    def test_expected_codes_are_known(self):
        for cls in PROGRAM_CLASSES:
            unknown = cls.expected_codes - set(PROGRAM_VIOLATION_CODES)
            assert not unknown, (cls.name, unknown)


class TestMutationRejection:
    """One test per program-mutation class: the verifier flags the
    mutant with the class's expected code, with a pointed location."""

    @pytest.mark.parametrize(
        "cls", PROGRAM_CLASSES, ids=[c.name for c in PROGRAM_CLASSES]
    )
    def test_class_caught_on_every_applicable_subject(
        self, clean_programs, cls
    ):
        applicable = 0
        for i, (name, program) in enumerate(
            sorted(clean_programs.items())
        ):
            rng = np.random.default_rng([7, i])
            try:
                mutant = mutate_program(cls.name, program, rng)
            except NotApplicable:
                continue
            applicable += 1
            report = verify_program(mutant, subject=name)
            assert not report.ok, (cls.name, name)
            assert report.codes() & cls.expected_codes, (
                cls.name,
                name,
                report.render(),
            )
        assert applicable > 0, f"{cls.name} never applicable"

    def test_mutation_does_not_touch_the_original(self, clean_programs):
        program = clean_programs["ansatz-2q"]
        before = program.to_bytes()
        rng = np.random.default_rng(3)
        mutate_program("truncate-dynamic", program, rng)
        assert program.to_bytes() == before

    def test_violation_points_at_instruction(self, clean_programs):
        program = clean_programs["ansatz-3q"]
        rng = np.random.default_rng(11)
        mutant = mutate_program("expr-out-of-range", program, rng)
        report = verify_program(mutant)
        bad = [v for v in report.violations if v.code == "bad-expr-ref"]
        assert bad and bad[0].where  # names const[i]/dynamic[i]
        assert "expr" in bad[0].message


class TestStructuralChecks:
    """Hand-built corruptions beyond the corpus classes."""

    def test_unknown_opcode(self, clean_programs):
        import dataclasses

        program = clean_programs["ansatz-2q"]
        mutant = type(program).from_bytes(program.to_bytes())
        instr = mutant.dynamic_section[0]
        mutant.dynamic_section[0] = dataclasses.replace(
            instr, opcode="EINSUM"
        )
        report = verify_program(mutant)
        assert "bad-opcode" in report.codes()

    def test_buffer_ref_out_of_range(self, clean_programs):
        import dataclasses

        program = clean_programs["ansatz-2q"]
        mutant = type(program).from_bytes(program.to_bytes())
        instr = mutant.dynamic_section[-1]
        mutant.dynamic_section[-1] = dataclasses.replace(
            instr, out_buf=len(mutant.buffers) + 5
        )
        report = verify_program(mutant)
        assert "bad-buffer-ref" in report.codes()

    def test_double_write_flagged(self, clean_programs):
        program = clean_programs["ansatz-2q"]
        mutant = type(program).from_bytes(program.to_bytes())
        mutant.dynamic_section.append(mutant.dynamic_section[-1])
        report = verify_program(mutant)
        assert "double-write" in report.codes()

    def test_constant_instruction_in_dynamic_section(
        self, clean_programs
    ):
        # Moving a const-section instruction into the dynamic section
        # breaks section discipline: its output buffer is constant.
        program = clean_programs["dtc-3"]
        mutant = type(program).from_bytes(program.to_bytes())
        assert mutant.const_section, "dtc program hoists constants"
        instr = mutant.const_section.pop()
        mutant.dynamic_section.append(instr)
        report = verify_program(mutant)
        assert "section" in report.codes() or not report.ok

    def test_matmul_inner_dim_mismatch_message_names_shapes(
        self, clean_programs
    ):
        import dataclasses

        program = clean_programs["ansatz-3q"]
        mutant = type(program).from_bytes(program.to_bytes())
        sites = [
            (i, instr)
            for i, instr in enumerate(mutant.dynamic_section)
            if instr.opcode == "MATMUL"
        ]
        assert sites
        pos, instr = sites[0]
        m, k = instr.a_shape
        mutant.dynamic_section[pos] = dataclasses.replace(
            instr, a_shape=(k, m) if m != k else (m, k + 1)
        )
        report = verify_program(mutant)
        assert not report.ok
        assert {"operand-shape"} & report.codes()
