"""Tests for QuditCircuit: caching, appending, introspection."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, gates
from repro.expression import UnitaryExpression


class TestConstruction:
    def test_pure(self):
        circ = QuditCircuit.pure([2, 3, 2])
        assert circ.num_qudits == 3
        assert circ.dim == 12
        assert circ.radices == (2, 3, 2)

    def test_helpers(self):
        assert QuditCircuit.qubits(3).radices == (2, 2, 2)
        assert QuditCircuit.qutrits(2).radices == (3, 3)

    def test_int_radices_rejected(self):
        with pytest.raises(TypeError):
            QuditCircuit(3)

    def test_bad_radix_rejected(self):
        with pytest.raises(ValueError):
            QuditCircuit([2, 1])


class TestExpressionCaching:
    def test_dedup_by_semantics(self):
        circ = QuditCircuit.qubits(1)
        a = circ.cache_operation(gates.rx())
        b = circ.cache_operation(gates.rx())
        assert a == b

    def test_alpha_equivalent_shares_ref(self):
        circ = QuditCircuit.qubits(1)
        a = circ.cache_operation(
            UnitaryExpression("G(u) { [[1, 0], [0, e^(i*u)]] }")
        )
        b = circ.cache_operation(
            UnitaryExpression("G(v) { [[1, 0], [0, e^(i*v)]] }")
        )
        assert a == b

    def test_distinct_gates_distinct_refs(self):
        circ = QuditCircuit.qubits(1)
        assert circ.cache_operation(gates.rx()) != circ.cache_operation(
            gates.ry()
        )

    def test_non_unitary_rejected(self):
        circ = QuditCircuit.qubits(1)
        bad = UnitaryExpression(
            "BAD() { [[1, 0], [0, 2]] }"
        )
        with pytest.raises(ValueError, match="unitary"):
            circ.cache_operation(bad)

    def test_check_can_be_skipped(self):
        circ = QuditCircuit.qubits(1)
        bad = UnitaryExpression("BAD() { [[1, 0], [0, 2]] }")
        ref = circ.cache_operation(bad, check=False)
        assert circ.expression(ref) is bad.matrix


class TestAppend:
    def test_append_ref_allocates_params(self):
        circ = QuditCircuit.qubits(1)
        u3 = circ.cache_operation(gates.u3())
        assert circ.append_ref(u3, 0) == (0, 1, 2)
        assert circ.append_ref(u3, 0) == (3, 4, 5)
        assert circ.num_params == 6

    def test_append_constant_allocates_none(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref_constant(rx, 0, (0.5,))
        assert circ.num_params == 0

    def test_constant_arity_checked(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        with pytest.raises(ValueError):
            circ.append_ref_constant(rx, 0, (0.5, 0.6))

    def test_location_arity_checked(self):
        circ = QuditCircuit.qubits(2)
        cx = circ.cache_operation(gates.cx())
        with pytest.raises(ValueError):
            circ.append_ref_constant(cx, (0,), ())

    def test_radix_compat_checked(self):
        circ = QuditCircuit.pure([2, 3])
        cx = circ.cache_operation(gates.cx())
        with pytest.raises(ValueError):
            circ.append_ref_constant(cx, (0, 1), ())

    def test_out_of_range_wire(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        with pytest.raises(ValueError):
            circ.append_ref(rx, 4)

    def test_append_convenience(self):
        circ = QuditCircuit.qubits(2)
        circ.append(gates.u3(), 0)
        circ.append(gates.cx(), (0, 1), values=())
        assert len(circ) == 2
        assert circ.num_params == 3


class TestIntrospection:
    def test_depth(self):
        circ = QuditCircuit.qubits(2)
        u3 = circ.cache_operation(gates.u3())
        cx = circ.cache_operation(gates.cx())
        circ.append_ref(u3, 0)
        circ.append_ref(u3, 1)
        circ.append_ref_constant(cx, (0, 1))
        assert circ.depth() == 2

    def test_gate_counts(self):
        circ = QuditCircuit.qubits(2)
        u3 = circ.cache_operation(gates.u3())
        cx = circ.cache_operation(gates.cx())
        circ.append_ref(u3, 0)
        circ.append_ref(u3, 1)
        circ.append_ref_constant(cx, (0, 1))
        assert circ.gate_counts() == {"U3": 2, "CX": 1}

    def test_iteration(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        ops = list(circ)
        assert len(ops) == 1
        assert ops[0].location == (0,)


class TestGetUnitary:
    def test_memoizes_vm(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        a = circ.get_unitary([0.5])
        b = circ.get_unitary([0.5])
        assert np.allclose(a, b)
        assert len(circ._vm_cache) == 1

    def test_invalidates_on_append(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        u1 = circ.get_unitary([0.0])
        assert np.allclose(u1, np.eye(2))
        circ.append_ref_constant(rx, 0, (np.pi,))
        u2 = circ.get_unitary([0.0])
        assert not np.allclose(u2, np.eye(2))

    def test_returns_copy(self):
        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        a = circ.get_unitary([0.1])
        b = circ.get_unitary([0.9])
        assert not np.allclose(a, b)  # a is an independent copy


class TestPickle:
    def test_evaluated_circuit_round_trips(self):
        """A circuit with a warm TNVM memo must still pickle (the memo
        holds compiled closures, which are dropped and rebuilt lazily)
        — checkpoint snapshots and spawn workers both cross this
        boundary."""
        import pickle

        circ = QuditCircuit.qubits(1)
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        u_before = circ.get_unitary([0.3])
        assert len(circ._vm_cache) == 1  # memo is warm

        clone = pickle.loads(pickle.dumps(circ))
        assert clone._vm_cache == {}
        assert clone.structure_key() == circ.structure_key()
        np.testing.assert_array_equal(clone.get_unitary([0.3]), u_before)
        # The original keeps its warm memo.
        assert len(circ._vm_cache) == 1
