"""Gate-library tests: every gate against a NumPy reference."""

import math

import numpy as np
import pytest

from repro.circuit import gates

SQ2 = 1 / math.sqrt(2)


def u3_ref(t, p, l):
    return np.array(
        [
            [np.cos(t / 2), -np.exp(1j * l) * np.sin(t / 2)],
            [
                np.exp(1j * p) * np.sin(t / 2),
                np.exp(1j * (p + l)) * np.cos(t / 2),
            ],
        ]
    )


class TestConstantGates:
    def test_pauli_matrices(self):
        assert np.allclose(gates.x().unitary(), [[0, 1], [1, 0]])
        assert np.allclose(gates.y().unitary(), [[0, -1j], [1j, 0]])
        assert np.allclose(gates.z().unitary(), [[1, 0], [0, -1]])

    def test_hadamard(self):
        assert np.allclose(
            gates.h().unitary(), SQ2 * np.array([[1, 1], [1, -1]])
        )

    def test_phase_family(self):
        assert np.allclose(gates.s().unitary(), np.diag([1, 1j]))
        assert np.allclose(
            gates.t().unitary(), np.diag([1, np.exp(0.25j * np.pi)])
        )
        assert np.allclose(
            gates.sdg().unitary() @ gates.s().unitary(), np.eye(2)
        )
        assert np.allclose(
            gates.tdg().unitary() @ gates.t().unitary(), np.eye(2)
        )

    def test_sx_squares_to_x(self):
        sx = gates.sx().unitary()
        assert np.allclose(sx @ sx, gates.x().unitary())

    def test_cx(self):
        expected = np.eye(4)[[0, 1, 3, 2]]
        assert np.allclose(gates.cx().unitary(), expected)

    def test_cz(self):
        assert np.allclose(gates.cz().unitary(), np.diag([1, 1, 1, -1]))

    def test_swap_and_iswap(self):
        sw = gates.swap().unitary()
        assert np.allclose(sw @ sw, np.eye(4))
        isw = gates.iswap().unitary()
        assert np.allclose(np.abs(isw), np.abs(sw))

    def test_ccx_permutation(self):
        ccx = gates.ccx().unitary()
        expected = np.eye(8)[[0, 1, 2, 3, 4, 5, 7, 6]]
        assert np.allclose(ccx, expected)

    def test_cswap(self):
        cs = gates.cswap().unitary()
        assert np.allclose(cs[:4, :4], np.eye(4))
        assert np.allclose(cs[4:, 4:], gates.swap().unitary())


class TestParameterizedGates:
    def test_u3_reference(self):
        p = [0.3, 1.1, -0.7]
        assert np.allclose(gates.u3().unitary(p), u3_ref(*p))

    def test_u2_is_u3_special_case(self):
        phi, lam = 0.4, -1.3
        assert np.allclose(
            gates.u2().unitary([phi, lam]),
            u3_ref(np.pi / 2, phi, lam),
        )

    def test_u1_and_p(self):
        assert np.allclose(
            gates.u1().unitary([0.7]), np.diag([1, np.exp(0.7j)])
        )
        assert np.allclose(
            gates.p().unitary([0.7]), gates.u1().unitary([0.7])
        )

    def test_rotations_at_zero_are_identity(self):
        for g in (gates.rx(), gates.ry(), gates.rz()):
            assert np.allclose(g.unitary([0.0]), np.eye(2))

    def test_rotation_periodicity(self):
        for g in (gates.rx(), gates.ry(), gates.rz()):
            assert np.allclose(
                g.unitary([2 * np.pi]), -np.eye(2), atol=1e-12
            )

    def test_two_qubit_rotations_at_zero(self):
        for g in (gates.rxx(), gates.ryy(), gates.rzz()):
            assert np.allclose(g.unitary([0.0]), np.eye(4))

    def test_crz_controls(self):
        u = gates.crz().unitary([0.9])
        assert np.allclose(u[:2, :2], np.eye(2))
        assert np.allclose(u[2:, 2:], gates.rz().unitary([0.9]))

    @pytest.mark.parametrize(
        "factory",
        [gates.u1, gates.u2, gates.u3, gates.rx, gates.ry, gates.rz,
         gates.rxx, gates.ryy, gates.rzz, gates.cp, gates.crz],
    )
    def test_unitarity(self, factory):
        g = factory()
        params = np.random.default_rng(0).uniform(
            -np.pi, np.pi, g.num_params
        )
        assert g.is_unitary(params)


class TestQuditGates:
    def test_shift_cycles(self):
        x3 = gates.shift(3).unitary()
        state = np.array([1, 0, 0], dtype=complex)
        assert np.allclose(x3 @ state, [0, 1, 0])
        assert np.allclose(
            np.linalg.matrix_power(x3, 3), np.eye(3)
        )

    def test_clock_phases(self):
        z3 = gates.clock(3).unitary()
        w = np.exp(2j * np.pi / 3)
        assert np.allclose(np.diag(z3), [1, w, w**2])

    def test_weyl_commutation(self):
        # Z X = w X Z for the clock/shift pair (X|j> = |j+1 mod d>).
        d = 3
        x, z = gates.shift(d).unitary(), gates.clock(d).unitary()
        w = np.exp(2j * np.pi / d)
        assert np.allclose(z @ x, w * (x @ z))

    def test_qudit_hadamard_is_dft(self):
        h4 = gates.qudit_hadamard(4).unitary()
        assert np.allclose(h4 @ h4.conj().T, np.eye(4), atol=1e-12)

    def test_csum_action(self):
        c = gates.csum(3).unitary()
        # |2, 1> -> |2, (2+1)%3> = |2, 0>
        src = np.zeros(9)
        src[2 * 3 + 1] = 1
        dst = c @ src
        assert dst[2 * 3 + 0] == 1

    def test_qutrit_phase(self):
        u = gates.qutrit_phase().unitary([0.4, -0.9])
        assert np.allclose(
            u, np.diag([1, np.exp(0.4j), np.exp(-0.9j)])
        )

    def test_embedded_u3_levels(self):
        g = gates.embedded_u3(3, 0, 2)
        p = [0.7, 0.2, -0.5]
        u = g.unitary(p)
        ref = u3_ref(*p)
        sub = u[np.ix_([0, 2], [0, 2])]
        assert np.allclose(sub, ref)
        assert u[1, 1] == 1

    def test_embedded_u3_bad_levels(self):
        with pytest.raises(ValueError):
            gates.embedded_u3(3, 2, 1)

    def test_rdiag(self):
        g = gates.rdiag(3)
        assert g.num_params == 2
        u = g.unitary([0.1, 0.2])
        assert np.allclose(
            u, np.diag([1, np.exp(0.1j), np.exp(0.2j)])
        )


class TestCompositionality:
    def test_cx_is_controlled_x(self):
        assert np.allclose(
            gates.x().controlled().unitary(), gates.cx().unitary()
        )

    def test_dagger_inverts(self):
        g = gates.u3()
        p = [0.5, 1.0, -0.3]
        assert np.allclose(
            g.dagger().unitary(p) @ g.unitary(p), np.eye(2), atol=1e-12
        )

    def test_kron_parallel(self):
        g = gates.rx().kron(gates.rz())
        assert g.num_qudits == 2
        assert np.allclose(
            g.unitary([0.3, 0.7]),
            np.kron(
                gates.rx().unitary([0.3]), gates.rz().unitary([0.7])
            ),
        )

    def test_matmul_sequential(self):
        g = gates.h() @ gates.h()
        assert np.allclose(g.unitary(), np.eye(2), atol=1e-12)

    def test_memoized_factories(self):
        assert gates.u3() is gates.u3()
        assert gates.csum(3) is gates.csum(3)
