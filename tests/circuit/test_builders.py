"""Tests for the benchmark circuit builders (QFT, DTC, Figure 5)."""

import numpy as np
import pytest

from repro.circuit import (
    FIG5_BENCHMARKS,
    build_dtc_circuit,
    build_qft_circuit,
    build_qsearch_ansatz,
    fig5_circuit,
)


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        circ = build_qft_circuit(n)
        dim = 2**n
        w = np.exp(2j * np.pi / dim)
        dft = w ** np.outer(np.arange(dim), np.arange(dim)) / np.sqrt(dim)
        assert np.allclose(circ.get_unitary(()), dft, atol=1e-10)

    def test_gate_count(self):
        n = 6
        circ = build_qft_circuit(n)
        assert len(circ) == n * (n + 1) // 2 + n // 2

    def test_without_swaps(self):
        circ = build_qft_circuit(3, include_swaps=False)
        assert len(circ) == 6
        # bit-reversed DFT
        dim = 8
        w = np.exp(2j * np.pi / dim)
        dft = w ** np.outer(np.arange(dim), np.arange(dim)) / np.sqrt(dim)
        rev = [int(f"{i:03b}"[::-1], 2) for i in range(dim)]
        assert np.allclose(circ.get_unitary(())[rev, :], dft)

    def test_construction_has_no_parameters(self):
        assert build_qft_circuit(5).num_params == 0


class TestDTC:
    def test_layer_structure(self):
        n, layers = 6, 3
        circ = build_dtc_circuit(n, layers)
        counts = circ.gate_counts()
        assert counts["RX"] == n * layers
        assert counts["RZ"] == n * layers
        assert counts["RZZ"] == (n - 1) * layers

    def test_seed_determinism(self):
        a = build_dtc_circuit(4, 2, seed=7)
        b = build_dtc_circuit(4, 2, seed=7)
        assert np.allclose(a.get_unitary(()), b.get_unitary(()))

    def test_seed_sensitivity(self):
        a = build_dtc_circuit(4, 1, seed=1)
        b = build_dtc_circuit(4, 1, seed=2)
        assert not np.allclose(a.get_unitary(()), b.get_unitary(()))

    def test_all_constant(self):
        assert build_dtc_circuit(5, 2).num_params == 0

    def test_unitary_output(self):
        u = build_dtc_circuit(3, 2).get_unitary(())
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-10)


class TestAnsatz:
    def test_qubit_structure(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        counts = circ.gate_counts()
        assert counts["U3"] == 3 + 8
        assert counts["CX"] == 4
        assert circ.num_params == 3 * 11

    def test_qutrit_structure(self):
        circ = build_qsearch_ansatz(3, 4, 3)
        counts = circ.gate_counts()
        assert counts["P3"] == 11
        assert counts["CSUM3"] == 4
        assert circ.radices == (3, 3, 3)

    def test_single_qudit(self):
        circ = build_qsearch_ansatz(1, 5, 2)
        assert len(circ) == 1

    def test_higher_radix(self):
        circ = build_qsearch_ansatz(2, 1, 4)
        assert circ.radices == (4, 4)
        p = np.random.default_rng(0).uniform(
            -np.pi, np.pi, circ.num_params
        )
        u = circ.get_unitary(p)
        assert np.allclose(u @ u.conj().T, np.eye(16), atol=1e-9)


class TestFig5Table:
    def test_all_benchmarks_buildable(self):
        for name in FIG5_BENCHMARKS:
            circ = fig5_circuit(name)
            assert circ.num_params > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            fig5_circuit("17-qubit mega")

    def test_expected_members(self):
        assert "3-qubit shallow" in FIG5_BENCHMARKS
        assert "3-qubit deep" in FIG5_BENCHMARKS
        assert "3-qutrit shallow" in FIG5_BENCHMARKS
