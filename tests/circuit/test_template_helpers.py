"""Tests for the template cloning/extension helpers used by synthesis."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.utils import hilbert_schmidt_infidelity


def u3_pair() -> QuditCircuit:
    circ = QuditCircuit.qubits(2)
    u3 = circ.cache_operation(gates.u3())
    circ.append_ref(u3, 0)
    circ.append_ref(u3, 1)
    return circ


class TestCopy:
    def test_copy_is_independent(self):
        circ = u3_pair()
        clone = circ.copy()
        cx = clone.cache_operation(gates.cx())
        clone.append_ref(cx, (0, 1))
        assert circ.num_operations == 2
        assert clone.num_operations == 3
        assert circ.num_params == 6
        assert clone.num_params == 6  # CX adds no params

    def test_copy_shares_expression_refs(self):
        circ = u3_pair()
        ref = circ.cache_operation(gates.cx())
        clone = circ.copy()
        # The cached ref is valid on the clone without re-validation.
        assert clone.expression(ref) is circ.expression(ref)
        assert clone.cache_operation(gates.cx()) == ref

    def test_copy_preserves_unitary(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        p = np.random.default_rng(0).uniform(-1, 1, circ.num_params)
        assert np.allclose(circ.get_unitary(p), circ.copy().get_unitary(p))


class TestStructureKey:
    def test_identically_built_circuits_share_key(self):
        assert u3_pair().structure_key() == u3_pair().structure_key()
        assert (
            build_qsearch_ansatz(2, 3, 2).structure_key()
            == build_qsearch_ansatz(2, 3, 2).structure_key()
        )

    def test_location_changes_key(self):
        a = QuditCircuit.qubits(2)
        b = QuditCircuit.qubits(2)
        ra = a.cache_operation(gates.u3())
        rb = b.cache_operation(gates.u3())
        a.append_ref(ra, 0)
        b.append_ref(rb, 1)
        assert a.structure_key() != b.structure_key()

    def test_const_value_changes_key(self):
        # Constants are folded into the AOT program, so they are part
        # of the template identity; fresh params are not.
        a = QuditCircuit.qubits(1)
        b = QuditCircuit.qubits(1)
        ra = a.cache_operation(gates.rx())
        rb = b.cache_operation(gates.rx())
        a.append_ref_constant(ra, 0, (0.5,))
        b.append_ref_constant(rb, 0, (0.7,))
        assert a.structure_key() != b.structure_key()

    def test_key_tracks_appends(self):
        circ = u3_pair()
        key1 = circ.structure_key()
        circ.append_ref(circ.cache_operation(gates.cx()), (0, 1))
        assert circ.structure_key() != key1

    def test_copy_has_same_key(self):
        circ = build_qsearch_ansatz(3, 2, 2)
        assert circ.copy().structure_key() == circ.structure_key()


class TestWithoutOperation:
    def test_removes_gate_and_renumbers(self):
        circ = build_qsearch_ansatz(2, 1, 2)  # U3 U3 CX U3 U3
        smaller, kept = circ.without_operation(2)  # drop the CX
        assert smaller.num_operations == 4
        assert smaller.num_params == circ.num_params
        assert kept == tuple(range(circ.num_params))

    def test_param_remap_preserves_semantics(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        p = np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
        # Deleting the *last* gate: survivors keep their values.
        smaller, kept = circ.without_operation(-1)
        sub = p[list(kept)]
        ref = QuditCircuit.qubits(2)
        u3 = ref.cache_operation(gates.u3())
        cx = ref.cache_operation(gates.cx())
        ref.append_ref(u3, 0)
        ref.append_ref(u3, 1)
        ref.append_ref(cx, (0, 1))
        ref.append_ref(u3, 0)
        assert (
            hilbert_schmidt_infidelity(
                ref.get_unitary(sub), smaller.get_unitary(sub)
            )
            < 1e-12
        )

    def test_negative_and_out_of_range(self):
        circ = u3_pair()
        smaller, kept = circ.without_operation(-2)
        assert smaller.num_operations == 1
        assert kept == (3, 4, 5)  # wire-1 gate's params survive
        with pytest.raises(IndexError):
            circ.without_operation(2)
        with pytest.raises(IndexError):
            circ.without_operation(-3)

    def test_original_untouched(self):
        circ = u3_pair()
        circ.without_operation(0)
        assert circ.num_operations == 2
        assert circ.num_params == 6


class TestAppendCircuit:
    def test_identity_mapping_fresh_params(self):
        a = u3_pair()
        b = build_qsearch_ansatz(2, 1, 2)
        added = a.append_circuit(b)
        assert len(added) == b.num_params
        assert a.num_params == 6 + b.num_params
        assert a.num_operations == 2 + b.num_operations

    def test_values_bound_as_constants(self):
        ansatz = build_qsearch_ansatz(2, 1, 2)
        p = np.random.default_rng(2).uniform(-np.pi, np.pi, ansatz.num_params)
        host = QuditCircuit.qubits(2)
        added = host.append_circuit(ansatz, params=p)
        assert added == ()
        assert host.num_params == 0
        assert (
            hilbert_schmidt_infidelity(
                ansatz.get_unitary(p), host.get_unitary(())
            )
            < 1e-12
        )

    def test_wire_mapping(self):
        block = QuditCircuit.qubits(2)
        cx = block.cache_operation(gates.cx())
        block.append_ref_constant(cx, (0, 1))
        host = QuditCircuit.qubits(3)
        host.append_circuit(block, location=(2, 0))
        op = next(iter(host))
        assert op.location == (2, 0)

    def test_fresh_param_mapping_roundtrip(self):
        block = build_qsearch_ansatz(2, 1, 2)
        p = np.random.default_rng(3).uniform(-np.pi, np.pi, block.num_params)
        host = QuditCircuit.qubits(2)
        added = host.append_circuit(block)
        host_params = np.empty(host.num_params)
        for j, src in enumerate(added):
            host_params[j] = p[src]
        assert (
            hilbert_schmidt_infidelity(
                block.get_unitary(p), host.get_unitary(host_params)
            )
            < 1e-12
        )

    def test_validation(self):
        host = QuditCircuit.qubits(2)
        block = u3_pair()
        with pytest.raises(ValueError):
            host.append_circuit(block, location=(0,))
        with pytest.raises(ValueError):
            host.append_circuit(block, params=np.zeros(1))
        qutrit = QuditCircuit.qutrits(1)
        qutrit.append(gates.qutrit_phase(), 0)
        with pytest.raises(ValueError):
            host.append_circuit(qutrit, location=(0,))  # radix mismatch

    def test_repeated_wire_mapping_rejected(self):
        block = QuditCircuit.qubits(2)
        cx = block.cache_operation(gates.cx())
        block.append_ref_constant(cx, (0, 1))
        host = QuditCircuit.qubits(3)
        with pytest.raises(ValueError):
            host.append_circuit(block, location=(1, 1))
        assert host.num_operations == 0  # nothing partially appended

    def test_failed_append_leaves_host_untouched(self):
        # The second gate's wire has the wrong radix; the first gate
        # must not survive the failed append (no partial mutation).
        host = QuditCircuit([2, 3])
        block = u3_pair()
        with pytest.raises(ValueError):
            host.append_circuit(block)
        assert host.num_operations == 0
        assert host.num_params == 0
        assert np.allclose(host.get_unitary(()), np.eye(6))
