"""Tests for contraction-tree materialization and trace pre-application."""

import numpy as np

from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.tensornet.compiler import plan_contraction
from repro.tensornet.network import TNTensor
from repro.tensornet.path import find_contraction_path
from repro.tensornet.tree import _pretrace_if_needed, build_contraction_tree


def make_tree(circ):
    return plan_contraction(circ.to_tensor_network())


class TestTree:
    def test_leaf_count(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        tree = make_tree(circ)
        assert len(tree.leaves()) == len(circ)

    def test_internal_count(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        tree = make_tree(circ)
        assert len(tree.internal()) == len(circ) - 1

    def test_root_covers_open_indices(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        tree = make_tree(circ)
        net = tree.network
        assert set(tree.root.indices) == set(net.open_indices)

    def test_contracted_disjoint_from_result(self):
        circ = build_qsearch_ansatz(3, 6, 2)
        tree = make_tree(circ)
        for node in tree.internal():
            assert not set(node.contracted) & set(node.indices)

    def test_params_propagate_upward(self):
        circ = QuditCircuit.pure([2, 2])
        u3 = circ.cache_operation(gates.u3())
        cx = circ.cache_operation(gates.cx())
        circ.append_ref(u3, 0)
        circ.append_ref_constant(cx, (0, 1))
        tree = make_tree(circ)
        assert tree.root.params == (0, 1, 2)

    def test_constant_nodes_identified(self):
        circ = QuditCircuit.pure([2, 2])
        cx = circ.cache_operation(gates.cx())
        circ.append_ref_constant(cx, (0, 1))
        circ.append_ref_constant(cx, (0, 1))
        tree = make_tree(circ)
        assert len(tree.constant_nodes()) == len(tree.nodes)

    def test_path_mismatch_detected(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        net = circ.to_tensor_network()
        # A path that leaves two tensors standing is invalid.
        tensors = [frozenset(t.indices) for t in net.tensors]
        path = find_contraction_path(
            tensors, net.index_dims, set(net.open_indices)
        )[:-1]
        if path:
            import pytest

            with pytest.raises(ValueError):
                build_contraction_tree(net, path)


class TestPretrace:
    def test_traced_leaf_expression(self):
        # Build a tensor whose output and input share an index (a
        # closed loop on one wire): the leaf must be pre-traced.
        m = gates.rx().matrix.kron(
            gates.ry().matrix.rename_params({"theta": "s"})
        )
        tensor = TNTensor(
            tensor_id=0,
            expression=m,
            slots=(),
            indices=(10, 11, 10, 12),  # wire 0 looped
            location=(0, 1),
        )
        traced = _pretrace_if_needed(tensor)
        assert traced.indices == (11, 12)
        # Trace over the RX factor of the kron: Tr(RX) * RY.
        t, s = 0.7, -0.4
        rx_tr = 2 * np.cos(t / 2)
        ry = np.array(
            [
                [np.cos(s / 2), -np.sin(s / 2)],
                [np.sin(s / 2), np.cos(s / 2)],
            ]
        )
        assert np.allclose(
            traced.expression.evaluate([t, s]), rx_tr * ry
        )

    def test_untraced_leaf_passthrough(self):
        net = build_qsearch_ansatz(2, 1, 2).to_tensor_network()
        for t in net.tensors:
            assert _pretrace_if_needed(t) is t
