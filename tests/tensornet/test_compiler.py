"""Tests for the AOT compiler: section split, fusion, dedup, correctness."""

import numpy as np
import pytest

from repro.circuit import (
    QuditCircuit,
    build_dtc_circuit,
    build_qft_circuit,
    build_qsearch_ansatz,
    gates,
)
from repro.tensornet.compiler import compile_network
from repro.tnvm import TNVM, Differentiation


class TestSections:
    def test_fully_constant_circuit_is_all_constant(self):
        prog = build_dtc_circuit(3, 1).compile()
        assert prog.dynamic_section == []
        assert len(prog.const_section) > 0

    def test_constant_subtrees_split_out(self):
        circ = QuditCircuit.pure([2, 2])
        u3 = circ.cache_operation(gates.u3())
        cx = circ.cache_operation(gates.cx())
        circ.append_ref_constant(cx, (0, 1))
        circ.append_ref_constant(cx, (0, 1))
        circ.append_ref(u3, 0)
        prog = circ.compile()
        # The two CNOTs form a parameter-free subtree.
        assert len(prog.const_section) >= 1
        assert len(prog.dynamic_section) >= 1

    def test_parameterized_circuit_has_dynamic_output(self):
        prog = build_qsearch_ansatz(2, 2, 2).compile()
        out_spec = prog.buffers[prog.output_buffer]
        assert not out_spec.constant
        assert out_spec.params == tuple(range(prog.num_params))


class TestExpressionDedup:
    def test_repeated_gate_compiled_once(self):
        circ = build_qsearch_ansatz(3, 8, 2)  # many U3s, many CXs
        prog = circ.compile()
        names = [e.name for e in prog.expressions]
        # U3 appears once, CX fused variants may add a couple more.
        assert names.count("U3") == 1

    def test_constant_binding_creates_distinct_expression(self):
        circ = QuditCircuit.pure([2])
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        circ.append_ref_constant(rx, 0, (0.5,))
        prog = circ.compile()
        # One parameterized RX, one constant-bound RX.
        assert len(prog.expressions) == 2


class TestFusion:
    def test_no_transposes_for_leaves(self):
        # Every leaf that needs a permuted layout gets its expression
        # rewritten; TRANSPOSE instructions only appear for internal
        # intermediates (or the final output permutation).
        circ = QuditCircuit.pure([2, 2])
        cx = circ.cache_operation(gates.cx())
        circ.append_ref_constant(cx, (1, 0))  # reversed location
        prog = circ.compile()
        assert all(
            i.opcode != "TRANSPOSE" for i in prog.const_section
        ), prog.disassemble()

    def test_reversed_cx_correct(self):
        circ = QuditCircuit.pure([2, 2])
        cx = circ.cache_operation(gates.cx())
        circ.append_ref_constant(cx, (1, 0))
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]],
            dtype=complex,
        )
        assert np.allclose(vm.evaluate(()), expected)

    def test_nonadjacent_gate(self):
        circ = QuditCircuit.pure([2, 2, 2])
        cx = circ.cache_operation(gates.cx())
        circ.append_ref_constant(cx, (0, 2))
        u = TNVM(circ.compile(), diff=Differentiation.NONE).evaluate(())
        from repro.baseline.evaluator import embed
        from repro.baseline.gates import CXGate

        expected = embed(CXGate().get_unitary(()), (0, 2), (2, 2, 2))
        assert np.allclose(u, expected)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_qsearch_ansatz(2, 2, 2),
            lambda: build_qsearch_ansatz(3, 4, 2),
            lambda: build_qsearch_ansatz(2, 2, 3),
            lambda: build_qft_circuit(3),
            lambda: build_dtc_circuit(3, 2),
        ],
        ids=["2q", "3q", "2qutrit", "qft3", "dtc3"],
    )
    def test_compiled_program_validates(self, builder):
        prog = builder().compile()
        prog.validate()
        assert prog.output_shape[0] == prog.output_shape[1]

    def test_mixed_radix_circuit(self):
        # A [2, 3] circuit using an embedded U3 on the qutrit and a
        # qubit RX: checks general qudit dims throughout the pipeline.
        circ = QuditCircuit.pure([2, 3])
        rx = circ.cache_operation(gates.rx())
        eu = circ.cache_operation(gates.embedded_u3(3, 0, 1))
        circ.append_ref(rx, 0)
        circ.append_ref(eu, 1)
        params = np.random.default_rng(0).uniform(-np.pi, np.pi, 4)
        u = circ.get_unitary(params)
        rx_m = gates.rx().unitary(params[:1])
        eu_m = gates.embedded_u3(3, 0, 1).unitary(params[1:])
        assert np.allclose(u, np.kron(rx_m, eu_m))

    def test_empty_network_rejected(self):
        from repro.tensornet.network import TensorNetwork

        with pytest.raises(ValueError):
            compile_network(TensorNetwork())

    def test_single_gate_circuit(self):
        circ = QuditCircuit.pure([2])
        rx = circ.cache_operation(gates.rx())
        circ.append_ref(rx, 0)
        u = circ.get_unitary([0.9])
        assert np.allclose(u, gates.rx().unitary([0.9]))
