"""Tests for the Table II bytecode: rendering, validation, and direct
TNVM execution of hand-written programs (including HADAMARD)."""

import numpy as np
import pytest

from repro.circuit import gates
from repro.tensornet.bytecode import BufferSpec, Instruction, Program
from repro.tnvm import TNVM, Differentiation


class TestInstructionRender:
    def test_write(self):
        i = Instruction(opcode="WRITE", expr_id=2, slots=(0, 1), out_buf=3)
        assert i.render() == "WRITE     e2[0, 1] -> b3"

    def test_matmul(self):
        i = Instruction(
            opcode="MATMUL", a_buf=5, b_buf=7, out_buf=13,
            a_shape=(2, 2), b_shape=(2, 2),
        )
        assert "MATMUL" in i.render()
        assert "b5" in i.render() and "b13" in i.render()

    def test_transpose(self):
        i = Instruction(
            opcode="TRANSPOSE", a_buf=1, out_buf=2,
            shape=(2, 2, 2, 2), perm=(1, 0, 3, 2),
        )
        assert "perm=[1, 0, 3, 2]" in i.render()


def hadamard_program() -> Program:
    """out = RZ(theta) .* RZ(phi), element-wise (diagonal gates)."""
    rz = gates.rz().matrix
    prog = Program(num_params=2, radices=(2,))
    prog.expressions = [rz]
    prog.buffers = [
        BufferSpec(0, 4, (0,), False),
        BufferSpec(1, 4, (1,), False),
        BufferSpec(2, 4, (0, 1), False),
    ]
    prog.dynamic_section = [
        Instruction(
            opcode="WRITE", expr_id=0, slots=(0,), out_buf=0, params=(0,)
        ),
        Instruction(
            opcode="WRITE", expr_id=0, slots=(1,), out_buf=1, params=(1,)
        ),
        Instruction(
            opcode="HADAMARD", a_buf=0, b_buf=1, out_buf=2,
            a_shape=(2, 2), b_shape=(2, 2), params=(0, 1),
        ),
    ]
    prog.output_buffer = 2
    prog.output_shape = (2, 2)
    return prog


class TestProgram:
    def test_validate_accepts_good_program(self):
        hadamard_program().validate()

    def test_validate_rejects_read_before_write(self):
        prog = hadamard_program()
        prog.dynamic_section = prog.dynamic_section[1:]
        with pytest.raises(ValueError, match="read before written"):
            prog.validate()

    def test_validate_rejects_bad_opcode(self):
        prog = hadamard_program()
        prog.dynamic_section.append(
            Instruction(opcode="NOOP", out_buf=0)
        )
        with pytest.raises(ValueError, match="bad opcode"):
            prog.validate()

    def test_validate_rejects_bad_expr(self):
        prog = hadamard_program()
        prog.dynamic_section[0] = Instruction(
            opcode="WRITE", expr_id=9, slots=(0,), out_buf=0, params=(0,)
        )
        with pytest.raises(ValueError, match="expr_id"):
            prog.validate()

    def test_validate_rejects_slot_arity(self):
        prog = hadamard_program()
        prog.dynamic_section[0] = Instruction(
            opcode="WRITE", expr_id=0, slots=(0, 1), out_buf=0,
            params=(0, 1),
        )
        with pytest.raises(ValueError, match="slot arity"):
            prog.validate()

    def test_disassemble_lists_sections(self):
        text = hadamard_program().disassemble()
        assert "; dynamic section" in text
        assert "HADAMARD" in text

    def test_memory_accounting(self):
        assert hadamard_program().memory_elements == 12


class TestHadamardExecution:
    def test_value(self):
        vm = TNVM(hadamard_program(), diff=Differentiation.NONE)
        t, p = 0.8, -0.3
        u = vm.evaluate((t, p))
        rz = lambda a: np.diag(
            [np.exp(-0.5j * a), np.exp(0.5j * a)]
        )
        assert np.allclose(u, rz(t) * rz(p))

    def test_gradient(self):
        vm = TNVM(hadamard_program(), diff=Differentiation.GRADIENT)
        t, p = 0.8, -0.3
        u, g = vm.evaluate_with_grad((t, p))
        eps = 1e-7
        vm2 = TNVM(hadamard_program(), diff=Differentiation.NONE)
        for k, bump in enumerate([(t + eps, p), (t, p + eps)]):
            fd = (vm2.evaluate(bump).copy() - u) / eps
            assert np.allclose(g[k], fd, atol=1e-5)
