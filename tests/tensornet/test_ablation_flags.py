"""Tests for the compiler's ablation flags (fusion, hoisting, paths)."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.tensornet.path import (
    _sequential_path,
    find_contraction_path,
    optimal_path,
)
from repro.tnvm import TNVM, Differentiation


def reversed_cx_circuit() -> QuditCircuit:
    circ = QuditCircuit.pure([2, 2])
    u3 = circ.cache_operation(gates.u3())
    cx = circ.cache_operation(gates.cx())
    circ.append_ref(u3, 0)
    circ.append_ref_constant(cx, (1, 0))
    circ.append_ref(u3, 1)
    return circ


def count_transposes(program) -> int:
    return sum(
        1
        for instr in program.const_section + program.dynamic_section
        if instr.opcode == "TRANSPOSE"
    )


class TestFusionFlag:
    def test_unfused_has_more_transposes(self):
        circ = reversed_cx_circuit()
        assert count_transposes(circ.compile(fusion=False)) > \
            count_transposes(circ.compile(fusion=True))

    def test_semantics_identical(self):
        circ = reversed_cx_circuit()
        p = tuple(np.random.default_rng(0).uniform(-1, 1, circ.num_params))
        a = TNVM(circ.compile(fusion=True), diff=Differentiation.NONE)
        b = TNVM(circ.compile(fusion=False), diff=Differentiation.NONE)
        assert np.allclose(a.evaluate(p), b.evaluate(p), atol=1e-12)

    def test_gradients_identical(self):
        circ = reversed_cx_circuit()
        p = tuple(np.random.default_rng(1).uniform(-1, 1, circ.num_params))
        _, ga = TNVM(circ.compile(fusion=True)).evaluate_with_grad(p)
        ga = ga.copy()
        _, gb = TNVM(circ.compile(fusion=False)).evaluate_with_grad(p)
        assert np.allclose(ga, gb, atol=1e-12)


class TestHoistFlag:
    def test_no_constant_section_when_disabled(self):
        circ = reversed_cx_circuit()
        prog = circ.compile(hoist_constants=False)
        assert prog.const_section == []
        assert all(not b.constant for b in prog.buffers)
        prog.validate()

    def test_semantics_identical(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        p = tuple(np.random.default_rng(2).uniform(-1, 1, circ.num_params))
        a = TNVM(circ.compile(hoist_constants=True),
                 diff=Differentiation.NONE)
        b = TNVM(circ.compile(hoist_constants=False),
                 diff=Differentiation.NONE)
        assert np.allclose(a.evaluate(p), b.evaluate(p), atol=1e-12)


class TestPathStrategies:
    def test_sequential_path_shape(self):
        assert _sequential_path(1) == []
        assert _sequential_path(2) == [(0, 1)]
        assert _sequential_path(4) == [(0, 1), (0, 2), (0, 1)]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown path strategy"):
            find_contraction_path(
                [frozenset({1}), frozenset({1})], {1: 2}, set(),
                strategy="quantum",
            )

    def test_optimal_guard_on_large_networks(self):
        tensors = [frozenset({k, k + 1}) for k in range(20)]
        dims = {k: 2 for k in range(21)}
        with pytest.raises(ValueError, match="exponential"):
            optimal_path(tensors, dims, frozenset({0, 20}))

    @pytest.mark.parametrize(
        "strategy", ["auto", "optimal", "greedy", "sequential"]
    )
    def test_all_strategies_produce_correct_unitary(self, strategy):
        circ = build_qsearch_ansatz(2, 2, 2)
        p = tuple(np.random.default_rng(3).uniform(-1, 1, circ.num_params))
        vm = TNVM(
            circ.compile(path_strategy=strategy),
            diff=Differentiation.NONE,
        )
        reference = circ.get_unitary(p)
        assert np.allclose(vm.evaluate(p), reference, atol=1e-10)
