"""Tests for the contraction-path solvers."""

import itertools

import pytest

from repro.circuit import build_qsearch_ansatz, gates
from repro.tensornet.path import (
    OPTIMAL_CUTOFF,
    find_contraction_path,
    greedy_path,
    optimal_path,
    path_cost,
)


def chain_network(n: int):
    """A 1-D matrix chain: T0 -x0- T1 -x1- ... with an open leg on
    each end, all bond dims 2 except one fat bond."""
    dims = {}
    tensors = []
    for k in range(n):
        left = k - 1 if k > 0 else "openL"
        right = k if k < n - 1 else "openR"
        tensors.append(frozenset({f"b{left}", f"b{right}"}))
    for k in range(n - 1):
        dims[f"b{k}"] = 2
    dims["bopenL"] = dims["bopenR"] = 2
    opens = frozenset({"bopenL", "bopenR"})
    # normalize names used above
    tensors = [
        frozenset(
            f"b{x}" if not str(x).startswith("b") else x for x in t
        )
        for t in tensors
    ]
    return tensors, dims, opens


def circuit_network(circ):
    net = circ.to_tensor_network()
    return (
        [frozenset(t.indices) for t in net.tensors],
        net.index_dims,
        frozenset(net.open_indices),
    )


def brute_force_best(tensors, dims, opens) -> float:
    """Exhaustive enumeration of all contraction orders (tiny n)."""
    best = float("inf")

    def rec(current, acc):
        nonlocal best
        if acc >= best:
            return
        if len(current) == 1:
            best = min(best, acc)
            return
        for i, j in itertools.combinations(range(len(current)), 2):
            a, b = current[i], current[j]
            cost = 1.0
            for idx in a | b:
                cost *= dims[idx]
            shared = a & b
            keep = (a | b) - (shared - opens)
            rest = [
                t for k, t in enumerate(current) if k not in (i, j)
            ]
            rec(rest + [keep], acc + cost)

    rec(list(tensors), 0.0)
    return best


class TestOptimal:
    @pytest.mark.parametrize(
        "qudits,depth", [(2, 1), (3, 1)],
        ids=["2q-d1", "3q-d1"],
    )
    def test_matches_brute_force_on_small_circuits(self, qudits, depth):
        circ = build_qsearch_ansatz(qudits, depth, 2)
        tensors, dims, opens = circuit_network(circ)
        assert len(tensors) <= 8, "keep brute force tractable"
        path = optimal_path(tensors, dims, opens)
        assert path_cost(tensors, dims, opens, path) == pytest.approx(
            brute_force_best(tensors, dims, opens)
        )

    def test_path_is_complete(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        tensors, dims, opens = circuit_network(circ)
        path = optimal_path(tensors, dims, opens)
        assert len(path) == len(tensors) - 1

    def test_two_tensors(self):
        tensors = [frozenset({"a", "b"}), frozenset({"b", "c"})]
        dims = {"a": 2, "b": 2, "c": 2}
        path = optimal_path(tensors, dims, frozenset({"a", "c"}))
        assert path == [(0, 1)]


class TestGreedy:
    def test_valid_and_complete(self):
        circ = build_qsearch_ansatz(3, 10, 2)
        tensors, dims, opens = circuit_network(circ)
        path = greedy_path(tensors, dims, opens)
        assert len(path) == len(tensors) - 1
        # must be executable: indices in range at each step
        count = len(tensors)
        for i, j in path:
            assert 0 <= i < j < count
            count -= 1

    def test_handles_disconnected_networks(self):
        # Two independent 2-tensor components.
        tensors = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"x", "y"}),
            frozenset({"y", "z"}),
        ]
        dims = {k: 2 for k in "abcxyz"}
        opens = frozenset({"a", "c", "x", "z"})
        path = greedy_path(tensors, dims, opens)
        assert len(path) == 3

    def test_greedy_not_catastrophically_worse(self):
        # Keep the optimal-DP comparator within its tractable range.
        circ = build_qsearch_ansatz(3, 1, 2)
        tensors, dims, opens = circuit_network(circ)
        assert len(tensors) <= 7
        g = path_cost(
            tensors, dims, opens, greedy_path(tensors, dims, opens)
        )
        o = path_cost(
            tensors, dims, opens, optimal_path(tensors, dims, opens)
        )
        assert g <= 20 * o


class TestDispatch:
    def test_small_uses_optimal(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        tensors, dims, opens = circuit_network(circ)
        assert len(tensors) <= OPTIMAL_CUTOFF
        path = find_contraction_path(tensors, dims, opens)
        assert path_cost(tensors, dims, opens, path) == pytest.approx(
            path_cost(
                tensors, dims, opens, optimal_path(tensors, dims, opens)
            )
        )

    def test_single_tensor_empty_path(self):
        assert find_contraction_path([frozenset({"a"})], {"a": 2}, {"a"}) == []

    def test_large_uses_greedy_quickly(self):
        circ = build_qsearch_ansatz(3, 30, 2)
        tensors, dims, opens = circuit_network(circ)
        assert len(tensors) > OPTIMAL_CUTOFF
        path = find_contraction_path(tensors, dims, opens)
        assert len(path) == len(tensors) - 1
