"""Unit tests for tensor-network lowering."""

import pytest

from repro.circuit import QuditCircuit, gates
from repro.tensornet.network import ParamSlot, TensorNetwork


def two_qubit_net() -> TensorNetwork:
    circ = QuditCircuit.pure([2, 2])
    u3 = circ.cache_operation(gates.u3())
    cx = circ.cache_operation(gates.cx())
    circ.append_ref(u3, 0)
    circ.append_ref_constant(cx, (0, 1))
    return circ.to_tensor_network()


class TestLowering:
    def test_tensor_count(self):
        net = two_qubit_net()
        # u3, cx, plus... wire 1 is touched by cx so no identity stitch
        assert len(net.tensors) == 2

    def test_index_wiring(self):
        net = two_qubit_net()
        u3, cx = net.tensors
        # u3 output on wire 0 feeds cx input on wire 0.
        assert u3.indices[0] == cx.indices[2]

    def test_open_indices_distinct(self):
        net = two_qubit_net()
        opens = net.open_indices
        assert len(set(opens)) == len(opens) == 4

    def test_untouched_wire_gets_identity(self):
        circ = QuditCircuit.pure([2, 2])
        u3 = circ.cache_operation(gates.u3())
        circ.append_ref(u3, 0)
        net = circ.to_tensor_network()
        assert len(net.tensors) == 2  # u3 + identity stitch on wire 1
        assert net.tensors[1].expression.name == "I"

    def test_empty_circuit_all_identities(self):
        net = QuditCircuit.pure([2, 2, 2]).to_tensor_network()
        assert len(net.tensors) == 3

    def test_param_slots(self):
        net = two_qubit_net()
        u3 = net.tensors[0]
        assert [s.kind for s in u3.slots] == ["param"] * 3
        assert u3.param_indices == (0, 1, 2)
        cx = net.tensors[1]
        assert cx.param_indices == ()

    def test_index_dims_qutrit(self):
        circ = QuditCircuit.pure([3, 3])
        csum = circ.cache_operation(gates.csum(3))
        circ.append_ref_constant(csum, (0, 1))
        net = circ.to_tensor_network()
        assert all(d == 3 for d in net.index_dims.values())
        assert net.dim == 9

    def test_endpoints_at_most_two(self):
        net = two_qubit_net()
        for idx, ends in net.index_endpoints().items():
            assert 1 <= len(ends) <= 2

    def test_repeated_qudit_rejected(self):
        with pytest.raises(ValueError):
            TensorNetwork.from_operations(
                (2, 2),
                [(gates.cx().matrix, (0, 0), ())],
                0,
            )

    def test_radix_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TensorNetwork.from_operations(
                (2, 2),
                [(gates.csum(3).matrix, (0, 1), ())],
                0,
            )


class TestParamSlot:
    def test_factories(self):
        p = ParamSlot.param(3)
        assert p.kind == "param" and p.index == 3
        c = ParamSlot.const(1.5)
        assert c.kind == "const" and c.value == 1.5
