"""Listing 1 vs Listing 2 equivalence (the paper's extensibility claim).

The hand-written U3Gate class (Listing 1, ~60 lines with a manually
derived gradient) and the one-expression QGL definition (Listing 2)
must produce identical unitaries and identical analytical gradients.
"""

import numpy as np
import pytest

from repro.baseline.gates import U3Gate
from repro.expression import UnitaryExpression

LISTING2 = """U3(θ, ϕ, λ) {
    [[cos(θ/2), ~e^(i*λ)*sin(θ/2)],
     [e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2)]]
}"""


@pytest.fixture(scope="module")
def u3_pair():
    return U3Gate(), UnitaryExpression(LISTING2)


@pytest.mark.parametrize("seed", range(8))
def test_unitaries_identical(u3_pair, seed):
    listing1, listing2 = u3_pair
    params = np.random.default_rng(seed).uniform(-2 * np.pi, 2 * np.pi, 3)
    assert np.allclose(
        listing1.get_unitary(params),
        listing2.unitary(params),
        atol=1e-13,
    )


@pytest.mark.parametrize("seed", range(8))
def test_gradients_identical(u3_pair, seed):
    listing1, listing2 = u3_pair
    params = np.random.default_rng(100 + seed).uniform(-np.pi, np.pi, 3)
    manual = listing1.get_grad(params)
    _, derived = listing2.compiled(grad=True).unitary_and_grad(params)
    assert np.allclose(manual, derived, atol=1e-12)


def test_jit_gradient_against_manual_via_cache(u3_pair):
    """The JIT'd writer (what the TNVM actually calls) agrees too."""
    listing1, listing2 = u3_pair
    compiled = listing2.compiled()
    params = (0.9, -0.4, 2.2)
    out = np.zeros((2, 2), dtype=np.complex128)
    grad = np.zeros((3, 2, 2), dtype=np.complex128)
    compiled.write_constants(out, grad)
    compiled.write(params, out, grad)
    assert np.allclose(out, listing1.get_unitary(params))
    assert np.allclose(grad, listing1.get_grad(params))


def test_qgl_definition_is_shorter():
    """The extensibility argument, quantified: one natural expression
    versus dozens of lines of boilerplate and matrix calculus."""
    import inspect

    listing1_lines = len(inspect.getsource(U3Gate).splitlines())
    listing2_lines = len(LISTING2.splitlines())
    assert listing2_lines * 5 < listing1_lines
