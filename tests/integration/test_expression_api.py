"""Tests for the UnitaryExpression public API (composability surface)."""

import numpy as np
import pytest

from repro.circuit import gates
from repro.expression import UnitaryExpression
from repro.symbolic import expr as E


class TestConstruction:
    def test_from_qgl_text(self):
        g = UnitaryExpression("G(t) { [[e^(~i*t), 0], [0, e^(i*t)]] }")
        assert g.name == "G"
        assert g.params == ("t",)
        assert g.dim == 2

    def test_from_matrix(self):
        g = UnitaryExpression(gates.rx().matrix)
        assert g.num_params == 1

    def test_rename_on_construction(self):
        g = UnitaryExpression(gates.rx().matrix, name="MyRX")
        assert g.name == "MyRX"

    def test_from_numpy(self):
        from repro.utils import random_unitary

        u = random_unitary(4, rng=0)
        g = UnitaryExpression.from_numpy(u, name="RAND")
        assert g.num_params == 0
        assert np.allclose(g.unitary(), u)

    def test_rejects_non_square(self):
        from repro.symbolic.matrix import ExpressionMatrix

        rect = ExpressionMatrix([[E.ONE, E.ZERO]])
        with pytest.raises(ValueError):
            UnitaryExpression(rect)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            UnitaryExpression(42)

    def test_immutability(self):
        g = gates.rx()
        with pytest.raises(AttributeError):
            g.matrix = None


class TestParameterSurgery:
    def test_bind(self):
        g = gates.u3().bind({"phi": 0.0, "lambda": 0.0})
        assert g.params == ("theta",)
        assert np.allclose(
            g.unitary([0.4]), gates.ry().unitary([0.4]), atol=1e-12
        )

    def test_substitute_ties_parameters(self):
        # U3(t, t, t): one knob drives all three angles.
        tied = gates.u3().substitute(
            {"phi": E.var("t"), "lambda": E.var("t"), "theta": E.var("t")}
        )
        assert tied.params == ("t",)
        assert np.allclose(
            tied.unitary([0.8]),
            gates.u3().unitary([0.8, 0.8, 0.8]),
        )

    def test_substitute_scaling(self):
        # RX with a doubled angle.
        double = gates.rx().substitute({"theta": E.TWO * E.var("w")})
        assert np.allclose(
            double.unitary([0.3]), gates.rx().unitary([0.6])
        )

    def test_rename(self):
        g = gates.rx().rename_params({"theta": "angle"})
        assert g.params == ("angle",)


class TestComposition:
    def test_kron_keeps_params_independent(self):
        g = gates.rx().kron(gates.rx())
        assert g.num_params == 2
        assert np.allclose(
            g.unitary([0.3, 0.9]),
            np.kron(
                gates.rx().unitary([0.3]), gates.rx().unitary([0.9])
            ),
        )

    def test_matmul_keeps_params_independent(self):
        g = gates.rz() @ gates.rz()
        assert g.num_params == 2
        assert np.allclose(
            g.unitary([0.3, 0.9]),
            gates.rz().unitary([0.3]) @ gates.rz().unitary([0.9]),
        )

    def test_double_control(self):
        ccrx = gates.rx().controlled().controlled()
        u = ccrx.unitary([0.5])
        assert u.shape == (8, 8)
        assert np.allclose(u[:6, :6], np.eye(6))
        assert np.allclose(u[6:, 6:], gates.rx().unitary([0.5]))

    def test_conjugate_transpose_consistency(self):
        g = gates.u3()
        p = [0.4, -0.2, 1.7]
        assert np.allclose(
            g.dagger().unitary(p),
            g.conjugate().transpose().unitary(p),
        )

    def test_compiled_entry_point(self):
        compiled = gates.ry().compiled()
        assert np.allclose(
            compiled.unitary((0.7,)), gates.ry().unitary([0.7])
        )

    def test_repr(self):
        assert "U3" in repr(gates.u3())
