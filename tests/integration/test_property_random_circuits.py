"""Hypothesis property tests over the whole compilation pipeline.

The central invariant of the reproduction: for *any* circuit, the
AOT-compiled TNVM (tensor networks, fusion, constant hoisting, JIT'd
expressions, forward-mode AD) computes exactly the same unitary and
gradient as the straightforward dense evaluator of the baseline
framework.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.evaluator import DenseEvaluator
from repro.tnvm import TNVM, Differentiation

from ..conftest import build_random_circuit_pair


@st.composite
def circuit_specs(draw):
    seed = draw(st.integers(0, 10_000))
    num_qudits = draw(st.integers(2, 3))
    num_ops = draw(st.integers(1, 7))
    return seed, num_qudits, num_ops


class TestPipelineEquivalence:
    @given(circuit_specs())
    @settings(max_examples=15, deadline=None)
    def test_tnvm_matches_dense_evaluator(self, spec):
        seed, num_qudits, num_ops = spec
        circ, base, n = build_random_circuit_pair(
            seed, num_qudits=num_qudits, num_ops=num_ops
        )
        params = np.random.default_rng(seed + 1).uniform(
            -np.pi, np.pi, n
        )
        vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
        u, g = vm.evaluate_with_grad(tuple(params))
        du, dg = DenseEvaluator(base).get_unitary_and_grad(params)
        assert np.allclose(u, du, atol=1e-9)
        assert np.allclose(g, dg, atol=1e-8)

    @given(circuit_specs())
    @settings(max_examples=10, deadline=None)
    def test_output_always_unitary(self, spec):
        seed, num_qudits, num_ops = spec
        circ, _, n = build_random_circuit_pair(
            seed, num_qudits=num_qudits, num_ops=num_ops
        )
        params = np.random.default_rng(seed + 2).uniform(
            -np.pi, np.pi, n
        )
        u = circ.get_unitary(params)
        eye = np.eye(circ.dim)
        assert np.allclose(u @ u.conj().T, eye, atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_f32_tracks_f64(self, seed):
        circ, _, n = build_random_circuit_pair(seed, num_ops=5)
        params = tuple(
            np.random.default_rng(seed).uniform(-np.pi, np.pi, n)
        )
        prog = circ.compile()
        u64 = TNVM(prog, precision="f64", diff=Differentiation.NONE)
        u32 = TNVM(prog, precision="f32", diff=Differentiation.NONE)
        assert np.allclose(
            u64.evaluate(params), u32.evaluate(params), atol=1e-4
        )
