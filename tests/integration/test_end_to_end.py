"""End-to-end workflows: the Listing 3 loop, synthesis, extensions."""

import numpy as np
import pytest

from repro import (
    Differentiation,
    Instantiater,
    QuditCircuit,
    TNVM,
    UnitaryExpression,
    gates,
    hilbert_schmidt_infidelity,
)
from repro.circuit import build_qsearch_ansatz
from repro.utils import Statevector


class TestListing3Workflow:
    def test_full_pipeline(self):
        # (1) AOT compilation, once per PQC.
        pqc = build_qsearch_ansatz(2, 2, 2)
        network = pqc.to_tensor_network()
        from repro.tensornet import compile_network

        code = compile_network(network)
        # (2) TNVM initialization.
        vm = TNVM(code, diff=Differentiation.GRADIENT)
        # (3) Fast evaluation loop.
        params = np.zeros(pqc.num_params)
        for _ in range(5):
            result, grad = vm.evaluate_with_grad(tuple(params))
            params = params + 0.01  # "update params using the result"
        assert result.shape == (4, 4)
        assert grad.shape == (pqc.num_params, 4, 4)


class TestCustomGateExtension:
    """The paper's headline workflow: a domain expert adds a brand-new
    gate with one QGL expression and immediately gets compilation,
    gradients, and instantiation support."""

    def test_givens_rotation_synthesis(self):
        givens = UnitaryExpression(
            """GIVENS(theta) {
                [[1, 0, 0, 0],
                 [0, cos(theta), ~sin(theta), 0],
                 [0, sin(theta), cos(theta), 0],
                 [0, 0, 0, 1]]
            }"""
        )
        circ = QuditCircuit.qubits(2)
        g = circ.cache_operation(givens)
        u3 = circ.cache_operation(gates.u3())
        circ.append_ref(u3, 0)
        circ.append_ref(u3, 1)
        circ.append_ref(g, (0, 1))
        circ.append_ref(u3, 0)
        circ.append_ref(u3, 1)

        engine = Instantiater(circ)
        p_true = np.random.default_rng(4).uniform(
            -np.pi, np.pi, circ.num_params
        )
        target = circ.get_unitary(p_true)
        result = engine.instantiate(target, starts=8, rng=0)
        assert result.success

    def test_qutrit_gate_extension(self):
        # A custom single-qutrit rotation between levels 1 and 2.
        custom = UnitaryExpression(
            """R12<3>(t) {
                [[1, 0, 0],
                 [0, cos(t/2), ~i*sin(t/2)],
                 [0, ~i*sin(t/2), cos(t/2)]]
            }"""
        )
        circ = QuditCircuit.qutrits(1)
        r = circ.cache_operation(custom)
        circ.append_ref(r, 0)
        u = circ.get_unitary([0.8])
        assert np.allclose(u[0, 0], 1)
        assert np.allclose(u @ u.conj().T, np.eye(3), atol=1e-12)


class TestSynthesisWorkflow:
    def test_synthesized_circuit_behaves_like_target(self):
        """Instantiate a 2-qubit target, then verify the synthesized
        circuit on states, not just matrices."""
        ansatz = build_qsearch_ansatz(2, 3, 2)
        rng = np.random.default_rng(21)
        target = ansatz.get_unitary(
            rng.uniform(-np.pi, np.pi, ansatz.num_params)
        )
        result = Instantiater(ansatz).instantiate(target, starts=8, rng=1)
        assert result.success
        u = ansatz.get_unitary(result.params)

        sv_target = Statevector([2, 2]).apply_unitary(target)
        sv_synth = Statevector([2, 2]).apply_unitary(u)
        assert sv_target.fidelity(sv_synth) > 1 - 1e-8

    def test_infidelity_consistent_with_engine(self):
        ansatz = build_qsearch_ansatz(2, 2, 2)
        rng = np.random.default_rng(22)
        target = ansatz.get_unitary(
            rng.uniform(-np.pi, np.pi, ansatz.num_params)
        )
        result = Instantiater(ansatz).instantiate(target, starts=4, rng=2)
        u = ansatz.get_unitary(result.params)
        assert hilbert_schmidt_infidelity(target, u) == pytest.approx(
            result.infidelity, abs=1e-9
        )


class TestCachingAcrossCircuits:
    def test_expression_cache_shared_between_vms(self):
        from repro import ExpressionCache

        cache = ExpressionCache()
        a = build_qsearch_ansatz(2, 2, 2)
        b = build_qsearch_ansatz(3, 4, 2)
        TNVM(a.compile(), cache=cache)
        misses_after_first = cache.misses
        TNVM(b.compile(), cache=cache)
        # The second circuit reuses U3/CX artifacts; only layout-fused
        # variants may add entries.
        assert cache.hits > 0
        assert cache.misses <= misses_after_first + 3
