"""Smoke checks that every example and benchmark script is importable
and structurally sound (full runs are exercised manually / in CI)."""

import ast
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]

SCRIPTS = sorted(
    list((ROOT / "examples").glob("*.py"))
    + [
        ROOT / "benchmarks" / "run_fig4.py",
        ROOT / "benchmarks" / "run_instantiation.py",
        ROOT / "benchmarks" / "run_synthesis.py",
    ]
)


@pytest.mark.parametrize(
    "path", SCRIPTS, ids=[p.name for p in SCRIPTS]
)
def test_script_parses_and_has_main(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    functions = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} must define main()"
    # Every script is guarded so importing it never runs the workload.
    guards = [
        node
        for node in tree.body
        if isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
    ]
    assert guards, f"{path.name} missing __main__ guard"


def test_example_count_meets_deliverable():
    examples = list((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 3


def test_every_public_module_has_docstring():
    missing = []
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        tree = ast.parse(path.read_text(), filename=str(path))
        if not ast.get_docstring(tree) and path.name != "__init__.py":
            missing.append(str(path))
    assert not missing, f"modules without docstrings: {missing}"
