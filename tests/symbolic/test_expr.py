"""Unit tests for the real-valued expression trees."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import expr as E


class TestInterning:
    def test_identical_trees_share_identity(self):
        a = E.sin(E.var("x")) + E.const(2.0)
        b = E.sin(E.var("x")) + E.const(2.0)
        assert a is b

    def test_different_trees_differ(self):
        assert E.sin(E.var("x")) is not E.cos(E.var("x"))

    def test_hash_consistency(self):
        assert hash(E.var("x") * 2) == hash(E.var("x") * 2)

    def test_immutability(self):
        node = E.var("x")
        with pytest.raises(AttributeError):
            node.op = "const"


class TestSmartConstructors:
    def test_add_zero_folds(self):
        x = E.var("x")
        assert x + 0 is x
        assert 0 + x is x

    def test_mul_identity_and_zero(self):
        x = E.var("x")
        assert x * 1 is x
        assert (x * 0).is_zero
        assert (0 * x).is_zero

    def test_constant_folding(self):
        assert (E.const(2) + E.const(3)).value == 5.0
        assert (E.const(2) * E.const(3)).value == 6.0
        assert (E.const(6) / E.const(3)).value == 2.0
        assert (E.const(2) ** E.const(3)).value == 8.0

    def test_double_negation(self):
        x = E.var("x")
        assert -(-x) is x

    def test_sub_self_is_zero(self):
        x = E.var("x")
        assert (x - x).is_zero

    def test_div_self_is_one(self):
        x = E.var("x")
        assert (x / x).is_one

    def test_neg_one_times_is_negation(self):
        x = E.var("x")
        assert (E.const(-1) * x).op == "~"

    def test_sin_of_negation(self):
        x = E.var("x")
        assert E.sin(-x) == -(E.sin(x))

    def test_cos_of_negation(self):
        x = E.var("x")
        assert E.cos(-x) is E.cos(x)

    def test_trig_constant_folding(self):
        assert E.sin(E.ZERO).is_zero
        assert E.cos(E.ZERO).is_one
        assert E.exp(E.ZERO).is_one
        assert E.ln(E.ONE).is_zero

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            E.var("x") / E.ZERO

    def test_ln_domain(self):
        with pytest.raises(ValueError):
            E.ln(E.const(-1.0))
        with pytest.raises(ValueError):
            E.sqrt(E.const(-1.0))

    def test_build_rejects_unknown(self):
        with pytest.raises(ValueError):
            E.build("frobnicate", [E.var("x")])

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            E.Expr("+", (E.var("x"),))


class TestEvaluation:
    def test_u3_entry(self):
        t = E.var("t")
        e = E.cos(t / 2)
        assert math.isclose(E.evaluate(e, {"t": 1.0}), math.cos(0.5))

    def test_pi_value(self):
        assert E.evaluate(E.PI, {}) == math.pi

    def test_missing_binding_raises(self):
        with pytest.raises(KeyError):
            E.evaluate(E.var("x"), {})

    def test_all_operators(self):
        x, y = E.var("x"), E.var("y")
        env = {"x": 0.7, "y": 1.3}
        cases = [
            (x + y, 2.0),
            (x - y, -0.6),
            (-x, -0.7),
            (x * y, 0.91),
            (x / y, 0.7 / 1.3),
            (E.power(x, y), 0.7 ** 1.3),
            (E.sin(x), math.sin(0.7)),
            (E.cos(x), math.cos(0.7)),
            (E.exp(x), math.exp(0.7)),
            (E.ln(y), math.log(1.3)),
            (E.sqrt(y), math.sqrt(1.3)),
        ]
        for expr, expected in cases:
            assert math.isclose(E.evaluate(expr, env), expected)


class TestStructure:
    def test_free_variables_sorted(self):
        e = E.var("b") + E.sin(E.var("a"))
        assert E.free_variables(e) == ("a", "b")

    def test_node_count_shares_dag(self):
        x = E.var("x")
        s = E.sin(x)
        e = s * s  # shared subtree counted once
        assert E.node_count(e) == 3  # x, sin(x), *

    def test_postorder_children_first(self):
        e = E.sin(E.var("x")) + E.const(1)
        order = [n.op for n in E.postorder(e)]
        assert order.index("var") < order.index("sin")
        assert order.index("sin") < order.index("+")

    def test_substitute(self):
        e = E.sin(E.var("x")) + E.var("y")
        out = E.substitute(e, {"x": E.ZERO})
        assert out == E.var("y")  # sin(0) folds to 0, 0 + y folds to y

    def test_rename(self):
        e = E.sin(E.var("x"))
        assert E.rename_variables(e, {"x": "theta"}) is E.sin(E.var("theta"))


class TestSexpr:
    def test_roundtrip(self):
        e = E.sin(E.var("x") / 2) * E.exp(E.var("y")) - E.PI
        assert E.from_sexpr(E.to_sexpr(e)) is e

    def test_format(self):
        assert E.to_sexpr(E.sin(E.var("x"))) == "(sin x)"
        assert E.to_sexpr(E.const(2.0)) == "2"
        assert E.to_sexpr(E.PI) == "pi"

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            E.from_sexpr("(sin x) extra")
        with pytest.raises(ValueError):
            E.from_sexpr(")")

    def test_infix_repr(self):
        e = E.sin(E.var("x")) + E.const(1)
        assert "sin(x)" in str(e)


# Hypothesis strategy: total (everywhere-defined) random expressions.
def total_exprs(variables=("x", "y")):
    leaves = st.one_of(
        st.floats(-4, 4).map(lambda v: E.const(round(v, 3))),
        st.sampled_from([E.var(v) for v in variables]),
        st.just(E.PI),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: p[0] + p[1]),
            st.tuples(children, children).map(lambda p: p[0] - p[1]),
            st.tuples(children, children).map(lambda p: p[0] * p[1]),
            children.map(lambda c: -c),
            children.map(E.sin),
            children.map(E.cos),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestProperties:
    @given(total_exprs())
    @settings(max_examples=60, deadline=None)
    def test_sexpr_roundtrip_property(self, expr):
        assert E.from_sexpr(E.to_sexpr(expr)) is expr

    @given(total_exprs(), st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=60, deadline=None)
    def test_substitution_commutes_with_evaluation(self, expr, xv, yv):
        env = {"x": xv, "y": yv}
        direct = E.evaluate(expr, env)
        subbed = E.substitute(
            expr, {"x": E.const(xv), "y": E.const(yv)}
        )
        assert math.isclose(
            E.evaluate(subbed, {}), direct, rel_tol=1e-9, abs_tol=1e-9
        )
