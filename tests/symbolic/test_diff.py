"""Unit and property tests for the symbolic differentiation engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import expr as E
from repro.symbolic.complexexpr import ComplexExpr
from repro.symbolic.diff import differentiate, differentiate_complex, gradient

X = E.var("x")
Y = E.var("y")


def fd(expr, name, env, eps=1e-7):
    hi = dict(env)
    hi[name] = env[name] + eps
    lo = dict(env)
    lo[name] = env[name] - eps
    return (E.evaluate(expr, hi) - E.evaluate(expr, lo)) / (2 * eps)


class TestRules:
    def test_constant(self):
        assert differentiate(E.const(5), "x").is_zero
        assert differentiate(E.PI, "x").is_zero

    def test_variable(self):
        assert differentiate(X, "x").is_one
        assert differentiate(X, "y").is_zero

    def test_sum_rule(self):
        assert differentiate(X + Y, "x").is_one

    def test_product_rule(self):
        d = differentiate(X * X, "x")
        assert math.isclose(E.evaluate(d, {"x": 3.0}), 6.0)

    def test_quotient_rule(self):
        d = differentiate(X / Y, "y")
        assert math.isclose(
            E.evaluate(d, {"x": 2.0, "y": 3.0}), -2.0 / 9.0
        )

    def test_chain_rule_sin(self):
        d = differentiate(E.sin(2 * X), "x")
        assert math.isclose(
            E.evaluate(d, {"x": 0.4}), 2 * math.cos(0.8)
        )

    def test_cos(self):
        d = differentiate(E.cos(X), "x")
        assert math.isclose(E.evaluate(d, {"x": 0.4}), -math.sin(0.4))

    def test_exp(self):
        d = differentiate(E.exp(3 * X), "x")
        assert math.isclose(
            E.evaluate(d, {"x": 0.2}), 3 * math.exp(0.6)
        )

    def test_ln(self):
        d = differentiate(E.ln(X), "x")
        assert math.isclose(E.evaluate(d, {"x": 2.0}), 0.5)

    def test_sqrt(self):
        d = differentiate(E.sqrt(X), "x")
        assert math.isclose(
            E.evaluate(d, {"x": 4.0}), 0.25
        )

    def test_power_constant_exponent(self):
        d = differentiate(E.power(X, E.const(3)), "x")
        assert math.isclose(E.evaluate(d, {"x": 2.0}), 12.0)

    def test_power_variable_exponent(self):
        d = differentiate(E.power(E.const(2), X), "x")
        assert math.isclose(
            E.evaluate(d, {"x": 1.5}), 2 ** 1.5 * math.log(2)
        )

    def test_gradient_order(self):
        g = gradient(X * Y, ["x", "y"])
        assert E.evaluate(g[0], {"x": 1, "y": 7}) == 7
        assert E.evaluate(g[1], {"x": 5, "y": 1}) == 5


class TestComplexDiff:
    def test_cis_derivative(self):
        z = ComplexExpr.cis(X)
        dz = differentiate_complex(z, "x")
        # d/dx e^(ix) = i e^(ix)
        v = dz.evaluate({"x": 0.7})
        expected = 1j * complex(math.cos(0.7), math.sin(0.7))
        assert v == pytest.approx(expected)


def smooth_exprs():
    leaves = st.one_of(
        st.floats(-2, 2).map(lambda v: E.const(round(v, 3))),
        st.just(X),
        st.just(Y),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: p[0] + p[1]),
            st.tuples(children, children).map(lambda p: p[0] * p[1]),
            st.tuples(children, children).map(lambda p: p[0] - p[1]),
            children.map(E.sin),
            children.map(E.cos),
            children.map(lambda e: -e),
        )

    return st.recursive(leaves, extend, max_leaves=10)


class TestFiniteDifferences:
    @given(
        smooth_exprs(),
        st.floats(-1.5, 1.5),
        st.floats(-1.5, 1.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_derivative_matches_finite_difference(self, expr, xv, yv):
        env = {"x": xv, "y": yv}
        d = differentiate(expr, "x")
        analytic = E.evaluate(d, env)
        numeric = fd(expr, "x", env)
        assert math.isclose(
            analytic, numeric, rel_tol=1e-4, abs_tol=1e-4
        )
