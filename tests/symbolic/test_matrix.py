"""Unit tests for the ExpressionMatrix IR and its composability suite."""

import numpy as np
import pytest

from repro.symbolic import expr as E
from repro.symbolic.complexexpr import CONE, CZERO, ComplexExpr
from repro.symbolic.matrix import ExpressionMatrix


def rx_matrix() -> ExpressionMatrix:
    t = E.var("t")
    c = ComplexExpr(E.cos(t / 2), E.ZERO)
    s = ComplexExpr(E.ZERO, -(E.sin(t / 2)))
    return ExpressionMatrix([[c, s], [s, c]], params=("t",), name="RX")


def rx_numpy(t: float) -> np.ndarray:
    c, s = np.cos(t / 2), -1j * np.sin(t / 2)
    return np.array([[c, s], [s, c]])


class TestConstruction:
    def test_shape_and_params(self):
        m = rx_matrix()
        assert m.shape == (2, 2)
        assert m.params == ("t",)
        assert m.radices == (2,)
        assert m.num_qudits == 1

    def test_default_qubit_radices(self):
        m = ExpressionMatrix([[CONE, CZERO], [CZERO, CONE]])
        assert m.radices == (2,)

    def test_explicit_radices_validated(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(
                [[CONE, CZERO], [CZERO, CONE]], radices=(3,)
            )

    def test_qutrit_radices(self):
        m = ExpressionMatrix.identity(3, radices=(3,))
        assert m.radices == (3,)

    def test_non_power_of_two_gets_empty_radices(self):
        m = ExpressionMatrix.identity(3)
        assert m.radices == ()

    def test_undeclared_params_rejected(self):
        x = ComplexExpr(E.var("x"), E.ZERO)
        with pytest.raises(ValueError):
            ExpressionMatrix([[x, CZERO], [CZERO, CONE]], params=())

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            ExpressionMatrix([[CONE, CZERO], [CZERO]])

    def test_from_numpy_roundtrip(self, rng):
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        m = ExpressionMatrix.from_numpy(a)
        assert np.allclose(m.evaluate(()), a)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            rx_matrix().params = ()


class TestAlgebra:
    def test_matmul_matches_numpy(self):
        m = rx_matrix()
        prod = m @ m
        t = 0.9
        assert np.allclose(
            prod.evaluate([t]), rx_numpy(t) @ rx_numpy(t)
        )

    def test_matmul_dimension_check(self):
        m = rx_matrix()
        other = ExpressionMatrix.identity(4)
        with pytest.raises(ValueError):
            m @ other

    def test_kron_matches_numpy(self):
        m = rx_matrix()
        k = m.kron(ExpressionMatrix.identity(2))
        assert k.radices == (2, 2)
        assert np.allclose(
            k.evaluate([0.7]), np.kron(rx_numpy(0.7), np.eye(2))
        )

    def test_kron_merges_params(self):
        a = rx_matrix()
        b = rx_matrix().rename_params({"t": "s"})
        k = a.kron(b)
        assert k.params == ("t", "s")

    def test_hadamard(self):
        m = rx_matrix()
        h = m.hadamard(m)
        assert np.allclose(h.evaluate([0.5]), rx_numpy(0.5) ** 2)

    def test_addition(self):
        m = rx_matrix()
        s = m + m
        assert np.allclose(s.evaluate([0.5]), 2 * rx_numpy(0.5))

    def test_scale(self):
        m = rx_matrix().scale(2j)
        assert np.allclose(m.evaluate([0.5]), 2j * rx_numpy(0.5))


class TestStructural:
    def test_dagger_is_inverse(self):
        m = rx_matrix()
        prod = m @ m.dagger()
        assert np.allclose(prod.evaluate([1.1]), np.eye(2), atol=1e-12)

    def test_transpose(self):
        m = rx_matrix()
        assert np.allclose(
            m.transpose().evaluate([0.3]), rx_numpy(0.3).T
        )

    def test_conjugate(self):
        m = rx_matrix()
        assert np.allclose(
            m.conjugate().evaluate([0.3]), rx_numpy(0.3).conj()
        )

    def test_trace(self):
        m = rx_matrix()
        assert m.trace().evaluate({"t": 0.8}) == pytest.approx(
            np.trace(rx_numpy(0.8))
        )

    def test_controlled_structure(self):
        m = rx_matrix().controlled()
        assert m.shape == (4, 4)
        assert m.radices == (2, 2)
        u = m.evaluate([0.6])
        assert np.allclose(u[:2, :2], np.eye(2))
        assert np.allclose(u[2:, 2:], rx_numpy(0.6))

    def test_controlled_qutrit_levels(self):
        m = rx_matrix().controlled(control_radix=3, control_levels=(2,))
        u = m.evaluate([0.6])
        assert u.shape == (6, 6)
        assert np.allclose(u[:4, :4], np.eye(4))
        assert np.allclose(u[4:, 4:], rx_numpy(0.6))

    def test_controlled_bad_level(self):
        with pytest.raises(ValueError):
            rx_matrix().controlled(control_levels=(5,))

    def test_reshape_permute_is_transpose(self):
        m = rx_matrix().kron(rx_matrix().rename_params({"t": "s"}))
        # Swapping the two row axes and the two col axes swaps qudits.
        p = m.reshape_permute(
            (2, 2, 2, 2), (1, 0, 3, 2), (4, 4)
        )
        params = [0.4, 1.2]
        full = np.kron(rx_numpy(0.4), rx_numpy(1.2))
        swapped = (
            full.reshape(2, 2, 2, 2)
            .transpose(1, 0, 3, 2)
            .reshape(4, 4)
        )
        assert np.allclose(p.evaluate(params), swapped)

    def test_substitute_preserves_declared_order(self):
        a = rx_matrix()
        b = a.rename_params({"t": "b"})
        k = a.kron(b)  # params (t, b)
        out = k.substitute({"t": E.const(0.5)})
        assert out.params == ("b",)
        k2 = k.substitute({"b": E.var("zz")})
        assert k2.params == ("t", "zz")

    def test_bind(self):
        m = rx_matrix().bind({"t": 0.25})
        assert m.num_params == 0
        assert np.allclose(m.evaluate(()), rx_numpy(0.25))


class TestCalculus:
    def test_gradient_matches_finite_difference(self):
        m = rx_matrix()
        g = m.gradient()
        assert len(g) == 1
        t, eps = 0.8, 1e-7
        fd = (m.evaluate([t + eps]) - m.evaluate([t - eps])) / (2 * eps)
        assert np.allclose(g[0].evaluate([t]), fd, atol=1e-6)

    def test_gradient_param_order(self):
        a = rx_matrix()
        b = rx_matrix().rename_params({"t": "s"})
        k = a.kron(b)
        g = k.gradient()
        assert len(g) == 2
        eps = 1e-7
        p = [0.4, 1.1]
        for i in range(2):
            hi = list(p)
            hi[i] += eps
            fd = (k.evaluate(hi) - k.evaluate(p)) / eps
            assert np.allclose(g[i].evaluate(p), fd, atol=1e-5)


class TestNumerics:
    def test_is_unitary(self):
        assert rx_matrix().is_unitary([0.7])

    def test_not_unitary(self):
        m = rx_matrix().scale(2.0)
        assert not m.is_unitary([0.7])

    def test_wrong_param_count(self):
        with pytest.raises(ValueError):
            rx_matrix().evaluate([1.0, 2.0])

    def test_partial_trace(self):
        m = rx_matrix().kron(ExpressionMatrix.identity(2))
        traced = m.partial_trace_expr([(1, 1)])
        # Tracing out the identity factor gives 2 * RX.
        assert np.allclose(traced.evaluate([0.5]), 2 * rx_numpy(0.5))
