"""Unit tests for complex symbolic expressions."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import expr as E
from repro.symbolic.complexexpr import CI, CONE, CZERO, ComplexExpr


def c(z: complex) -> ComplexExpr:
    return ComplexExpr.from_complex(z)


class TestConstruction:
    def test_from_complex(self):
        z = c(1 + 2j)
        assert z.constant_value() == 1 + 2j

    def test_constants(self):
        assert CZERO.is_zero
        assert CONE.is_one
        assert CI.constant_value() == 1j

    def test_is_real(self):
        assert c(3.0).is_real
        assert not CI.is_real

    def test_cis(self):
        z = ComplexExpr.cis(E.var("t"))
        assert z.evaluate({"t": 0.3}) == pytest.approx(
            cmath.exp(0.3j), abs=1e-12
        )

    def test_immutability(self):
        with pytest.raises(AttributeError):
            CONE.re = E.ZERO


class TestArithmetic:
    @given(
        st.complex_numbers(max_magnitude=5, allow_nan=False),
        st.complex_numbers(max_magnitude=5, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_field_operations_match_python(self, a, b):
        za, zb = c(a), c(b)
        assert (za + zb).constant_value() == pytest.approx(a + b)
        assert (za - zb).constant_value() == pytest.approx(a - b)
        assert (za * zb).constant_value() == pytest.approx(a * b)
        if abs(b) > 1e-3:
            assert (za / zb).constant_value() == pytest.approx(
                a / b, rel=1e-9
            )

    def test_conjugate(self):
        assert c(1 + 2j).conjugate().constant_value() == 1 - 2j

    def test_negation(self):
        assert (-c(1 + 2j)).constant_value() == -1 - 2j

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            CONE / CZERO

    def test_integer_powers(self):
        assert (CI ** 2).constant_value() == pytest.approx(-1)
        assert (CI ** 0).is_one
        assert (c(2j) ** -1).constant_value() == pytest.approx(-0.5j)

    def test_non_integer_power_rejected(self):
        with pytest.raises(TypeError):
            CI ** 0.5

    def test_scale(self):
        assert c(1 + 1j).scale(2.0).constant_value() == 2 + 2j


class TestExp:
    def test_exp_real(self):
        z = ComplexExpr(E.var("x"), E.ZERO).exp()
        assert z.evaluate({"x": 0.5}) == pytest.approx(math.exp(0.5))

    def test_exp_imag(self):
        z = ComplexExpr(E.ZERO, E.var("x")).exp()
        assert z.evaluate({"x": 0.5}) == pytest.approx(cmath.exp(0.5j))

    def test_exp_general(self):
        z = ComplexExpr(E.var("x"), E.var("y")).exp()
        assert z.evaluate({"x": 0.3, "y": -0.7}) == pytest.approx(
            cmath.exp(0.3 - 0.7j)
        )

    def test_exp_lowering_uses_sincos(self):
        # e^(i x) must canonicalize to cos/sin trees, never complex exp.
        z = ComplexExpr(E.ZERO, E.var("x")).exp()
        assert z.re is E.cos(E.var("x"))
        assert z.im is E.sin(E.var("x"))


class TestSymbolic:
    def test_free_variables(self):
        z = ComplexExpr(E.var("b"), E.sin(E.var("a")))
        assert z.free_variables() == ("a", "b")

    def test_substitute(self):
        z = ComplexExpr(E.var("x"), E.ZERO)
        out = z.substitute({"x": E.PI})
        assert out.constant_value() == pytest.approx(math.pi)

    def test_equality_with_numbers(self):
        assert c(2 + 0j) == 2.0
        assert c(1j) == 1j
        assert hash(c(3j)) == hash(c(3j))

    def test_mixed_mul_with_real_expr(self):
        x = E.var("x")
        z = ComplexExpr(x, E.ZERO) * CI
        assert z.re.is_zero
        assert z.im is x
