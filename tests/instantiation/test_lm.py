"""Tests for the naive Levenberg-Marquardt optimizer."""

import numpy as np

from repro.instantiation.lm import LMOptions, levenberg_marquardt


def linear_problem(seed=0, m=20, n=5):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    x_true = rng.normal(size=n)
    b = a @ x_true

    def fn(x):
        return a @ x - b, a

    return fn, x_true


class TestConvergence:
    def test_linear_least_squares_exact(self):
        fn, x_true = linear_problem()
        result = levenberg_marquardt(fn, np.zeros(5))
        assert result.cost < 1e-18
        assert np.allclose(result.params, x_true, atol=1e-8)

    def test_rosenbrock_residuals(self):
        # Classic (1-x)^2 + 100 (y - x^2)^2 in residual form.
        def fn(v):
            x, y = v
            r = np.array([1 - x, 10 * (y - x * x)])
            jac = np.array([[-1.0, 0.0], [-20 * x, 10.0]])
            return r, jac

        result = levenberg_marquardt(
            fn, np.array([-1.2, 1.0]),
            LMOptions(max_iterations=500),
        )
        assert np.allclose(result.params, [1.0, 1.0], atol=1e-6)

    def test_nonlinear_sinusoid_fit(self):
        rng = np.random.default_rng(3)
        ts = np.linspace(0, 1, 40)
        true = np.array([1.3, 2.1])
        data = true[0] * np.sin(true[1] * ts)

        def fn(v):
            a, w = v
            r = a * np.sin(w * ts) - data
            jac = np.stack(
                [np.sin(w * ts), a * ts * np.cos(w * ts)], axis=1
            )
            return r, jac

        result = levenberg_marquardt(fn, np.array([1.0, 2.0]))
        assert np.allclose(result.params, true, atol=1e-6)


class TestStopping:
    def test_success_cost_short_circuits(self):
        fn, _ = linear_problem()
        loose = levenberg_marquardt(
            fn, np.zeros(5), LMOptions(success_cost=1e-2)
        )
        tight = levenberg_marquardt(fn, np.zeros(5))
        assert loose.stop_reason == "success-threshold"
        assert loose.num_evaluations <= tight.num_evaluations

    def test_max_iterations_respected(self):
        def fn(x):
            # A stubborn nonlinear residual.
            return np.array([np.exp(x[0]) - 2, x[0] ** 3]), np.array(
                [[np.exp(x[0])], [3 * x[0] ** 2]]
            )

        result = levenberg_marquardt(
            fn, np.array([5.0]), LMOptions(max_iterations=3)
        )
        assert result.iterations <= 3

    def test_zero_parameter_problem(self):
        def fn(x):
            return np.array([1.0]), np.zeros((1, 0))

        result = levenberg_marquardt(fn, np.zeros(0))
        assert result.stop_reason == "no-parameters"
        assert result.cost == 1.0

    def test_already_converged_gradient(self):
        fn, x_true = linear_problem()
        result = levenberg_marquardt(fn, x_true)
        assert result.converged
        assert result.iterations <= 2

    def test_evaluation_accounting(self):
        fn, _ = linear_problem()
        result = levenberg_marquardt(fn, np.zeros(5))
        assert result.num_evaluations >= result.iterations
