"""State-preparation target tests: cost functions and the engine matrix.

The contract: a statevector target flows through every engine path —
scalar/batched/fused, serialized/rehydrated, pooled — with the same
bit-identity guarantees as unitary targets, at ``O(D)`` residuals.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.circuit import build_qsearch_ansatz
from repro.instantiation import (
    BatchedStateResiduals,
    EnginePool,
    Instantiater,
    StateResiduals,
    instantiate,
    is_state_target,
    state_infidelity_from_cost,
    state_success_cost,
)
from repro.tensornet import OutputContract
from repro.tnvm import TNVM, BatchedTNVM, Differentiation
from repro.utils import Statevector, state_prep_infidelity


@pytest.fixture(scope="module")
def setup():
    circ = build_qsearch_ansatz(2, 2, 2)
    vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
    target = Statevector.ghz(2)
    return circ, vm, StateResiduals(vm, target), target


def reachable_state(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return np.ascontiguousarray(circ.get_unitary(p)[:, 0])


class TestStateResiduals:
    def test_cost_matches_definition(self, setup):
        circ, vm, res, target = setup
        p = np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
        u = vm.evaluate(tuple(p)).copy()
        assert res.cost(p) == pytest.approx(state_prep_infidelity(target, u))

    def test_sum_sq_matches_conversion(self, setup):
        # sum(r^2) = 2*(1-|overlap|)  <->  infidelity = c - c^2/4
        circ, vm, res, target = setup
        p = np.random.default_rng(2).uniform(-np.pi, np.pi, circ.num_params)
        r = res.residuals(p)
        assert state_infidelity_from_cost(float(r @ r)) == pytest.approx(
            res.cost(p), abs=1e-10
        )

    def test_zero_at_reachable_state(self, setup):
        circ, vm, _, _ = setup
        p = np.random.default_rng(3).uniform(-np.pi, np.pi, circ.num_params)
        res_self = StateResiduals(vm, reachable_state(circ, 3))
        assert res_self.cost(p) == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(res_self.residuals(p), 0, atol=1e-8)

    def test_global_phase_invariance(self, setup):
        circ, vm, _, _ = setup
        p = np.random.default_rng(4).uniform(-np.pi, np.pi, circ.num_params)
        state = reachable_state(circ, 4)
        res_phase = StateResiduals(vm, np.exp(0.42j) * state)
        assert res_phase.cost(p) == pytest.approx(0.0, abs=1e-12)

    def test_residuals_are_o_of_d(self, setup):
        circ, vm, res, _ = setup
        p = np.zeros(circ.num_params)
        r, jac = res.residuals_and_jacobian(p)
        assert res.num_residuals == 2 * 4  # 2D, not 2D^2
        assert r.shape == (2 * 4,)
        assert jac.shape == (2 * 4, circ.num_params)

    def test_cost_gradient_matches_finite_difference(self, setup):
        # The envelope theorem makes 2 r^T J exact (phase minimizes).
        circ, vm, res, _ = setup
        p = np.random.default_rng(6).uniform(-np.pi, np.pi, circ.num_params)
        r0, jac = res.residuals_and_jacobian(p)
        analytic = 2 * (r0 @ jac)
        eps = 1e-6
        for k in range(min(circ.num_params, 6)):
            hi, lo = p.copy(), p.copy()
            hi[k] += eps
            lo[k] -= eps
            rh = res.residuals(hi)
            rl = res.residuals(lo)
            fd = (float(rh @ rh) - float(rl @ rl)) / (2 * eps)
            assert analytic[k] == pytest.approx(fd, abs=1e-5)

    def test_requires_gradient_vm(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        with pytest.raises(ValueError):
            StateResiduals(vm, Statevector.ghz(2))

    def test_rejects_wrong_dimension(self, setup):
        _, vm, _, _ = setup
        with pytest.raises(ValueError):
            StateResiduals(vm, Statevector.ghz(3))

    def test_rejects_unnormalized_state(self, setup):
        _, vm, _, _ = setup
        with pytest.raises(ValueError):
            StateResiduals(vm, np.array([1.0, 1.0, 0.0, 0.0]))


class TestBatchedStateResiduals:
    def test_rows_match_scalar(self, setup):
        circ, vm, res, target = setup
        program = circ.compile()
        bvm = BatchedTNVM(program, 3, diff=Differentiation.GRADIENT)
        batched = BatchedStateResiduals(bvm, target)
        rows = np.random.default_rng(8).uniform(
            -np.pi, np.pi, (3, circ.num_params)
        )
        rb, jb = batched.residuals_and_jacobian(rows)
        assert rb.shape == (3, 2 * 4)
        assert jb.shape == (3, 2 * 4, circ.num_params)
        costs = batched.cost(rows)
        for s in range(3):
            rs, js = res.residuals_and_jacobian(rows[s])
            assert np.allclose(rb[s], rs, atol=1e-12)
            assert np.allclose(jb[s], js, atol=1e-12)
            assert costs[s] == pytest.approx(res.cost(rows[s]), abs=1e-12)


class TestConversions:
    def test_state_success_cost_inverts_infidelity(self):
        for t in (1e-8, 1e-4, 0.1):
            c = state_success_cost(t)
            assert state_infidelity_from_cost(c) == pytest.approx(
                t, rel=1e-9
            )

    def test_is_state_target(self):
        assert is_state_target(Statevector.ghz(2))
        assert is_state_target(np.zeros(4))
        assert not is_state_target(np.eye(4))


class TestEngineMatrix:
    """Scalar vs batched vs fused engines on one state target."""

    @pytest.fixture(scope="class")
    def problem(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        return circ, Statevector.ghz(2)

    def test_sequential_solves(self, problem):
        circ, ghz = problem
        result = instantiate(circ, ghz, starts=4, rng=0)
        assert result.success
        assert state_prep_infidelity(
            ghz, circ.get_unitary(result.params)
        ) < 1e-7

    def test_closures_vs_fused_bit_identical(self, problem):
        circ, ghz = problem
        for strategy in ("sequential", "auto"):
            r1 = Instantiater(
                circ.copy(), strategy=strategy, backend="closures"
            ).instantiate(ghz, starts=6, rng=13)
            r2 = Instantiater(
                circ.copy(), strategy=strategy, backend="fused"
            ).instantiate(ghz, starts=6, rng=13)
            assert np.array_equal(r1.params, r2.params)
            assert r1.infidelity == r2.infidelity
            assert r1.starts_used == r2.starts_used
            assert r1.total_iterations == r2.total_iterations

    def test_batched_matches_sequential(self, problem):
        circ, ghz = problem
        engine = Instantiater(circ, strategy="sequential")
        seq = engine.instantiate(ghz, starts=5, rng=21)
        bat = engine.instantiate(ghz, starts=5, rng=21, strategy="batched")
        # Winner and short-circuit point agree; total_iterations may
        # not (the batch advances other starts until the winner ends).
        assert bat.starts_used == seq.starts_used
        assert bat.runs[0].iterations == seq.runs[0].iterations
        assert bat.runs[0].stop_reason == seq.runs[0].stop_reason
        np.testing.assert_allclose(bat.params, seq.params, atol=1e-8)
        assert bat.infidelity == pytest.approx(seq.infidelity, abs=1e-10)

    def test_statevector_and_array_agree(self, problem):
        circ, ghz = problem
        engine = Instantiater(circ)
        r1 = engine.instantiate(ghz, starts=2, rng=3)
        r2 = engine.instantiate(ghz.amplitudes, starts=2, rng=3)
        assert np.array_equal(r1.params, r2.params)
        assert r1.infidelity == r2.infidelity

    def test_one_engine_serves_both_target_types(self, problem):
        # The tentpole property: engines are structure-keyed, so a
        # pool warmed by unitary fits serves state fits at zero
        # additional compiles.
        circ, ghz = problem
        pool = EnginePool()
        unitary = circ.get_unitary(
            np.random.default_rng(5).uniform(-np.pi, np.pi, circ.num_params)
        )
        engine = pool.engine_for(circ)
        ru = engine.instantiate(unitary, starts=4, rng=0)
        rs = pool.engine_for(circ.copy()).instantiate(ghz, starts=4, rng=0)
        assert pool.misses == 1 and pool.hits == 1
        assert ru.success and rs.success


class TestStateEngineSerialization:
    def test_rehydrated_engine_fits_state_target(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        ghz = Statevector.ghz(2)
        engine = Instantiater(circ, strategy="auto")
        payload = pickle.loads(pickle.dumps(engine.serialize()))
        clone = Instantiater.from_serialized(payload)
        r1 = engine.instantiate(ghz, starts=6, rng=42)
        r2 = clone.instantiate(ghz, starts=6, rng=42)
        assert np.array_equal(r1.params, r2.params)
        assert r1.infidelity == r2.infidelity
        assert r1.starts_used == r2.starts_used

    def test_spawn_rehydrated_engine_fits_state_target(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        ghz = Statevector.ghz(2)
        payload_bytes = pickle.dumps(Instantiater(circ).serialize())
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                _child_state_instantiate, (payload_bytes, ghz.amplitudes)
            )
        parent = Instantiater(circ).instantiate(ghz, starts=4, rng=9)
        child_params, child_infidelity = child
        assert np.array_equal(parent.params, child_params)
        assert parent.infidelity == child_infidelity


def _child_state_instantiate(payload_bytes, amplitudes):
    from repro.instantiation import Instantiater as ChildInstantiater

    engine = ChildInstantiater.from_serialized(pickle.loads(payload_bytes))
    result = engine.instantiate(amplitudes, starts=4, rng=9)
    return result.params, result.infidelity


class TestColumnContractEngines:
    """State prep through COLUMN(0)-contract engines (the fast path)."""

    @pytest.fixture(scope="class")
    def problem3(self):
        return build_qsearch_ansatz(3, 2, 2), Statevector.ghz(3)

    def test_column_residuals_consume_vector_directly(self, problem3):
        circ, ghz = problem3
        col = circ.compile(contract=OutputContract.column(0))
        vm_full = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
        vm_col = TNVM(col, diff=Differentiation.GRADIENT)
        rf = StateResiduals(vm_full, ghz)
        rc = StateResiduals(vm_col, ghz)
        p = np.random.default_rng(2).uniform(
            -np.pi, np.pi, circ.num_params
        )
        np.testing.assert_allclose(rc.cost(p), rf.cost(p), atol=1e-12)
        r1, j1 = rf.residuals_and_jacobian(p)
        r2, j2 = rc.residuals_and_jacobian(p)
        np.testing.assert_allclose(r2, r1, atol=1e-12, rtol=0)
        np.testing.assert_allclose(j2, j1, atol=1e-12, rtol=0)
        bvf = BatchedTNVM(
            circ.compile(), batch=3, diff=Differentiation.GRADIENT
        )
        bvc = BatchedTNVM(col, batch=3, diff=Differentiation.GRADIENT)
        ps = np.random.default_rng(4).uniform(
            -np.pi, np.pi, (3, circ.num_params)
        )
        br1, bj1 = BatchedStateResiduals(bvf, ghz).residuals_and_jacobian(ps)
        br2, bj2 = BatchedStateResiduals(bvc, ghz).residuals_and_jacobian(ps)
        np.testing.assert_allclose(br2, br1, atol=1e-12, rtol=0)
        np.testing.assert_allclose(bj2, bj1, atol=1e-12, rtol=0)

    def test_residuals_reject_unusable_contracts(self, problem3):
        circ, ghz = problem3
        col1 = circ.compile(contract=OutputContract.column(1))
        vm = TNVM(col1, diff=Differentiation.GRADIENT)
        with pytest.raises(ValueError, match="column"):
            StateResiduals(vm, ghz)
        col0 = circ.compile(contract=OutputContract.column(0))
        ovl = TNVM(
            col0,
            diff=Differentiation.GRADIENT,
            contract=OutputContract.overlap(ghz),
        )
        with pytest.raises(ValueError, match="OVERLAP"):
            StateResiduals(ovl, ghz)

    def test_ghz3_column_engine_matches_full_engine(self, problem3):
        # The acceptance scenario: GHZ-3 state prep through a column
        # engine lands on the same optimum as the full-unitary path.
        circ, ghz = problem3
        full = Instantiater(circ)
        coleng = Instantiater(circ, contract=OutputContract.column(0))
        rf = full.instantiate(ghz, starts=4, rng=7)
        rc = coleng.instantiate(ghz, starts=4, rng=7)
        assert rf.success and rc.success
        assert rc.starts_used == rf.starts_used
        np.testing.assert_allclose(rc.params, rf.params, atol=1e-6)
        prepared = circ.get_unitary(rc.params)
        assert state_prep_infidelity(ghz, prepared) < 1e-8

    def test_column_engine_rejects_unitary_targets(self, problem3):
        circ, _ = problem3
        engine = Instantiater(circ, contract=OutputContract.column(0))
        unitary = np.eye(8, dtype=complex)
        with pytest.raises(ValueError, match="state-preparation"):
            engine.instantiate(unitary)
        with pytest.raises(ValueError, match="state-preparation"):
            engine.instantiate(unitary, starts=4, strategy="batched")

    def test_column_engine_batched_matches_sequential(self, problem3):
        circ, ghz = problem3
        engine = Instantiater(circ, contract=OutputContract.column(0))
        seq = engine.instantiate(ghz, starts=5, rng=21)
        bat = engine.instantiate(ghz, starts=5, rng=21, strategy="batched")
        assert bat.starts_used == seq.starts_used
        np.testing.assert_allclose(bat.params, seq.params, atol=1e-8)

    def test_spawn_rehydrated_column_engine_is_bitwise(self, problem3):
        # A column engine shipped to a spawn worker (fresh interpreter,
        # megakernel rebuilt from the payload's generated source) must
        # reproduce the parent bit for bit.
        circ, ghz = problem3
        contract = OutputContract.column(0)
        parent = Instantiater(circ, contract=contract)
        payload_bytes = pickle.dumps(parent.serialize())
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                _child_state_instantiate, (payload_bytes, ghz.amplitudes)
            )
        result = parent.instantiate(ghz, starts=4, rng=9)
        child_params, child_infidelity = child
        assert np.array_equal(result.params, child_params)
        assert result.infidelity == child_infidelity
