"""Tests for the Hilbert-Schmidt cost/residual functions (Eq. 1)."""

import numpy as np
import pytest

from repro.circuit import build_qsearch_ansatz
from repro.instantiation.cost import (
    HilbertSchmidtResiduals,
    infidelity_from_cost,
)
from repro.tnvm import TNVM, Differentiation
from repro.utils import hilbert_schmidt_infidelity, random_unitary


@pytest.fixture(scope="module")
def setup():
    circ = build_qsearch_ansatz(2, 2, 2)
    vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
    target = random_unitary(4, rng=5)
    return circ, vm, HilbertSchmidtResiduals(vm, target), target


class TestResidualIdentity:
    def test_sum_sq_equals_scaled_infidelity(self, setup):
        circ, vm, res, target = setup
        p = np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
        r = res.residuals(p)
        u = vm.evaluate(tuple(p)).copy()
        infid = hilbert_schmidt_infidelity(target, u)
        assert float(r @ r) == pytest.approx(2 * 4 * infid, abs=1e-10)

    def test_cost_matches_eq1(self, setup):
        circ, vm, res, target = setup
        p = np.random.default_rng(2).uniform(-np.pi, np.pi, circ.num_params)
        u = vm.evaluate(tuple(p)).copy()
        assert res.cost(p) == pytest.approx(
            hilbert_schmidt_infidelity(target, u)
        )

    def test_zero_at_exact_target(self, setup):
        circ, vm, res, _ = setup
        p = np.random.default_rng(3).uniform(-np.pi, np.pi, circ.num_params)
        u = vm.evaluate(tuple(p)).copy()
        res_self = HilbertSchmidtResiduals(vm, u)
        assert res_self.cost(p) == pytest.approx(0.0, abs=1e-12)
        r = res_self.residuals(p)
        assert np.allclose(r, 0, atol=1e-8)

    def test_global_phase_invariance(self, setup):
        circ, vm, res, _ = setup
        p = np.random.default_rng(4).uniform(-np.pi, np.pi, circ.num_params)
        u = vm.evaluate(tuple(p)).copy()
        res_phase = HilbertSchmidtResiduals(vm, np.exp(0.42j) * u)
        assert res_phase.cost(p) == pytest.approx(0.0, abs=1e-12)


class TestJacobian:
    def test_cost_gradient_matches_finite_difference(self, setup):
        """The Jacobian holds the alignment phase fixed (Gauss-Newton),
        but because that phase *minimizes* the cost, the envelope
        theorem makes ``2 r^T J`` the exact gradient of ``sum(r^2)`` —
        which finite differences of the cost must confirm."""
        circ, vm, res, _ = setup
        p = np.random.default_rng(6).uniform(-np.pi, np.pi, circ.num_params)
        r0, jac = res.residuals_and_jacobian(p)
        analytic = 2 * (r0 @ jac)
        eps = 1e-6

        def cost(x):
            r = res.residuals(x)
            return float(r @ r)

        for k in range(min(circ.num_params, 6)):
            hi = p.copy()
            hi[k] += eps
            lo = p.copy()
            lo[k] -= eps
            fd = (cost(hi) - cost(lo)) / (2 * eps)
            assert analytic[k] == pytest.approx(fd, abs=1e-5)

    def test_shapes(self, setup):
        circ, vm, res, _ = setup
        p = np.zeros(circ.num_params)
        r, jac = res.residuals_and_jacobian(p)
        assert r.shape == (2 * 16,)
        assert jac.shape == (2 * 16, circ.num_params)


class TestValidation:
    def test_requires_gradient_vm(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        with pytest.raises(ValueError):
            HilbertSchmidtResiduals(vm, np.eye(4))

    def test_target_shape_checked(self, setup):
        _, vm, _, _ = setup
        with pytest.raises(ValueError):
            HilbertSchmidtResiduals(vm, np.eye(8))

    def test_infidelity_from_cost(self):
        assert infidelity_from_cost(8.0, 4) == 1.0

    def test_infidelity_from_cost_accepts_arrays(self):
        # Regression: the batched path feeds an (S,) cost array; the
        # function must vectorize (and its annotations now say so).
        costs = np.array([8.0, 4.0, 0.0])
        out = infidelity_from_cost(costs, 4)
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [1.0, 0.5, 0.0])
