"""Tests for compiled-engine serialization (cross-process sharing).

The contract: a compiled TNVM program / engine serialized in one
process and rehydrated in another produces bit-identical costs and
gradients to a freshly compiled one, without re-paying any of the AOT
pipeline (lowering, pathfinding, differentiation, e-graph, codegen).
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.circuit import build_qsearch_ansatz, gates
from repro.instantiation import EnginePool, Instantiater, SerializedEngine
from repro.jit.cache import ExpressionCache
from repro.tensornet.bytecode import Program
from repro.tnvm.vm import TNVM


@pytest.fixture()
def circuit():
    return build_qsearch_ansatz(2, 2, 2)


@pytest.fixture()
def target(circuit):
    p = np.random.default_rng(3).uniform(-np.pi, np.pi, circuit.num_params)
    return circuit.get_unitary(p)


class TestProgramSerialization:
    def test_round_trip_validates(self, circuit):
        program = circuit.compile()
        clone = Program.from_bytes(program.to_bytes())
        clone.validate()
        assert clone.num_params == program.num_params
        assert clone.radices == program.radices
        assert clone.output_shape == program.output_shape
        assert len(clone.buffers) == len(program.buffers)
        assert clone.const_section == program.const_section
        assert clone.dynamic_section == program.dynamic_section

    def test_rehydrated_vm_bit_identical(self, circuit):
        program = circuit.compile()
        clone = Program.from_bytes(program.to_bytes())
        params = np.random.default_rng(0).uniform(
            -np.pi, np.pi, circuit.num_params
        )
        u1, g1 = TNVM(program).evaluate_with_grad(params)
        u2, g2 = TNVM(clone).evaluate_with_grad(params)
        assert np.array_equal(u1, u2)
        assert np.array_equal(g1, g2)

    def test_from_bytes_rejects_non_program(self):
        with pytest.raises(TypeError):
            Program.from_bytes(pickle.dumps([1, 2, 3]))


class TestCompiledExpressionSerialization:
    def test_round_trip_bit_identical(self):
        compiled = ExpressionCache().get(gates.u3().matrix)
        clone = pickle.loads(pickle.dumps(compiled))
        p = np.random.default_rng(1).uniform(-np.pi, np.pi, 3)
        u1, g1 = compiled.unitary_and_grad(p)
        u2, g2 = clone.unitary_and_grad(p)
        assert np.array_equal(u1, u2)
        assert np.array_equal(g1, g2)
        assert clone.source == compiled.source
        assert clone.total_cost == compiled.total_cost

    def test_batched_writer_survives(self):
        compiled = ExpressionCache().get(gates.u3().matrix)
        _ = compiled.write_batched  # generate before pickling
        clone = pickle.loads(pickle.dumps(compiled))
        rows = np.random.default_rng(2).uniform(-np.pi, np.pi, (3, 4))
        for c in (compiled, clone):
            out = np.zeros((2, 2, 4), dtype=np.complex128)
            grad = np.zeros((3, 2, 2, 4), dtype=np.complex128)
            c.write_batched(rows, out, grad)
            scalar = c.unitary(rows[:, 0])
            assert np.allclose(out[..., 0], scalar)

    def test_cache_put_seeds_hits(self):
        compiled = pickle.loads(
            pickle.dumps(ExpressionCache().get(gates.u3().matrix))
        )
        cache = ExpressionCache()
        cache.put(compiled)
        assert cache.get(gates.u3().matrix) is compiled
        assert cache.hits == 1
        assert cache.misses == 0


class TestEngineSerialization:
    def test_round_trip_no_recompile(self, circuit, target):
        engine = Instantiater(circuit, strategy="auto")
        payload = pickle.loads(pickle.dumps(engine.serialize()))
        assert isinstance(payload, SerializedEngine)
        cache = ExpressionCache()
        clone = Instantiater.from_serialized(payload, cache=cache)
        # Every expression the TNVM needed was seeded: zero misses.
        assert cache.misses == 0
        assert cache.hits == len(engine.program.expressions)
        r1 = engine.instantiate(target, starts=8, rng=42)
        r2 = clone.instantiate(target, starts=8, rng=42)
        assert np.array_equal(r1.params, r2.params)
        assert r1.infidelity == r2.infidelity
        assert r1.starts_used == r2.starts_used

    def test_round_trip_sequential_strategy(self, circuit, target):
        engine = Instantiater(circuit, strategy="sequential")
        clone = Instantiater.from_serialized(
            pickle.loads(pickle.dumps(engine.serialize()))
        )
        r1 = engine.instantiate(target, starts=2, rng=5)
        r2 = clone.instantiate(target, starts=2, rng=5)
        assert np.array_equal(r1.params, r2.params)
        assert r1.infidelity == r2.infidelity

    def test_rehydrated_in_child_process(self, circuit, target):
        # The acceptance-bar scenario: serialize here, rehydrate in a
        # *spawned* interpreter (no inherited state), compare numbers.
        payload_bytes = pickle.dumps(Instantiater(circuit).serialize())
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                _child_instantiate, (payload_bytes, target)
            )
        parent = Instantiater(circuit).instantiate(target, starts=4, rng=9)
        child_params, child_infidelity = child
        assert np.array_equal(parent.params, child_params)
        assert parent.infidelity == child_infidelity

    def test_pool_payload_cached_per_shape(self, circuit):
        pool = EnginePool()
        first = pool.serialized_bytes(circuit)
        again = pool.serialized_bytes(circuit.copy())
        assert first is again  # one serialization per structure key
        assert pool.misses == 1
        assert pool.hits == 1  # the repeat resolved through the LRU

    def test_evicted_engine_rehydrates_from_payload(self, target):
        # Once a shape is serialized, LRU eviction must not force a
        # fresh AOT compile: the pool rehydrates from the snapshot.
        pool = EnginePool(capacity=1)
        circ_a = build_qsearch_ansatz(2, 2, 2)
        circ_b = build_qsearch_ansatz(2, 1, 2)
        before = pool.engine_for(circ_a).instantiate(target, starts=4, rng=1)
        pool.serialized_bytes(circ_a)
        pool.engine_for(circ_b)  # evicts circ_a's engine
        revived = pool.engine_for(circ_a)
        # Rehydrated engines are program-backed (no circuit attached) —
        # the observable marker that no recompile happened.
        assert revived.circuit is None
        assert pool.misses == 3
        after = revived.instantiate(target, starts=4, rng=1)
        assert np.array_equal(before.params, after.params)
        assert before.infidelity == after.infidelity

    def test_program_only_engine_needs_no_circuit(self, circuit, target):
        program = circuit.compile()
        engine = Instantiater(program=program)
        result = engine.instantiate(target, starts=2, rng=0)
        assert result.params.shape == (circuit.num_params,)
        with pytest.raises(ValueError):
            Instantiater()


class TestFusedEngineSerialization:
    """Fused engines ship their megakernel *source*: the receiving
    process rehydrates with ``compile()`` — it never re-fuses."""

    def test_payload_carries_fused_kernels(self, circuit):
        engine = Instantiater(circuit, strategy="auto", backend="fused")
        payload = pickle.loads(pickle.dumps(engine.serialize()))
        assert payload.backend == "fused"
        kernels = dict(payload.fused_kernels)
        # Scalar and batched gradient megakernels for a non-sequential
        # engine (grad, batched).
        assert (True, False) in kernels
        assert (True, True) in kernels
        assert "def make_fused(" in kernels[(True, False)].source

    def test_rehydrated_fused_engine_skips_fusing(self, circuit, target):
        engine = Instantiater(circuit, strategy="auto", backend="fused")
        r1 = engine.instantiate(target, starts=8, rng=42)
        payload = pickle.loads(pickle.dumps(engine.serialize()))
        clone = Instantiater.from_serialized(payload, cache=ExpressionCache())
        # The shipped kernels are attached to the rehydrated program:
        # VM setup binds the shipped source instead of re-generating.
        assert clone.backend == "fused"
        assert clone.vm.fused_kernel is dict(clone.program._fused_kernels)[
            (True, False)
        ]
        r2 = clone.instantiate(target, starts=8, rng=42)
        assert np.array_equal(r1.params, r2.params)
        assert r1.infidelity == r2.infidelity
        assert r1.starts_used == r2.starts_used

    def test_closures_engine_ships_no_kernels(self, circuit):
        engine = Instantiater(circuit, backend="closures")
        payload = engine.serialize()
        assert payload.backend == "closures"
        assert payload.fused_kernels == ()

    def test_shared_program_kernels_not_shipped_by_closures_engine(
        self, circuit
    ):
        # A fused sibling caches kernels on the shared Program; a
        # closures engine's payload must not pick them up.
        program = circuit.compile()
        fused = Instantiater(program=program, backend="fused")
        assert fused.vm.fused_kernel is not None  # cached on program
        closures = Instantiater(program=program, backend="closures")
        assert closures.serialize().fused_kernels == ()
        # And a sequential fused engine ships only the scalar variant.
        sequential = Instantiater(
            program=program, backend="fused", strategy="sequential"
        )
        keys = {k for k, _ in sequential.serialize().fused_kernels}
        assert keys == {(True, False)}

    def test_fused_vs_closures_engines_identical(self, circuit, target):
        # The backend is an execution detail: the full multi-start
        # InstantiationResult must agree bit-for-bit.
        for strategy in ("sequential", "auto"):
            fused = Instantiater(
                circuit.copy(), strategy=strategy, backend="fused"
            )
            closures = Instantiater(
                circuit.copy(), strategy=strategy, backend="closures"
            )
            r1 = fused.instantiate(target, starts=6, rng=13)
            r2 = closures.instantiate(target, starts=6, rng=13)
            assert np.array_equal(r1.params, r2.params)
            assert r1.infidelity == r2.infidelity
            assert r1.starts_used == r2.starts_used
            assert r1.total_iterations == r2.total_iterations

    def test_fused_rehydrated_in_spawned_child(self, circuit, target):
        payload_bytes = pickle.dumps(
            Instantiater(circuit, backend="fused").serialize()
        )
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(_child_instantiate, (payload_bytes, target))
        parent = Instantiater(circuit, backend="fused").instantiate(
            target, starts=4, rng=9
        )
        child_params, child_infidelity = child
        assert np.array_equal(parent.params, child_params)
        assert parent.infidelity == child_infidelity


def _child_instantiate(payload_bytes, target):
    from repro.instantiation import Instantiater as ChildInstantiater

    engine = ChildInstantiater.from_serialized(pickle.loads(payload_bytes))
    result = engine.instantiate(target, starts=4, rng=9)
    return result.params, result.infidelity
