"""Tests for the structure-keyed LRU engine pool."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.instantiation import EnginePool
from repro.tensornet import FULL_UNITARY


def make_target(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p)


class TestPooling:
    def test_structurally_identical_circuits_share_engine(self):
        pool = EnginePool()
        a = build_qsearch_ansatz(2, 2, 2)
        b = build_qsearch_ansatz(2, 2, 2)  # distinct object, same shape
        ea = pool.engine_for(a)
        eb = pool.engine_for(b)
        assert ea is eb
        assert pool.hits == 1
        assert pool.misses == 1
        assert len(pool) == 1

    def test_pooled_engine_solves_either_circuit(self):
        pool = EnginePool()
        a = build_qsearch_ansatz(2, 2, 2)
        b = build_qsearch_ansatz(2, 2, 2)
        target = make_target(b, seed=21)
        result = pool.engine_for(a).instantiate(target, starts=8, rng=0)
        assert result.success
        # The solution parameters apply to the twin circuit directly.
        from repro.utils import hilbert_schmidt_infidelity

        assert (
            hilbert_schmidt_infidelity(target, b.get_unitary(result.params))
            < 1e-8
        )

    def test_different_shapes_miss(self):
        pool = EnginePool()
        pool.engine_for(build_qsearch_ansatz(2, 1, 2))
        pool.engine_for(build_qsearch_ansatz(2, 2, 2))
        assert pool.misses == 2
        assert pool.hits == 0
        assert len(pool) == 2

    def test_const_values_are_part_of_the_key(self):
        pool = EnginePool()
        for angle in (0.5, 0.7):
            circ = QuditCircuit.qubits(1)
            rx = circ.cache_operation(gates.rx())
            circ.append_ref_constant(rx, 0, (angle,))
            pool.engine_for(circ)
        assert pool.misses == 2


class TestLRU:
    def test_eviction_at_capacity(self):
        pool = EnginePool(capacity=1)
        a = build_qsearch_ansatz(2, 1, 2)
        b = build_qsearch_ansatz(2, 2, 2)
        ea = pool.engine_for(a)
        pool.engine_for(b)  # evicts a's engine
        assert len(pool) == 1
        assert pool.engine_for(a) is not ea  # fresh engine object
        assert pool.misses == 3

    def test_eviction_snapshots_unshipped_engine(self):
        # An engine evicted before anything serialized its shape must
        # land in the payload store, so the next hit on that shape
        # rehydrates (program-backed, no circuit) instead of re-paying
        # the AOT compile.
        pool = EnginePool(capacity=1)
        a = build_qsearch_ansatz(2, 1, 2)
        b = build_qsearch_ansatz(2, 2, 2)
        pool.engine_for(a)
        pool.engine_for(b)  # evicts a, snapshotting it on the way out
        assert (a.structure_key(), FULL_UNITARY.key()) in pool._payloads
        revived = pool.engine_for(a)
        assert revived.circuit is None  # rehydrated, not recompiled
        target = make_target(a, seed=11)
        result = revived.instantiate(target, starts=4, rng=2)
        fresh = EnginePool().engine_for(a).instantiate(
            target, starts=4, rng=2
        )
        assert np.array_equal(result.params, fresh.params)
        assert result.infidelity == fresh.infidelity

    def test_eviction_snapshot_reuses_existing_payload(self):
        pool = EnginePool(capacity=1)
        a = build_qsearch_ansatz(2, 1, 2)
        payload = pool.serialized_bytes(a)
        pool.engine_for(build_qsearch_ansatz(2, 2, 2))  # evicts a
        # The already-serialized payload is kept, not re-pickled.
        assert (
            pool._payloads[(a.structure_key(), FULL_UNITARY.key())]
            is payload
        )

    def test_hit_refreshes_recency(self):
        pool = EnginePool(capacity=2)
        a = build_qsearch_ansatz(2, 1, 2)
        b = build_qsearch_ansatz(2, 2, 2)
        c = build_qsearch_ansatz(2, 3, 2)
        ea = pool.engine_for(a)
        pool.engine_for(b)
        pool.engine_for(a)  # a becomes most recent
        pool.engine_for(c)  # evicts b, not a
        assert pool.engine_for(a) is ea
        assert pool.hits == 2

    def test_clear_keeps_counters(self):
        pool = EnginePool()
        pool.engine_for(build_qsearch_ansatz(2, 1, 2))
        pool.clear()
        assert len(pool) == 0
        assert pool.misses == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EnginePool(capacity=0)
