"""Tests for the Adam infidelity minimizer (optimizer ablation)."""

import numpy as np
import pytest

from repro.circuit import build_qsearch_ansatz
from repro.instantiation.gd import (
    AdamOptions,
    InfidelityFunction,
    adam_minimize,
)
from repro.tnvm import TNVM, Differentiation


@pytest.fixture(scope="module")
def problem():
    circ = build_qsearch_ansatz(2, 2, 2)
    vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
    rng = np.random.default_rng(5)
    p_true = rng.uniform(-np.pi, np.pi, circ.num_params)
    target = circ.get_unitary(p_true)
    return circ, vm, target, p_true


class TestInfidelityFunction:
    def test_value_matches_reference(self, problem):
        circ, vm, target, _ = problem
        fn = InfidelityFunction(vm, target)
        p = np.random.default_rng(0).uniform(-1, 1, circ.num_params)
        value, _ = fn.value_and_grad(p)
        from repro.utils import hilbert_schmidt_infidelity

        u = circ.get_unitary(p)
        assert value == pytest.approx(
            hilbert_schmidt_infidelity(target, u), abs=1e-12
        )

    def test_gradient_matches_finite_difference(self, problem):
        circ, vm, target, _ = problem
        fn = InfidelityFunction(vm, target)
        p = np.random.default_rng(1).uniform(-1, 1, circ.num_params)
        _, grad = fn.value_and_grad(p)
        eps = 1e-7
        for k in range(min(5, circ.num_params)):
            bumped = p.copy()
            bumped[k] += eps
            v_hi, _ = fn.value_and_grad(bumped)
            v_lo, _ = fn.value_and_grad(p)
            assert grad[k] == pytest.approx(
                (v_hi - v_lo) / eps, abs=1e-4
            )

    def test_zero_at_target(self, problem):
        circ, vm, target, p_true = problem
        fn = InfidelityFunction(vm, target)
        value, grad = fn.value_and_grad(p_true)
        assert value == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_requires_gradient_vm(self, problem):
        circ, _, target, _ = problem
        plain = TNVM(circ.compile(), diff=Differentiation.NONE)
        with pytest.raises(ValueError):
            InfidelityFunction(plain, target)


class TestAdam:
    def test_descends_from_near_solution(self, problem):
        circ, vm, target, p_true = problem
        fn = InfidelityFunction(vm, target)
        x0 = p_true + 0.05 * np.random.default_rng(2).normal(
            size=circ.num_params
        )
        result = adam_minimize(
            fn, x0, AdamOptions(max_iterations=800,
                                success_infidelity=1e-6,
                                learning_rate=0.02)
        )
        assert result.infidelity < fn.value_and_grad(x0)[0]
        assert result.infidelity < 1e-4

    def test_success_short_circuit(self, problem):
        circ, vm, target, p_true = problem
        fn = InfidelityFunction(vm, target)
        result = adam_minimize(
            fn, p_true, AdamOptions(success_infidelity=1e-8)
        )
        assert result.stop_reason == "success-threshold"
        assert result.iterations <= 2

    def test_iteration_cap(self, problem):
        circ, vm, target, _ = problem
        fn = InfidelityFunction(vm, target)
        x0 = np.zeros(circ.num_params)
        result = adam_minimize(fn, x0, AdamOptions(max_iterations=5))
        assert result.iterations <= 5
        assert not result.converged or result.stop_reason != "max-iterations"
