"""Batched multi-start instantiation: equivalence and short-circuit."""

import numpy as np
import pytest

from repro.circuit import fig5_circuit
from repro.instantiation import (
    BatchedInstantiater,
    HilbertSchmidtResiduals,
    Instantiater,
    batched_levenberg_marquardt,
    levenberg_marquardt,
)


def make_target(name: str, seed: int) -> np.ndarray:
    circ = fig5_circuit(name)
    params = np.random.default_rng(seed).uniform(
        -np.pi, np.pi, circ.num_params
    )
    return circ.get_unitary(params)


class TestBatchedLM:
    def test_decision_sequence_matches_scalar(self):
        """With a bit-identical residual function, every start of the
        batched LM follows the scalar optimizer's exact decision
        sequence (iterations, evaluations, stop reason)."""
        circ = fig5_circuit("2-qubit shallow")
        engine = Instantiater(circ)
        target = make_target("2-qubit shallow", seed=7)
        res = HilbertSchmidtResiduals(engine.vm, target)

        def batch_fn(X):
            rs, js = [], []
            for x in X:
                r, j = res.residuals_and_jacobian(x)
                rs.append(r.copy())
                js.append(j.copy())
            return np.array(rs), np.array(js)

        starts = 5
        X0 = np.random.default_rng(0).uniform(
            -2 * np.pi, 2 * np.pi, (starts, circ.num_params)
        )
        batched = batched_levenberg_marquardt(
            batch_fn, X0, engine.lm_options
        )
        for s in range(starts):
            scalar = levenberg_marquardt(
                res.residuals_and_jacobian, X0[s], engine.lm_options
            )
            assert batched[s].stop_reason == scalar.stop_reason
            assert batched[s].iterations == scalar.iterations
            assert batched[s].num_evaluations == scalar.num_evaluations
            assert batched[s].converged == scalar.converged
            np.testing.assert_allclose(
                batched[s].params, scalar.params, atol=1e-8
            )

    def test_rejects_non_matrix_x0(self):
        with pytest.raises(ValueError):
            batched_levenberg_marquardt(
                lambda X: (X, X[:, :, None]), np.zeros(3)
            )

    def test_survives_singular_solve_alongside_accepted_step(
        self, monkeypatch
    ):
        """Regression: when one start's damped normal equations are
        singular (solve raises) in the same round as another start
        accepting its step, the failed start must escalate damping —
        not crash on a mismatched step index."""
        real_solve = np.linalg.solve

        def flaky_solve(a, b):
            if a.ndim == 3:  # the stacked batched solve
                raise np.linalg.LinAlgError("singular")
            if abs(a[0, 0] - a[1, 1]) < 1e-30:
                # start 0's system (constant residuals, zero
                # Jacobian => isotropic damping) is declared singular
                raise np.linalg.LinAlgError("singular")
            return real_solve(a, b)

        monkeypatch.setattr(np.linalg, "solve", flaky_solve)

        def residual_fn(X):
            # start 0: constant residuals with a symmetric Jacobian
            # (isotropic damped system -> "singular" above, and no
            # step can improve); start 1: clean anisotropic quadratic.
            R = np.stack([np.full(2, 1e3), X[1] ** 2 * [1.0, 2.0]])
            J = np.zeros((2, 2, 2))
            J[0] = 1.0
            J[1] = 2.0 * np.diag(X[1]) * [[1.0], [2.0]]
            return R, J

        runs = batched_levenberg_marquardt(
            residual_fn, np.array([[1.0, 1.0], [1.0, 2.0]])
        )
        assert runs[0].stop_reason == "damping-limit"
        assert runs[1].cost < 1e-10


@pytest.mark.parametrize(
    "name", ["2-qubit shallow", "3-qubit shallow", "2-qutrit shallow"]
)
def test_batched_engine_matches_sequential(name):
    """Same RNG seed => same start population, same winning start, and
    a result within the success threshold for both engines."""
    circ = fig5_circuit(name)
    target = make_target(name, seed=11)
    seq = Instantiater(circ)
    bat = BatchedInstantiater(circ)
    for seed in range(3):
        rs = seq.instantiate(target, starts=8, rng=seed)
        rb = bat.instantiate(target, starts=8, rng=seed)
        assert rb.success == rs.success
        assert rb.starts_used == rs.starts_used
        if rs.success:
            assert rb.infidelity <= seq.success_threshold
        # both fits reproduce the same unitary up to the threshold
        u_seq = circ.get_unitary(rs.params)
        u_bat = circ.get_unitary(rb.params)
        d = circ.dim
        for u in (u_seq, u_bat):
            overlap = abs(np.trace(target.conj().T @ u)) / d
            if rs.success:
                assert 1.0 - overlap <= 10 * seq.success_threshold


def test_batched_short_circuit_starts_used():
    """Multi-start short-circuits: seeding start 0 with the solution
    stops after one start, and the remaining runs are abandoned."""
    circ = fig5_circuit("2-qubit shallow")
    p_true = np.random.default_rng(5).uniform(
        -np.pi, np.pi, circ.num_params
    )
    target = circ.get_unitary(p_true)
    engine = BatchedInstantiater(circ)
    result = engine.instantiate(target, starts=8, x0=p_true, rng=2)
    assert result.success
    assert result.starts_used == 1
    assert len(result.runs) == 8
    assert all(
        r.stop_reason == "abandoned" for r in result.runs[1:]
    ), [r.stop_reason for r in result.runs]


def test_strategy_switch_routes_to_batched():
    circ = fig5_circuit("2-qubit shallow")
    target = make_target("2-qubit shallow", seed=3)
    engine = Instantiater(circ, strategy="batched")
    result = engine.instantiate(target, starts=4, rng=0)
    assert result.success
    # the batched engine is created lazily and reused
    assert engine._batched_engine is not None
    again = engine.instantiate(target, starts=4, rng=1)
    assert again.success

    # per-call override wins over the engine default
    seq_engine = Instantiater(circ)
    result = seq_engine.instantiate(
        target, starts=4, rng=0, strategy="batched"
    )
    assert result.success


def test_strategy_auto_threshold():
    circ = fig5_circuit("2-qubit shallow")
    target = make_target("2-qubit shallow", seed=3)
    engine = Instantiater(circ, strategy="auto")
    engine.instantiate(target, starts=1, rng=0)
    assert engine._batched_engine is None  # few starts: sequential
    engine.instantiate(target, starts=8, rng=0)
    assert engine._batched_engine is not None  # many starts: batched


def test_strategy_validation():
    circ = fig5_circuit("2-qubit shallow")
    with pytest.raises(ValueError):
        Instantiater(circ, strategy="warp-speed")
    engine = Instantiater(circ)
    with pytest.raises(ValueError):
        engine.instantiate(np.eye(4), starts=2, strategy="warp-speed")


def test_batched_engine_reuses_vm_per_batch_size():
    circ = fig5_circuit("2-qubit shallow")
    target = make_target("2-qubit shallow", seed=3)
    engine = BatchedInstantiater(circ)
    engine.instantiate(target, starts=4, rng=0)
    vm4 = engine._vms[4]
    engine.instantiate(target, starts=4, rng=1)
    assert engine._vms[4] is vm4
    engine.instantiate(target, starts=2, rng=0)
    assert set(engine._vms) == {2, 4}


def test_batched_x0_validation():
    circ = fig5_circuit("2-qubit shallow")
    engine = BatchedInstantiater(circ)
    with pytest.raises(ValueError):
        engine.instantiate(np.eye(4), starts=2, x0=np.zeros(3))
