"""Tests for the multi-start instantiation engine."""

import numpy as np
import pytest

from repro.circuit import build_qft_circuit, build_qsearch_ansatz, gates, QuditCircuit
from repro.instantiation import (
    AUTO_BATCH_MIN_STARTS,
    Instantiater,
    LMOptions,
    instantiate,
)


@pytest.fixture(scope="module")
def shallow2q():
    circ = build_qsearch_ansatz(2, 2, 2)
    return circ, Instantiater(circ)


def target_from_ansatz(circ, seed):
    p = np.random.default_rng(seed).uniform(-np.pi, np.pi, circ.num_params)
    return circ.get_unitary(p), p


class TestRecovery:
    def test_recovers_reachable_target(self, shallow2q):
        circ, engine = shallow2q
        target, _ = target_from_ansatz(circ, 11)
        result = engine.instantiate(target, starts=8, rng=0)
        assert result.success
        assert result.infidelity < 1e-8
        # The recovered parameters actually reproduce the target.
        u = circ.get_unitary(result.params)
        from repro.utils import hilbert_schmidt_infidelity

        assert hilbert_schmidt_infidelity(target, u) < 1e-8

    def test_x0_seeding_converges_immediately(self, shallow2q):
        circ, engine = shallow2q
        target, p_true = target_from_ansatz(circ, 12)
        result = engine.instantiate(target, starts=1, x0=p_true)
        assert result.success
        assert result.total_iterations <= 3

    def test_single_qubit_exact(self):
        circ = QuditCircuit.qubits(1)
        u3 = circ.cache_operation(gates.u3())
        circ.append_ref(u3, 0)
        from repro.utils import random_unitary

        target = random_unitary(2, rng=3)
        result = instantiate(circ, target, starts=4, rng=1)
        assert result.success  # U3 parameterizes all of U(2) mod phase


class TestMultiStart:
    def test_short_circuit_on_success(self, shallow2q):
        circ, engine = shallow2q
        target, p_true = target_from_ansatz(circ, 13)
        result = engine.instantiate(target, starts=8, x0=p_true, rng=2)
        assert result.starts_used == 1  # first start already succeeds

    def test_multi_start_beats_single(self, shallow2q):
        circ, engine = shallow2q
        successes_single = 0
        successes_multi = 0
        for seed in range(4):
            target, _ = target_from_ansatz(circ, 50 + seed)
            if engine.instantiate(target, starts=1, rng=seed).success:
                successes_single += 1
            if engine.instantiate(target, starts=8, rng=seed).success:
                successes_multi += 1
        assert successes_multi >= successes_single

    def test_runs_recorded(self, shallow2q):
        circ, engine = shallow2q
        target, _ = target_from_ansatz(circ, 14)
        result = engine.instantiate(target, starts=3, rng=4)
        assert 1 <= len(result.runs) <= 3
        assert result.starts_used == len(result.runs)


class TestAccounting:
    def test_timings_present(self, shallow2q):
        circ, engine = shallow2q
        target, _ = target_from_ansatz(circ, 15)
        result = engine.instantiate(target, starts=1, rng=0)
        assert engine.aot_seconds > 0
        assert result.optimize_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.aot_seconds + result.optimize_seconds
        )

    def test_bad_x0_shape_rejected(self, shallow2q):
        circ, engine = shallow2q
        target, _ = target_from_ansatz(circ, 16)
        with pytest.raises(ValueError):
            engine.instantiate(target, x0=np.zeros(1))

    def test_custom_lm_options(self, shallow2q):
        circ, _ = shallow2q
        target, _ = target_from_ansatz(circ, 17)
        result = instantiate(
            circ, target, starts=1, rng=0,
            lm_options=LMOptions(max_iterations=2),
        )
        assert result.runs[0].iterations <= 2


class TestAutoStrategy:
    """``strategy="auto"`` switches engines at AUTO_BATCH_MIN_STARTS."""

    def test_threshold_value(self):
        assert AUTO_BATCH_MIN_STARTS == 4

    def test_below_threshold_stays_sequential(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        engine = Instantiater(circ, strategy="auto")
        target, p_true = target_from_ansatz(circ, 30)
        for starts in range(1, AUTO_BATCH_MIN_STARTS):
            result = engine.instantiate(target, starts=starts, rng=0, x0=p_true)
            assert result.success
            # The batched engine is built lazily on first batched call;
            # below the threshold it must never come into existence.
            assert engine._batched_engine is None

    def test_at_threshold_switches_to_batched(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        engine = Instantiater(circ, strategy="auto")
        target, p_true = target_from_ansatz(circ, 31)
        result = engine.instantiate(
            target, starts=AUTO_BATCH_MIN_STARTS, rng=0, x0=p_true
        )
        assert result.success
        assert engine._batched_engine is not None

    def test_zero_param_circuit_stays_sequential(self):
        # A fully constant template has nothing to batch over.
        circ = build_qft_circuit(2)
        engine = Instantiater(circ, strategy="auto")
        result = engine.instantiate(circ.get_unitary(()), starts=8)
        assert result.success
        assert result.infidelity <= 1e-8
        assert engine._batched_engine is None

    def test_per_call_override_beats_engine_default(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        engine = Instantiater(circ, strategy="auto")
        target, _ = target_from_ansatz(circ, 32)
        engine.instantiate(target, starts=2, rng=0, strategy="batched")
        assert engine._batched_engine is not None


class TestEngineReuse:
    """One Instantiater serves many targets (the Listing 3 workflow)."""

    @pytest.mark.parametrize("strategy", ["sequential", "batched"])
    def test_many_targets_one_engine(self, strategy):
        circ = build_qsearch_ansatz(2, 2, 2)
        engine = Instantiater(circ, strategy=strategy)
        aot_before = engine.aot_seconds
        for seed in range(3):
            target, p_true = target_from_ansatz(circ, 40 + seed)
            result = engine.instantiate(target, starts=8, rng=seed)
            assert result.success
            from repro.utils import hilbert_schmidt_infidelity

            assert (
                hilbert_schmidt_infidelity(
                    target, circ.get_unitary(result.params)
                )
                < 1e-8
            )
        if strategy == "sequential":
            # The scalar VM exists from construction; repeat targets
            # must not pay any further AOT time.
            assert engine.aot_seconds == aot_before

    def test_batched_reuses_one_arena_per_start_count(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        engine = Instantiater(circ, strategy="batched")
        for seed in range(3):
            target, _ = target_from_ansatz(circ, 45 + seed)
            engine.instantiate(target, starts=8, rng=seed)
        batched = engine._batched_engine
        assert batched is not None
        assert set(batched._vms) == {8}  # one BatchedTNVM, reused
