"""Unit tests for pattern parsing and e-matching."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import (
    PatNode,
    PatVar,
    Rewrite,
    instantiate,
    match_in_class,
    parse_pattern,
)
from repro.symbolic import expr as E


class TestParse:
    def test_variable(self):
        assert parse_pattern("?x") == PatVar("x")

    def test_node(self):
        p = parse_pattern("(sin ?x)")
        assert isinstance(p, PatNode)
        assert p.op == "sin"
        assert p.children == (PatVar("x"),)

    def test_const_leaf(self):
        p = parse_pattern("2")
        assert p.op == "const" and p.payload == 2.0

    def test_pi_leaf(self):
        assert parse_pattern("pi").op == "pi"

    def test_nested(self):
        p = parse_pattern("(+ (* ?a ?b) 1)")
        assert p.op == "+"
        assert p.children[0].op == "*"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ValueError):
            parse_pattern("?x ?y")


class TestMatching:
    def test_simple_match(self):
        eg = EGraph()
        root = eg.add_expr(E.sin(E.var("a")))
        matches = match_in_class(eg, parse_pattern("(sin ?x)"), root)
        assert len(matches) == 1

    def test_no_match(self):
        eg = EGraph()
        root = eg.add_expr(E.cos(E.var("a")))
        assert not match_in_class(eg, parse_pattern("(sin ?x)"), root)

    def test_nonlinear_pattern(self):
        eg = EGraph()
        x = E.var("x")
        same = eg.add_expr(x * x)
        diff = eg.add_expr(x * E.var("y"))
        pat = parse_pattern("(* ?a ?a)")
        assert match_in_class(eg, pat, same)
        assert not match_in_class(eg, pat, diff)

    def test_const_literal_match(self):
        eg = EGraph()
        two_x = eg.add_expr(E.Expr("*", (E.const(2), E.var("x"))))
        pat = parse_pattern("(* 2 ?x)")
        assert match_in_class(eg, pat, two_x)

    def test_match_after_union(self):
        # Matching sees through equivalences: if y == sin(x), then
        # cos(y) matches (cos (sin ?a)).
        eg = EGraph()
        y = eg.add("var", "y")
        sinx = eg.add("sin", None, (eg.add("var", "x"),))
        cosy = eg.add("cos", None, (y,))
        eg.union(y, sinx)
        eg.rebuild()
        assert match_in_class(
            eg, parse_pattern("(cos (sin ?a))"), cosy
        )

    def test_instantiate(self):
        eg = EGraph()
        x = eg.add("var", "x")
        cid = instantiate(
            eg, parse_pattern("(sin ?a)"), {"a": x}
        )
        assert ("sin", None, (x,)) in eg.classes[eg.find(cid)].nodes


class TestRewrite:
    def test_apply_unions(self):
        eg = EGraph()
        # Build the raw shape (sin (~ x)); the smart constructor would
        # fold it to (~ (sin x)) before it reaches the e-graph.
        root = eg.add_expr(E.Expr("sin", (E.Expr("~", (E.var("x"),)),)))
        rw = Rewrite("sin-neg", "(sin (~ ?x))", "(~ (sin ?x))")
        matches = rw.search(eg)
        assert matches
        rw.apply(eg, matches)
        eg.rebuild()
        neg_sin = eg.add_expr(E.Expr("~", (E.sin(E.var("x")),)))
        assert eg.find(neg_sin) == eg.find(root)

    def test_search_across_classes(self):
        eg = EGraph()
        eg.add_expr(E.sin(E.var("a")))
        eg.add_expr(E.sin(E.var("b")))
        rw = Rewrite("any-sin", "(sin ?x)", "(sin ?x)")
        assert len(rw.search(eg)) == 2
