"""Unit tests for the e-graph data structure."""

import math

from repro.egraph.egraph import EGraph
from repro.symbolic import expr as E


class TestAdd:
    def test_hashcons_dedup(self):
        eg = EGraph()
        a = eg.add("var", "x")
        b = eg.add("var", "x")
        assert a == b
        assert eg.num_classes == 1

    def test_distinct_nodes(self):
        eg = EGraph()
        assert eg.add("var", "x") != eg.add("var", "y")

    def test_add_expr(self):
        eg = EGraph()
        root = eg.add_expr(E.sin(E.var("x")) + E.const(1))
        assert root == eg.find(root)
        # x, sin(x), 1, + : four classes
        assert eg.num_classes == 4

    def test_shared_subexpression_one_class(self):
        eg = EGraph()
        x = E.var("x")
        eg.add_expr(E.sin(x) * E.sin(x))
        ops = sorted(
            node[0] for cls in eg.eclasses() for node in cls.nodes
        )
        assert ops.count("sin") == 1


class TestUnionFind:
    def test_union_merges(self):
        eg = EGraph()
        a = eg.add("var", "x")
        b = eg.add("var", "y")
        root = eg.union(a, b)
        assert eg.find(a) == eg.find(b) == root
        assert eg.num_classes == 1

    def test_union_idempotent(self):
        eg = EGraph()
        a = eg.add("var", "x")
        assert eg.union(a, a) == eg.find(a)
        assert eg.num_unions == 0

    def test_congruence_closure(self):
        # x == y implies f(x) == f(y) after rebuild.
        eg = EGraph()
        x = eg.add("var", "x")
        y = eg.add("var", "y")
        fx = eg.add("sin", None, (x,))
        fy = eg.add("sin", None, (y,))
        assert eg.find(fx) != eg.find(fy)
        eg.union(x, y)
        eg.rebuild()
        assert eg.find(fx) == eg.find(fy)

    def test_transitive_congruence(self):
        # x == y implies g(f(x)) == g(f(y)).
        eg = EGraph()
        x = eg.add("var", "x")
        y = eg.add("var", "y")
        gfx = eg.add("cos", None, (eg.add("sin", None, (x,)),))
        gfy = eg.add("cos", None, (eg.add("sin", None, (y,)),))
        eg.union(x, y)
        eg.rebuild()
        assert eg.find(gfx) == eg.find(gfy)

    def test_add_after_union_respects_canonical(self):
        eg = EGraph()
        x = eg.add("var", "x")
        y = eg.add("var", "y")
        eg.union(x, y)
        eg.rebuild()
        fx = eg.add("sin", None, (x,))
        fy = eg.add("sin", None, (y,))
        assert eg.find(fx) == eg.find(fy)


class TestConstantFolding:
    def test_fold_addition(self):
        eg = EGraph()
        two = eg.add("const", 2.0)
        three = eg.add("const", 3.0)
        s = eg.add("+", None, (two, three))
        assert eg.classes[eg.find(s)].const == 5.0

    def test_fold_injects_literal_node(self):
        eg = EGraph()
        s = eg.add(
            "+", None, (eg.add("const", 2.0), eg.add("const", 3.0))
        )
        nodes = eg.classes[eg.find(s)].nodes
        assert ("const", 5.0, ()) in nodes

    def test_fold_pi(self):
        eg = EGraph()
        p = eg.add("pi")
        assert eg.classes[eg.find(p)].const == math.pi

    def test_fold_propagates_through_union(self):
        eg = EGraph()
        x = eg.add("var", "x")
        two = eg.add("const", 2.0)
        eg.union(x, two)
        eg.rebuild()
        # sin(x) now folds because x == 2.
        s = eg.add("sin", None, (x,))
        assert eg.classes[eg.find(s)].const is None or math.isclose(
            eg.classes[eg.find(s)].const, math.sin(2.0)
        )

    def test_no_fold_for_variables(self):
        eg = EGraph()
        x = eg.add("var", "x")
        assert eg.classes[eg.find(x)].const is None

    def test_unsafe_fold_skipped(self):
        eg = EGraph()
        one = eg.add("const", 1.0)
        zero = eg.add("const", 0.0)
        d = eg.add("/", None, (one, zero))
        assert eg.classes[eg.find(d)].const is None
