"""Soundness tests for every rewrite rule in the default set.

Each rule's LHS and RHS are instantiated with fresh variables and
evaluated on random bindings: a rewrite is sound iff both sides agree
numerically wherever both are defined.
"""

import math

import numpy as np
import pytest

from repro.egraph.pattern import Pattern, PatVar
from repro.egraph.rules import default_rules
from repro.symbolic import expr as E


def pattern_to_expr(p: Pattern) -> E.Expr:
    if isinstance(p, PatVar):
        return E.var(p.name)
    if p.op == "const":
        return E.const(p.payload)
    if p.op == "pi":
        return E.PI
    if p.op == "var":
        return E.var(p.payload)
    children = [pattern_to_expr(c) for c in p.children]
    # Bypass smart-constructor folding so the literal rule shape is kept.
    return E.Expr(p.op, tuple(children))


def pattern_vars(p: Pattern) -> set[str]:
    if isinstance(p, PatVar):
        return {p.name}
    out: set[str] = set()
    for c in p.children:
        out |= pattern_vars(c)
    return out


ALL_RULES = default_rules()


@pytest.mark.parametrize(
    "rule", ALL_RULES, ids=[r.name for r in ALL_RULES]
)
def test_rule_is_numerically_sound(rule):
    lhs = pattern_to_expr(rule.lhs)
    rhs = pattern_to_expr(rule.rhs)
    names = sorted(pattern_vars(rule.lhs) | pattern_vars(rule.rhs))
    rng = np.random.default_rng(hash(rule.name) % 2**32)
    checked = 0
    for _ in range(40):
        env = {n: float(rng.uniform(0.1, 2.5)) for n in names}
        try:
            lv = E.evaluate(lhs, env)
            rv = E.evaluate(rhs, env)
        except (ValueError, ZeroDivisionError, OverflowError):
            continue  # outside the common domain; rules are
            # sound-modulo-definedness
        checked += 1
        assert math.isclose(lv, rv, rel_tol=1e-9, abs_tol=1e-9), (
            f"rule {rule.name} unsound at {env}: {lv} != {rv}"
        )
    assert checked >= 10, f"rule {rule.name} was never evaluable"


def test_rule_names_unique():
    names = [r.name for r in ALL_RULES]
    assert len(names) == len(set(names))


def test_rule_count_is_substantial():
    # The curated set covers arithmetic, power, trig and exp families.
    assert len(ALL_RULES) >= 50
