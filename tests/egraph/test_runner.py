"""Tests for the equality-saturation runner and its safeguards."""

from repro.egraph import EGraph, Runner, RunnerLimits
from repro.egraph.pattern import Rewrite
from repro.symbolic import expr as E


class TestRunner:
    def test_saturates_on_trivial_graph(self):
        eg = EGraph()
        eg.add_expr(E.var("x"))
        report = Runner().run(eg)
        assert report.stop_reason == "saturated"
        assert report.iterations >= 1

    def test_iteration_limit(self):
        # Associativity alone never saturates a long sum chain quickly.
        eg = EGraph()
        x = E.var("x")
        chain = x
        for k in range(8):
            chain = E.Expr("+", (chain, E.var(f"y{k}")))
        eg.add_expr(chain)
        limits = RunnerLimits(iterations=2, nodes=10**6)
        report = Runner(limits=limits).run(eg)
        assert report.iterations <= 2

    def test_node_limit_stops_blowup(self):
        eg = EGraph()
        x = E.var("x")
        expr = x
        for k in range(6):
            expr = E.Expr(
                "*", (expr, E.Expr("+", (E.var(f"a{k}"), E.var(f"b{k}"))))
            )
        eg.add_expr(expr)
        limits = RunnerLimits(iterations=50, nodes=300)
        report = Runner(limits=limits).run(eg)
        assert report.stop_reason in ("node-limit", "saturated")
        if report.stop_reason == "node-limit":
            # the limit is a post-iteration check, allow one overshoot
            assert report.final_nodes >= 300

    def test_rule_hit_accounting(self):
        eg = EGraph()
        eg.add_expr(E.Expr("sin", (E.Expr("~", (E.var("x"),)),)))
        rules = [Rewrite("sin-neg", "(sin (~ ?x))", "(~ (sin ?x))")]
        report = Runner(rules=rules).run(eg)
        assert report.rule_hits.get("sin-neg", 0) >= 1

    def test_report_counts(self):
        eg = EGraph()
        eg.add_expr(E.sin(E.var("x")) + E.cos(E.var("x")))
        report = Runner().run(eg)
        assert report.final_classes == eg.num_classes
        assert report.final_nodes == eg.num_nodes
        assert report.unions == eg.num_unions
