"""Simplification soundness over the entire QGL gate library.

For every gate: jointly simplify all real/imaginary components of the
unitary and its gradient (exactly what CompiledExpression does), then
check numeric equivalence on random parameter draws and that the total
Table I cost never increased.
"""

import numpy as np
import pytest

from repro.circuit import gates
from repro.egraph import simplify_all
from repro.symbolic import expr as E

GATE_FACTORIES = [
    gates.u1, gates.u2, gates.u3, gates.rx, gates.ry, gates.rz,
    gates.rxx, gates.ryy, gates.rzz, gates.cp, gates.crz,
    gates.qutrit_phase, lambda: gates.embedded_u3(3, 0, 1),
]


def gate_roots(matrix):
    roots = []
    for _, elem in matrix.elements():
        roots.append(elem.re)
        roots.append(elem.im)
    for gmat in matrix.gradient():
        for _, elem in gmat.elements():
            roots.append(elem.re)
            roots.append(elem.im)
    return roots


@pytest.mark.parametrize(
    "factory", GATE_FACTORIES,
    ids=[f().name or "?" for f in GATE_FACTORIES],
)
def test_simplification_preserves_gate_semantics(factory):
    matrix = factory().matrix
    roots = gate_roots(matrix)
    simplified = simplify_all(roots)
    rng = np.random.default_rng(7)
    for _ in range(3):
        env = {
            p: float(rng.uniform(-np.pi, np.pi)) for p in matrix.params
        }
        for before, after in zip(roots, simplified):
            assert E.evaluate(before, env) == pytest.approx(
                E.evaluate(after, env), abs=1e-9
            )


@pytest.mark.parametrize(
    "factory", GATE_FACTORIES,
    ids=[f().name or "?" for f in GATE_FACTORIES],
)
def test_simplification_never_raises_dag_cost(factory):
    """DAG-aware cost over the whole batch must not increase: shared
    subexpressions count once, as the JIT emits them."""
    matrix = factory().matrix
    roots = gate_roots(matrix)
    simplified = simplify_all(roots)

    def batch_cost(exprs):
        seen = set()
        total = 0.0
        from repro.egraph.cost import op_cost

        for e in exprs:
            for node in E.postorder(e):
                if id(node) not in seen:
                    seen.add(id(node))
                    total += op_cost(node.op)
        return total

    assert batch_cost(simplified) <= batch_cost(roots) + 1e-9


def test_u3_simplification_reaches_six_trig_calls():
    """The headline CSE effect: U3 + gradient needs only sin/cos of
    theta/2, phi, and lambda (six trig evaluations total)."""
    matrix = gates.u3().matrix
    simplified = simplify_all(gate_roots(matrix))
    seen = set()
    trig = 0
    for e in simplified:
        for node in E.postorder(e):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.op in ("sin", "cos"):
                trig += 1
    assert trig == 6
