"""Tests for cost-model extraction: Table I semantics and the paper's
greedy CSE extraction, including the U2 worked example."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import (
    EGraph,
    GreedyExtractor,
    Runner,
    expression_cost,
    op_cost,
    simplify,
    simplify_all,
)
from repro.symbolic import expr as E

X = E.var("x")


class TestCostModel:
    def test_table_entries(self):
        assert op_cost("pi") == 0.0
        assert op_cost("var") == 0.0
        assert op_cost("const") == 0.5
        assert op_cost("+") == op_cost("-") == op_cost("~") == 1.0
        assert op_cost("*") == op_cost("/") == 5.0
        assert op_cost("sin") == op_cost("cos") == op_cost("sqrt") == 50.0
        assert op_cost("exp") == op_cost("ln") == op_cost("pow") == 100.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            op_cost("matmul")

    def test_expression_cost_dag_aware(self):
        s = E.sin(X)
        assert expression_cost(s * s) == 55.0  # one sin + one mul


class TestSimplify:
    def test_pythagorean_identity(self):
        e = E.sin(X) * E.sin(X) + E.cos(X) * E.cos(X)
        assert simplify(e).is_one

    def test_sin_negation(self):
        e = E.Expr("sin", (E.Expr("~", (X,)),))
        out = simplify(e)
        assert out is E.neg(E.sin(X))

    def test_double_angle_contraction(self):
        # 2 sin x cos x should simplify to sin(2x)?  No — cost favors
        # the *expanded* form only when sin x/cos x are already paid
        # for; standalone, sin(2x) (one trig) beats the product (two
        # trigs + muls).
        e = E.TWO * (E.sin(X) * E.cos(X))
        out = simplify(e)
        assert expression_cost(out) <= expression_cost(e)
        for v in (0.3, 1.2, -0.8):
            assert math.isclose(
                E.evaluate(out, {"x": v}),
                math.sin(2 * v),
                abs_tol=1e-12,
            )

    def test_constant_folding_through_rules(self):
        e = E.Expr("-", (E.Expr("+", (X, E.const(2))), E.const(2)))
        out = simplify(e)
        assert out is X

    def test_cost_never_increases(self):
        exprs = [
            E.sin(X + E.var("y")),
            E.exp(X) * E.exp(E.var("y")),
            E.cos(X) * E.cos(X) - E.sin(X) * E.sin(X),
        ]
        for e in exprs:
            assert expression_cost(simplify(e)) <= expression_cost(e)


class TestU2Example:
    """Paper section III-C's worked CSE example.

    The U2 gate contains e^(i*phi), e^(i*lambda) and e^(i*(phi+lambda)).
    After extraction of the first two (cost zeroed), the angle-sum form
    of the third must win: it reuses the computed sin/cos and pays only
    cheap arithmetic instead of two fresh trig calls.
    """

    def test_third_element_reuses_subexpressions(self):
        phi, lam = E.var("phi"), E.var("lam")
        roots = [
            E.cos(phi), E.sin(phi),      # e^(i*phi) components
            E.cos(lam), E.sin(lam),      # e^(i*lambda) components
            E.cos(phi + lam), E.sin(phi + lam),
        ]
        out = simplify_all(roots)
        # First four stay atomic.
        assert out[0] is E.cos(phi)
        assert out[3] is E.sin(lam)
        # The sum-angle components must be rewritten into products of
        # the already-extracted parts: no trig of (phi+lam) remains.
        for e in out[4:]:
            for node in E.postorder(e):
                if node.op in ("sin", "cos"):
                    assert node.children[0] in (phi, lam), (
                        f"unexpanded trig call {node} survived"
                    )

    def test_without_prior_roots_trig_form_wins(self):
        phi, lam = E.var("phi"), E.var("lam")
        out = simplify(E.cos(phi + lam))
        # Standalone, one trig call (cost 51) beats the expansion
        # (4 trig + arithmetic).
        assert out is E.cos(phi + lam) or expression_cost(out) <= 51.0


class TestGreedyExtractor:
    def test_multi_extract_shares(self):
        eg = EGraph()
        a = eg.add_expr(E.sin(X))
        b = eg.add_expr(E.sin(X) * E.cos(X))
        Runner().run(eg)
        ex = GreedyExtractor(eg)
        first = ex.extract(a)
        second = ex.extract(b)
        # The sin(x) inside the second extraction is the same object.
        assert any(n is first for n in E.postorder(second))

    def test_extract_reports_missing_class(self):
        eg = EGraph()
        a = eg.add_expr(E.sin(X))
        ex = GreedyExtractor(eg)
        assert ex.extract(a) is E.sin(X)


def semantic_exprs():
    leaves = st.one_of(
        st.integers(-3, 3).map(lambda v: E.const(float(v))),
        st.sampled_from([E.var("x"), E.var("y")]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(
                lambda p: E.Expr("+", p)
            ),
            st.tuples(children, children).map(
                lambda p: E.Expr("*", p)
            ),
            st.tuples(children, children).map(
                lambda p: E.Expr("-", p)
            ),
            children.map(lambda c: E.Expr("sin", (c,))),
            children.map(lambda c: E.Expr("cos", (c,))),
            children.map(lambda c: E.Expr("~", (c,))),
        )

    return st.recursive(leaves, extend, max_leaves=8)


class TestSemanticPreservation:
    @given(semantic_exprs(), st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_simplify_preserves_value(self, expr, xv, yv):
        out = simplify(expr)
        env = {"x": xv, "y": yv}
        assert math.isclose(
            E.evaluate(expr, env),
            E.evaluate(out, env),
            rel_tol=1e-7,
            abs_tol=1e-7,
        )

    @given(semantic_exprs())
    @settings(max_examples=40, deadline=None)
    def test_simplify_never_raises_cost(self, expr):
        assert expression_cost(simplify(expr)) <= expression_cost(expr) + 1e-9

    def test_shared_subexpression_not_rewritten_to_costlier_form(self):
        """Deterministic regression for the tree-vs-DAG cost mismatch:
        ``sin(x) + sin(x)`` shares its sin under CSE (cost 51), so the
        extractor's preferred ``2*sin(x)`` (cost 55.5) must not win."""
        x = E.var("x")
        expr = E.add(E.sin(x), E.sin(x))
        assert expression_cost(simplify(expr)) <= expression_cost(expr)
