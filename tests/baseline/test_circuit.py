"""Baseline circuit: eager per-append validation semantics."""

import numpy as np
import pytest

from repro.baseline import gates as bg
from repro.baseline.circuit import BaselineCircuit


class TestAppendChecks:
    def test_location_arity(self):
        circ = BaselineCircuit([2, 2])
        with pytest.raises(ValueError):
            circ.append_gate(bg.CXGate(), (0,), ())

    def test_repeated_qudit(self):
        circ = BaselineCircuit([2, 2])
        with pytest.raises(ValueError):
            circ.append_gate(bg.CXGate(), (0, 0), ())

    def test_radix_compat(self):
        circ = BaselineCircuit([2, 3])
        with pytest.raises(ValueError):
            circ.append_gate(bg.CXGate(), (0, 1), ())

    def test_out_of_range(self):
        circ = BaselineCircuit([2])
        with pytest.raises(ValueError):
            circ.append_gate(bg.XGate(), 5, ())

    def test_param_arity(self):
        circ = BaselineCircuit([2])
        with pytest.raises(ValueError):
            circ.append_gate(bg.RXGate(), 0, (0.1, 0.2))

    def test_non_unitary_rejected(self):
        class Broken(bg.RXGate):
            def get_unitary(self, params=()):
                return np.array([[1, 0], [0, 2]], dtype=complex)

        circ = BaselineCircuit([2])
        with pytest.raises(ValueError, match="not unitary"):
            circ.append_gate(Broken(), 0, (0.1,))


class TestGateSetRegistry:
    def test_equality_scan_dedups(self):
        circ = BaselineCircuit([2])
        for _ in range(5):
            circ.append_gate(bg.RXGate(), 0, (0.5,))
        assert len(circ.gate_set) == 1

    def test_distinct_params_distinct_entries(self):
        circ = BaselineCircuit([2])
        circ.append_gate(bg.RXGate(), 0, (0.5,))
        circ.append_gate(bg.RXGate(), 0, (0.6,))
        assert len(circ.gate_set) == 2


class TestParameters:
    def test_parameterized_allocation(self):
        circ = BaselineCircuit([2])
        circ.append_gate(bg.U3Gate(), 0, parameterized=True)
        circ.append_gate(bg.U3Gate(), 0, parameterized=True)
        assert circ.num_params == 6
        assert circ.operations[1].param_indices == (3, 4, 5)

    def test_constant_allocation(self):
        circ = BaselineCircuit([2])
        circ.append_gate(bg.RXGate(), 0, (0.5,))
        assert circ.num_params == 0
        assert not circ.operations[0].is_parameterized

    def test_depth(self):
        circ = BaselineCircuit([2, 2])
        circ.append_gate(bg.HGate(), 0, ())
        circ.append_gate(bg.HGate(), 1, ())
        circ.append_gate(bg.CXGate(), (0, 1), ())
        assert circ.depth() == 2
