"""Dense evaluator tests: embedding and chain-rule gradients."""

import numpy as np

from repro.baseline import gates as bg
from repro.baseline.circuit import BaselineCircuit
from repro.baseline.evaluator import DenseEvaluator, embed


class TestEmbed:
    def test_identity_on_rest(self):
        x = bg.XGate().get_unitary(())
        full = embed(x, (0,), (2, 2))
        assert np.allclose(full, np.kron(x, np.eye(2)))

    def test_second_wire(self):
        x = bg.XGate().get_unitary(())
        full = embed(x, (1,), (2, 2))
        assert np.allclose(full, np.kron(np.eye(2), x))

    def test_reversed_two_qubit(self):
        cx = bg.CXGate().get_unitary(())
        full = embed(cx, (1, 0), (2, 2))
        expected = np.eye(4)[[0, 3, 2, 1]]  # CNOT ctrl=1 tgt=0
        assert np.allclose(full, expected)

    def test_qutrit_embedding(self):
        p3 = bg.QutritPhaseGate().get_unitary((0.4, 0.9))
        full = embed(p3, (1,), (2, 3))
        assert np.allclose(full, np.kron(np.eye(2), p3))

    def test_nonadjacent(self):
        cx = bg.CXGate().get_unitary(())
        full = embed(cx, (0, 2), (2, 2, 2))
        # |1 q1 0> -> |1 q1 1>
        src = np.zeros(8)
        src[0b100] = 1
        assert np.allclose(full @ src, np.eye(8)[:, 0b101])

    def test_full_coverage_is_identity_embed(self):
        u = bg.CXGate().get_unitary(())
        assert np.allclose(embed(u, (0, 1), (2, 2)), u)


class TestEvaluator:
    def test_unitary_sequence_order(self):
        # X then H on one qubit: U = H @ X.
        circ = BaselineCircuit([2])
        circ.append_gate(bg.XGate(), 0, ())
        circ.append_gate(bg.HGate(), 0, ())
        u = DenseEvaluator(circ).get_unitary(())
        h = bg.HGate().get_unitary(())
        x = bg.XGate().get_unitary(())
        assert np.allclose(u, h @ x)

    def test_gradient_chain_rule(self):
        circ = BaselineCircuit([2, 2])
        circ.append_gate(bg.U3Gate(), 0, parameterized=True)
        circ.append_gate(bg.CXGate(), (0, 1), ())
        circ.append_gate(bg.RZZGate(), (0, 1), parameterized=True)
        ev = DenseEvaluator(circ)
        params = np.random.default_rng(0).uniform(-np.pi, np.pi, 4)
        u, grad = ev.get_unitary_and_grad(params)
        assert np.allclose(u, ev.get_unitary(params))
        eps = 1e-7
        for k in range(4):
            bumped = params.copy()
            bumped[k] += eps
            fd = (ev.get_unitary(bumped) - u) / eps
            assert np.allclose(grad[k], fd, atol=1e-5)

    def test_constant_ops_no_gradient_rows(self):
        circ = BaselineCircuit([2])
        circ.append_gate(bg.RXGate(), 0, (0.3,))
        u, grad = DenseEvaluator(circ).get_unitary_and_grad(())
        assert grad.shape == (0, 2, 2)
        assert np.allclose(u, bg.RXGate().get_unitary((0.3,)))

    def test_empty_circuit_identity(self):
        circ = BaselineCircuit([2, 2])
        assert np.allclose(
            DenseEvaluator(circ).get_unitary(()), np.eye(4)
        )
