"""Baseline gate tests: hand-derived gradients versus finite
differences, and agreement with the QGL-defined library."""

import numpy as np
import pytest

from repro.baseline import gates as bg
from repro.circuit import gates as qg

PARAMETERIZED = [
    bg.U1Gate(), bg.U2Gate(), bg.U3Gate(), bg.RXGate(), bg.RYGate(),
    bg.RZGate(), bg.RZZGate(), bg.CPGate(), bg.QutritPhaseGate(),
]
CONSTANT = [
    bg.HGate(), bg.XGate(), bg.YGate(), bg.ZGate(), bg.SGate(),
    bg.TGate(), bg.CXGate(), bg.CZGate(), bg.SwapGate(), bg.CSUMGate(),
]


@pytest.mark.parametrize(
    "gate", PARAMETERIZED, ids=[g.name for g in PARAMETERIZED]
)
def test_hand_gradient_matches_finite_difference(gate):
    params = np.random.default_rng(1).uniform(
        -np.pi, np.pi, gate.num_params
    )
    u = gate.get_unitary(params)
    grad = gate.get_grad(params)
    assert grad.shape == (gate.num_params, gate.dim, gate.dim)
    eps = 1e-7
    for k in range(gate.num_params):
        bumped = params.copy()
        bumped[k] += eps
        fd = (gate.get_unitary(bumped) - u) / eps
        assert np.allclose(grad[k], fd, atol=1e-5), f"param {k}"


@pytest.mark.parametrize(
    "gate", PARAMETERIZED + CONSTANT,
    ids=[g.name for g in PARAMETERIZED + CONSTANT],
)
def test_baseline_gates_unitary(gate):
    params = np.random.default_rng(2).uniform(
        -np.pi, np.pi, gate.num_params
    )
    u = gate.get_unitary(params)
    assert np.allclose(
        u @ u.conj().T, np.eye(gate.dim), atol=1e-10
    )


CROSS = [
    (bg.U3Gate(), qg.u3),
    (bg.U2Gate(), qg.u2),
    (bg.U1Gate(), qg.u1),
    (bg.RXGate(), qg.rx),
    (bg.RYGate(), qg.ry),
    (bg.RZGate(), qg.rz),
    (bg.RZZGate(), qg.rzz),
    (bg.CPGate(), qg.cp),
    (bg.HGate(), qg.h),
    (bg.CXGate(), qg.cx),
    (bg.SwapGate(), qg.swap),
    (bg.QutritPhaseGate(), qg.qutrit_phase),
    (bg.CSUMGate(), lambda: qg.csum(3)),
]


@pytest.mark.parametrize(
    "pair", CROSS, ids=[b.name for b, _ in CROSS]
)
def test_baseline_agrees_with_qgl_library(pair):
    bgate, factory = pair
    expr = factory()
    params = np.random.default_rng(3).uniform(
        -np.pi, np.pi, bgate.num_params
    )
    assert np.allclose(
        bgate.get_unitary(params), expr.unitary(params), atol=1e-12
    )


class TestGateProtocol:
    def test_param_check(self):
        with pytest.raises(ValueError):
            bg.U3Gate().get_unitary((0.1,))

    def test_equality_by_type(self):
        assert bg.RXGate() == bg.RXGate()
        assert bg.RXGate() != bg.RYGate()

    def test_constant_gate_grad_empty(self):
        g = bg.HGate().get_grad(())
        assert g.shape == (0, 2, 2)
