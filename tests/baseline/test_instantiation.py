"""Baseline instantiation tests and cross-framework agreement."""

import numpy as np
import pytest

from repro.baseline import (
    BaselineInstantiater,
    build_qsearch_ansatz_baseline,
)
from repro.circuit import build_qsearch_ansatz
from repro.instantiation import Instantiater


@pytest.fixture(scope="module")
def pair():
    return (
        build_qsearch_ansatz(2, 2, 2),
        build_qsearch_ansatz_baseline(2, 2, 2),
    )


class TestBaselineInstantiation:
    def test_recovers_target(self, pair):
        circ, base = pair
        p_true = np.random.default_rng(8).uniform(
            -np.pi, np.pi, circ.num_params
        )
        target = circ.get_unitary(p_true)
        result = BaselineInstantiater(base).instantiate(
            target, starts=8, rng=1
        )
        assert result.success

    def test_identical_trajectory_to_openqudit(self, pair):
        """Both frameworks share the optimizer and residuals, so from
        the same start they must walk the same path — the benchmarks
        then measure pure evaluation-pipeline speed."""
        circ, base = pair
        rng = np.random.default_rng(9)
        p_true = rng.uniform(-np.pi, np.pi, circ.num_params)
        target = circ.get_unitary(p_true)
        x0 = rng.uniform(-1, 1, circ.num_params)

        r_fast = Instantiater(circ).instantiate(target, starts=1, x0=x0)
        r_slow = BaselineInstantiater(base).instantiate(
            target, starts=1, x0=x0
        )
        assert r_fast.total_evaluations == r_slow.total_evaluations
        assert r_fast.infidelity == pytest.approx(
            r_slow.infidelity, abs=1e-9
        )
        assert np.allclose(r_fast.params, r_slow.params, atol=1e-6)

    def test_no_aot_phase(self, pair):
        _, base = pair
        engine = BaselineInstantiater(base)
        target = np.eye(4, dtype=complex)
        result = engine.instantiate(target, starts=1, rng=0)
        assert result.aot_seconds == 0.0
