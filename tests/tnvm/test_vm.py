"""TNVM correctness tests: values, gradients, precision, semantics."""

import numpy as np
import pytest

from repro.baseline.evaluator import DenseEvaluator
from repro.circuit import QuditCircuit, build_qsearch_ansatz, gates
from repro.tnvm import TNVM, Differentiation

from ..conftest import build_random_circuit_pair


class TestEvaluate:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dense_reference_on_random_circuits(self, seed):
        circ, base, n = build_random_circuit_pair(seed)
        params = np.random.default_rng(seed + 99).uniform(
            -np.pi, np.pi, n
        )
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        dense = DenseEvaluator(base)
        assert np.allclose(
            vm.evaluate(tuple(params)),
            dense.get_unitary(params),
            atol=1e-10,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_gradient_matches_dense_reference(self, seed):
        circ, base, n = build_random_circuit_pair(seed, num_ops=6)
        params = np.random.default_rng(seed + 7).uniform(
            -np.pi, np.pi, n
        )
        vm = TNVM(circ.compile(), diff=Differentiation.GRADIENT)
        u, g = vm.evaluate_with_grad(tuple(params))
        du, dg = DenseEvaluator(base).get_unitary_and_grad(params)
        assert np.allclose(u, du, atol=1e-10)
        assert np.allclose(g, dg, atol=1e-9)

    def test_output_is_unitary(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        p = np.random.default_rng(0).uniform(-np.pi, np.pi, circ.num_params)
        u = vm.evaluate(tuple(p))
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-10)

    def test_view_semantics(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        p = np.zeros(circ.num_params)
        first = vm.evaluate(tuple(p))
        snapshot = first.copy()
        p2 = np.full(circ.num_params, 0.5)
        second = vm.evaluate(tuple(p2))
        # evaluate returns a view into the arena: same storage object,
        # contents overwritten by the second call.
        assert second is first
        assert not np.allclose(first, snapshot)


class TestDifferentiationLevels:
    def test_none_mode_rejects_grad(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        with pytest.raises(RuntimeError):
            vm.evaluate_with_grad(
                tuple(np.zeros(circ.num_params))
            )

    def test_hessian_reserved(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        with pytest.raises(NotImplementedError):
            TNVM(circ.compile(), diff=Differentiation.HESSIAN)

    def test_gradient_zero_rows_for_constant_params(self):
        # A circuit parameter that feeds no gate cannot exist by
        # construction, but constant ops produce no gradient rows; the
        # full gradient must still be shaped (num_params, D, D).
        circ = QuditCircuit.pure([2, 2])
        u3 = circ.cache_operation(gates.u3())
        cx = circ.cache_operation(gates.cx())
        circ.append_ref(u3, 0)
        circ.append_ref_constant(cx, (0, 1))
        vm = TNVM(circ.compile())
        _, g = vm.evaluate_with_grad((0.1, 0.2, 0.3))
        assert g.shape == (3, 4, 4)


class TestPrecision:
    def test_f32_close_to_f64(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        prog = circ.compile()
        p = np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
        u64 = TNVM(prog, precision="f64", diff=Differentiation.NONE)
        u32 = TNVM(prog, precision="f32", diff=Differentiation.NONE)
        a = u64.evaluate(tuple(p))
        b = u32.evaluate(tuple(p))
        assert b.dtype == np.complex64
        assert np.allclose(a, b, atol=1e-5)

    def test_bad_precision_rejected(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        with pytest.raises(ValueError):
            TNVM(circ.compile(), precision="f16")

    def test_memory_footprint_reported(self):
        circ = build_qsearch_ansatz(3, 4, 2)
        vm64 = TNVM(circ.compile(), precision="f64")
        vm32 = TNVM(circ.compile(), precision="f32")
        assert vm64.memory_bytes == 2 * vm32.memory_bytes
        # The paper reports ~211KB for the 3-qubit shallow circuit in
        # f64 with gradients; ours should be the same order.
        assert vm64.memory_bytes < 2_000_000


class TestParamChecks:
    def test_wrong_arity(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile(), diff=Differentiation.NONE)
        with pytest.raises(ValueError):
            vm.evaluate((0.0,))

    def test_repr(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        vm = TNVM(circ.compile())
        assert "TNVM" in repr(vm)
        assert "f64" in repr(vm)
