"""Forward-mode AD specialization tests, including the product rule for
overlapping parameters (paper section IV-B)."""

import numpy as np
import pytest

from repro.circuit import QuditCircuit, gates
from repro.tensornet.network import ParamSlot
from repro.tnvm import TNVM, Differentiation


def finite_difference(circ, params, eps=1e-7):
    vm = TNVM(circ.compile(), diff=Differentiation.NONE)
    base = vm.evaluate(tuple(params)).copy()
    out = np.zeros((len(params),) + base.shape, dtype=complex)
    for k in range(len(params)):
        bumped = list(params)
        bumped[k] += eps
        out[k] = (vm.evaluate(tuple(bumped)) - base) / eps
    return out


class TestSharedParameters:
    def test_same_param_in_two_gates_product_rule(self):
        # RX(theta) on wire 0 and RX(theta) on wire 1: dU/dtheta must
        # apply the product rule across the KRON/MATMUL path.
        circ = QuditCircuit.pure([2, 2])
        rx = circ.cache_operation(gates.rx())
        (theta,) = circ.append_ref(rx, 0)
        circ.append_ref_bound(rx, 1, [ParamSlot.param(theta)])
        assert circ.num_params == 1

        vm = TNVM(circ.compile())
        params = [0.73]
        _, g = vm.evaluate_with_grad(tuple(params))
        fd = finite_difference(circ, params)
        assert np.allclose(g, fd, atol=1e-5)

    def test_same_param_twice_in_one_gate(self):
        # U3(t, t, lambda): duplicated slot within a single WRITE.
        circ = QuditCircuit.pure([2])
        u3 = circ.cache_operation(gates.u3())
        circ.append_ref(u3, 0)  # allocates params 0,1,2
        circ2 = QuditCircuit.pure([2])
        u3b = circ2.cache_operation(gates.u3())
        (t,) = circ2.append_ref(gates_rx_ref(circ2), 0)
        circ2.append_ref_bound(
            u3b, 0, [ParamSlot.param(t), ParamSlot.param(t), ParamSlot.const(0.4)]
        )
        vm = TNVM(circ2.compile())
        params = [0.9]
        _, g = vm.evaluate_with_grad(tuple(params))
        fd = finite_difference(circ2, params)
        assert np.allclose(g, fd, atol=1e-5)

    def test_shared_param_chain_matmul(self):
        # Sequential RZ(t) RX(t) on one wire: MATMUL with overlapping
        # parameter sets on both operands.
        circ = QuditCircuit.pure([2])
        rx = circ.cache_operation(gates.rx())
        rz = circ.cache_operation(gates.rz())
        (t,) = circ.append_ref(rx, 0)
        circ.append_ref_bound(rz, 0, [ParamSlot.param(t)])
        vm = TNVM(circ.compile())
        params = [1.21]
        _, g = vm.evaluate_with_grad(tuple(params))
        fd = finite_difference(circ, params)
        assert np.allclose(g, fd, atol=1e-5)


def gates_rx_ref(circ):
    return circ.cache_operation(gates.rx())


class TestMixedConstants:
    def test_partial_constant_binding(self):
        # U3 with theta free, phi and lambda constant.
        circ = QuditCircuit.pure([2])
        u3 = circ.cache_operation(gates.u3())
        rx = circ.cache_operation(gates.rx())
        (t,) = circ.append_ref(rx, 0)
        circ.append_ref_bound(
            u3, 0,
            [ParamSlot.param(t), ParamSlot.const(0.3), ParamSlot.const(-0.8)],
        )
        vm = TNVM(circ.compile())
        params = [0.5]
        u, g = vm.evaluate_with_grad(tuple(params))
        ref = gates.u3().unitary([0.5, 0.3, -0.8]) @ gates.rx().unitary(
            [0.5]
        )
        assert np.allclose(u, ref, atol=1e-10)
        fd = finite_difference(circ, params)
        assert np.allclose(g, fd, atol=1e-5)

    def test_unknown_param_index_rejected(self):
        circ = QuditCircuit.pure([2])
        rx = circ.cache_operation(gates.rx())
        with pytest.raises(ValueError):
            circ.append_ref_bound(rx, 0, [ParamSlot.param(5)])
