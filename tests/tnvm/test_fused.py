"""Fused program backend tests.

The contract under test: the fused megakernel backend is **bit
identical** to the closure interpreter — same unitary, same gradient,
to the last ulp — across every opcode, both precisions, with and
without differentiation, on scalar and batched VMs; and a fused kernel
survives pickling as source text that rehydrates with ``compile()``.
"""

import pickle

import numpy as np
import pytest

from repro.circuit import QuditCircuit, build_qft_circuit, build_qsearch_ansatz, gates
from repro.tensornet.bytecode import BufferSpec, Instruction, Program
from repro.tensornet.network import ParamSlot
from repro.tnvm import (
    TNVM,
    BatchedTNVM,
    Differentiation,
    FUSED_DIM_MAX,
    bind_fused_kernel,
    resolve_backend,
)
from repro.tnvm.fused import fused_kernel_for


# ----------------------------------------------------------------------
# Program zoo: every opcode and every AD specialization path.
# ----------------------------------------------------------------------


def _qsearch_2q():
    # WRITE + MATMUL + TRANSPOSE with disjoint operand parameters.
    return build_qsearch_ansatz(2, 2, 2).compile()


def _qsearch_3q():
    return build_qsearch_ansatz(3, 1, 2).compile()


def _single_gate():
    # Root-leaf fusion: the whole program is one WRITE.
    circ = QuditCircuit.pure([2])
    circ.append_ref(circ.cache_operation(gates.u3()), 0)
    return circ.compile()


def _kron_product_rule():
    # RX(t) on wire 0 and RX(t) on wire 1: KRON with the product rule
    # (same parameter on both operands).
    circ = QuditCircuit.pure([2, 2])
    rx = circ.cache_operation(gates.rx())
    (theta,) = circ.append_ref(rx, 0)
    circ.append_ref_bound(rx, 1, [ParamSlot.param(theta)])
    return circ.compile()


def _matmul_overlap():
    # RZ(t) @ RX(t) on one wire: MATMUL with overlapping parameters.
    circ = QuditCircuit.pure([2])
    rx = circ.cache_operation(gates.rx())
    rz = circ.cache_operation(gates.rz())
    (t,) = circ.append_ref(rx, 0)
    circ.append_ref_bound(rz, 0, [ParamSlot.param(t)])
    return circ.compile()


def _scatter_write():
    # U3(t, t, 0.4): duplicated slots within one WRITE force the
    # scatter/accumulate gradient path.
    circ = QuditCircuit.pure([2])
    rx = circ.cache_operation(gates.rx())
    u3 = circ.cache_operation(gates.u3())
    (t,) = circ.append_ref(rx, 0)
    circ.append_ref_bound(
        u3, 0, [ParamSlot.param(t), ParamSlot.param(t), ParamSlot.const(0.4)]
    )
    return circ.compile()


def _hadamard_disjoint():
    # The compiler never emits HADAMARD today; build the bytecode by
    # hand so the opcode's fused emission is still covered.
    rx = gates.rx().matrix
    program = Program(
        num_params=2,
        radices=(2,),
        expressions=[rx],
        buffers=[
            BufferSpec(0, 4, (0,), False),
            BufferSpec(1, 4, (1,), False),
            BufferSpec(2, 4, (0, 1), False),
        ],
        dynamic_section=[
            Instruction("WRITE", out_buf=0, expr_id=0, slots=(0,), params=(0,)),
            Instruction("WRITE", out_buf=1, expr_id=0, slots=(1,), params=(1,)),
            Instruction(
                "HADAMARD",
                out_buf=2,
                a_buf=0,
                b_buf=1,
                a_shape=(2, 2),
                b_shape=(2, 2),
                params=(0, 1),
            ),
        ],
        output_buffer=2,
        output_shape=(2, 2),
    )
    program.validate()
    return program


def _hadamard_overlap():
    # Both HADAMARD operands depend on the same parameter: product rule.
    rx = gates.rx().matrix
    program = Program(
        num_params=1,
        radices=(2,),
        expressions=[rx],
        buffers=[
            BufferSpec(0, 4, (0,), False),
            BufferSpec(1, 4, (0,), False),
            BufferSpec(2, 4, (0,), False),
        ],
        dynamic_section=[
            Instruction("WRITE", out_buf=0, expr_id=0, slots=(0,), params=(0,)),
            Instruction("WRITE", out_buf=1, expr_id=0, slots=(0,), params=(0,)),
            Instruction(
                "HADAMARD",
                out_buf=2,
                a_buf=0,
                b_buf=1,
                a_shape=(2, 2),
                b_shape=(2, 2),
                params=(0,),
            ),
        ],
        output_buffer=2,
        output_shape=(2, 2),
    )
    program.validate()
    return program


def _constant_circuit():
    # Fully constant: empty dynamic section, megakernel is a no-op.
    return build_qft_circuit(2).compile()


PROGRAMS = {
    "single-gate": _single_gate,
    "qsearch-2q": _qsearch_2q,
    "qsearch-3q": _qsearch_3q,
    "kron-product-rule": _kron_product_rule,
    "matmul-overlap": _matmul_overlap,
    "scatter-write": _scatter_write,
    "hadamard-disjoint": _hadamard_disjoint,
    "hadamard-overlap": _hadamard_overlap,
    "constant": _constant_circuit,
}


@pytest.fixture(scope="module")
def programs():
    return {name: build() for name, build in PROGRAMS.items()}


def _params_for(program, seed=0):
    return np.random.default_rng(seed).uniform(
        -2 * np.pi, 2 * np.pi, program.num_params
    )


class TestOpcodeCoverage:
    def test_zoo_spans_all_five_opcodes(self, programs):
        seen = {
            instr.opcode
            for program in programs.values()
            for instr in program.dynamic_section
        }
        assert seen == {"WRITE", "MATMUL", "KRON", "HADAMARD", "TRANSPOSE"}


class TestScalarEquivalence:
    @pytest.mark.parametrize("name", list(PROGRAMS))
    @pytest.mark.parametrize("precision", ["f32", "f64"])
    def test_grad_bit_identical(self, programs, name, precision):
        program = programs[name]
        closures = TNVM(program, precision=precision, backend="closures")
        fused = TNVM(program, precision=precision, backend="fused")
        assert fused.backend == "fused" and fused.fused_kernel is not None
        for seed in range(3):
            p = _params_for(program, seed)
            u1, g1 = closures.evaluate_with_grad(p)
            u2, g2 = fused.evaluate_with_grad(p)
            assert np.array_equal(u1, u2)
            assert np.array_equal(g1, g2)

    @pytest.mark.parametrize("name", list(PROGRAMS))
    @pytest.mark.parametrize("precision", ["f32", "f64"])
    def test_no_grad_bit_identical(self, programs, name, precision):
        program = programs[name]
        closures = TNVM(
            program,
            precision=precision,
            diff=Differentiation.NONE,
            backend="closures",
        )
        fused = TNVM(
            program,
            precision=precision,
            diff=Differentiation.NONE,
            backend="fused",
        )
        p = _params_for(program, 7)
        assert np.array_equal(closures.evaluate(p), fused.evaluate(p))


class TestBatchedEquivalence:
    @pytest.mark.parametrize("name", list(PROGRAMS))
    @pytest.mark.parametrize("precision", ["f32", "f64"])
    def test_grad_bit_identical(self, programs, name, precision):
        program = programs[name]
        batch = 5
        rows = np.random.default_rng(11).uniform(
            -2 * np.pi, 2 * np.pi, (batch, program.num_params)
        )
        closures = BatchedTNVM(
            program, batch, precision=precision, backend="closures"
        )
        fused = BatchedTNVM(
            program, batch, precision=precision, backend="fused"
        )
        u1, g1 = closures.evaluate_with_grad(rows)
        u2, g2 = fused.evaluate_with_grad(rows)
        assert np.array_equal(u1, u2)
        assert np.array_equal(g1, g2)

    @pytest.mark.parametrize("name", list(PROGRAMS))
    def test_no_grad_bit_identical(self, programs, name):
        program = programs[name]
        rows = np.random.default_rng(13).uniform(
            -2 * np.pi, 2 * np.pi, (3, program.num_params)
        )
        closures = BatchedTNVM(
            program, 3, diff=Differentiation.NONE, backend="closures"
        )
        fused = BatchedTNVM(
            program, 3, diff=Differentiation.NONE, backend="fused"
        )
        assert np.array_equal(closures.evaluate(rows), fused.evaluate(rows))

    def test_batched_matches_scalar_rows(self, programs):
        # Cross-check: each fused batch row equals the fused scalar VM.
        program = programs["qsearch-2q"]
        rows = np.random.default_rng(17).uniform(-np.pi, np.pi, (4, 18))
        scalar = TNVM(program, backend="fused")
        batched = BatchedTNVM(program, 4, backend="fused")
        ub, gb = batched.evaluate_with_grad(rows)
        for s in range(4):
            us, gs = scalar.evaluate_with_grad(rows[s])
            assert np.allclose(ub[s], us, atol=1e-12)
            assert np.allclose(gb[s], gs, atol=1e-12)


class TestBackendKnob:
    def test_resolve(self):
        assert resolve_backend("auto", FUSED_DIM_MAX) == "fused"
        assert resolve_backend("auto", FUSED_DIM_MAX + 1) == "closures"
        assert resolve_backend("closures", 2) == "closures"
        assert resolve_backend("fused", 1024) == "fused"
        # Batched "auto" keeps the grouped-writer closure backend (its
        # G*S-stacked WRITE dispatch already beats per-gate inlining);
        # an explicit "fused" still forces the megakernel.
        assert resolve_backend("auto", 2, batched=True) == "closures"
        assert resolve_backend("fused", 2, batched=True) == "fused"
        with pytest.raises(ValueError):
            resolve_backend("jit", 2)

    def test_batched_auto_stays_on_closures(self, programs):
        vm = BatchedTNVM(programs["qsearch-2q"], 4, backend="auto")
        assert vm.backend == "closures"

    def test_vm_rejects_unknown_backend(self, programs):
        with pytest.raises(ValueError):
            TNVM(programs["single-gate"], backend="nope")
        with pytest.raises(ValueError):
            BatchedTNVM(programs["single-gate"], 2, backend="nope")

    def test_auto_picks_fused_for_small_dims(self, programs):
        vm = TNVM(programs["qsearch-3q"], backend="auto")
        assert vm.backend == "fused"

    def test_closures_vm_has_no_kernel(self, programs):
        vm = TNVM(programs["qsearch-2q"], backend="closures")
        assert vm.fused_kernel is None
        assert len(vm._dynamic) == len(
            programs["qsearch-2q"].dynamic_section
        )

    def test_fused_vm_single_dispatch(self, programs):
        vm = TNVM(programs["qsearch-2q"], backend="fused")
        assert len(vm._dynamic) == 1
        kernel = vm.fused_kernel
        assert kernel.num_instructions == len(
            programs["qsearch-2q"].dynamic_section
        )
        assert kernel.num_write_stores > 0


class TestKernelCachingAndSerialization:
    def test_kernel_cached_per_program(self, programs):
        program = PROGRAMS["qsearch-2q"]()
        vm1 = TNVM(program, backend="fused")
        vm2 = TNVM(program, backend="fused")
        assert vm1.fused_kernel is vm2.fused_kernel  # one generation
        b1 = BatchedTNVM(program, 2, backend="fused")
        b2 = BatchedTNVM(program, 3, backend="fused")
        assert b1.fused_kernel is b2.fused_kernel  # batch-size agnostic
        assert b1.fused_kernel is not vm1.fused_kernel

    def test_kernel_pickle_round_trip_rebinds(self, programs):
        program = programs["qsearch-2q"]
        vm = TNVM(program, backend="fused")
        clone_kernel = pickle.loads(pickle.dumps(vm.fused_kernel))
        assert clone_kernel.source == vm.fused_kernel.source
        run = bind_fused_kernel(clone_kernel, vm.plan)
        p = _params_for(program, 3)
        reference_u, reference_g = map(
            np.copy, vm.evaluate_with_grad(p)
        )
        run(tuple(p))  # re-executes the dynamic section on vm's arena
        u, g = vm.evaluate_with_grad(p)
        assert np.array_equal(u, reference_u)
        assert np.array_equal(g, reference_g)

    def test_program_bytes_stay_lean(self):
        # Kernel caches must never leak into Program.to_bytes; they
        # ship explicitly with SerializedEngine instead.
        program = PROGRAMS["qsearch-2q"]()
        bare = len(program.to_bytes())
        vm = TNVM(program, backend="fused")
        fused_kernel_for(program, vm.compiled, grad=True, batched=True)
        assert len(program.to_bytes()) == bare
        clone = Program.from_bytes(program.to_bytes())
        assert "_fused_kernels" not in clone.__dict__
