"""BatchedTNVM equivalence with the scalar TNVM."""

import numpy as np
import pytest

from repro.circuit import FIG5_BENCHMARKS, fig5_circuit
from repro.tnvm import BatchedTNVM, Differentiation, TNVM

from ..conftest import build_random_circuit_pair

SHALLOW = [n for n in FIG5_BENCHMARKS if "shallow" in n]


@pytest.mark.parametrize("name", SHALLOW)
def test_batched_matches_scalar_on_fig5(name):
    circ = fig5_circuit(name)
    program = circ.compile()
    vm = TNVM(program)
    batch = 5
    bvm = BatchedTNVM(program, batch=batch)
    X = np.random.default_rng(3).uniform(
        -np.pi, np.pi, (batch, circ.num_params)
    )
    U, G = bvm.evaluate_with_grad(X)
    assert U.shape == (batch, vm.dim, vm.dim)
    assert G.shape == (batch, circ.num_params, vm.dim, vm.dim)
    for s in range(batch):
        u, g = vm.evaluate_with_grad(tuple(X[s]))
        np.testing.assert_allclose(U[s], u, atol=1e-12)
        np.testing.assert_allclose(G[s], g, atol=1e-12)


@pytest.mark.parametrize("seed", range(4))
def test_batched_matches_scalar_on_random_circuits(seed):
    """Random circuits exercise constant bindings, duplicated slots and
    multi-qudit gates — every batched WRITE/grad path."""
    circ, _, num_params = build_random_circuit_pair(seed)
    program = circ.compile()
    vm = TNVM(program)
    batch = 3
    bvm = BatchedTNVM(program, batch=batch)
    X = np.random.default_rng(seed + 50).uniform(
        -np.pi, np.pi, (batch, num_params)
    )
    U, G = bvm.evaluate_with_grad(X)
    for s in range(batch):
        u, g = vm.evaluate_with_grad(tuple(X[s]))
        np.testing.assert_allclose(U[s], u, atol=1e-12)
        np.testing.assert_allclose(G[s], g, atol=1e-12)


def test_batched_evaluate_only_and_none_diff():
    circ = fig5_circuit("2-qubit shallow")
    program = circ.compile()
    batch = 4
    bvm = BatchedTNVM(program, batch=batch)
    X = np.random.default_rng(0).uniform(
        -np.pi, np.pi, (batch, circ.num_params)
    )
    U = bvm.evaluate(X).copy()
    nodiff = BatchedTNVM(program, batch=batch, diff=Differentiation.NONE)
    np.testing.assert_allclose(nodiff.evaluate(X), U, atol=1e-12)
    with pytest.raises(RuntimeError):
        nodiff.evaluate_with_grad(X)


def test_batched_batch_of_one():
    circ = fig5_circuit("2-qubit shallow")
    program = circ.compile()
    bvm = BatchedTNVM(program, batch=1)
    vm = TNVM(program)
    x = np.random.default_rng(1).uniform(-np.pi, np.pi, circ.num_params)
    U, G = bvm.evaluate_with_grad(x[None, :])
    u, g = vm.evaluate_with_grad(tuple(x))
    np.testing.assert_allclose(U[0], u, atol=1e-12)
    np.testing.assert_allclose(G[0], g, atol=1e-12)


def test_batched_shape_validation():
    circ = fig5_circuit("2-qubit shallow")
    program = circ.compile()
    bvm = BatchedTNVM(program, batch=3)
    with pytest.raises(ValueError):
        bvm.evaluate(np.zeros((2, circ.num_params)))
    with pytest.raises(ValueError):
        bvm.evaluate(np.zeros((3, circ.num_params + 1)))
    with pytest.raises(ValueError):
        BatchedTNVM(program, batch=0)
