"""Output-contract tests: column/overlap engines vs the full unitary.

Column programs are checked against the full program's corresponding
column at machine precision (tight ``allclose``): BLAS matrix-matrix
and matrix-vector kernels accumulate in different orders, so literal
bitwise identity *between* the two worlds is not promised.  Within the
column world — closures vs fused, scalar vs batched rows, rehydrated
payloads — identity IS bitwise and asserted with ``array_equal``.
"""

import numpy as np
import pytest

from repro.circuit import build_qsearch_ansatz
from repro.tensornet import FULL_UNITARY, OutputContract, column_digits
from repro.tnvm import (
    TNVM,
    BatchedTNVM,
    Differentiation,
    FUSED_COLUMN_DIM_MAX,
    FUSED_DIM_MAX,
    resolve_backend,
)

ATOL = 1e-12


def _params(program, seed=0, batch=None):
    rng = np.random.default_rng(seed)
    shape = (
        (program.num_params,)
        if batch is None
        else (batch, program.num_params)
    )
    return rng.uniform(-np.pi, np.pi, shape)


class TestContractObject:
    def test_factories_and_keys(self):
        assert OutputContract.full_unitary() == FULL_UNITARY
        col = OutputContract.column(3)
        assert col.program_key() == ("column", 3)
        assert col.key() == ("column", 3, ())
        assert col.column_based and not FULL_UNITARY.column_based
        ovl = OutputContract.overlap([1.0, 0.0], column=0)
        # Overlap rides the column program's bytecode...
        assert ovl.program_key() == OutputContract.column(0).program_key()
        # ...but has its own engine identity (the bra participates).
        assert ovl.key() != OutputContract.column(0).key()

    def test_coerce(self):
        assert OutputContract.coerce(None) is FULL_UNITARY
        col = OutputContract.column(1)
        assert OutputContract.coerce(col) is col
        with pytest.raises(TypeError):
            OutputContract.coerce("column")

    def test_validation(self):
        with pytest.raises(ValueError):
            OutputContract("diag")
        with pytest.raises(ValueError):
            OutputContract.column(-1)
        with pytest.raises(ValueError):
            OutputContract("overlap")  # needs a bra

    def test_column_digits_row_major(self):
        # First wire most significant, matching Statevector ordering.
        assert column_digits((2, 2, 2), 5) == (1, 0, 1)
        assert column_digits((2, 3), 4) == (1, 1)
        with pytest.raises(ValueError):
            column_digits((2, 2), 4)

    def test_contract_program_mismatch_raises(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        full = circ.compile()
        col = circ.compile(contract=OutputContract.column(0))
        with pytest.raises(ValueError):
            TNVM(full, contract=OutputContract.column(0))
        with pytest.raises(ValueError):
            TNVM(col, contract=OutputContract.column(1))
        with pytest.raises(ValueError):
            TNVM(col, contract=FULL_UNITARY)

    def test_overlap_bra_length_mismatch_raises(self):
        circ = build_qsearch_ansatz(2, 1, 2)
        col = circ.compile(contract=OutputContract.column(0))
        with pytest.raises(ValueError):
            TNVM(col, contract=OutputContract.overlap([1.0, 0.0, 0.0]))


class TestColumnVsFull:
    @pytest.mark.parametrize("precision", ["f32", "f64"])
    @pytest.mark.parametrize(
        "radices,depth,j",
        [((2, 2), 2, 0), ((2, 2, 2), 2, 0), ((2, 2, 2), 2, 5), ((3, 3), 2, 4)],
    )
    def test_column_matches_full_column(self, precision, radices, depth, j):
        circ = build_qsearch_ansatz(len(radices), depth, radices[0])
        full = circ.compile()
        col = circ.compile(contract=OutputContract.column(j))
        assert full.output_shape == (full.dim, full.dim)
        assert col.output_shape == (full.dim, 1)
        x = _params(full, seed=j + 1)
        vmf = TNVM(full, precision=precision)
        vmc = TNVM(col, precision=precision)
        U, G = vmf.evaluate_with_grad(x)
        v, g = vmc.evaluate_with_grad(x)
        assert v.shape == (full.dim,)
        assert g.shape == (full.num_params, full.dim)
        atol = ATOL if precision == "f64" else 1e-5
        np.testing.assert_allclose(v, U[:, j], atol=atol, rtol=0)
        np.testing.assert_allclose(g, G[:, :, j], atol=atol, rtol=0)

    def test_closures_vs_fused_bitwise_for_column(self):
        circ = build_qsearch_ansatz(3, 2, 2)
        col = circ.compile(contract=OutputContract.column(0))
        x = _params(col, seed=3)
        vc, gc = TNVM(col, backend="closures").evaluate_with_grad(x)
        vf, gf = TNVM(col, backend="fused").evaluate_with_grad(x)
        assert np.array_equal(vc, vf)
        assert np.array_equal(gc, gf)

    @pytest.mark.parametrize("backend", ["closures", "fused"])
    def test_batched_matches_scalar_rows(self, backend):
        circ = build_qsearch_ansatz(3, 2, 2)
        col = circ.compile(contract=OutputContract.column(0))
        xs = _params(col, seed=5, batch=4)
        scalar = TNVM(col, backend=backend)
        batched = BatchedTNVM(col, batch=4, backend=backend)
        bv, bg = batched.evaluate_with_grad(xs)
        assert bv.shape == (4, col.dim)
        assert bg.shape == (4, col.num_params, col.dim)
        for s in range(4):
            v, g = scalar.evaluate_with_grad(xs[s])
            np.testing.assert_allclose(bv[s], v, atol=ATOL, rtol=0)
            np.testing.assert_allclose(bg[s], g, atol=ATOL, rtol=0)

    def test_diff_none_column_evaluate(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        col = circ.compile(contract=OutputContract.column(0))
        x = _params(col, seed=9)
        v = TNVM(col, diff=Differentiation.NONE).evaluate(x)
        U = TNVM(circ.compile(), diff=Differentiation.NONE).evaluate(x)
        np.testing.assert_allclose(v, U[:, 0], atol=ATOL, rtol=0)


class TestOverlap:
    def test_scalar_overlap_is_bra_dot_column(self):
        circ = build_qsearch_ansatz(3, 2, 2)
        col = circ.compile(contract=OutputContract.column(0))
        rng = np.random.default_rng(7)
        bra = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        bra /= np.linalg.norm(bra)
        x = _params(col, seed=7)
        v, g = TNVM(col).evaluate_with_grad(x)
        ovl = TNVM(col, contract=OutputContract.overlap(bra))
        val, grad = ovl.evaluate_with_grad(x)
        assert np.isscalar(val) or np.ndim(val) == 0
        assert grad.shape == (col.num_params,)
        assert np.allclose(val, np.vdot(bra, v), atol=ATOL)
        np.testing.assert_allclose(grad, g @ bra.conj(), atol=ATOL, rtol=0)
        assert np.allclose(ovl.evaluate(x), val, atol=ATOL)

    def test_batched_overlap(self):
        circ = build_qsearch_ansatz(2, 2, 2)
        col = circ.compile(contract=OutputContract.column(0))
        rng = np.random.default_rng(8)
        bra = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        xs = _params(col, seed=8, batch=3)
        bv, bg = BatchedTNVM(col, batch=3).evaluate_with_grad(xs)
        ovl = BatchedTNVM(
            col, batch=3, contract=OutputContract.overlap(bra)
        )
        val, grad = ovl.evaluate_with_grad(xs)
        assert val.shape == (3,)
        assert grad.shape == (3, col.num_params)
        np.testing.assert_allclose(val, bv @ bra.conj(), atol=ATOL, rtol=0)
        np.testing.assert_allclose(grad, bg @ bra.conj(), atol=ATOL, rtol=0)


class TestBackendResolution:
    def test_column_threshold_is_separate(self):
        assert FUSED_COLUMN_DIM_MAX > FUSED_DIM_MAX
        dim = FUSED_DIM_MAX * 2
        assert dim <= FUSED_COLUMN_DIM_MAX
        # Above the matrix threshold, auto keeps full-unitary programs
        # on closures but still fuses the cheaper column programs.
        assert resolve_backend("auto", dim) == "closures"
        assert resolve_backend("auto", dim, column=True) == "fused"
        assert (
            resolve_backend("auto", FUSED_COLUMN_DIM_MAX + 1, column=True)
            == "closures"
        )
        # Explicit backends are never overridden.
        assert resolve_backend("fused", dim) == "fused"

    def test_auto_fuses_a_d16_column_vm(self):
        circ = build_qsearch_ansatz(4, 1, 2)
        col = circ.compile(contract=OutputContract.column(0))
        full = circ.compile()
        assert TNVM(col, backend="auto").backend == "fused"
        assert TNVM(full, backend="auto").backend == "closures"
