"""Abstract interpretation over TNVM bytecode.

:func:`verify_program` runs a compiled
:class:`~repro.tensornet.bytecode.Program` through an abstract
interpreter that tracks, per buffer, the flat element count the
declared :class:`~repro.tensornet.bytecode.BufferSpec` promises, the
write/read history across both program sections, and the
parameter-dependency metadata the TNVM's forward-AD specialization
relies on.  It rejects:

* operand shape mismatches per opcode — ``MATMUL (m,k)@(k,n)``,
  ``KRON``/``HADAMARD`` view-size errors, ``TRANSPOSE`` with an
  invalid ``perm`` or a size-changing reshape;
* use-before-def and dead / overwritten-never-read buffers, across
  the constant/dynamic section boundary (the constant section runs
  once before any dynamic sweep);
* ``expr_id`` / ``slots`` references outside the expression table or
  the circuit parameter space, and slot-arity mismatches;
* unsound forward-AD metadata: an instruction's ``params`` must cover
  the union of its operands' parameter deps (plus its own ``slots``
  for ``WRITE``), must agree with its output buffer's declared deps,
  and must be sorted, unique, and in range — exactly the invariants
  the TNVM's gradient specialization assumes;
* contract inconsistency: the final buffer's shape must match the
  program's compiled :class:`~repro.tensornet.OutputContract` —
  ``D x D`` for ``FULL_UNITARY``, ``D x 1`` for ``COLUMN`` /
  ``OVERLAP`` — for the program's radices.

The verifier is pure analysis: it never executes bytecode, allocates
arenas, or evaluates expressions, so it is safe to run on untrusted
(e.g. deserialized) programs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .report import VerificationReport

if TYPE_CHECKING:
    from ..tensornet.bytecode import Instruction, Program

__all__ = ["verify_program"]

_OPCODES = ("WRITE", "MATMUL", "KRON", "HADAMARD", "TRANSPOSE")

#: codes emitted by this module (documented for the mutation corpus)
PROGRAM_VIOLATION_CODES = (
    "bad-opcode",
    "bad-buffer-ref",
    "bad-expr-ref",
    "bad-slot",
    "slot-arity",
    "operand-shape",
    "bad-transpose",
    "use-before-def",
    "double-write",
    "dead-buffer",
    "never-written",
    "param-deps",
    "section",
    "contract",
    "output",
)


class _BufferState:
    """Abstract state of one buffer during interpretation."""

    __slots__ = ("size", "params", "constant", "written", "read", "pending")

    def __init__(
        self, size: int, params: tuple[int, ...], constant: bool
    ) -> None:
        self.size = size
        self.params = params
        self.constant = constant
        #: has any instruction written this buffer yet?
        self.written = False
        #: has any instruction ever read this buffer?
        self.read = False
        #: last write not yet observed by a read (overwrite detection)
        self.pending: str | None = None


def verify_program(
    program: Program, subject: str | None = None
) -> VerificationReport:
    """Statically verify ``program``; returns the full report.

    The report is never raised from here — boundary wiring calls
    :meth:`~repro.analysis.report.VerificationReport.raise_if_failed`.
    """
    name = subject if subject is not None else _describe(program)
    report = VerificationReport(subject=name)
    checker = _ProgramChecker(program, report)
    checker.run()
    return report


def _describe(program: Program) -> str:
    return (
        f"program[{program.num_params}p "
        f"r={list(program.radices)} "
        f"contract={tuple(program.contract)!r}]"
    )


class _ProgramChecker:
    def __init__(
        self, program: Program, report: VerificationReport
    ) -> None:
        self.program = program
        self.report = report
        self.num_params = int(program.num_params)
        self.buffers: list[_BufferState] = []
        for spec in program.buffers:
            self.buffers.append(
                _BufferState(
                    int(spec.size),
                    tuple(spec.params),
                    bool(spec.constant),
                )
            )

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._check_header()
        self._check_buffer_table()
        for pos, instr in enumerate(self.program.const_section):
            self._check_instruction(instr, f"const[{pos}]", constant=True)
        for pos, instr in enumerate(self.program.dynamic_section):
            self._check_instruction(
                instr, f"dynamic[{pos}]", constant=False
            )
        self._check_liveness()
        self._check_contract()

    # ------------------------------------------------------------------
    def _check_header(self) -> None:
        if self.num_params < 0:
            self.report.add(
                "param-deps",
                f"num_params is negative ({self.num_params})",
            )
        for r in self.program.radices:
            if int(r) < 1:
                self.report.add(
                    "contract", f"invalid radix {r} in {self.program.radices}"
                )

    def _check_buffer_table(self) -> None:
        for i, state in enumerate(self.buffers):
            if state.size < 1:
                self.report.add(
                    "bad-buffer-ref",
                    f"buffer b{i} declares non-positive size {state.size}",
                    where=f"b{i}",
                )
            bad = self._bad_param_tuple(state.params)
            if bad:
                self.report.add(
                    "param-deps",
                    f"buffer b{i} param deps {list(state.params)}: {bad}",
                    where=f"b{i}",
                )

    def _bad_param_tuple(self, params: tuple[int, ...]) -> str | None:
        """Why a ``params`` tuple is malformed, or None if fine.

        Single strictly-increasing pass: this runs twice per
        instruction plus once per buffer-table entry, so it stays
        allocation-free.
        """
        num_params = self.num_params
        prev = -1
        for p in params:
            if not 0 <= int(p) < num_params:
                return f"index {p} outside [0, {num_params})"
            if p <= prev:
                return "not sorted-unique"
            prev = p
        return None

    # ------------------------------------------------------------------
    # Per-instruction interpretation
    # ------------------------------------------------------------------
    def _check_instruction(
        self, instr: Instruction, where: str, constant: bool
    ) -> None:
        if instr.opcode not in _OPCODES:
            self.report.add(
                "bad-opcode", f"unknown opcode {instr.opcode!r}", where
            )
            return

        # Output buffer and section discipline.
        out = instr.out_buf
        out_state = self._buffer(out, where, role="out_buf")
        if out_state is not None and out_state.constant != constant:
            self.report.add(
                "section",
                f"{instr.opcode} in the "
                f"{'constant' if constant else 'dynamic'} section writes "
                f"b{out}, declared "
                f"{'constant' if out_state.constant else 'dynamic'}",
                where,
            )

        # Parameter metadata (the forward-AD invariants).
        bad = self._bad_param_tuple(tuple(instr.params))
        if bad:
            self.report.add(
                "param-deps",
                f"instruction params {list(instr.params)}: {bad}",
                where,
            )
        if constant and instr.params:
            self.report.add(
                "section",
                "constant-section instruction depends on parameters "
                f"{list(instr.params)}",
                where,
            )
        if out_state is not None and out_state.params != tuple(instr.params):
            self.report.add(
                "param-deps",
                f"instruction params {list(instr.params)} disagree with "
                f"output buffer b{out} deps {list(out_state.params)}",
                where,
            )

        deps: set[int] = set()
        if instr.opcode == "WRITE":
            self._check_write(instr, where, deps)
        else:
            for role, buf in (("a_buf", instr.a_buf), ("b_buf", instr.b_buf)):
                if buf == -1:
                    if instr.opcode != "TRANSPOSE" or role == "a_buf":
                        if instr.opcode == "TRANSPOSE" and role == "a_buf":
                            self.report.add(
                                "bad-buffer-ref",
                                "TRANSPOSE has no input operand",
                                where,
                            )
                        elif instr.opcode != "TRANSPOSE":
                            self.report.add(
                                "bad-buffer-ref",
                                f"{instr.opcode} missing operand {role}",
                                where,
                            )
                    continue
                state = self._buffer(buf, where, role=role)
                if state is None:
                    continue
                self._read(buf, state, where)
                deps |= set(state.params)
            if instr.opcode in ("MATMUL", "KRON", "HADAMARD"):
                self._check_product_shapes(instr, where)
            else:
                self._check_transpose(instr, where)

        missing = deps - set(instr.params)
        if missing:
            self.report.add(
                "param-deps",
                "instruction params must cover operand deps; missing "
                f"{sorted(missing)} (params={list(instr.params)})",
                where,
            )

        # Finally: the write itself.
        if out_state is not None:
            if out_state.pending is not None:
                self.report.add(
                    "double-write",
                    f"b{out} overwritten before its value written at "
                    f"{out_state.pending} was ever read",
                    where,
                )
            out_state.written = True
            out_state.pending = where

    def _buffer(
        self, buf: int, where: str, role: str
    ) -> _BufferState | None:
        if not 0 <= buf < len(self.buffers):
            self.report.add(
                "bad-buffer-ref",
                f"{role} b{buf} outside the buffer table "
                f"(0..{len(self.buffers) - 1})",
                where,
            )
            return None
        return self.buffers[buf]

    def _read(self, buf: int, state: _BufferState, where: str) -> None:
        if not state.written:
            self.report.add(
                "use-before-def",
                f"b{buf} read before any instruction writes it",
                where,
            )
        state.read = True
        state.pending = None

    # -- WRITE ---------------------------------------------------------
    def _check_write(
        self, instr: Instruction, where: str, deps: set[int]
    ) -> None:
        n_expr = len(self.program.expressions)
        if not 0 <= instr.expr_id < n_expr:
            self.report.add(
                "bad-expr-ref",
                f"expr_id e{instr.expr_id} outside the expression table "
                f"(0..{n_expr - 1})",
                where,
            )
            return
        expr = self.program.expressions[instr.expr_id]
        if len(instr.slots) != expr.num_params:
            self.report.add(
                "slot-arity",
                f"expression e{instr.expr_id} takes {expr.num_params} "
                f"parameters but {len(instr.slots)} slots are bound",
                where,
            )
        for slot in instr.slots:
            if not 0 <= int(slot) < self.num_params:
                self.report.add(
                    "bad-slot",
                    f"slot {slot} outside the circuit parameter space "
                    f"[0, {self.num_params})",
                    where,
                )
            else:
                deps.add(int(slot))
        rows, cols = expr.shape
        self._expect_size(
            instr.out_buf,
            rows * cols,
            where,
            f"WRITE of e{instr.expr_id} with shape {rows}x{cols}",
        )

    # -- MATMUL / KRON / HADAMARD --------------------------------------
    def _check_product_shapes(
        self, instr: Instruction, where: str
    ) -> None:
        a_shape = tuple(int(s) for s in instr.a_shape)
        b_shape = tuple(int(s) for s in instr.b_shape)
        if instr.opcode == "HADAMARD":
            b_shape = a_shape
        for label, shape in (("a_shape", a_shape), ("b_shape", b_shape)):
            if not shape or any(s < 1 for s in shape):
                self.report.add(
                    "operand-shape",
                    f"{instr.opcode} {label} {list(shape)} is not a "
                    "positive shape",
                    where,
                )
                return
        if instr.opcode == "MATMUL":
            if len(a_shape) != 2 or len(b_shape) != 2:
                self.report.add(
                    "operand-shape",
                    "MATMUL operands must be 2-D views, got "
                    f"{list(a_shape)} @ {list(b_shape)}",
                    where,
                )
                return
            m, k = a_shape
            k2, n = b_shape
            if k != k2:
                self.report.add(
                    "operand-shape",
                    f"MATMUL inner dimensions disagree: "
                    f"({m},{k}) @ ({k2},{n})",
                    where,
                )
            out_size = m * n
        elif instr.opcode == "KRON":
            out_size = math.prod(a_shape) * math.prod(b_shape)
        else:  # HADAMARD: both operands viewed as a_shape
            out_size = math.prod(a_shape)
        self._expect_view(instr.a_buf, a_shape, where, instr.opcode, "a_buf")
        if instr.b_buf != -1:
            self._expect_view(
                instr.b_buf, b_shape, where, instr.opcode, "b_buf"
            )
        self._expect_size(
            instr.out_buf, out_size, where, f"{instr.opcode} result"
        )

    # -- TRANSPOSE -----------------------------------------------------
    def _check_transpose(self, instr: Instruction, where: str) -> None:
        shape = tuple(int(s) for s in instr.shape)
        perm = tuple(int(p) for p in instr.perm)
        if not shape or any(s < 1 for s in shape):
            self.report.add(
                "bad-transpose",
                f"TRANSPOSE shape {list(shape)} is not a positive shape",
                where,
            )
            return
        if sorted(perm) != list(range(len(shape))):
            self.report.add(
                "bad-transpose",
                f"perm {list(perm)} is not a permutation of the "
                f"{len(shape)} axes of shape {list(shape)}",
                where,
            )
            return
        size = math.prod(shape)
        self._expect_view(instr.a_buf, shape, where, "TRANSPOSE", "a_buf")
        # A transpose permutes; it can never change the element count.
        self._expect_size(
            instr.out_buf, size, where, "TRANSPOSE result (size-preserving)"
        )

    # -- shape/size helpers --------------------------------------------
    def _expect_view(
        self,
        buf: int,
        shape: tuple[int, ...],
        where: str,
        opcode: str,
        role: str,
    ) -> None:
        if not 0 <= buf < len(self.buffers):
            return  # bad-buffer-ref already reported
        want = math.prod(shape)
        have = self.buffers[buf].size
        if want != have:
            self.report.add(
                "operand-shape",
                f"{opcode} views {role} b{buf} as {list(shape)} "
                f"({want} elements) but the buffer holds {have}",
                where,
            )

    def _expect_size(
        self, buf: int, size: int, where: str, what: str
    ) -> None:
        if not 0 <= buf < len(self.buffers):
            return
        have = self.buffers[buf].size
        if size != have:
            self.report.add(
                "operand-shape",
                f"{what} needs {size} elements but out_buf b{buf} "
                f"holds {have}",
                where,
            )

    # ------------------------------------------------------------------
    # Whole-program analyses
    # ------------------------------------------------------------------
    def _check_liveness(self) -> None:
        out = self.program.output_buffer
        for i, state in enumerate(self.buffers):
            if not state.written:
                self.report.add(
                    "never-written",
                    f"buffer b{i} is allocated but no instruction "
                    "writes it",
                    where=f"b{i}",
                )
            elif not state.read and i != out:
                self.report.add(
                    "dead-buffer",
                    f"buffer b{i} is written but never read and is not "
                    "the output buffer",
                    where=f"b{i}",
                )

    def _check_contract(self) -> None:
        from ..tensornet.contract import OutputContract

        out = self.program.output_buffer
        if not 0 <= out < len(self.buffers):
            self.report.add(
                "output",
                f"output buffer b{out} outside the buffer table",
            )
            return
        if not self.buffers[out].written:
            self.report.add(
                "output", f"output buffer b{out} is never written"
            )
        dim = math.prod(int(r) for r in self.program.radices)
        try:
            contract = OutputContract.from_program_key(self.program.contract)
        except (ValueError, TypeError) as exc:
            self.report.add("contract", str(exc))
            return
        if contract.column_based and not 0 <= contract.column_index < dim:
            self.report.add(
                "contract",
                f"column index {contract.column_index} outside the "
                f"program's dimension {dim}",
            )
            return
        want_shape = contract.output_shape(dim)
        have_shape = tuple(int(s) for s in self.program.output_shape)
        if have_shape != want_shape:
            self.report.add(
                "contract",
                f"contract {contract.describe()} over radices "
                f"{list(self.program.radices)} requires output shape "
                f"{want_shape}, program declares {have_shape}",
            )
        want_size = want_shape[0] * want_shape[1]
        if self.buffers[out].size != want_size:
            self.report.add(
                "contract",
                f"output buffer b{out} holds {self.buffers[out].size} "
                f"elements; contract {contract.describe()} requires "
                f"{want_size}",
            )
