"""AST-level lint for generated fused megakernel source.

The fused backend (:mod:`repro.tnvm.fused`) ships megakernels as plain
source text and rehydrates them in worker processes with ``compile()``
+ ``exec()`` — a trust boundary where a corrupted or stale
:class:`~repro.tnvm.fused.FusedKernel` would otherwise execute
arbitrary statements against the arena.  :func:`lint_kernel_source`
walks the source AST (never executing it) and checks the invariants
the code generator guarantees:

* the module defines exactly one top-level ``make_fused`` factory with
  the expected signature, containing one inner ``fused_run(params)``
  hot function that the factory returns;
* **single assignment** — every plain-name binding (CSE temps, arena
  views, parameter unpacks) is assigned exactly once, in
  define-before-use order;
* **closed name environment** — every free name resolves to a factory
  argument, a previously bound local, or a whitelisted callable
  (``np`` plus the QGL scalar math names), and every attribute called
  on ``np`` or an array view is whitelisted (``np.matmul`` yes,
  ``np.frombuffer`` no);
* **no aliased ``out=`` targets** — a contraction's ``out=`` view (or
  ``np.copyto``'s destination) must not share an arena root
  (``values[k]`` / ``grads[k]``) with any input of the same statement,
  since the BLAS kernels do not tolerate overlapping operands;
* only sanctioned statement forms appear (assignments into names or
  arena subscripts, whitelisted calls, ``pass``, ``return fused_run``).
"""

from __future__ import annotations

import ast

from .report import VerificationReport

__all__ = [
    "lint_kernel_source",
    "verify_kernel",
    "NUMPY_WHITELIST",
    "ARRAY_METHOD_WHITELIST",
    "SCALAR_GLOBALS",
]

#: ``np.<attr>`` names generated kernels may call or reference.
NUMPY_WHITELIST = frozenset(
    {"matmul", "multiply", "copyto", "zeros", "asarray", "moveaxis", "intp"}
)

#: methods generated kernels may call on array views.
ARRAY_METHOD_WHITELIST = frozenset({"reshape", "transpose"})

#: bare names bound by :func:`repro.jit.codegen.writer_globals`.
SCALAR_GLOBALS = frozenset(
    {"sin", "cos", "exp", "ln", "sqrt", "pi", "complex", "np"}
)

#: codes emitted by this module
KERNEL_VIOLATION_CODES = (
    "kernel-syntax",
    "kernel-structure",
    "kernel-multi-assign",
    "kernel-unbound-name",
    "kernel-rogue-callable",
    "kernel-out-aliasing",
    "kernel-statement",
)


#: sources that already linted clean, keyed by ``(source, batched)``.
#: Bind-time linting re-runs on every TNVM construction while the
#: generated source for a given template is byte-identical, so the
#: clean verdict is a pure function of the key — caching it keeps the
#: steady-state verification cost off the hot engine-compilation path
#: (any corruption changes the source text and misses the cache).
_CLEAN_CACHE: dict[tuple[str, bool | None], bool] = {}
_CLEAN_CACHE_MAX = 256


def lint_kernel_source(
    source: str,
    batched: bool | None = None,
    subject: str = "fused kernel",
) -> VerificationReport:
    """Lint one megakernel's source text; returns the full report.

    ``batched`` asserts the expected factory arity when known
    (``make_fused(values, grads, dtype[, B])``); ``None`` accepts
    either form.
    """
    report = VerificationReport(subject=subject)
    key = (source, batched)
    if key in _CLEAN_CACHE:
        return report
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add(
            "kernel-syntax",
            f"source does not parse: {exc.msg}",
            where=f"line {exc.lineno}",
        )
        return report
    _KernelChecker(report, batched).check_module(tree)
    if report.ok:
        if len(_CLEAN_CACHE) >= _CLEAN_CACHE_MAX:
            _CLEAN_CACHE.clear()
        _CLEAN_CACHE[key] = True
    return report


def verify_kernel(kernel: object, subject: str = "") -> VerificationReport:
    """Lint a :class:`~repro.tnvm.fused.FusedKernel` (duck-typed)."""
    batched = bool(getattr(kernel, "batched", False))
    grad = bool(getattr(kernel, "grad", False))
    name = subject or (
        f"fused kernel (grad={grad}, batched={batched})"
    )
    source = getattr(kernel, "source", None)
    if not isinstance(source, str):
        report = VerificationReport(subject=name)
        report.add(
            "kernel-structure",
            f"kernel source is {type(source).__name__}, not str",
        )
        return report
    return lint_kernel_source(source, batched=batched, subject=name)


class _KernelChecker:
    def __init__(
        self, report: VerificationReport, batched: bool | None
    ) -> None:
        self.report = report
        self.batched = batched
        #: every bound local name -> its arena root (see _root_of)
        self.roots: dict[str, tuple[str, object]] = {}
        self.defined: set[str] = set()
        self.assigned_once: set[str] = set()

    def _where(self, node: ast.AST) -> str:
        return f"line {getattr(node, 'lineno', '?')}"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def check_module(self, tree: ast.Module) -> None:
        funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
        if len(tree.body) != 1 or len(funcs) != 1:
            self.report.add(
                "kernel-structure",
                "kernel module must contain exactly one function "
                f"definition, found {len(tree.body)} statement(s)",
            )
            return
        make = funcs[0]
        if make.name != "make_fused":
            self.report.add(
                "kernel-structure",
                f"factory is named {make.name!r}, expected 'make_fused'",
                self._where(make),
            )
        args = [a.arg for a in make.args.args]
        expected = (
            [["values", "grads", "dtype"], ["values", "grads", "dtype", "B"]]
            if self.batched is None
            else (
                [["values", "grads", "dtype", "B"]]
                if self.batched
                else [["values", "grads", "dtype"]]
            )
        )
        if args not in expected:
            self.report.add(
                "kernel-structure",
                f"factory signature make_fused({', '.join(args)}) does "
                f"not match the expected {expected}",
                self._where(make),
            )
        self.defined |= set(args)
        for arg in args:
            self.roots[arg] = ("arg", arg)
        # The arena tables themselves are roots.
        self.roots["values"] = ("values", None)
        self.roots["grads"] = ("grads", None)

        inner: ast.FunctionDef | None = None
        returned = False
        for stmt in make.body:
            if isinstance(stmt, ast.FunctionDef):
                if inner is not None:
                    self.report.add(
                        "kernel-structure",
                        "more than one inner function in make_fused",
                        self._where(stmt),
                    )
                inner = stmt
                continue
            if isinstance(stmt, ast.Return):
                returned = True
                if not (
                    isinstance(stmt.value, ast.Name)
                    and inner is not None
                    and stmt.value.id == inner.name
                ):
                    self.report.add(
                        "kernel-structure",
                        "make_fused must return its inner hot function",
                        self._where(stmt),
                    )
                continue
            self.check_statement(stmt, hot=False)
        if inner is None or not returned:
            self.report.add(
                "kernel-structure",
                "make_fused must define and return a hot inner function",
                self._where(make),
            )
            return
        if [a.arg for a in inner.args.args] != ["params"]:
            self.report.add(
                "kernel-structure",
                f"hot function {inner.name} must take exactly (params)",
                self._where(inner),
            )
        self.defined.add("params")
        self.roots["params"] = ("arg", "params")
        for stmt in inner.body:
            self.check_statement(stmt, hot=True)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def check_statement(self, stmt: ast.stmt, hot: bool) -> None:
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                self.report.add(
                    "kernel-statement",
                    "chained assignment is not generated code",
                    self._where(stmt),
                )
                return
            self.check_expr(stmt.value)
            self._bind_target(stmt.targets[0], stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            # Scatter accumulate: `view[row] += scratch[s]`.  The target
            # must be a subscript of a bound view, never a fresh name.
            self.check_expr(stmt.value)
            if not isinstance(stmt.target, ast.Subscript):
                self.report.add(
                    "kernel-statement",
                    "augmented assignment to a bare name is not "
                    "generated code",
                    self._where(stmt),
                )
                return
            self.check_expr(stmt.target.value)
            self.check_expr(stmt.target.slice)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            self.check_call(stmt.value)
            return
        self.report.add(
            "kernel-statement",
            f"unexpected statement {type(stmt).__name__}",
            self._where(stmt),
        )

    def _bind_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.assigned_once:
                self.report.add(
                    "kernel-multi-assign",
                    f"name {target.id!r} assigned more than once — CSE "
                    "temps and views must be single-assignment",
                    self._where(target),
                )
            self.assigned_once.add(target.id)
            self.defined.add(target.id)
            self.roots[target.id] = self._root_of(value)
            return
        if isinstance(target, ast.Subscript):
            # Stores like `i0_v[1, 1] = ...` or `i0_g[:] = 0`: the base
            # must be a bound arena view, not an unknown name.
            self.check_expr(target.value)
            self.check_expr(target.slice)
            return
        self.report.add(
            "kernel-statement",
            f"unexpected assignment target {type(target).__name__}",
            self._where(target),
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def check_expr(self, node: ast.expr) -> None:
        # Hand-rolled traversal: this runs over every expression of
        # every generated statement, and the generic ``ast.walk`` /
        # ``iter_child_nodes`` machinery dominates lint time.  The
        # common node kinds push their children directly; anything
        # else falls back to generic child iteration.
        stack: list[ast.AST] = [node]
        pop = stack.pop
        push = stack.append
        defined = self.defined
        while stack:
            sub = pop()
            if type(sub) is ast.Name:
                if (
                    sub.id not in defined
                    and sub.id not in SCALAR_GLOBALS
                    and type(sub.ctx) is ast.Load
                ):
                    self.report.add(
                        "kernel-unbound-name",
                        f"name {sub.id!r} is not bound by the factory "
                        "arguments, a prior assignment, or the writer "
                        "globals",
                        self._where(sub),
                    )
            elif type(sub) is ast.Constant:
                pass
            elif type(sub) is ast.Attribute:
                self._check_attribute(sub)
                push(sub.value)
            elif type(sub) is ast.Subscript:
                push(sub.value)
                push(sub.slice)
            elif type(sub) is ast.Call:
                self._check_callable(sub)
                push(sub.func)
                for arg in sub.args:
                    push(arg)
                for kw in sub.keywords:
                    if kw.value is not None:
                        push(kw.value)
            elif type(sub) is ast.Tuple:
                for elt in sub.elts:
                    push(elt)
            elif type(sub) is ast.List:
                for elt in sub.elts:
                    push(elt)
            elif type(sub) is ast.BinOp:
                push(sub.left)
                push(sub.right)
            elif type(sub) is ast.UnaryOp:
                push(sub.operand)
            elif type(sub) is ast.Slice:
                for part in (sub.lower, sub.upper, sub.step):
                    if part is not None:
                        push(part)
            else:
                for child in ast.iter_child_nodes(sub):
                    push(child)

    def check_call(self, call: ast.Call) -> None:
        self._check_callable(call)
        for arg in call.args:
            self.check_expr(arg)
        out_root: tuple[str, object] | None = None
        for kw in call.keywords:
            if kw.value is not None:
                self.check_expr(kw.value)
            if kw.arg == "out":
                out_root = self._root_of(kw.value)
        func_name = self._attr_chain(call.func)
        inputs = list(call.args)
        if func_name == "np.copyto" and call.args:
            # copyto(dst, src): the first positional arg is the target.
            out_root = self._root_of(call.args[0])
            inputs = call.args[1:]
        if out_root is not None and out_root[0] in ("values", "grads"):
            for arg in inputs:
                in_root = self._root_of(arg)
                if in_root == out_root:
                    self.report.add(
                        "kernel-out-aliasing",
                        f"{func_name or 'call'} writes "
                        f"{_render_root(out_root)} while reading an "
                        "input viewing the same arena buffer — out= "
                        "must never alias a live input",
                        self._where(call),
                    )

    def _check_callable(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id not in SCALAR_GLOBALS:
                self.report.add(
                    "kernel-rogue-callable",
                    f"call to non-whitelisted name {func.id!r}",
                    self._where(call),
                )
            return
        if isinstance(func, ast.Attribute):
            self._check_attribute(func, called=True)
            return
        self.report.add(
            "kernel-rogue-callable",
            f"call through a {type(func).__name__} expression",
            self._where(call),
        )

    def _check_attribute(
        self, node: ast.Attribute, called: bool = False
    ) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "np":
            if node.attr not in NUMPY_WHITELIST:
                self.report.add(
                    "kernel-rogue-callable",
                    f"np.{node.attr} is not a whitelisted numpy "
                    "callable",
                    self._where(node),
                )
            return
        if called and node.attr not in ARRAY_METHOD_WHITELIST:
            self.report.add(
                "kernel-rogue-callable",
                f"method .{node.attr}() is not a whitelisted array "
                "method",
                self._where(node),
            )

    # ------------------------------------------------------------------
    # Arena-root resolution (for out= aliasing)
    # ------------------------------------------------------------------
    def _root_of(self, node: ast.expr | None) -> tuple[str, object]:
        """Which storage a view expression ultimately aliases.

        ``values[3].reshape(...)`` -> ``("values", 3)``;
        ``np.zeros(...)`` -> fresh scratch; a bound name inherits the
        root recorded at its single assignment.
        """
        while node is not None:
            if isinstance(node, ast.Name):
                return self.roots.get(node.id, ("unknown", node.id))
            if isinstance(node, ast.Subscript):
                base = node.value
                if isinstance(base, ast.Name) and base.id in (
                    "values",
                    "grads",
                ):
                    idx = node.slice
                    if isinstance(idx, ast.Constant) and isinstance(
                        idx.value, int
                    ):
                        return (base.id, idx.value)
                    return (base.id, "?")
                node = base
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if (
                        isinstance(func.value, ast.Name)
                        and func.value.id == "np"
                    ):
                        if func.attr == "moveaxis" and node.args:
                            node = node.args[0]
                            continue
                        return ("fresh", func.attr)
                    # array method chain: .reshape(...) / .transpose(...)
                    node = func.value
                    continue
                return ("unknown", None)
            if isinstance(node, ast.Attribute):
                node = node.value
                continue
            return ("literal", None)
        return ("literal", None)

    def _attr_chain(self, node: ast.expr) -> str:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return ".".join(reversed(parts))


def _render_root(root: tuple[str, object]) -> str:
    kind, idx = root
    return f"{kind}[{idx}]" if idx is not None else kind
