"""Verification outcomes: violations, reports, and the error type.

Every ``repro.analysis`` checker returns a :class:`VerificationReport`
— a flat list of :class:`Violation` records tagged with a stable
machine-readable ``code`` (the mutation corpus keys its catch matrix
by these codes) and a human-pointed message naming the instruction,
buffer, or source line at fault.  Callers at trust boundaries convert
a failed report into a :class:`VerificationError` with
:meth:`VerificationReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Violation",
    "VerificationReport",
    "VerificationError",
]


@dataclass(frozen=True)
class Violation:
    """One verifier finding.

    ``code`` is a stable identifier (e.g. ``"operand-shape"``,
    ``"use-before-def"``); ``where`` locates the fault (an instruction
    like ``"dynamic[3]"``, a buffer like ``"b5"``, or a source line
    like ``"line 12"``); ``message`` explains what is inconsistent.
    """

    code: str
    message: str
    where: str = ""

    def render(self) -> str:
        location = f" at {self.where}" if self.where else ""
        return f"[{self.code}]{location}: {self.message}"


@dataclass
class VerificationReport:
    """The outcome of one verification pass over one subject."""

    subject: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str, where: str = "") -> None:
        self.violations.append(Violation(code, message, where))

    def codes(self) -> set[str]:
        """The distinct violation codes found (mutation-corpus API)."""
        return {v.code for v in self.violations}

    def extend(self, other: VerificationReport) -> None:
        self.violations.extend(other.violations)

    def render(self) -> str:
        if self.ok:
            return f"{self.subject}: verified, no violations"
        lines = [
            f"{self.subject}: {len(self.violations)} violation(s)"
        ]
        lines.extend("  " + v.render() for v in self.violations)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise VerificationError(self)


class VerificationError(Exception):
    """A subject failed static verification.

    Raised at trust boundaries (``compile_network(..., verify=True)``,
    engine rehydration, kernel binding) instead of letting a corrupt
    program or payload run and produce silently wrong numerics.  The
    attached :class:`VerificationReport` lists every violation.
    """

    def __init__(self, report: VerificationReport) -> None:
        self.report = report
        super().__init__(report.render())
