"""Seeded mutation corpus: proof that the verifier is not vacuous.

A verifier that accepts every clean program is only trustworthy if it
also *rejects* every representative corruption.  This module defines a
corpus of mutation classes — each models one realistic failure mode of
the compile/serialize/rehydrate pipeline (a bad rewrite swapping
operand buffers, a corrupted ``perm``, dropped forward-AD metadata, a
truncated payload, mangled kernel source, a wrong-contract output
shape) — plus a harness, :func:`run_mutation_corpus`, that applies
every class to a set of clean subjects with a seeded RNG and checks
that :func:`~repro.analysis.verifier.verify_program` /
:func:`~repro.analysis.kernel_lint.lint_kernel_source` flags **every**
mutant with the expected violation code.

The corpus is exercised by ``tests/analysis`` and by the CI ``verify``
job's mutation smoke.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, TypeVar

import numpy as np

from .kernel_lint import lint_kernel_source
from .verifier import verify_program

if TYPE_CHECKING:
    from ..tensornet.bytecode import Program

__all__ = [
    "MutationClass",
    "NotApplicable",
    "MUTATION_CLASSES",
    "mutate_program",
    "mutate_kernel",
    "run_mutation_corpus",
    "CorpusResult",
]


class NotApplicable(Exception):
    """The mutation class has no site in this subject (e.g. no
    TRANSPOSE instruction to corrupt); the harness tries the next
    subject."""


@dataclass(frozen=True)
class MutationClass:
    """One corruption model and the violation codes that must catch it."""

    name: str
    kind: str  # "program" | "kernel"
    expected_codes: frozenset[str]
    description: str


def _copy(program: Program) -> Program:
    """An independent deep copy via the program's own wire format."""
    return type(program).from_bytes(program.to_bytes())


_T = TypeVar("_T")


def _choice(rng: np.random.Generator, items: list[_T]) -> _T:
    if not items:
        raise NotApplicable
    return items[int(rng.integers(len(items)))]


# ----------------------------------------------------------------------
# Program mutations
# ----------------------------------------------------------------------


def _mut_swap_operands(program: Program, rng: np.random.Generator) -> Program:
    """A bad rewrite swapped a contraction's operand buffers."""
    program = _copy(program)
    sites = [
        (pos, instr)
        for pos, instr in enumerate(program.dynamic_section)
        if instr.opcode in ("MATMUL", "KRON", "HADAMARD")
        and instr.a_buf != -1
        and instr.b_buf != -1
        and program.buffers[instr.a_buf].size
        != program.buffers[instr.b_buf].size
    ]
    pos, instr = _choice(rng, sites)
    program.dynamic_section[pos] = dataclasses.replace(
        instr, a_buf=instr.b_buf, b_buf=instr.a_buf
    )
    return program


def _mut_corrupt_perm(program: Program, rng: np.random.Generator) -> Program:
    """A TRANSPOSE whose perm is no longer a permutation."""
    program = _copy(program)
    sites = [
        (section, pos, instr)
        for section in (program.const_section, program.dynamic_section)
        for pos, instr in enumerate(section)
        if instr.opcode == "TRANSPOSE" and len(instr.perm) >= 2
    ]
    section, pos, instr = _choice(rng, sites)
    bad_perm = (instr.perm[0],) + instr.perm[:-1]  # duplicates perm[0]
    section[pos] = dataclasses.replace(instr, perm=bad_perm)
    return program


def _mut_drop_param_dep(program: Program, rng: np.random.Generator) -> Program:
    """Forward-AD metadata corruption: a parameter dependency vanishes
    from an instruction *and* its output buffer spec — the exact
    invariant grad specialization relies on."""
    program = _copy(program)
    sites = [
        (pos, instr)
        for pos, instr in enumerate(program.dynamic_section)
        if instr.params
    ]
    pos, instr = _choice(rng, sites)
    dropped = instr.params[int(rng.integers(len(instr.params)))]
    trimmed = tuple(p for p in instr.params if p != dropped)
    program.dynamic_section[pos] = dataclasses.replace(
        instr, params=trimmed
    )
    spec = program.buffers[instr.out_buf]
    program.buffers[instr.out_buf] = dataclasses.replace(
        spec, params=tuple(p for p in spec.params if p != dropped)
    )
    return program


def _mut_truncate_dynamic(program: Program, rng: np.random.Generator) -> Program:
    """A truncated payload: the dynamic section lost its tail."""
    program = _copy(program)
    if not program.dynamic_section:
        raise NotApplicable
    program.dynamic_section.pop()
    return program


def _mut_bad_expr_ref(program: Program, rng: np.random.Generator) -> Program:
    """A WRITE referencing outside the expression table."""
    program = _copy(program)
    sites = [
        (section, pos, instr)
        for section in (program.const_section, program.dynamic_section)
        for pos, instr in enumerate(section)
        if instr.opcode == "WRITE"
    ]
    section, pos, instr = _choice(rng, sites)
    section[pos] = dataclasses.replace(
        instr, expr_id=len(program.expressions) + 3
    )
    return program


def _mut_bad_slot(program: Program, rng: np.random.Generator) -> Program:
    """A WRITE slot outside the circuit parameter space."""
    program = _copy(program)
    sites = [
        (pos, instr)
        for pos, instr in enumerate(program.dynamic_section)
        if instr.opcode == "WRITE" and instr.slots
    ]
    pos, instr = _choice(rng, sites)
    slots = (program.num_params + 1,) + instr.slots[1:]
    program.dynamic_section[pos] = dataclasses.replace(instr, slots=slots)
    return program


def _mut_use_before_def(program: Program, rng: np.random.Generator) -> Program:
    """An instruction scheduled before its operand's producer."""
    program = _copy(program)
    section = program.dynamic_section
    sites = []
    for i, producer in enumerate(section):
        for j in range(i + 1, len(section)):
            consumer = section[j]
            if producer.out_buf in (consumer.a_buf, consumer.b_buf):
                sites.append((i, j))
                break
    i, j = _choice(rng, sites)
    producer = section.pop(i)
    section.insert(j, producer)  # now sits *after* its first consumer
    return program


def _mut_wrong_contract_shape(
    program: Program, rng: np.random.Generator
) -> Program:
    """Output shape flipped against the compiled contract."""
    program = _copy(program)
    d = program.output_shape[0]
    is_full = tuple(program.contract) == ("full",)
    program.output_shape = (d, 1) if is_full else (d, d)
    return program


def _mut_corrupt_contract_key(
    program: Program, rng: np.random.Generator
) -> Program:
    """The contract key itself is stale/corrupt for this bytecode."""
    program = _copy(program)
    if tuple(program.contract) == ("full",):
        dim = program.output_shape[0]
        program.contract = ("column", dim + int(rng.integers(1, 5)))
    else:
        program.contract = ("full",)
    return program


def _mut_dangling_write(program: Program, rng: np.random.Generator) -> Program:
    """A write retargeted to a fresh buffer, leaving its original
    target undefined for every downstream reader."""
    from ..tensornet.bytecode import BufferSpec

    program = _copy(program)
    section = program.dynamic_section
    read = set()
    for instr in section:
        read.update(b for b in (instr.a_buf, instr.b_buf) if b != -1)
    sites = [
        (pos, instr)
        for pos, instr in enumerate(section)
        if instr.out_buf in read
    ]
    pos, instr = _choice(rng, sites)
    spec = program.buffers[instr.out_buf]
    fresh = BufferSpec(
        buffer_id=len(program.buffers),
        size=spec.size,
        params=spec.params,
        constant=spec.constant,
    )
    program.buffers.append(fresh)
    section[pos] = dataclasses.replace(instr, out_buf=fresh.buffer_id)
    return program


# ----------------------------------------------------------------------
# Kernel-source mutations
# ----------------------------------------------------------------------

_UNPACK_RE = re.compile(r"^\s+p\d+ = params\[\d+\]\n", re.MULTILINE)
_TEMP_ASSIGN_RE = re.compile(r"^(\s+)(i\d+_t\d+) = .+\n", re.MULTILINE)
_CONTRACT_CALL_RE = re.compile(
    r"np\.(matmul|multiply)\((i\d+_a), (i\d+_b), out=(i\d+_c)\)"
)
_NP_CALL_RE = re.compile(r"np\.(matmul|multiply|copyto)\(")


def _pick_match(
    rng: np.random.Generator, pattern: re.Pattern, source: str
) -> re.Match:
    matches = list(pattern.finditer(source))
    return _choice(rng, matches)


def _mut_kernel_unbound(source: str, rng: np.random.Generator) -> str:
    """A parameter unpack line lost in transit: later loads unbound."""
    m = _pick_match(rng, _UNPACK_RE, source)
    return source[: m.start()] + source[m.end() :]


def _mut_kernel_double_assign(
    source: str, rng: np.random.Generator
) -> str:
    """A CSE temp assigned twice (single-assignment violation)."""
    m = _pick_match(rng, _TEMP_ASSIGN_RE, source)
    duplicate = f"{m.group(1)}{m.group(2)} = 0.0\n"
    return source[: m.end()] + duplicate + source[m.end() :]


def _mut_kernel_alias_out(source: str, rng: np.random.Generator) -> str:
    """A contraction's out= retargeted onto one of its own inputs."""
    m = _pick_match(rng, _CONTRACT_CALL_RE, source)
    mutated = f"np.{m.group(1)}({m.group(2)}, {m.group(3)}, out={m.group(2)})"
    return source[: m.start()] + mutated + source[m.end() :]


def _mut_kernel_rogue_call(source: str, rng: np.random.Generator) -> str:
    """A whitelisted numpy call swapped for an arbitrary one."""
    m = _pick_match(rng, _NP_CALL_RE, source)
    return source[: m.start()] + "np.dot(" + source[m.end() :]


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------

_ProgramMutator = Callable[["Program", np.random.Generator], "Program"]
_KernelMutator = Callable[[str, np.random.Generator], str]

_PROGRAM_MUTATORS: dict[str, _ProgramMutator] = {
    "swap-operand-buffers": _mut_swap_operands,
    "corrupt-perm": _mut_corrupt_perm,
    "drop-param-dep": _mut_drop_param_dep,
    "truncate-dynamic": _mut_truncate_dynamic,
    "expr-out-of-range": _mut_bad_expr_ref,
    "slot-out-of-range": _mut_bad_slot,
    "reorder-use-before-def": _mut_use_before_def,
    "wrong-contract-shape": _mut_wrong_contract_shape,
    "corrupt-contract-key": _mut_corrupt_contract_key,
    "dangling-write": _mut_dangling_write,
}

_KERNEL_MUTATORS: dict[str, _KernelMutator] = {
    "kernel-drop-unpack": _mut_kernel_unbound,
    "kernel-double-assign": _mut_kernel_double_assign,
    "kernel-alias-out": _mut_kernel_alias_out,
    "kernel-rogue-call": _mut_kernel_rogue_call,
}

MUTATION_CLASSES: tuple[MutationClass, ...] = (
    MutationClass(
        "swap-operand-buffers",
        "program",
        frozenset({"operand-shape"}),
        "contraction operands swapped by a bad rewrite",
    ),
    MutationClass(
        "corrupt-perm",
        "program",
        frozenset({"bad-transpose"}),
        "TRANSPOSE perm is no longer a permutation",
    ),
    MutationClass(
        "drop-param-dep",
        "program",
        frozenset({"param-deps"}),
        "forward-AD parameter dependency dropped",
    ),
    MutationClass(
        "truncate-dynamic",
        "program",
        frozenset(
            {"output", "never-written", "dead-buffer", "use-before-def"}
        ),
        "dynamic section truncated (corrupt payload)",
    ),
    MutationClass(
        "expr-out-of-range",
        "program",
        frozenset({"bad-expr-ref"}),
        "WRITE expr_id outside the expression table",
    ),
    MutationClass(
        "slot-out-of-range",
        "program",
        frozenset({"bad-slot"}),
        "WRITE slot outside the circuit parameter space",
    ),
    MutationClass(
        "reorder-use-before-def",
        "program",
        frozenset({"use-before-def"}),
        "instruction scheduled before its operand's producer",
    ),
    MutationClass(
        "wrong-contract-shape",
        "program",
        frozenset({"contract"}),
        "output shape disagrees with the compiled contract",
    ),
    MutationClass(
        "corrupt-contract-key",
        "program",
        frozenset({"contract"}),
        "stale/corrupt contract key for this bytecode",
    ),
    MutationClass(
        "dangling-write",
        "program",
        frozenset({"use-before-def", "never-written", "dead-buffer"}),
        "write retargeted away from its readers",
    ),
    MutationClass(
        "kernel-drop-unpack",
        "kernel",
        frozenset({"kernel-unbound-name"}),
        "megakernel parameter unpack line lost",
    ),
    MutationClass(
        "kernel-double-assign",
        "kernel",
        frozenset({"kernel-multi-assign"}),
        "CSE temp assigned twice in kernel source",
    ),
    MutationClass(
        "kernel-alias-out",
        "kernel",
        frozenset({"kernel-out-aliasing"}),
        "contraction out= aliased onto a live input",
    ),
    MutationClass(
        "kernel-rogue-call",
        "kernel",
        frozenset({"kernel-rogue-callable"}),
        "whitelisted numpy call swapped for an arbitrary one",
    ),
)


def mutate_program(
    name: str, program: Program, rng: np.random.Generator
) -> Program:
    """Apply program-mutation class ``name``; raises
    :class:`NotApplicable` when the program has no site for it."""
    return _PROGRAM_MUTATORS[name](program, rng)


def mutate_kernel(
    name: str, source: str, rng: np.random.Generator
) -> str:
    """Apply kernel-mutation class ``name`` to kernel source."""
    return _KERNEL_MUTATORS[name](source, rng)


@dataclass
class CorpusResult:
    """Catch matrix of one :func:`run_mutation_corpus` run."""

    seed: int
    #: class name -> number of mutants generated
    applied: dict[str, int] = field(default_factory=dict)
    #: class name -> number of mutants flagged with an expected code
    caught: dict[str, int] = field(default_factory=dict)
    #: (class, subject index, codes found) for every miss
    missed: list[tuple[str, int, tuple[str, ...]]] = field(
        default_factory=list
    )

    @property
    def classes_exercised(self) -> int:
        return sum(1 for n in self.applied.values() if n > 0)

    @property
    def all_caught(self) -> bool:
        return (
            not self.missed
            and self.classes_exercised == len(MUTATION_CLASSES)
        )

    def render(self) -> str:
        lines = [
            f"mutation corpus (seed={self.seed}): "
            f"{self.classes_exercised}/{len(MUTATION_CLASSES)} classes "
            f"exercised, {len(self.missed)} missed"
        ]
        for cls in MUTATION_CLASSES:
            lines.append(
                f"  {cls.name:<24} applied={self.applied.get(cls.name, 0)} "
                f"caught={self.caught.get(cls.name, 0)}"
            )
        return "\n".join(lines)


def run_mutation_corpus(
    programs: list[Program],
    kernel_sources: list[str],
    seed: int = 0,
) -> CorpusResult:
    """Apply every mutation class across the given clean subjects.

    Every subject must verify cleanly beforehand (asserted); every
    applicable (class, subject) pair must then be caught with one of
    the class's expected codes.  A class with *no* applicable subject
    counts as not exercised — :attr:`CorpusResult.all_caught` demands
    full coverage, so callers must pass subjects rich enough to host
    every class (e.g. a ``fusion=False`` program for TRANSPOSE sites).
    """
    result = CorpusResult(seed=seed)
    for i, program in enumerate(programs):
        clean = verify_program(program)
        if not clean.ok:
            raise ValueError(
                f"corpus subject program {i} is not clean:\n"
                + clean.render()
            )
    for i, source in enumerate(kernel_sources):
        clean = lint_kernel_source(source)
        if not clean.ok:
            raise ValueError(
                f"corpus subject kernel {i} is not clean:\n"
                + clean.render()
            )
    for cls in MUTATION_CLASSES:
        result.applied[cls.name] = 0
        result.caught[cls.name] = 0
        subjects = (
            list(enumerate(programs))
            if cls.kind == "program"
            else list(enumerate(kernel_sources))
        )
        for i, subject in subjects:
            rng = np.random.default_rng(
                [seed, hash(cls.name) & 0x7FFFFFFF, i]
            )
            try:
                if cls.kind == "program":
                    mutant = mutate_program(cls.name, subject, rng)
                    report = verify_program(mutant)
                else:
                    mutated = mutate_kernel(cls.name, subject, rng)
                    report = lint_kernel_source(mutated)
            except NotApplicable:
                continue
            result.applied[cls.name] += 1
            if report.codes() & cls.expected_codes:
                result.caught[cls.name] += 1
            else:
                result.missed.append(
                    (cls.name, i, tuple(sorted(report.codes())))
                )
    return result
