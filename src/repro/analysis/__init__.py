"""Static verification for TNVM bytecode, contracts, and fused kernels.

``repro.analysis`` is an abstract interpreter over
:class:`~repro.tensornet.bytecode.Program` plus an AST-level lint for
generated megakernel source.  It runs entirely on metadata — shapes,
parameter dependencies, buffer lifetimes, source ASTs — so it is safe
at every trust boundary: after compilation
(``compile_network(..., verify=True)``), before ``exec``-ing a fused
kernel's source, and on rehydration of a
:class:`~repro.instantiation.SerializedEngine` in pools and spawn
workers.

Three entry points, each returning a
:class:`~repro.analysis.report.VerificationReport`:

* :func:`verify_program` — shape/dtype inference through both bytecode
  sections, def-use and liveness analysis across the
  constant/dynamic boundary, expression-table and slot range checks,
  forward-AD dependency-cover checks, and contract consistency.
* :func:`lint_kernel_source` / :func:`verify_kernel` — generated
  fused-kernel source is single-assignment, every free name binds to
  an arena view, a parameter unpack, or a whitelisted numpy callable,
  and no ``out=`` target aliases a still-live input.
* :func:`verify_engine` — a serialized payload's program, compiled
  expressions, contract, settings, and shipped kernels are mutually
  coherent.

The ``maybe_*`` helpers wire these into the engine stack: they run the
check only when a caller passes ``verify=True`` or the
``REPRO_VERIFY=1`` environment switch is set (``verify=False`` wins
over the environment), bump the ``analysis.*`` telemetry counters, and
raise :class:`VerificationError` on failure.  The seeded mutation
corpus in :mod:`repro.analysis.mutations` proves the checks are not
vacuous.
"""

from __future__ import annotations

import os

from .engine import verify_engine
from .kernel_lint import (
    KERNEL_VIOLATION_CODES,
    lint_kernel_source,
    verify_kernel,
)
from .report import VerificationError, VerificationReport, Violation
from .verifier import PROGRAM_VIOLATION_CODES, verify_program

__all__ = [
    "KERNEL_VIOLATION_CODES",
    "PROGRAM_VIOLATION_CODES",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "lint_kernel_source",
    "maybe_lint_kernel",
    "maybe_verify_engine",
    "maybe_verify_program",
    "verification_enabled",
    "verify_engine",
    "verify_kernel",
    "verify_program",
]

_ENV_SWITCH = "REPRO_VERIFY"


def verification_enabled(verify: bool | None = None) -> bool:
    """Resolve a tri-state ``verify`` flag against ``REPRO_VERIFY``.

    An explicit ``True``/``False`` wins; ``None`` defers to the
    environment (``REPRO_VERIFY`` set to anything but ``""``/``"0"``).
    Read per call so tests and workers can flip it at runtime.
    """
    if verify is not None:
        return verify
    return os.environ.get(_ENV_SWITCH, "0") not in ("", "0")


def _record(report: VerificationReport, counter: str) -> None:
    from .. import telemetry

    registry = telemetry.metrics()
    registry.counter(counter).add()
    if not report.ok:
        registry.counter("analysis.violations").add(
            len(report.violations)
        )


def maybe_verify_program(
    program: object,
    verify: bool | None = None,
    subject: str | None = None,
) -> None:
    """Verify ``program`` at a trust boundary if verification is on.

    Raises :class:`VerificationError` listing every violation; a
    no-op when verification is off.
    """
    if not verification_enabled(verify):
        return
    from .. import telemetry

    with telemetry.tracer().span("analysis.verify", kind="program"):
        report = verify_program(program, subject=subject)
    _record(report, "analysis.programs_verified")
    report.raise_if_failed()


def maybe_lint_kernel(
    kernel: object,
    verify: bool | None = None,
    subject: str = "",
) -> None:
    """Lint a fused kernel's source before it is ``exec``-ed."""
    if not verification_enabled(verify):
        return
    from .. import telemetry

    with telemetry.tracer().span("analysis.verify", kind="kernel"):
        report = verify_kernel(kernel, subject=subject)
    _record(report, "analysis.kernels_linted")
    report.raise_if_failed()


def maybe_verify_engine(
    payload: object,
    verify: bool | None = None,
    subject: str = "serialized engine",
) -> None:
    """Verify a serialized engine payload on rehydration."""
    if not verification_enabled(verify):
        return
    from .. import telemetry

    with telemetry.tracer().span("analysis.verify", kind="engine"):
        report = verify_engine(payload, subject=subject)
    _record(report, "analysis.engines_verified")
    report.raise_if_failed()
