"""Verification of serialized engine payloads (the rehydration boundary).

A :class:`~repro.instantiation.SerializedEngine` crosses process
boundaries by construction: the parent pool pickles it, ships it to
spawn workers, and the worker rebuilds a live engine by ``exec``-ing
the generated sources it carries.  A corrupt or stale payload — a
truncated expression table, a kernel fused from a *different* program,
a contract that disagrees with the bytecode — would otherwise surface
only as silently wrong numerics in that worker.

:func:`verify_engine` statically checks the payload before any of it
runs: the program passes the full bytecode verifier
(:func:`~repro.analysis.verifier.verify_program`), the shipped
compiled-expression table matches the program's expression table
one-to-one, every fused kernel lints cleanly and covers exactly the
program's dynamic section, and the engine settings (precision,
strategy, backend, contract) are coherent.  The payload is duck-typed
so this module depends only on :mod:`repro.tensornet`.
"""

from __future__ import annotations

import math

from .kernel_lint import verify_kernel
from .report import VerificationReport
from .verifier import verify_program

__all__ = ["verify_engine"]

_PRECISIONS = ("f32", "f64")
_STRATEGIES = ("sequential", "batched", "auto")
_BACKENDS = ("closures", "fused", "auto")


def verify_engine(
    payload: object, subject: str = "serialized engine"
) -> VerificationReport:
    """Statically verify a serialized engine payload.

    ``payload`` is duck-typed against
    :class:`~repro.instantiation.SerializedEngine`: ``program``,
    ``compiled``, ``precision``, ``strategy``, ``backend``,
    ``fused_kernels``, ``contract``.
    """
    report = VerificationReport(subject=subject)
    program = getattr(payload, "program", None)
    if program is None or not hasattr(program, "dynamic_section"):
        report.add(
            "engine-payload",
            f"payload carries no Program (got "
            f"{type(program).__name__})",
        )
        return report
    report.extend(verify_program(program))

    _check_settings(payload, report)
    _check_expressions(payload, program, report)
    _check_contract(payload, program, report)
    _check_kernels(payload, program, report)
    return report


def _check_settings(
    payload: object, report: VerificationReport
) -> None:
    precision = getattr(payload, "precision", None)
    if precision not in _PRECISIONS:
        report.add(
            "engine-payload",
            f"precision {precision!r} is not one of {_PRECISIONS}",
        )
    strategy = getattr(payload, "strategy", None)
    if strategy not in _STRATEGIES:
        report.add(
            "engine-payload",
            f"strategy {strategy!r} is not one of {_STRATEGIES}",
        )
    backend = getattr(payload, "backend", None)
    if backend not in _BACKENDS:
        report.add(
            "engine-payload",
            f"backend {backend!r} is not one of {_BACKENDS}",
        )


def _check_expressions(
    payload: object, program: object, report: VerificationReport
) -> None:
    compiled = tuple(getattr(payload, "compiled", ()))
    expressions = list(getattr(program, "expressions", []))
    if len(compiled) != len(expressions):
        report.add(
            "engine-payload",
            f"payload ships {len(compiled)} compiled expressions for "
            f"a program with {len(expressions)} table entries",
        )
        return
    for i, (comp, expr) in enumerate(zip(compiled, expressions)):
        cshape = tuple(getattr(comp, "shape", ()))
        eshape = tuple(getattr(expr, "shape", ()))
        if cshape != eshape:
            report.add(
                "engine-payload",
                f"compiled expression {i} has shape {cshape}, the "
                f"program's expression table entry has {eshape}",
                where=f"e{i}",
            )
        cnp = getattr(comp, "num_params", None)
        enp = getattr(expr, "num_params", None)
        if cnp != enp:
            report.add(
                "engine-payload",
                f"compiled expression {i} takes {cnp} parameters, the "
                f"table entry takes {enp}",
                where=f"e{i}",
            )


def _check_contract(
    payload: object, program: object, report: VerificationReport
) -> None:
    from ..tensornet.contract import OutputContract

    raw = getattr(payload, "contract", None)
    try:
        contract = OutputContract.coerce(raw)
    except TypeError as exc:
        report.add("engine-payload", f"invalid contract: {exc}")
        return
    program_key = tuple(getattr(program, "contract", ("full",)))
    if contract.program_key() != program_key:
        report.add(
            "contract",
            f"engine contract {contract.describe()} does not match the "
            f"program's compiled contract key {program_key!r}",
        )
    if contract.kind == "overlap":
        dim = math.prod(int(r) for r in getattr(program, "radices", ()))
        if len(contract.bra) != dim:
            report.add(
                "contract",
                f"overlap bra has {len(contract.bra)} amplitudes, the "
                f"program's dimension is {dim}",
            )


def _check_kernels(
    payload: object, program: object, report: VerificationReport
) -> None:
    dynamic_len = len(getattr(program, "dynamic_section", []))
    for entry in tuple(getattr(payload, "fused_kernels", ())):
        try:
            key, kernel = entry
            grad_key, batched_key = (bool(key[0]), bool(key[1]))
        except (TypeError, ValueError, IndexError):
            report.add(
                "engine-payload",
                f"malformed fused-kernel entry {entry!r}",
            )
            continue
        kreport = verify_kernel(
            kernel,
            subject=(
                f"fused kernel (grad={grad_key}, batched={batched_key})"
            ),
        )
        report.extend(kreport)
        if bool(getattr(kernel, "batched", None)) != batched_key:
            report.add(
                "engine-payload",
                "fused-kernel cache key says "
                f"batched={batched_key} but the kernel says "
                f"batched={getattr(kernel, 'batched', None)}",
            )
        n_instr = getattr(kernel, "num_instructions", None)
        if n_instr != dynamic_len:
            report.add(
                "engine-payload",
                f"fused kernel covers {n_instr} instructions but the "
                f"program's dynamic section has {dynamic_len} — stale "
                "kernel from a different program",
            )
