"""Shared utilities: unitary helpers and a small state-vector simulator."""

from .statevector import Statevector, state_prep_infidelity
from .unitary import (
    closest_phase,
    global_phase_distance,
    hilbert_schmidt_infidelity,
    is_unitary,
    random_unitary,
)

__all__ = [
    "random_unitary",
    "hilbert_schmidt_infidelity",
    "global_phase_distance",
    "closest_phase",
    "is_unitary",
    "Statevector",
    "state_prep_infidelity",
]
