"""A small state-vector simulator used by the examples.

Applies circuit unitaries (or individual gates) to qudit states.  This
is intentionally simple — OpenQudit targets unitary evaluation, not
large-scale simulation (paper section VII-D) — but it lets the examples
show end-to-end behaviour of synthesized circuits.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["Statevector"]


class Statevector:
    """A pure state over qudits of the given radices."""

    def __init__(self, radices: Sequence[int]):
        self.radices = tuple(int(r) for r in radices)
        self.dim = math.prod(self.radices)
        self.amplitudes = np.zeros(self.dim, dtype=np.complex128)
        self.amplitudes[0] = 1.0

    @staticmethod
    def from_amplitudes(
        amplitudes: np.ndarray, radices: Sequence[int]
    ) -> "Statevector":
        state = Statevector(radices)
        amplitudes = np.asarray(amplitudes, dtype=np.complex128)
        if amplitudes.shape != (state.dim,):
            raise ValueError("amplitude vector has the wrong dimension")
        norm = np.linalg.norm(amplitudes)
        if not math.isclose(norm, 1.0, abs_tol=1e-9):
            raise ValueError("state is not normalized")
        state.amplitudes = amplitudes.copy()
        return state

    def apply_unitary(self, unitary: np.ndarray) -> "Statevector":
        """Apply a full-dimension unitary."""
        out = Statevector(self.radices)
        out.amplitudes = unitary @ self.amplitudes
        return out

    def apply_gate(
        self, matrix: np.ndarray, location: Sequence[int]
    ) -> "Statevector":
        """Apply a gate matrix to specific qudits."""
        from ..baseline.evaluator import embed

        full = embed(
            np.asarray(matrix, dtype=np.complex128),
            tuple(location),
            self.radices,
        )
        return self.apply_unitary(full)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def __repr__(self) -> str:
        return f"<Statevector dim={self.dim}>"
