"""A small state-vector simulator used by the examples.

Applies circuit unitaries (or individual gates) to qudit states.  This
is intentionally simple — OpenQudit targets unitary evaluation, not
large-scale simulation (paper section VII-D) — but it lets the examples
show end-to-end behaviour of synthesized circuits.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = ["Statevector", "state_prep_infidelity"]


class Statevector:
    """A pure state over qudits of the given radices."""

    def __init__(self, radices: Sequence[int]):
        self.radices = tuple(int(r) for r in radices)
        self.dim = math.prod(self.radices)
        self.amplitudes = np.zeros(self.dim, dtype=np.complex128)
        self.amplitudes[0] = 1.0

    @staticmethod
    def from_amplitudes(
        amplitudes: np.ndarray,
        radices: Sequence[int],
        normalize: bool = False,
    ) -> Statevector:
        """Build a state from an explicit amplitude vector.

        The norm check is dtype-aware: a vector normalized in f32
        carries ``O(dim * eps_f32)`` norm error, far above the f64
        round-off the old fixed ``1e-9`` tolerance assumed, so the
        tolerance scales with the *input* array's precision.  A vector
        accepted under a loose (f32-grade) tolerance is renormalized
        in f64, so every constructed ``Statevector`` is unit-norm to
        engine precision; vectors already tight in f64 are stored
        bit-for-bit.  Pass ``normalize=True`` to renormalize instead
        of raising (states from noisy or truncated sources).
        """
        state = Statevector(radices)
        raw = np.asarray(amplitudes)
        amplitudes = np.asarray(raw, dtype=np.complex128)
        if amplitudes.shape != (state.dim,):
            raise ValueError("amplitude vector has the wrong dimension")
        norm = np.linalg.norm(amplitudes)
        if normalize:
            if norm < 1e-12:
                raise ValueError("cannot normalize a zero state")
            amplitudes = amplitudes / norm
        else:
            eps = (
                np.finfo(raw.dtype).eps
                if raw.dtype.kind in "fc"
                else np.finfo(np.float64).eps
            )
            tol = max(1e-9, 16.0 * state.dim * float(eps))
            if not math.isclose(norm, 1.0, abs_tol=tol):
                raise ValueError(
                    f"state is not normalized (norm {norm:.8g}); pass "
                    "normalize=True to renormalize"
                )
            if not math.isclose(norm, 1.0, abs_tol=1e-9):
                # Accepted under the loose f32-grade tolerance: polish
                # to unit f64 norm so downstream consumers (e.g. the
                # instantiation cost functions) see a normalized state.
                amplitudes = amplitudes / norm
        state.amplitudes = np.array(amplitudes, dtype=np.complex128)
        return state

    @staticmethod
    def ghz(num_qudits: int, radix: int = 2) -> Statevector:
        """The generalized GHZ state
        ``(|0...0> + |1...1> + ... + |(r-1)...(r-1)>) / sqrt(r)``."""
        if num_qudits < 1:
            raise ValueError("GHZ state needs at least one qudit")
        state = Statevector([radix] * num_qudits)
        state.amplitudes[0] = 0.0
        stride = (radix**num_qudits - 1) // (radix - 1) if radix > 1 else 1
        for d in range(radix):
            state.amplitudes[d * stride] = 1.0 / math.sqrt(radix)
        return state

    def apply_unitary(self, unitary: np.ndarray) -> Statevector:
        """Apply a full-dimension unitary."""
        out = Statevector(self.radices)
        out.amplitudes = unitary @ self.amplitudes
        return out

    def apply_gate(
        self, matrix: np.ndarray, location: Sequence[int]
    ) -> Statevector:
        """Apply a gate matrix to specific qudits."""
        from ..baseline.evaluator import embed

        full = embed(
            np.asarray(matrix, dtype=np.complex128),
            tuple(location),
            self.radices,
        )
        return self.apply_unitary(full)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    def fidelity(self, other: Statevector) -> float:
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def __repr__(self) -> str:
        return f"<Statevector dim={self.dim}>"


def state_prep_infidelity(target, unitary: np.ndarray) -> float:
    """State-preparation infidelity ``1 - |<target| U |0>|^2``.

    The statevector analogue of
    :func:`~repro.utils.unitary.hilbert_schmidt_infidelity`: how far
    ``unitary`` applied to ``|0...0>`` lands from ``target`` (a
    :class:`Statevector` or amplitude vector), global phase ignored.
    """
    if isinstance(target, Statevector):
        target = target.amplitudes
    target = np.asarray(target, dtype=np.complex128)
    col = np.asarray(unitary)[:, 0]
    return float(1.0 - abs(np.vdot(target, col)) ** 2)
