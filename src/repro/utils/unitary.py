"""Unitary-matrix utilities: random targets, distances, checks."""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_unitary",
    "hilbert_schmidt_infidelity",
    "global_phase_distance",
    "is_unitary",
    "closest_phase",
]


def random_unitary(
    dim: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """A Haar-random unitary via QR of a complex Ginibre matrix."""
    rng = np.random.default_rng(rng)
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phase ambiguity so the distribution is Haar.
    d = np.diagonal(r)
    return q * (d / np.abs(d))


def hilbert_schmidt_infidelity(
    target: np.ndarray, actual: np.ndarray
) -> float:
    """The paper's Eq. (1): ``1 - |Tr(U_target^dag U)| / D``.

    Global-phase invariant; zero iff the unitaries match up to phase.
    """
    dim = target.shape[0]
    trace = np.trace(target.conj().T @ actual)
    return float(1.0 - abs(trace) / dim)


def closest_phase(target: np.ndarray, actual: np.ndarray) -> complex:
    """The global phase aligning ``target`` to ``actual``."""
    trace = np.trace(target.conj().T @ actual)
    mag = abs(trace)
    if mag < 1e-300:
        return 1.0 + 0j
    return trace / mag


def global_phase_distance(
    target: np.ndarray, actual: np.ndarray
) -> float:
    """Frobenius distance after optimal global-phase alignment."""
    phase = closest_phase(target, actual)
    return float(np.linalg.norm(actual - phase * target))


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    dim = matrix.shape[0]
    return bool(
        np.allclose(
            matrix @ matrix.conj().T, np.eye(dim), atol=tol
        )
    )
