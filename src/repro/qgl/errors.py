"""Source-located error types for the Qudit Gate Language."""

from __future__ import annotations

__all__ = ["QGLError", "QGLSyntaxError", "QGLSemanticError"]


class QGLError(Exception):
    """Base class for QGL front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class QGLSyntaxError(QGLError):
    """Raised when the source text does not match the Figure 2 grammar."""


class QGLSemanticError(QGLError):
    """Raised for well-formed but meaningless definitions.

    Examples: a non-square matrix body, a radix/dimension mismatch, a
    matrix whose dimension is not a power of two when radices are
    omitted, or an expression that is not closed element-wise form.
    """
