"""Lexical analysis for QGL.

Tokenizes gate-definition source such as::

    U3(θ, ϕ, λ) {
        [[cos(θ/2), ~e^(i*λ)*sin(θ/2)],
         [e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2)]]
    }

Identifiers may contain any Unicode letters (Greek parameter names are
idiomatic).  ``^`` and the ASCII variants ``ˆ``/``˜`` used in the paper's
listings are accepted for power and negation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .errors import QGLSyntaxError

__all__ = ["Token", "tokenize", "TokenStream"]

# Single-character symbol tokens.  The unicode look-alikes that appear in
# the paper's typeset listings normalize to their ASCII forms.
_SYMBOLS = {
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "<": "LANGLE",
    ">": "RANGLE",
    ",": "COMMA",
    ";": "SEMI",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "^": "CARET",
    "ˆ": "CARET",
    "~": "TILDE",
    "˜": "TILDE",
}


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based)."""

    kind: str  # IDENT, NUMBER, or a symbol kind from _SYMBOLS, or EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize QGL source text, raising QGLSyntaxError on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _SYMBOLS:
            yield Token(_SYMBOLS[ch], ch, line, col)
            i += 1
            col += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = col
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == ".":
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            col += i - start
            yield Token("NUMBER", text, line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            col += i - start
            yield Token("IDENT", text, line, start_col)
            continue
        raise QGLSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token("EOF", "", line, col)


class TokenStream:
    """A peekable cursor over a token list, used by the parser."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise QGLSyntaxError(
                f"expected {kind}, found {tok.kind} ({tok.text!r})",
                tok.line,
                tok.column,
            )
        return self.next()

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.next()
        return None

    @property
    def at_end(self) -> bool:
        return self.peek().kind == "EOF"
