"""The Qudit Gate Language (QGL) front end: lexer, parser, lowering."""

from .ast import (
    Binary,
    Call,
    Definition,
    MatrixLiteral,
    Number,
    Unary,
    Variable,
)
from .errors import QGLError, QGLSemanticError, QGLSyntaxError
from .lexer import Token, tokenize
from .lower import lower_definition, lower_expression
from .parser import parse_definition, parse_expression_text

__all__ = [
    "parse_unitary",
    "parse_definition",
    "parse_expression_text",
    "lower_definition",
    "lower_expression",
    "tokenize",
    "Token",
    "QGLError",
    "QGLSyntaxError",
    "QGLSemanticError",
    "Definition",
    "Variable",
    "Number",
    "Call",
    "Unary",
    "Binary",
    "MatrixLiteral",
]


def parse_unitary(source: str):
    """Parse a QGL gate definition and lower it to the matrix IR.

    This is the one-call front door used by
    :class:`repro.expression.UnitaryExpression`::

        u3 = parse_unitary('''U3(θ, ϕ, λ) {
            [[cos(θ/2), ~e^(i*λ)*sin(θ/2)],
             [e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2)]]
        }''')
    """
    return lower_definition(parse_definition(source))
