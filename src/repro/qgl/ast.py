"""Abstract syntax tree for QGL (the Figure 2 grammar)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node",
    "Variable",
    "Number",
    "Call",
    "Unary",
    "Binary",
    "MatrixLiteral",
    "Definition",
]


@dataclass(frozen=True)
class Node:
    """Base AST node with the source position of its first token."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Variable(Node):
    """A variable reference; ``i``, ``e`` and ``pi`` are reserved."""

    name: str = ""


@dataclass(frozen=True)
class Number(Node):
    """A numeric literal."""

    value: float = 0.0


@dataclass(frozen=True)
class Call(Node):
    """A built-in function application, e.g. ``cos(θ/2)``."""

    func: str = ""
    args: tuple["Node", ...] = ()


@dataclass(frozen=True)
class Unary(Node):
    """Unary negation, written ``~`` in QGL."""

    operand: Node = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Node):
    """A binary operation: ``+``, ``-``, ``*``, ``/`` or ``^``."""

    op: str = ""
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]


@dataclass(frozen=True)
class MatrixLiteral(Node):
    """An explicit matrix: ``[[a, b], [c, d]]``."""

    rows: tuple[tuple[Node, ...], ...] = ()


@dataclass(frozen=True)
class Definition(Node):
    """A top-level gate definition.

    ``name [radices] (params) { body }``
    """

    name: str = ""
    radices: tuple[int, ...] | None = None
    params: tuple[str, ...] = ()
    body: Node = None  # type: ignore[assignment]
