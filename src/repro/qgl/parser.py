"""Recursive-descent parser for the QGL grammar of Figure 2.

The grammar (metavariables italic in the paper)::

    definition ::= ident [radices] ( [varlist] ) { expression } [;]
    radices    ::= < intlist >
    expression ::= term {(+|-) term}
    term       ::= {~} factor {(*|/) factor}
    factor     ::= primary {^ primary}
    primary    ::= variable | constant | function | matrix | (expression)
    matrix     ::= [ row {, row} [,] ]
    row        ::= [ exprlist ]

Standard operator precedence falls out of the level structure: ``^``
binds tightest, then unary ``~``, then ``*``/``/``, then ``+``/``-``.
"""

from __future__ import annotations

from . import ast as A
from .errors import QGLSyntaxError
from .lexer import Token, TokenStream, tokenize

__all__ = ["parse_definition", "parse_expression_text", "BUILTIN_FUNCTIONS"]

#: Built-in functions available in QGL expressions (paper section III-A).
BUILTIN_FUNCTIONS = frozenset(
    {"sin", "cos", "tan", "exp", "ln", "log", "sqrt", "cis"}
)


def parse_definition(source: str) -> A.Definition:
    """Parse a full QGL gate definition."""
    stream = TokenStream(tokenize(source))
    defn = _definition(stream)
    if not stream.at_end:
        tok = stream.peek()
        raise QGLSyntaxError(
            f"trailing input after definition: {tok.text!r}",
            tok.line,
            tok.column,
        )
    return defn


def parse_expression_text(source: str) -> A.Node:
    """Parse a bare QGL expression (no name/params header)."""
    stream = TokenStream(tokenize(source))
    expr = _expression(stream)
    if not stream.at_end:
        tok = stream.peek()
        raise QGLSyntaxError(
            f"trailing input after expression: {tok.text!r}",
            tok.line,
            tok.column,
        )
    return expr


# ----------------------------------------------------------------------
# Grammar productions
# ----------------------------------------------------------------------

def _definition(s: TokenStream) -> A.Definition:
    name_tok = s.expect("IDENT")
    radices: tuple[int, ...] | None = None
    if s.accept("LANGLE"):
        radices = _int_list(s)
        s.expect("RANGLE")
    s.expect("LPAREN")
    params: list[str] = []
    if s.peek().kind != "RPAREN":
        params.append(s.expect("IDENT").text)
        while s.accept("COMMA"):
            params.append(s.expect("IDENT").text)
    s.expect("RPAREN")
    s.expect("LBRACE")
    body = _expression(s)
    s.expect("RBRACE")
    s.accept("SEMI")
    if len(set(params)) != len(params):
        raise QGLSyntaxError(
            f"duplicate parameter names in {name_tok.text}",
            name_tok.line,
            name_tok.column,
        )
    return A.Definition(
        name=name_tok.text,
        radices=radices,
        params=tuple(params),
        body=body,
        line=name_tok.line,
        column=name_tok.column,
    )


def _int_list(s: TokenStream) -> tuple[int, ...]:
    values: list[int] = []
    tok = s.expect("NUMBER")
    values.append(_as_int(tok))
    while s.accept("COMMA"):
        tok = s.expect("NUMBER")
        values.append(_as_int(tok))
    return tuple(values)


def _as_int(tok: Token) -> int:
    value = float(tok.text)
    if value != int(value):
        raise QGLSyntaxError(
            f"expected integer radix, found {tok.text}", tok.line, tok.column
        )
    return int(value)


def _expression(s: TokenStream) -> A.Node:
    node = _term(s)
    while True:
        tok = s.peek()
        if tok.kind == "PLUS":
            s.next()
            node = A.Binary(
                op="+", left=node, right=_term(s),
                line=tok.line, column=tok.column,
            )
        elif tok.kind == "MINUS":
            s.next()
            node = A.Binary(
                op="-", left=node, right=_term(s),
                line=tok.line, column=tok.column,
            )
        else:
            return node


def _term(s: TokenStream) -> A.Node:
    negations = 0
    first_tilde: Token | None = None
    while s.peek().kind == "TILDE":
        tok = s.next()
        if first_tilde is None:
            first_tilde = tok
        negations += 1
    node = _factor(s)
    while True:
        tok = s.peek()
        if tok.kind == "STAR":
            s.next()
            node = A.Binary(
                op="*", left=node, right=_factor(s),
                line=tok.line, column=tok.column,
            )
        elif tok.kind == "SLASH":
            s.next()
            node = A.Binary(
                op="/", left=node, right=_factor(s),
                line=tok.line, column=tok.column,
            )
        else:
            break
    if negations % 2 == 1:
        node = A.Unary(
            operand=node, line=first_tilde.line, column=first_tilde.column
        )
    return node


def _factor(s: TokenStream) -> A.Node:
    node = _primary(s)
    while s.peek().kind == "CARET":
        tok = s.next()
        # Right-associative power, matching mathematical convention.
        rhs = _factor(s)
        node = A.Binary(
            op="^", left=node, right=rhs, line=tok.line, column=tok.column
        )
    return node


def _primary(s: TokenStream) -> A.Node:
    tok = s.peek()
    if tok.kind == "NUMBER":
        s.next()
        return A.Number(
            value=float(tok.text), line=tok.line, column=tok.column
        )
    if tok.kind == "IDENT":
        s.next()
        if s.peek().kind == "LPAREN" and tok.text in BUILTIN_FUNCTIONS:
            s.next()
            args = [_expression(s)]
            while s.accept("COMMA"):
                args.append(_expression(s))
            s.expect("RPAREN")
            return A.Call(
                func=tok.text, args=tuple(args),
                line=tok.line, column=tok.column,
            )
        return A.Variable(name=tok.text, line=tok.line, column=tok.column)
    if tok.kind == "LPAREN":
        s.next()
        node = _expression(s)
        s.expect("RPAREN")
        return node
    if tok.kind == "LBRACKET":
        return _matrix(s)
    if tok.kind == "MINUS":
        # Tolerate a leading ASCII minus as negation inside primaries,
        # e.g. ``[-1, 0]`` — common in hand-written matrices.
        s.next()
        return A.Unary(
            operand=_factor(s), line=tok.line, column=tok.column
        )
    raise QGLSyntaxError(
        f"unexpected token {tok.text!r}", tok.line, tok.column
    )


def _matrix(s: TokenStream) -> A.Node:
    open_tok = s.expect("LBRACKET")
    rows: list[tuple[A.Node, ...]] = []
    while True:
        if s.peek().kind == "RBRACKET" and rows:
            break
        rows.append(_row(s))
        if not s.accept("COMMA"):
            break
    s.expect("RBRACKET")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise QGLSyntaxError(
            "matrix rows have differing lengths",
            open_tok.line,
            open_tok.column,
        )
    return A.MatrixLiteral(
        rows=tuple(rows), line=open_tok.line, column=open_tok.column
    )


def _row(s: TokenStream) -> tuple[A.Node, ...]:
    s.expect("LBRACKET")
    elems = [_expression(s)]
    while s.accept("COMMA"):
        if s.peek().kind == "RBRACKET":
            break
        elems.append(_expression(s))
    s.expect("RBRACKET")
    return tuple(elems)
