"""Lowering from QGL abstract syntax to the symbolic matrix IR.

Implements the semantics of paper section III-A/B: expressions are
evaluated over complex symbolic scalars and matrices, ``i``/``e``/``pi``
are reserved, all trigonometric functions canonicalize to ``sin``/``cos``,
``e^(i*x)`` lowers to ``cos(x) + i*sin(x)``, and a key constraint is
enforced — every expression must be in closed element-wise form (no
matrix exponential).
"""

from __future__ import annotations

import math

from ..symbolic import complexexpr as CE
from ..symbolic import expr as E
from ..symbolic.complexexpr import CI, CONE, ComplexExpr
from ..symbolic.matrix import ExpressionMatrix
from . import ast as A
from .errors import QGLSemanticError

__all__ = ["lower_definition", "lower_expression"]

#: Names reserved for mathematical constants (paper section III-A).
RESERVED = frozenset({"i", "e", "pi", "π"})


class _Euler:
    """Sentinel for the reserved variable ``e`` when used as a power base.

    If ``e`` appears in any other position it decays to the numeric
    constant 2.71828...
    """

    __slots__ = ()

    def decay(self) -> ComplexExpr:
        return ComplexExpr(E.const(math.e), E.ZERO)


_EULER = _Euler()

_Value = ComplexExpr | ExpressionMatrix | _Euler


def lower_definition(defn: A.Definition) -> ExpressionMatrix:
    """Lower a parsed definition to a validated :class:`ExpressionMatrix`."""
    env = {p: ComplexExpr(E.var(p), E.ZERO) for p in defn.params}
    clash = RESERVED.intersection(defn.params)
    if clash:
        raise QGLSemanticError(
            f"parameter names shadow reserved constants: {sorted(clash)}",
            defn.line,
            defn.column,
        )
    value = _lower(defn.body, env)
    if isinstance(value, _Euler):
        value = value.decay()
    if isinstance(value, ComplexExpr):
        raise QGLSemanticError(
            f"definition {defn.name} must produce a matrix, got a scalar",
            defn.line,
            defn.column,
        )
    rows, cols = value.shape
    if rows != cols:
        raise QGLSemanticError(
            f"definition {defn.name} produces a non-square "
            f"{rows}x{cols} matrix",
            defn.line,
            defn.column,
        )
    if defn.radices is not None:
        expected = math.prod(defn.radices)
        if expected != rows:
            raise QGLSemanticError(
                f"radices {list(defn.radices)} imply dimension {expected}, "
                f"but {defn.name} produces a {rows}x{rows} matrix",
                defn.line,
                defn.column,
            )
        radices = defn.radices
    else:
        if rows < 2 or rows & (rows - 1):
            raise QGLSemanticError(
                f"{defn.name} has dimension {rows}, which is not a power "
                "of two; qudit gates must declare radices, e.g. <3>",
                defn.line,
                defn.column,
            )
        radices = (2,) * (rows.bit_length() - 1)

    used = set()
    for _, elem in value.elements():
        used.update(elem.free_variables())
    undeclared = used.difference(defn.params)
    if undeclared:
        raise QGLSemanticError(
            f"{defn.name} uses undeclared parameters: {sorted(undeclared)}",
            defn.line,
            defn.column,
        )
    return ExpressionMatrix(
        value._data,
        params=defn.params,
        radices=radices,
        name=defn.name,
    )


def lower_expression(
    node: A.Node, params: tuple[str, ...] = ()
) -> _Value:
    """Lower a bare expression with the given free parameter names."""
    env = {p: ComplexExpr(E.var(p), E.ZERO) for p in params}
    value = _lower(node, env)
    return value.decay() if isinstance(value, _Euler) else value


# ----------------------------------------------------------------------


def _lower(node: A.Node, env: dict[str, ComplexExpr]) -> _Value:
    if isinstance(node, A.Number):
        return ComplexExpr(E.const(node.value), E.ZERO)
    if isinstance(node, A.Variable):
        return _variable(node, env)
    if isinstance(node, A.Unary):
        operand = _scalar_or_matrix(_lower(node.operand, env))
        if isinstance(operand, ExpressionMatrix):
            return operand.scale(-1.0)
        return -operand
    if isinstance(node, A.Binary):
        return _binary(node, env)
    if isinstance(node, A.Call):
        return _call(node, env)
    if isinstance(node, A.MatrixLiteral):
        return _matrix_literal(node, env)
    raise AssertionError(f"unhandled AST node {type(node).__name__}")


def _variable(node: A.Variable, env: dict[str, ComplexExpr]) -> _Value:
    name = node.name
    if name == "i":
        return CI
    if name == "e":
        return _EULER
    if name in ("pi", "π"):
        return ComplexExpr(E.PI, E.ZERO)
    if name in env:
        return env[name]
    raise QGLSemanticError(
        f"unknown variable {name!r} (declare it as a gate parameter)",
        node.line,
        node.column,
    )


def _binary(node: A.Binary, env: dict[str, ComplexExpr]) -> _Value:
    if node.op == "^":
        return _power(node, env)
    left = _scalar_or_matrix(_lower(node.left, env))
    right = _scalar_or_matrix(_lower(node.right, env))
    lmat = isinstance(left, ExpressionMatrix)
    rmat = isinstance(right, ExpressionMatrix)
    op = node.op
    if op == "+":
        if lmat != rmat:
            raise QGLSemanticError(
                "cannot add a matrix and a scalar", node.line, node.column
            )
        return left + right
    if op == "-":
        if lmat != rmat:
            raise QGLSemanticError(
                "cannot subtract a matrix and a scalar",
                node.line,
                node.column,
            )
        if lmat:
            return left + right.scale(-1.0)
        return left - right
    if op == "*":
        if lmat and rmat:
            return left @ right
        if lmat:
            return left.scale(right)
        if rmat:
            return right.scale(left)
        return left * right
    if op == "/":
        if rmat:
            raise QGLSemanticError(
                "cannot divide by a matrix", node.line, node.column
            )
        if lmat:
            return left.scale(CONE / right)
        return left / right
    raise AssertionError(node.op)


def _power(node: A.Binary, env: dict[str, ComplexExpr]) -> _Value:
    base = _lower(node.left, env)
    exponent = _scalar_or_matrix(_lower(node.right, env))
    if isinstance(exponent, ExpressionMatrix):
        raise QGLSemanticError(
            "matrix exponents are not expressible in closed "
            "element-wise form",
            node.line,
            node.column,
        )
    if isinstance(base, _Euler):
        # e^z lowers element-wise: e^(x+iy) = e^x (cos y + i sin y).
        return exponent.exp()
    if isinstance(base, ExpressionMatrix):
        power = exponent.constant_value()
        if power is None or power.imag or power.real != int(power.real):
            raise QGLSemanticError(
                "matrix powers must be literal integers (the matrix "
                "exponential is excluded from QGL)",
                node.line,
                node.column,
            )
        k = int(power.real)
        if k < 0:
            base = base.dagger()
            k = -k
        result = ExpressionMatrix.identity(base.dim)
        for _ in range(k):
            result = result @ base
        return result
    # scalar ^ scalar
    cexp = exponent.constant_value()
    if cexp is not None and cexp.imag == 0 and cexp.real == int(cexp.real):
        return base ** int(cexp.real)
    if base.is_real and exponent.is_real:
        return ComplexExpr(E.power(base.re, exponent.re), E.ZERO)
    raise QGLSemanticError(
        "unsupported power: base and exponent must be real, or the "
        "exponent a literal integer, or the base the constant e",
        node.line,
        node.column,
    )


def _call(node: A.Call, env: dict[str, ComplexExpr]) -> _Value:
    args = [_scalar_or_matrix(_lower(a, env)) for a in node.args]
    if any(isinstance(a, ExpressionMatrix) for a in args):
        raise QGLSemanticError(
            f"{node.func} expects scalar arguments", node.line, node.column
        )
    if len(args) != 1:
        raise QGLSemanticError(
            f"{node.func} expects exactly one argument",
            node.line,
            node.column,
        )
    (z,) = args
    func = node.func
    if func == "cis":
        _require_real(z, func, node)
        return ComplexExpr.cis(z.re)
    if func == "exp":
        return z.exp()
    if func in ("sin", "cos", "tan"):
        _require_real(z, func, node)
        if func == "sin":
            return ComplexExpr(E.sin(z.re), E.ZERO)
        if func == "cos":
            return ComplexExpr(E.cos(z.re), E.ZERO)
        # tan canonicalizes to sin/cos (paper section III-B).
        return ComplexExpr(E.div(E.sin(z.re), E.cos(z.re)), E.ZERO)
    if func in ("ln", "log"):
        _require_real(z, func, node)
        return ComplexExpr(E.ln(z.re), E.ZERO)
    if func == "sqrt":
        _require_real(z, func, node)
        return ComplexExpr(E.sqrt(z.re), E.ZERO)
    raise QGLSemanticError(
        f"unknown function {func!r}", node.line, node.column
    )


def _matrix_literal(
    node: A.MatrixLiteral, env: dict[str, ComplexExpr]
) -> ExpressionMatrix:
    rows = []
    for row in node.rows:
        lowered = []
        for elem in row:
            value = _scalar_or_matrix(_lower(elem, env))
            if isinstance(value, ExpressionMatrix):
                raise QGLSemanticError(
                    "nested matrices are not allowed as matrix elements",
                    node.line,
                    node.column,
                )
            lowered.append(value)
        rows.append(lowered)
    return ExpressionMatrix(rows, radices=None)


def _scalar_or_matrix(value: _Value) -> ComplexExpr | ExpressionMatrix:
    if isinstance(value, _Euler):
        return value.decay()
    return value


def _require_real(z: ComplexExpr, func: str, node: A.Node) -> None:
    if not z.is_real:
        raise QGLSemanticError(
            f"{func} requires a real argument", node.line, node.column
        )
