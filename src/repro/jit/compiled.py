"""CompiledExpression: the JIT'd form of a QGL unitary expression."""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..egraph.runner import RunnerLimits, simplify_all
from ..symbolic.matrix import ExpressionMatrix
from .codegen import CodegenResult, compile_source, compile_writer

__all__ = ["CompiledExpression"]


class CompiledExpression:
    """A gate expression compiled to fast native-Python writers.

    Construction performs the full expression pipeline from paper
    sections III-C and IV-B:

    1. symbolic differentiation of the unitary (if ``grad=True``),
    2. a joint e-graph simplification pass over every real/imaginary
       component of the unitary and gradient (if ``simplify=True``),
    3. code generation and compilation of the specialized writers.

    The compiled object is immutable and safe to share: the TNVM of
    every circuit referencing the same gate reuses one instance through
    the :class:`~repro.jit.cache.ExpressionCache`.
    """

    __slots__ = (
        "matrix",
        "shape",
        "radices",
        "num_params",
        "name",
        "_result",
        "simplified",
        "_has_grad",
        "_entries",
        "_batched_result",
    )

    def __init__(
        self,
        matrix: ExpressionMatrix,
        grad: bool = True,
        simplify: bool = True,
        limits: RunnerLimits | None = None,
    ):
        self.matrix = matrix
        self.shape = matrix.shape
        self.radices = tuple(matrix.radices)
        self.num_params = matrix.num_params
        self.name = matrix.name

        grads = matrix.gradient() if grad else []
        self._has_grad = bool(grads)

        # Collect every scalar component in deterministic order; the
        # greedy extractor's zero-cost CSE works across this whole batch.
        roots = []
        u_slots = []
        for (i, j), elem in matrix.elements():
            u_slots.append(((i, j), len(roots)))
            roots.append(elem.re)
            roots.append(elem.im)
        g_slots = []
        for k, gmat in enumerate(grads):
            for (i, j), elem in gmat.elements():
                g_slots.append(((k, i, j), len(roots)))
                roots.append(elem.re)
                roots.append(elem.im)

        if simplify:
            with telemetry.tracer().span(
                "egraph.simplify", category="compile",
                expr=matrix.name, roots=len(roots),
            ):
                roots = simplify_all(roots, limits=limits)
            telemetry.metrics().counter("compile.egraph_runs").add()
        self.simplified = simplify

        unitary_entries = [
            (slot, roots[base], roots[base + 1]) for slot, base in u_slots
        ]
        grad_entries = [
            (slot, roots[base], roots[base + 1]) for slot, base in g_slots
        ]
        func_name = _sanitize(matrix.name) or "expr"
        self._result: CodegenResult = compile_writer(
            unitary_entries, grad_entries, matrix.params, func_name
        )
        # Retained so the batched writer variant can be generated on
        # demand (the batched TNVM is the only consumer; compiling it
        # eagerly would double JIT latency for every scalar user).
        self._entries = (unitary_entries, grad_entries, func_name)
        self._batched_result: CodegenResult | None = None

    # ------------------------------------------------------------------
    # Serialization (cross-process engine sharing)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the *products* of the expensive pipeline.

        The generated source (plus its codegen metadata) stands in for
        the unpicklable compiled functions; the simplified entry triples
        are kept so the batched writer variant can still be generated
        on demand after rehydration.  Differentiation and e-graph
        simplification are never re-run on load.
        """
        result = self._result
        batched = self._batched_result
        return {
            "matrix": self.matrix,
            "simplified": self.simplified,
            "has_grad": self._has_grad,
            "entries": self._entries,
            "source": result.source,
            "num_dynamic": result.num_dynamic_entries,
            "num_constant": result.num_constant_entries,
            "total_cost": result.total_cost,
            "batched_source": batched.source if batched is not None else None,
        }

    def __setstate__(self, state):
        matrix = state["matrix"]
        self.matrix = matrix
        self.shape = matrix.shape
        self.radices = tuple(matrix.radices)
        self.num_params = matrix.num_params
        self.name = matrix.name
        self.simplified = state["simplified"]
        self._has_grad = state["has_grad"]
        self._entries = state["entries"]
        func_name = self._entries[2]
        self._result = compile_source(
            state["source"],
            func_name,
            False,
            state["num_dynamic"],
            state["num_constant"],
            state["total_cost"],
        )
        batched_source = state["batched_source"]
        self._batched_result = (
            compile_source(
                batched_source,
                func_name + "_batched",
                True,
                state["num_dynamic"],
                state["num_constant"],
                state["total_cost"],
            )
            if batched_source is not None
            else None
        )

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    @property
    def write(self):
        """``write(params, out, grad=None)`` — the JIT'd hot function."""
        return self._result.write

    @property
    def write_constants(self):
        """One-time writer for parameter-independent entries.

        Constant entries are written as complex scalars, so the same
        function also initializes batched views (the scalar assignment
        broadcasts over the trailing batch axis).
        """
        return self._result.write_constants

    @property
    def write_batched(self):
        """``write(param_rows, out, grad=None)`` vectorized over a batch.

        ``param_rows[k]`` is a length-``S`` vector and ``out``/``grad``
        carry a trailing batch axis of length ``S``.  Compiled lazily on
        first access and cached on the (shared) instance; compilation is
        idempotent, so a benign race at worst compiles twice.
        """
        result = self._batched_result
        if result is None:
            unitary_entries, grad_entries, func_name = self._entries
            result = compile_writer(
                unitary_entries,
                grad_entries,
                self.matrix.params,
                func_name + "_batched",
                batched=True,
            )
            self._batched_result = result
        return result.write

    @property
    def entries(self):
        """The simplified ``(unitary_entries, grad_entries)`` triples.

        These are the exact post-simplification expression trees the
        writers were generated from; the fused program backend re-emits
        them inline (via :func:`~repro.jit.codegen.generate_inline_write`)
        so a megakernel computes bit-identical values to the standalone
        writers.
        """
        return self._entries[0], self._entries[1]

    # ------------------------------------------------------------------
    # Convenience (allocating) entry points
    # ------------------------------------------------------------------
    def unitary(self, params=(), dtype=np.complex128) -> np.ndarray:
        self._check(params)
        out = np.zeros(self.shape, dtype=dtype)
        if self._has_grad:
            # The hot writer was specialized for gradient output; feed
            # it a throwaway stack on this (cold) convenience path.
            grad = np.zeros((self.num_params,) + self.shape, dtype=dtype)
            self._result.write(params, out, grad)
        else:
            self._result.write(params, out)
        self._result.write_constants(out)
        return out

    def unitary_and_grad(
        self, params=(), dtype=np.complex128
    ) -> tuple[np.ndarray, np.ndarray]:
        self._check(params)
        out = np.zeros(self.shape, dtype=dtype)
        grad = np.zeros((self.num_params,) + self.shape, dtype=dtype)
        self._result.write_constants(out, grad)
        self._result.write(params, out, grad)
        return out, grad

    def _check(self, params) -> None:
        if len(params) != self.num_params:
            raise ValueError(
                f"{self.name or 'expression'} expects {self.num_params} "
                f"parameters, got {len(params)}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        """The generated Python source (the JIT 'assembly listing')."""
        return self._result.source

    @property
    def total_cost(self) -> float:
        """Table I cost of the compiled dynamic entries."""
        return self._result.total_cost

    @property
    def num_dynamic_entries(self) -> int:
        """Entries rewritten on every call (parameter-dependent)."""
        return self._result.num_dynamic_entries

    @property
    def num_constant_entries(self) -> int:
        """Entries written once at initialization."""
        return self._result.num_constant_entries

    def __repr__(self) -> str:
        return (
            f"<CompiledExpression {self.name or '?'} {self.shape} "
            f"params={self.num_params} cost={self.total_cost:.1f}>"
        )


def _sanitize(name: str | None) -> str:
    if not name:
        return ""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
