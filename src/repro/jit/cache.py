"""The ExpressionCache (paper section IV-B).

JIT compilation of a single QGL expression costs milliseconds while one
numerical evaluation costs microseconds; the cache amortizes that cost.
Expressions are keyed by their *alpha-renamed canonical form* — two
gates that differ only in parameter names (or object identity) share one
compiled artifact — so each unique QGL expression is compiled exactly
once per process, across all circuits and TNVM instantiations.
"""

from __future__ import annotations

import threading

from ..egraph.runner import RunnerLimits
from ..symbolic import expr as E
from ..symbolic.matrix import ExpressionMatrix
from .compiled import CompiledExpression

__all__ = ["ExpressionCache", "global_cache", "canonical_key"]


def canonical_key(matrix: ExpressionMatrix, grad: bool, simplify: bool) -> tuple:
    """A hashable alpha-invariant key for a gate expression."""
    rename = {p: f"_p{k}" for k, p in enumerate(matrix.params)}
    parts = []
    for _, elem in matrix.elements():
        renamed = elem.rename_variables(rename)
        parts.append(E.to_sexpr(renamed.re))
        parts.append(E.to_sexpr(renamed.im))
    return (
        matrix.shape,
        tuple(matrix.radices),
        len(matrix.params),
        grad,
        simplify,
        tuple(parts),
    )


class ExpressionCache:
    """Shared, thread-safe cache of :class:`CompiledExpression` objects."""

    def __init__(self, limits: RunnerLimits | None = None):
        self._entries: dict[tuple, CompiledExpression] = {}
        self._lock = threading.Lock()
        self._limits = limits
        self.hits = 0
        self.misses = 0

    def get(
        self,
        matrix: ExpressionMatrix,
        grad: bool = True,
        simplify: bool = True,
    ) -> CompiledExpression:
        """Fetch (or compile and insert) the JIT'd form of ``matrix``."""
        key = canonical_key(matrix, grad, simplify)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry
        # Compile outside the lock; duplicate compiles are harmless and
        # the second insert wins the race benignly.
        compiled = CompiledExpression(
            matrix, grad=grad, simplify=simplify, limits=self._limits
        )
        with self._lock:
            self._entries.setdefault(key, compiled)
            self.misses += 1
            return self._entries[key]

    def put(self, compiled: CompiledExpression) -> None:
        """Seed the cache with an already-compiled expression.

        Used when a serialized engine is rehydrated in another process:
        the shipped :class:`CompiledExpression` objects are inserted
        under the same alpha-invariant key :meth:`get` computes, so the
        TNVM setup that follows hits for every expression instead of
        re-paying differentiation + simplification + codegen.  An
        existing entry wins (it may already be in use by live VMs).
        """
        key = canonical_key(
            compiled.matrix, compiled._has_grad, compiled.simplified
        )
        with self._lock:
            self._entries.setdefault(key, compiled)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_GLOBAL = ExpressionCache()


def global_cache() -> ExpressionCache:
    """The process-wide default cache used by circuits and TNVMs."""
    return _GLOBAL
