"""Expression JIT: codegen, compiled expressions, and the shared cache."""

from .cache import ExpressionCache, canonical_key, global_cache
from .codegen import CodegenResult, compile_writer, generate_source
from .compiled import CompiledExpression

__all__ = [
    "CompiledExpression",
    "ExpressionCache",
    "global_cache",
    "canonical_key",
    "compile_writer",
    "generate_source",
    "CodegenResult",
]
