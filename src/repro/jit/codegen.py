"""Expression JIT: compile symbolic matrices to specialized Python code.

This is the reproduction's stand-in for OpenQudit's LLVM backend (see
DESIGN.md).  The architecture is identical — a gate's simplified unitary
and gradient expressions are lowered to straight-line code with explicit
common-subexpression elimination, compiled once, and the resulting
"function pointer" is cached and called millions of times from the TNVM
evaluation loop — only the final code generator targets CPython bytecode
instead of native machine code.

Two functions are emitted per expression:

``write_constants(out, grad)``
    Writes every entry whose value does not depend on any parameter
    (zeros, fixed phases...).  The TNVM calls this once at
    initialization, so the hot path only touches parameter-dependent
    entries.

``write(params, out, grad)``
    The hot function: unpacks parameters, evaluates the CSE'd temporary
    chain with ``math.sin``/``math.cos``/... scalar calls, and stores the
    parameter-dependent complex entries.

A *batched* variant of ``write`` can also be generated: the same
straight-line CSE chain, but evaluated with numpy ufuncs over a
trailing batch axis.  ``params[k]`` is then a length-``S`` vector (one
entry per batch element) and every ``out[i, j]`` store assigns a
length-``S`` slice, so a single call evaluates the expression for all
``S`` multi-start parameter sets at once.
"""

from __future__ import annotations

import math

import numpy as np

from ..egraph.cost import op_cost
from ..symbolic import expr as E
from ..symbolic.expr import Expr

__all__ = [
    "generate_source",
    "generate_inline_write",
    "compile_writer",
    "compile_source",
    "writer_globals",
    "CodegenResult",
    "InlineWrite",
]

_GLOBALS = {
    "sin": math.sin,
    "cos": math.cos,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
    "pi": math.pi,
}

#: Globals for the batched writer: identical names bound to numpy
#: ufuncs so the generated code vectorizes over the batch axis.
_BATCHED_GLOBALS = {
    "sin": np.sin,
    "cos": np.cos,
    "exp": np.exp,
    "ln": np.log,
    "sqrt": np.sqrt,
    "pi": math.pi,
}


def writer_globals(batched: bool) -> dict:
    """The execution namespace generated writer code expects.

    Scalar writers bind the QGL math names to ``math`` functions;
    batched writers bind the same names to numpy ufuncs so the
    identical straight-line code vectorizes over the batch axis.  The
    fused program backend executes its megakernel source in this same
    namespace, which is what keeps inlined expression bodies
    bit-identical to the per-gate writers.
    """
    return dict(_BATCHED_GLOBALS if batched else _GLOBALS)


class CodegenResult:
    """The compiled writer pair plus introspection data."""

    __slots__ = (
        "write",
        "write_constants",
        "source",
        "num_dynamic_entries",
        "num_constant_entries",
        "total_cost",
    )

    def __init__(
        self,
        write,
        write_constants,
        source: str,
        num_dynamic_entries: int,
        num_constant_entries: int,
        total_cost: float,
    ):
        self.write = write
        self.write_constants = write_constants
        self.source = source
        self.num_dynamic_entries = num_dynamic_entries
        self.num_constant_entries = num_constant_entries
        self.total_cost = total_cost


class _Emitter:
    """Shared-subexpression-aware statement emitter.

    ``var_atoms`` (optional) overrides the default ``p{k}`` naming of
    parameter leaves with caller-supplied atoms — the fused program
    backend maps a gate expression's local parameters onto the global
    circuit-parameter unpack names this way.  ``temp_prefix`` and
    ``indent`` let the same emitter produce uniquely-named statements
    inside a larger generated function.
    """

    def __init__(
        self,
        param_index: dict[str, int],
        var_atoms: dict[str, str] | None = None,
        temp_prefix: str = "t",
        indent: str = "    ",
    ):
        self.param_index = param_index
        self.var_atoms = var_atoms
        self.temp_prefix = temp_prefix
        self.indent = indent
        self.lines: list[str] = []
        self.names: dict[int, str] = {}
        self.counter = 0
        self.used_params: set[int] = set()
        self.used_atoms: set[str] = set()

    def atom(self, node: Expr) -> str:
        """Inline representation for leaves; temp name for composites."""
        if node.op == "const":
            return _literal(node.value)
        if node.op == "pi":
            return "pi"
        if node.op == "var":
            if self.var_atoms is not None:
                atom = self.var_atoms[node.name]
                self.used_atoms.add(atom)
                return atom
            k = self.param_index[node.name]
            self.used_params.add(k)
            return f"p{k}"
        return self.names[id(node)]

    def emit(self, root: Expr) -> str:
        """Emit statements computing ``root``; returns its atom string."""
        for node in E.postorder(root):
            if id(node) in self.names or node.op in ("const", "var", "pi"):
                continue
            args = [self.atom(c) for c in node.children]
            op = node.op
            if op == "+":
                rhs = f"{args[0]} + {args[1]}"
            elif op == "-":
                rhs = f"{args[0]} - {args[1]}"
            elif op == "~":
                rhs = f"-{args[0]}"
            elif op == "*":
                rhs = f"{args[0]} * {args[1]}"
            elif op == "/":
                rhs = f"{args[0]} / {args[1]}"
            elif op == "pow":
                rhs = f"{args[0]} ** {args[1]}"
            else:  # sin, cos, exp, ln, sqrt
                rhs = f"{op}({args[0]})"
            name = f"{self.temp_prefix}{self.counter}"
            self.counter += 1
            self.names[id(node)] = name
            self.lines.append(f"{self.indent}{name} = {rhs}")
        return self.atom(root)


def _literal(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return repr(int(value))
    return repr(value)


def generate_source(
    unitary_entries: list[tuple[tuple[int, int], Expr, Expr]],
    grad_entries: list[tuple[tuple[int, int, int], Expr, Expr]],
    param_names: tuple[str, ...],
    func_name: str = "qgl_write",
    batched: bool = False,
) -> tuple[str, int, int, float]:
    """Generate the writer-pair source.

    Parameters
    ----------
    unitary_entries:
        ``((row, col), re_expr, im_expr)`` triples for the unitary.
    grad_entries:
        ``((param, row, col), re_expr, im_expr)`` triples for the
        gradient; empty when differentiation is not requested.
    param_names:
        Parameter order defining ``params[k]``.
    batched:
        Emit the batch-vectorized variant: ``params[k]`` is a vector
        and complex stores use ``re + 1j * im`` (``complex()`` only
        accepts scalars), so the caller passes views with a trailing
        batch axis.

    Returns ``(source, n_dynamic, n_constant, total_cost)``.
    """
    param_index = {name: k for k, name in enumerate(param_names)}

    dynamic: list[tuple[str, Expr, Expr]] = []
    constant: list[tuple[str, Expr, Expr]] = []
    for (i, j), re_e, im_e in unitary_entries:
        target = f"out[{i}, {j}]"
        bucket = constant if _is_const(re_e, im_e) else dynamic
        bucket.append((target, re_e, im_e))
    for (k, i, j), re_e, im_e in grad_entries:
        target = f"grad[{k}, {i}, {j}]"
        bucket = constant if _is_const(re_e, im_e) else dynamic
        bucket.append((target, re_e, im_e))

    # Cost of the emitted code: every distinct node once, shared
    # subexpressions across *all* entries counted a single time (this
    # is exactly what the CSE'd straight-line code executes).
    seen_nodes: set[int] = set()
    total_cost = 0.0

    def accumulate_cost(root: Expr) -> None:
        nonlocal total_cost
        for node in E.postorder(root):
            if id(node) not in seen_nodes:
                seen_nodes.add(id(node))
                total_cost += op_cost(node.op)

    lines = [f"def {func_name}(params, out, grad=None):"]
    emitter = _Emitter(param_index)
    body_start = len(lines)
    stores: list[str] = []
    for target, re_e, im_e in dynamic:
        re_atom = emitter.emit(re_e)
        im_atom = emitter.emit(im_e)
        accumulate_cost(re_e)
        accumulate_cost(im_e)
        if im_e.is_zero:
            stores.append(f"    {target} = {re_atom}")
        elif batched:
            stores.append(f"    {target} = {re_atom} + 1j * {im_atom}")
        else:
            stores.append(f"    {target} = complex({re_atom}, {im_atom})")
    param_unpack = [
        f"    p{k} = params[{k}]" for k in sorted(emitter.used_params)
    ]
    lines[body_start:body_start] = param_unpack
    lines.extend(emitter.lines)
    lines.extend(stores)
    if not (param_unpack or emitter.lines or stores):
        lines.append("    pass")

    out_stores: list[str] = []
    grad_stores: list[str] = []
    for target, re_e, im_e in constant:
        rv = _const_value(re_e)
        iv = _const_value(im_e)
        store = f"    {target} = {complex(rv, iv)!r}"
        (grad_stores if target.startswith("grad") else out_stores).append(
            store
        )
    lines.append("")
    lines.append(f"def {func_name}_constants_out(out):")
    lines.extend(out_stores if out_stores else ["    pass"])
    lines.append("")
    lines.append(f"def {func_name}_constants_grad(grad):")
    lines.extend(grad_stores if grad_stores else ["    pass"])
    source = "\n".join(lines) + "\n"
    return source, len(dynamic), len(constant), total_cost


class InlineWrite:
    """The inlined form of one WRITE instruction's expression body."""

    __slots__ = (
        "hot_lines",
        "const_value_lines",
        "const_grad_lines",
        "used_atoms",
        "num_dynamic",
    )

    def __init__(
        self,
        hot_lines: list[str],
        const_value_lines: list[str],
        const_grad_lines: list[str],
        used_atoms: set[str],
        num_dynamic: int,
    ):
        self.hot_lines = hot_lines
        self.const_value_lines = const_value_lines
        self.const_grad_lines = const_grad_lines
        self.used_atoms = used_atoms
        self.num_dynamic = num_dynamic


def generate_inline_write(
    unitary_entries: list[tuple[tuple[int, int], Expr, Expr]],
    grad_entries: list[tuple[tuple[int, int, int], Expr, Expr]],
    param_names: tuple[str, ...],
    var_atoms: dict[str, str],
    out_name: str,
    grad_name: str | None,
    temp_prefix: str,
    indent: str,
    batched: bool,
) -> InlineWrite:
    """Emit one gate expression's writer body for inlining.

    This is the fused program backend's hook into the expression JIT:
    the same simplified entry triples that produced a gate's standalone
    writer are re-emitted as bare statements with instruction-local
    temp names (``temp_prefix``), caller-chosen store targets
    (``out_name``/``grad_name``), and the gate's parameters mapped onto
    the megakernel's global parameter atoms (``var_atoms``).  The CSE
    walk, store expressions, and constant/dynamic split are identical
    to :func:`generate_source`, so the inlined statements compute
    bit-identical values to calling the standalone writer.

    ``hot_lines`` are indented with ``indent``; the constant store
    lines are returned unindented (they run once, in the megakernel's
    setup prologue).  When ``grad_name`` is None the gradient entries
    must be empty (the instruction was compiled without
    differentiation).
    """
    if grad_name is None and grad_entries:
        raise ValueError("gradient entries present but no gradient target")
    param_index = {name: k for k, name in enumerate(param_names)}

    dynamic: list[tuple[str, Expr, Expr]] = []
    const_value_lines: list[str] = []
    const_grad_lines: list[str] = []
    for (i, j), re_e, im_e in unitary_entries:
        target = f"{out_name}[{i}, {j}]"
        if _is_const(re_e, im_e):
            value = complex(_const_value(re_e), _const_value(im_e))
            const_value_lines.append(f"{target} = {value!r}")
        else:
            dynamic.append((target, re_e, im_e))
    for (k, i, j), re_e, im_e in grad_entries:
        target = f"{grad_name}[{k}, {i}, {j}]"
        if _is_const(re_e, im_e):
            value = complex(_const_value(re_e), _const_value(im_e))
            const_grad_lines.append(f"{target} = {value!r}")
        else:
            dynamic.append((target, re_e, im_e))

    emitter = _Emitter(
        param_index,
        var_atoms=var_atoms,
        temp_prefix=temp_prefix,
        indent=indent,
    )
    stores: list[str] = []
    for target, re_e, im_e in dynamic:
        re_atom = emitter.emit(re_e)
        im_atom = emitter.emit(im_e)
        if im_e.is_zero:
            stores.append(f"{indent}{target} = {re_atom}")
        elif batched:
            stores.append(f"{indent}{target} = {re_atom} + 1j * {im_atom}")
        else:
            stores.append(f"{indent}{target} = complex({re_atom}, {im_atom})")
    return InlineWrite(
        hot_lines=emitter.lines + stores,
        const_value_lines=const_value_lines,
        const_grad_lines=const_grad_lines,
        used_atoms=emitter.used_atoms,
        num_dynamic=len(dynamic),
    )


def compile_writer(
    unitary_entries: list[tuple[tuple[int, int], Expr, Expr]],
    grad_entries: list[tuple[tuple[int, int, int], Expr, Expr]],
    param_names: tuple[str, ...],
    func_name: str = "qgl_write",
    batched: bool = False,
) -> CodegenResult:
    """Generate, compile, and return the writer pair."""
    source, n_dyn, n_const, cost = generate_source(
        unitary_entries, grad_entries, param_names, func_name, batched
    )
    return compile_source(source, func_name, batched, n_dyn, n_const, cost)


def compile_source(
    source: str,
    func_name: str,
    batched: bool,
    num_dynamic_entries: int,
    num_constant_entries: int,
    total_cost: float,
) -> CodegenResult:
    """Compile already-generated writer source into a CodegenResult.

    This is the cheap half of :func:`compile_writer` — a serialized
    :class:`~repro.jit.compiled.CompiledExpression` rehydrates through
    it, skipping symbolic differentiation and e-graph simplification.
    """
    namespace = dict(_BATCHED_GLOBALS if batched else _GLOBALS)
    code = compile(source, f"<qgl-jit:{func_name}>", "exec")
    exec(code, namespace)
    constants_out = namespace[f"{func_name}_constants_out"]
    constants_grad = namespace[f"{func_name}_constants_grad"]

    def write_constants(out, grad=None):
        constants_out(out)
        if grad is not None:
            constants_grad(grad)

    return CodegenResult(
        write=namespace[func_name],
        write_constants=write_constants,
        source=source,
        num_dynamic_entries=num_dynamic_entries,
        num_constant_entries=num_constant_entries,
        total_cost=total_cost,
    )


def _is_const(re_e: Expr, im_e: Expr) -> bool:
    return re_e.constant_value() is not None and (
        im_e.constant_value() is not None
    )


def _const_value(e: Expr) -> float:
    v = e.constant_value()
    assert v is not None
    return v
