"""Adam gradient descent on the Eq. (1) infidelity.

The paper's Discussion VI-A notes the evaluation used a deliberately
naive LM optimizer to isolate the TNVM's contribution, and that better
optimizers are future work.  This module provides a second optimizer —
Adam on the raw infidelity — used by the optimizer-ablation benchmark
to show the instantiation engine is optimizer-agnostic: any method that
consumes the TNVM's unitary + gradient plugs in.

The infidelity and its exact gradient:

    L(theta)   = 1 - |t| / D,      t = Tr(U_target^dag U(theta))
    dL/dtheta_k = -Re(conj(t) * Tr(U_target^dag dU/dtheta_k)) / (|t| D)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tnvm.vm import TNVM, Differentiation

__all__ = ["AdamOptions", "AdamResult", "adam_minimize", "InfidelityFunction"]


@dataclass(frozen=True)
class AdamOptions:
    """Standard Adam hyperparameters plus stopping criteria."""

    learning_rate: float = 0.05
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    max_iterations: int = 2000
    gradient_tolerance: float = 1e-12
    success_infidelity: float | None = None


@dataclass
class AdamResult:
    params: np.ndarray
    infidelity: float
    iterations: int
    converged: bool
    stop_reason: str


class InfidelityFunction:
    """Eq. (1) value-and-gradient oracle over a gradient TNVM."""

    def __init__(self, vm: TNVM, target: np.ndarray):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("InfidelityFunction requires a GRADIENT TNVM")
        self.vm = vm
        self.target = np.asarray(target, dtype=np.complex128)
        self.target_dag = self.target.conj().T
        self.dim = vm.dim

    def value_and_grad(
        self, params: np.ndarray
    ) -> tuple[float, np.ndarray]:
        u, du = self.vm.evaluate_with_grad(params)
        # O(D^2) elementwise overlap, not the O(D^3) trace-of-matmul.
        t = np.vdot(self.target, u)
        mag = abs(t)
        value = 1.0 - mag / self.dim
        if mag < 1e-300:
            # Gradient of |t| is undefined at t == 0; nudge uniformly.
            return value, np.zeros(len(params))
        # dt/dtheta_k = Tr(target^dag dU_k); broadcast over the stack.
        dts = np.einsum("ij,kji->k", self.target_dag, du)
        grad = -np.real(np.conj(t) * dts) / (mag * self.dim)
        return value, grad


def adam_minimize(
    fn: InfidelityFunction,
    x0: np.ndarray,
    options: AdamOptions | None = None,
) -> AdamResult:
    """Minimize the infidelity with Adam from ``x0``."""
    opts = options or AdamOptions()
    x = np.asarray(x0, dtype=np.float64).copy()
    m = np.zeros_like(x)
    v = np.zeros_like(x)
    value, grad = fn.value_and_grad(x)
    best_x, best_value = x.copy(), value
    stop_reason = "max-iterations"
    iteration = 0
    for iteration in range(1, opts.max_iterations + 1):
        if (
            opts.success_infidelity is not None
            and best_value <= opts.success_infidelity
        ):
            stop_reason = "success-threshold"
            break
        if not (np.isfinite(value) and np.all(np.isfinite(grad))):
            # A NaN/Inf value or gradient would corrupt the moment
            # estimates (and NaN silently fails every comparison
            # below); stop at the best finite point seen so far.
            stop_reason = "non-finite"
            break
        if float(np.max(np.abs(grad), initial=0.0)) < opts.gradient_tolerance:
            stop_reason = "gradient-tolerance"
            break
        m = opts.beta1 * m + (1 - opts.beta1) * grad
        v = opts.beta2 * v + (1 - opts.beta2) * grad * grad
        m_hat = m / (1 - opts.beta1 ** iteration)
        v_hat = v / (1 - opts.beta2 ** iteration)
        x = x - opts.learning_rate * m_hat / (np.sqrt(v_hat) + opts.epsilon)
        value, grad = fn.value_and_grad(x)
        if value < best_value:
            best_value = value
            best_x = x.copy()
    converged = stop_reason in ("success-threshold", "gradient-tolerance")
    return AdamResult(
        params=best_x,
        infidelity=(
            best_value if np.isfinite(best_value) else float("inf")
        ),
        iterations=iteration,
        converged=converged,
        stop_reason=stop_reason,
    )
