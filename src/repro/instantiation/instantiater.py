"""The numerical instantiation engine (paper sections II-B and V-C).

``Instantiater`` owns the expensive one-time setup — AOT compilation of
the PQC and TNVM initialization — and then runs one or more LM starts
against a target unitary.  Multi-start runs short-circuit: once a start
reaches the success threshold, remaining starts are skipped (this is
the amortization + early-termination effect behind the paper's 19.6x
multi-start speedup).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuditCircuit
from ..jit.cache import ExpressionCache
from ..tnvm.vm import TNVM, Differentiation
from .cost import HilbertSchmidtResiduals, infidelity_from_cost
from .lm import LMOptions, LMResult, levenberg_marquardt

__all__ = ["InstantiationResult", "Instantiater", "instantiate"]

#: Default success threshold on the Eq. (1) infidelity.
SUCCESS_THRESHOLD = 1e-8


@dataclass
class InstantiationResult:
    """Outcome of (possibly multi-start) instantiation."""

    params: np.ndarray
    infidelity: float
    success: bool
    starts_used: int
    total_iterations: int
    total_evaluations: int
    aot_seconds: float
    optimize_seconds: float
    runs: list[LMResult] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.aot_seconds + self.optimize_seconds


class Instantiater:
    """Reusable instantiation engine for one PQC.

    The constructor performs the AOT compilation and TNVM setup once;
    :meth:`instantiate` can then be called with many targets and starts,
    exactly matching the Listing 3 workflow.
    """

    def __init__(
        self,
        circuit: QuditCircuit,
        precision: str = "f64",
        cache: ExpressionCache | None = None,
        success_threshold: float = SUCCESS_THRESHOLD,
        lm_options: LMOptions | None = None,
    ):
        start = time.perf_counter()
        self.circuit = circuit
        program = circuit.compile()
        self.vm = TNVM(
            program,
            precision=precision,
            diff=Differentiation.GRADIENT,
            cache=cache,
        )
        self.aot_seconds = time.perf_counter() - start
        self.success_threshold = success_threshold
        self.num_params = circuit.num_params
        base = lm_options or LMOptions()
        # Encode the infidelity threshold as a residual-cost threshold.
        self.lm_options = LMOptions(
            max_iterations=base.max_iterations,
            initial_mu=base.initial_mu,
            mu_up=base.mu_up,
            mu_down=base.mu_down,
            max_mu=base.max_mu,
            gradient_tolerance=base.gradient_tolerance,
            step_tolerance=base.step_tolerance,
            success_cost=2.0 * circuit.dim * success_threshold,
        )

    def instantiate(
        self,
        target: np.ndarray,
        starts: int = 1,
        rng: np.random.Generator | int | None = None,
        x0: np.ndarray | None = None,
    ) -> InstantiationResult:
        """Fit the circuit to ``target`` with multi-start LM.

        ``x0`` seeds the first start; remaining starts draw uniform
        random parameters in ``[-2pi, 2pi)``.
        """
        rng = np.random.default_rng(rng)
        residuals = HilbertSchmidtResiduals(self.vm, target)
        fn = residuals.residuals_and_jacobian

        t0 = time.perf_counter()
        best: LMResult | None = None
        runs: list[LMResult] = []
        used = 0
        for s in range(max(1, starts)):
            if s == 0 and x0 is not None:
                guess = np.asarray(x0, dtype=np.float64)
                if guess.shape != (self.num_params,):
                    raise ValueError(
                        f"x0 must have shape ({self.num_params},)"
                    )
            else:
                guess = rng.uniform(
                    -2 * np.pi, 2 * np.pi, self.num_params
                )
            run = levenberg_marquardt(fn, guess, self.lm_options)
            runs.append(run)
            used += 1
            if best is None or run.cost < best.cost:
                best = run
            if infidelity_from_cost(
                best.cost, self.vm.dim
            ) <= self.success_threshold:
                break  # short-circuit: a valid solution was found

        optimize_seconds = time.perf_counter() - t0
        infidelity = infidelity_from_cost(best.cost, self.vm.dim)
        return InstantiationResult(
            params=best.params,
            infidelity=infidelity,
            success=infidelity <= self.success_threshold,
            starts_used=used,
            total_iterations=sum(r.iterations for r in runs),
            total_evaluations=sum(r.num_evaluations for r in runs),
            aot_seconds=self.aot_seconds,
            optimize_seconds=optimize_seconds,
            runs=runs,
        )


def instantiate(
    circuit: QuditCircuit,
    target: np.ndarray,
    starts: int = 1,
    rng: np.random.Generator | int | None = None,
    precision: str = "f64",
    success_threshold: float = SUCCESS_THRESHOLD,
    lm_options: LMOptions | None = None,
) -> InstantiationResult:
    """One-shot convenience wrapper around :class:`Instantiater`."""
    engine = Instantiater(
        circuit,
        precision=precision,
        success_threshold=success_threshold,
        lm_options=lm_options,
    )
    return engine.instantiate(target, starts=starts, rng=rng)
