"""The numerical instantiation engine (paper sections II-B and V-C).

``Instantiater`` owns the expensive one-time setup — AOT compilation of
the PQC and TNVM initialization — and then runs one or more LM starts
against a target unitary.  Multi-start runs short-circuit: once a start
reaches the success threshold, remaining starts are skipped (this is
the amortization + early-termination effect behind the paper's 19.6x
multi-start speedup).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..circuit.circuit import QuditCircuit
from ..jit.cache import ExpressionCache
from ..jit.compiled import CompiledExpression
from ..tensornet.bytecode import Program
from ..tensornet.contract import OutputContract
from ..tnvm.fused import (
    BACKENDS,
    attach_fused_kernels,
    cached_fused_kernels,
    fused_kernel_for,
    resolve_backend,
)
from ..tnvm.vm import TNVM, Differentiation
from ..utils.statevector import Statevector
from .cost import (
    HilbertSchmidtResiduals,
    StateResiduals,
    infidelity_from_cost,
    is_state_target,
    state_infidelity_from_cost,
    state_success_cost,
)
from .lm import LMOptions, LMResult, levenberg_marquardt

__all__ = [
    "InstantiationResult",
    "Instantiater",
    "SerializedEngine",
    "instantiate",
    "STRATEGIES",
    "AUTO_BATCH_MIN_STARTS",
]

#: Default success threshold on the Eq. (1) infidelity.
SUCCESS_THRESHOLD = 1e-8

#: Valid values for the multi-start execution strategy.
STRATEGIES = ("sequential", "batched", "auto")

#: ``strategy="auto"`` switches to the batched engine at this many
#: starts: below it the sequential short-circuit usually wins (start 0
#: often succeeds and the batch would mostly compute abandoned work),
#: above it the vectorized sweep amortization dominates.
AUTO_BATCH_MIN_STARTS = 4


def record_fit(kind: str, dim: int, result: InstantiationResult) -> None:
    """Fold one finished fit into the telemetry registry.

    Called by both engines at the *leaf* fit path only (the sequential
    engine's batched delegation is recorded once, by the batched
    engine), so counters never double-count a fit.
    """
    registry = telemetry.metrics()
    registry.counter("instantiate.fits").add()
    registry.counter(f"instantiate.fits.{kind}").add()
    registry.counter("instantiate.lm_iterations").add(
        result.total_iterations
    )
    registry.counter("instantiate.evaluations").add(
        result.total_evaluations
    )
    registry.histogram("instantiate.starts_used").observe(result.starts_used)
    registry.histogram("instantiate.lm_iterations_per_fit").observe(
        result.total_iterations
    )
    registry.histogram(f"instantiate.eval_wall.dim{dim}").observe(
        result.optimize_seconds
    )
    registry.counter("instantiate.optimize_seconds").add(
        result.optimize_seconds
    )


def draw_guess(
    rng: np.random.Generator,
    num_params: int,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """One start's initial parameters: ``x0`` when given (start 0),
    else uniform in ``[-2pi, 2pi)``.

    Shared by the sequential and batched engines so that a given rng
    seed produces the identical start population in either.
    """
    if x0 is not None:
        guess = np.asarray(x0, dtype=np.float64)
        if guess.shape != (num_params,):
            raise ValueError(f"x0 must have shape ({num_params},)")
        return guess
    return rng.uniform(-2 * np.pi, 2 * np.pi, num_params)


def scan_winner(runs, dim: int, success_threshold: float, to_infidelity=None):
    """The multi-start winner scan: best-so-far by cost, stopping at
    the first start where the best reaches the threshold (the paper's
    early-termination short-circuit).

    ``runs`` may be a lazy iterator — the sequential engine feeds one
    that *executes* each start on demand, so breaking out of the scan
    is what skips the remaining starts.  The batched engine replays
    the same scan over its completed runs, which is what guarantees
    the two engines agree on the winning start and ``starts_used``.

    ``to_infidelity`` converts a least-squares cost to the target
    type's infidelity; the default is the Eq. (1) Hilbert–Schmidt
    conversion for ``dim`` (state-prep scans pass
    :func:`~repro.instantiation.cost.state_infidelity_from_cost`).

    Returns ``(best_run, starts_used)``.
    """
    if to_infidelity is None:
        def to_infidelity(cost):
            return infidelity_from_cost(cost, dim)
    best: LMResult | None = None
    used = 0
    for run in runs:
        used += 1
        if best is None or run.cost < best.cost:
            best = run
        if to_infidelity(best.cost) <= success_threshold:
            break  # short-circuit: a valid solution was found
    return best, used


@dataclass(frozen=True)
class SerializedEngine:
    """A pickle-able snapshot of a compiled instantiation engine.

    Carries the AOT-compiled TNVM bytecode plus the JIT'd expression
    artifacts (as generated source, via ``CompiledExpression``'s
    reducers) and the engine settings — everything another process
    needs to rebuild an equivalent :class:`Instantiater` with
    :meth:`Instantiater.from_serialized` *without* re-paying tensor
    lowering, pathfinding, differentiation, or e-graph simplification.
    This is how :class:`~repro.instantiation.EnginePool` ships engines
    to parallel synthesis workers.
    """

    program: Program
    compiled: tuple[CompiledExpression, ...]
    precision: str
    success_threshold: float
    lm_options: LMOptions
    strategy: str
    #: TNVM execution backend ("closures"/"fused"/"auto").
    backend: str = "auto"
    #: ``((grad, batched), FusedKernel)`` pairs: the generated megakernel
    #: sources, shipped so workers rehydrate with ``compile()`` instead
    #: of re-fusing the program (see :mod:`repro.tnvm.fused`).  For
    #: column engines these are the column-specialized kernels.
    fused_kernels: tuple = ()
    #: the engine's :class:`~repro.tensornet.OutputContract` (``None``
    #: in payloads from older snapshots = full unitary).
    contract: object = None


@dataclass
class InstantiationResult:
    """Outcome of (possibly multi-start) instantiation."""

    params: np.ndarray
    infidelity: float
    success: bool
    starts_used: int
    total_iterations: int
    total_evaluations: int
    aot_seconds: float
    optimize_seconds: float
    runs: list[LMResult] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.aot_seconds + self.optimize_seconds


class Instantiater:
    """Reusable instantiation engine for one PQC.

    The constructor performs the AOT compilation and TNVM setup once;
    :meth:`instantiate` can then be called with many targets and starts,
    exactly matching the Listing 3 workflow.
    """

    def __init__(
        self,
        circuit: QuditCircuit | None = None,
        precision: str = "f64",
        cache: ExpressionCache | None = None,
        success_threshold: float = SUCCESS_THRESHOLD,
        lm_options: LMOptions | None = None,
        strategy: str = "sequential",
        program: Program | None = None,
        backend: str = "auto",
        contract: OutputContract | None = None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if circuit is None and program is None:
            raise ValueError("pass a circuit or an AOT-compiled program")
        start = time.perf_counter()
        self.strategy = strategy
        self.backend = backend
        self.circuit = circuit
        self.precision = precision
        self.cache = cache
        # ``program`` lets a rehydrated engine (or a caller that already
        # compiled) skip the AOT compile; its compiled contract then
        # governs (an explicit ``contract`` must agree with it).
        if program is not None:
            self.contract = OutputContract.for_program(program, contract)
            self.program = program
        else:
            self.contract = OutputContract.coerce(contract)
            self.program = circuit.compile(contract=self.contract)
        self._vm: TNVM | None = None
        self.aot_seconds = time.perf_counter() - start
        if strategy != "batched":
            # A batched-only engine never executes the scalar VM; defer
            # its construction (mirroring the lazy batched engine) so
            # each strategy pays only its own setup.  Sequential/auto
            # engines keep the seed behaviour: VM ready after init.
            _ = self.vm
        self.success_threshold = success_threshold
        self.num_params = self.program.num_params
        self._batched_engine = None
        # Encode the infidelity threshold as a residual-cost threshold,
        # once per target type: unitary fits stop at 2*D*threshold
        # (Eq. 1), state-prep fits at the O(D) residual form's
        # equivalent (see cost.state_success_cost).
        self.lm_options = dataclasses.replace(
            lm_options or LMOptions(),
            success_cost=2.0 * self.program.dim * success_threshold,
        )
        self._state_lm_options = dataclasses.replace(
            self.lm_options,
            success_cost=state_success_cost(success_threshold),
        )

    @property
    def vm(self) -> TNVM:
        """The scalar TNVM, built on first use and counted into
        ``aot_seconds`` (immediately in ``__init__`` for sequential
        engines, on first sequential call for batched ones)."""
        if self._vm is None:
            t0 = time.perf_counter()
            self._vm = TNVM(
                self.program,
                precision=self.precision,
                diff=Differentiation.GRADIENT,
                cache=self.cache,
                backend=self.backend,
                contract=self.contract,
            )
            self.aot_seconds += time.perf_counter() - t0
        return self._vm

    def _batched(self):
        """The lazily-built batched engine sharing this AOT compile."""
        if self._batched_engine is None:
            from .batched import BatchedInstantiater

            engine = BatchedInstantiater(
                self.circuit,
                precision=self.precision,
                cache=self.cache,
                success_threshold=self.success_threshold,
                lm_options=self.lm_options,
                program=self.program,
                backend=self.backend,
                contract=self.contract,
            )  # circuit may be None; the shared program carries the shape
            # The bytecode was compiled by *this* engine; report one
            # combined AOT figure rather than double-counting zero.
            engine.aot_seconds += self.aot_seconds
            self._batched_engine = engine
        return self._batched_engine

    # ------------------------------------------------------------------
    # Cross-process sharing
    # ------------------------------------------------------------------
    def serialize(self) -> SerializedEngine:
        """Snapshot this engine for shipment to another process.

        The snapshot pairs the compiled bytecode with the JIT'd
        expression artifacts the scalar VM holds (building the VM if
        this is a batched-only engine), so
        :meth:`from_serialized` reconstructs a numerically identical
        engine without any recompilation.
        """
        compiled = tuple(self.vm.compiled)
        if self.strategy != "sequential":
            # Ship the batched writer too: the receiving engine will
            # run batched multi-start sweeps, and the variant compiles
            # once here (expressions are shared via the cache) instead
            # of once per receiving process.
            for expr in compiled:
                if expr.num_params > 0:
                    _ = expr.write_batched
        # Pre-fuse exactly the megakernel variants the receiving
        # engine will execute, so workers rehydrate generated source
        # with compile() instead of re-walking the program — and ship
        # only those: a shared Program may carry kernels cached by
        # *other* engines (e.g. a fused sibling of a closures engine),
        # which would bloat this engine's payload for nothing.
        wanted: set[tuple[bool, bool]] = set()
        column = self.contract.column_based
        if (
            resolve_backend(self.backend, self.program.dim, column=column)
            == "fused"
        ):
            fused_kernel_for(
                self.program, list(compiled), grad=True, batched=False
            )
            wanted.add((True, False))
        if (
            self.strategy != "sequential"
            and resolve_backend(
                self.backend, self.program.dim, batched=True, column=column
            )
            == "fused"
        ):
            fused_kernel_for(
                self.program, list(compiled), grad=True, batched=True
            )
            wanted.add((True, True))
        return SerializedEngine(
            program=self.program,
            compiled=compiled,
            precision=self.precision,
            success_threshold=self.success_threshold,
            lm_options=self.lm_options,
            strategy=self.strategy,
            backend=self.backend,
            fused_kernels=tuple(
                item
                for item in cached_fused_kernels(self.program).items()
                if item[0] in wanted
            ),
            contract=self.contract,
        )

    @classmethod
    def from_serialized(
        cls,
        payload: SerializedEngine,
        cache: ExpressionCache | None = None,
        verify: bool | None = None,
    ) -> Instantiater:
        """Rebuild an engine from a :class:`SerializedEngine`.

        The shipped compiled expressions are seeded into ``cache`` (a
        fresh private cache by default) before TNVM setup, so every
        ``cache.get`` during initialization hits — no differentiation,
        e-graph, or codegen work is repeated.  The rebuilt engine
        produces bit-identical costs and gradients to the original.

        Under ``verify=True`` (or ``REPRO_VERIFY=1``) the payload is
        statically verified first — bytecode, compiled-expression
        table, contract, and shipped kernel sources — and a corrupt
        payload raises a pointed
        :class:`~repro.analysis.VerificationError` instead of
        rehydrating into silently wrong numerics.
        """
        from ..analysis import maybe_verify_engine

        maybe_verify_engine(
            payload, verify=verify, subject="serialized engine"
        )
        if cache is None:
            cache = ExpressionCache()
        for compiled in payload.compiled:
            cache.put(compiled)
        # Seed the program's kernel cache with the shipped megakernel
        # sources: fused VMs built below bind them with compile()
        # instead of re-fusing.
        attach_fused_kernels(payload.program, dict(payload.fused_kernels))
        return cls(
            precision=payload.precision,
            cache=cache,
            success_threshold=payload.success_threshold,
            lm_options=payload.lm_options,
            strategy=payload.strategy,
            program=payload.program,
            backend=payload.backend,
            contract=OutputContract.coerce(payload.contract),
        )

    def _check_target_contract(self, target) -> None:
        """Reject target/contract combinations the engine cannot serve."""
        if self.contract.kind == "overlap":
            raise ValueError(
                "an OVERLAP-contract engine cannot instantiate: the "
                "residual form needs column amplitudes, not the reduced "
                "scalar; build the engine with OutputContract.column(0)"
            )
        if self.contract.column_based and not is_state_target(target):
            raise ValueError(
                f"a {self.contract.describe()} engine only serves "
                "state-preparation targets; unitary fits need a "
                "full-unitary engine"
            )

    def instantiate(
        self,
        target: np.ndarray | Statevector,
        starts: int = 1,
        rng: np.random.Generator | int | None = None,
        x0: np.ndarray | None = None,
        strategy: str | None = None,
    ) -> InstantiationResult:
        """Fit the circuit to ``target`` with multi-start LM.

        ``target`` selects the cost: a ``(D, D)`` matrix is a unitary
        fit (Eq. 1); a :class:`~repro.utils.Statevector` or 1-D
        amplitude vector is a state-preparation fit of
        ``U(theta)|0>`` (``O(D)`` residuals).  Both target types run
        through the same compiled engine — no recompilation.

        ``x0`` seeds the first start; remaining starts draw uniform
        random parameters in ``[-2pi, 2pi)``.  ``strategy`` overrides
        the engine default for this call: ``"sequential"`` runs starts
        one at a time through the scalar TNVM, ``"batched"`` advances
        all starts through one vectorized BatchedTNVM sweep, and
        ``"auto"`` picks batched once enough starts are requested to
        amortize the batch.

        The engine's output contract restricts the admissible targets:
        a ``COLUMN(0)`` engine only serves state-preparation fits (a
        unitary target needs all ``D`` columns), and ``OVERLAP``
        engines don't instantiate at all (the residual form needs the
        column amplitudes).
        """
        self._check_target_contract(target)
        strategy = strategy if strategy is not None else self.strategy
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if strategy == "auto":
            strategy = (
                "batched"
                if max(1, starts) >= AUTO_BATCH_MIN_STARTS
                and self.num_params > 0
                else "sequential"
            )
        if strategy == "batched":
            return self._batched().instantiate(
                target, starts=starts, rng=rng, x0=x0
            )

        rng = np.random.default_rng(rng)
        if is_state_target(target):
            residuals = StateResiduals(self.vm, target)
            options = self._state_lm_options
            to_infidelity = state_infidelity_from_cost
        else:
            residuals = HilbertSchmidtResiduals(self.vm, target)
            options = self.lm_options
            to_infidelity = None
        fn = residuals.residuals_and_jacobian

        t0 = time.perf_counter()
        runs: list[LMResult] = []

        def run_starts():
            # Lazy: each start draws and optimizes only when the
            # winner scan asks for it, so breaking out of the scan is
            # the multi-start short-circuit.
            for s in range(max(1, starts)):
                guess = draw_guess(
                    rng, self.num_params, x0 if s == 0 else None
                )
                run = levenberg_marquardt(fn, guess, options)
                runs.append(run)
                yield run

        with telemetry.tracer().span(
            "fit", category="instantiate",
            dim=self.vm.dim, starts=max(1, starts), strategy="sequential",
        ) as span:
            best, used = scan_winner(
                run_starts(), self.vm.dim, self.success_threshold,
                to_infidelity,
            )
            span.set(starts_used=used)
        optimize_seconds = time.perf_counter() - t0
        infidelity = (
            to_infidelity(best.cost)
            if to_infidelity is not None
            else infidelity_from_cost(best.cost, self.vm.dim)
        )
        if not np.isfinite(infidelity):
            # Every start diverged to NaN/Inf: report an infinite (not
            # NaN) infidelity so callers' comparisons stay ordered.
            telemetry.metrics().counter("instantiate.nonfinite_fits").add()
            infidelity = float("inf")
        result = InstantiationResult(
            params=best.params,
            infidelity=infidelity,
            success=infidelity <= self.success_threshold,
            starts_used=used,
            total_iterations=sum(r.iterations for r in runs),
            total_evaluations=sum(r.num_evaluations for r in runs),
            aot_seconds=self.aot_seconds,
            optimize_seconds=optimize_seconds,
            runs=runs,
        )
        record_fit("sequential", self.vm.dim, result)
        return result


def instantiate(
    circuit: QuditCircuit,
    target: np.ndarray | Statevector,
    starts: int = 1,
    rng: np.random.Generator | int | None = None,
    precision: str = "f64",
    success_threshold: float = SUCCESS_THRESHOLD,
    lm_options: LMOptions | None = None,
    strategy: str = "sequential",
    backend: str = "auto",
    contract: OutputContract | None = None,
) -> InstantiationResult:
    """One-shot convenience wrapper around :class:`Instantiater`.

    ``target`` may be a ``(D, D)`` unitary, a
    :class:`~repro.utils.Statevector`, or a 1-D amplitude vector
    (state preparation).  ``contract`` selects the engine's output
    contract; ``OutputContract.column(0)`` compiles the column-
    specialized program for state-preparation targets."""
    engine = Instantiater(
        circuit,
        precision=precision,
        success_threshold=success_threshold,
        lm_options=lm_options,
        strategy=strategy,
        backend=backend,
        contract=contract,
    )
    return engine.instantiate(target, starts=starts, rng=rng)
