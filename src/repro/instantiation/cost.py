"""Cost and residual functions for instantiation targets.

Two target types share one least-squares machinery:

**Unitary targets** (paper Eq. 1): the infidelity
``L(theta) = 1 - |Tr(U_target^dag U(theta))| / D`` is minimized in
least-squares form — the residual vector stacks the real and imaginary
parts of ``U(theta) - phase * U_target`` where ``phase`` is the optimal
global-phase alignment.  Then

    ``sum(r^2) = 2 * D * L(theta)``

so driving the residuals to zero is exactly minimizing Eq. (1).

**Statevector targets** (state preparation): fit ``U(theta)|0>`` to a
target state, the search-based synthesis workload the paper's engine
exists to serve.  The infidelity is ``1 - |<target|U(theta)|0>|^2``
and the residuals stack the real and imaginary parts of
``U(theta) e_0 - phase * target`` — only the *first column* of the
evaluated unitary, so the residual vector is ``O(D)`` where the
unitary fit's is ``O(D^2)``; state prep is the cheapest workload per
candidate the engine has.  With unit-norm states
``sum(r^2) = 2 * (1 - |overlap|)``, converted back to the infidelity
by :func:`state_infidelity_from_cost`.

All Jacobians use the TNVM's forward-mode gradient with the phase
treated as locally constant (the standard Gauss–Newton approximation,
as in BQSKit's CERES residual functions).

**The evaluate protocol.**  Residual classes read the VM's
:class:`~repro.tensornet.OutputContract` and consume
``evaluate``/``evaluate_with_grad`` output at its contract shape —
there is no implicit "evaluate the full unitary, then slice" step.
The one documented protocol, for scalar and batched VMs:

=========  =======================  ================================
contract   ``evaluate``             ``evaluate_with_grad`` gradient
=========  =======================  ================================
full       ``(D, D)`` / ``(B,D,D)`` ``(P, D, D)`` / ``(B, P, D, D)``
column     ``(D,)`` / ``(B, D)``    ``(P, D)`` / ``(B, P, D)``
overlap    scalar / ``(B,)``        ``(P,)`` / ``(B, P)``
=========  =======================  ================================

The state-prep classes accept full-unitary VMs (column extracted by
slicing, the pre-contract behaviour) or ``COLUMN(0)`` VMs (the vector
used directly — the fast path).  ``OVERLAP`` VMs are rejected: the
least-squares form needs the column's amplitudes, not the reduced
scalar.
"""

from __future__ import annotations

import math

import numpy as np

from ..tnvm.vm import TNVM, BatchedTNVM, Differentiation
from ..utils.statevector import Statevector

__all__ = [
    "HilbertSchmidtResiduals",
    "BatchedHilbertSchmidtResiduals",
    "StateResiduals",
    "BatchedStateResiduals",
    "infidelity_from_cost",
    "state_infidelity_from_cost",
    "state_success_cost",
    "as_target_array",
    "is_state_target",
]


class HilbertSchmidtResiduals:
    """Residuals + Jacobian for instantiating a circuit to a target.

    Parameters
    ----------
    vm:
        A gradient-capable TNVM for the circuit.
    target:
        The target unitary, shape ``(D, D)``.
    """

    def __init__(self, vm: TNVM, target: np.ndarray):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT TNVM")
        dim = vm.dim
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (dim, dim):
            raise ValueError(
                f"target shape {target.shape} does not match circuit "
                f"dimension {dim}"
            )
        self.vm = vm
        self.target = target
        self.dim = dim
        self.num_params = vm.num_params
        self.num_residuals = 2 * dim * dim

    # ------------------------------------------------------------------
    # ``params`` passes straight through to the VM (the writers index
    # any sequence), and the overlap trace is the O(D^2) elementwise
    # form ``sum(conj(target) * u)`` — ``Tr(T^dag U)`` without the
    # O(D^3) matmul, mirroring the batched path's einsum.
    def cost(self, params: np.ndarray) -> float:
        """The Eq. (1) infidelity at ``params`` (no gradient work)."""
        u = self.vm.evaluate(params)
        trace = np.vdot(self.target, u)
        return float(1.0 - abs(trace) / self.dim)

    def residuals(self, params: np.ndarray) -> np.ndarray:
        u = self.vm.evaluate(params)
        diff = u - self._aligned_target(u)
        return np.concatenate([diff.real.ravel(), diff.imag.ravel()])

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual vector (2D^2,) and Jacobian (2D^2, P)."""
        u, grad = self.vm.evaluate_with_grad(params)
        diff = u - self._aligned_target(u)
        r = np.concatenate([diff.real.ravel(), diff.imag.ravel()])
        # Explicit column count: reshape(0, -1) is invalid, and a
        # constant circuit's Jacobian is the empty (2D^2, 0) matrix.
        flat = grad.reshape(self.num_params, self.dim * self.dim)
        jac = np.concatenate([flat.real, flat.imag], axis=1).T
        return r, np.ascontiguousarray(jac)

    def _aligned_target(self, u: np.ndarray) -> np.ndarray:
        trace = np.vdot(self.target, u)
        mag = abs(trace)
        phase = trace / mag if mag > 1e-300 else 1.0
        return phase * self.target


class BatchedHilbertSchmidtResiduals:
    """Batched residuals + Jacobian: ``S`` starts per evaluation.

    The same Eq. (1) least-squares form as
    :class:`HilbertSchmidtResiduals`, computed for every row of a
    ``(S, P)`` parameter matrix in one vectorized
    :class:`~repro.tnvm.vm.BatchedTNVM` sweep.  Phase alignment is
    per-start.
    """

    def __init__(self, vm: BatchedTNVM, target: np.ndarray):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT BatchedTNVM")
        dim = vm.dim
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (dim, dim):
            raise ValueError(
                f"target shape {target.shape} does not match circuit "
                f"dimension {dim}"
            )
        self.vm = vm
        self.target = target
        self.dim = dim
        self.batch = vm.batch
        self.num_params = vm.num_params
        self.num_residuals = 2 * dim * dim

    # ------------------------------------------------------------------
    def cost(self, params: np.ndarray) -> np.ndarray:
        """Per-start Eq. (1) infidelity, shape ``(S,)``."""
        u = self.vm.evaluate(params)
        trace = np.einsum("ij,bij->b", self.target.conj(), u)
        return 1.0 - np.abs(trace) / self.dim

    def residuals(self, params: np.ndarray) -> np.ndarray:
        u = self.vm.evaluate(params)
        diff = u - self._aligned_targets(u)
        b = u.shape[0]
        return np.concatenate(
            [diff.real.reshape(b, -1), diff.imag.reshape(b, -1)], axis=1
        )

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual matrix ``(S, 2D^2)`` and Jacobian ``(S, 2D^2, P)``."""
        u, grad = self.vm.evaluate_with_grad(params)
        diff = u - self._aligned_targets(u)
        b = u.shape[0]
        r = np.concatenate(
            [diff.real.reshape(b, -1), diff.imag.reshape(b, -1)], axis=1
        )
        flat = grad.reshape(b, self.num_params, self.dim * self.dim)
        jac = np.concatenate([flat.real, flat.imag], axis=2).transpose(
            0, 2, 1
        )
        return r, np.ascontiguousarray(jac)

    def _aligned_targets(self, u: np.ndarray) -> np.ndarray:
        trace = np.einsum("ij,bij->b", self.target.conj(), u)
        mag = np.abs(trace)
        safe = np.where(mag > 1e-300, mag, 1.0)
        phase = np.where(mag > 1e-300, trace / safe, 1.0)
        return phase[:, None, None] * self.target


# ----------------------------------------------------------------------
# Statevector targets (state preparation)
# ----------------------------------------------------------------------


def _as_state(target, dim: int) -> np.ndarray:
    """The target as a validated ``(dim,)`` complex128 amplitude vector."""
    if isinstance(target, Statevector):
        target = target.amplitudes
    target = np.asarray(target, dtype=np.complex128)
    if target.shape != (dim,):
        raise ValueError(
            f"target state shape {target.shape} does not match circuit "
            f"dimension {dim}"
        )
    norm = np.linalg.norm(target)
    # Loose enough for f32-sourced amplitudes; states further off unit
    # norm should go through Statevector.from_amplitudes(normalize=True).
    if not math.isclose(norm, 1.0, abs_tol=1e-6):
        raise ValueError(
            f"target state norm is {norm:.8g}, expected 1; renormalize "
            "with Statevector.from_amplitudes(..., normalize=True)"
        )
    return target


def _state_column_mode(vm) -> bool:
    """Whether a VM's contract delivers the column directly.

    Raises for contracts the state-prep residuals cannot consume:
    overlaps (the amplitudes are already reduced away) and columns
    other than 0 (state prep fits ``U(theta) e_0``).
    """
    contract = vm.contract
    if contract.kind == "overlap":
        raise ValueError(
            "state-prep residuals need the column amplitudes; an "
            "OVERLAP-contract VM reduces them to a scalar"
        )
    if contract.column_based and contract.column_index != 0:
        raise ValueError(
            f"state preparation fits U(theta) e_0, not column "
            f"{contract.column_index}; use OutputContract.column(0)"
        )
    return contract.column_based


class StateResiduals:
    """Residuals + Jacobian for preparing a target state.

    Fits ``U(theta)|0>`` — the first column of the circuit unitary —
    to ``target`` up to global phase.  ``2D`` residuals instead of the
    unitary fit's ``2D^2``.

    Parameters
    ----------
    vm:
        A gradient-capable TNVM for the circuit: full-unitary contract
        (column sliced out) or ``COLUMN(0)`` contract (the evaluated
        vector used as-is — the engine never materializes the other
        ``D - 1`` columns).
    target:
        The target state: a :class:`~repro.utils.Statevector` or a
        unit-norm amplitude vector of shape ``(D,)``.
    """

    def __init__(self, vm: TNVM, target):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT TNVM")
        self.vm = vm
        self.dim = vm.dim
        self.target = _as_state(target, self.dim)
        self.num_params = vm.num_params
        self.num_residuals = 2 * self.dim
        self._column = _state_column_mode(vm)

    # ------------------------------------------------------------------
    def cost(self, params: np.ndarray) -> float:
        """The state-prep infidelity ``1 - |<target|U|0>|^2``."""
        out = self.vm.evaluate(params)
        col = out if self._column else out[:, 0]
        overlap = np.vdot(self.target, col)
        return float(1.0 - abs(overlap) ** 2)

    def residuals(self, params: np.ndarray) -> np.ndarray:
        out = self.vm.evaluate(params)
        col = out if self._column else out[:, 0]
        diff = col - self._aligned_target(col)
        return np.concatenate([diff.real, diff.imag])

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual vector (2D,) and Jacobian (2D, P)."""
        u, grad = self.vm.evaluate_with_grad(params)
        col = u if self._column else u[:, 0]
        diff = col - self._aligned_target(col)
        r = np.concatenate([diff.real, diff.imag])
        # d(U e_0)/dtheta_k: a column VM's gradient rows *are* the
        # column derivatives; a full VM's get their first column sliced.
        flat = grad if self._column else grad[:, :, 0]
        jac = np.concatenate([flat.real, flat.imag], axis=1).T
        return r, np.ascontiguousarray(jac)

    def _aligned_target(self, col: np.ndarray) -> np.ndarray:
        overlap = np.vdot(self.target, col)
        mag = abs(overlap)
        phase = overlap / mag if mag > 1e-300 else 1.0
        return phase * self.target


class BatchedStateResiduals:
    """Batched state-prep residuals + Jacobian: ``S`` starts at once.

    The same column-only least-squares form as :class:`StateResiduals`,
    computed for every row of a ``(S, P)`` parameter matrix in one
    vectorized :class:`~repro.tnvm.vm.BatchedTNVM` sweep.  Phase
    alignment is per-start.
    """

    def __init__(self, vm: BatchedTNVM, target):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT BatchedTNVM")
        self.vm = vm
        self.dim = vm.dim
        self.target = _as_state(target, self.dim)
        self.batch = vm.batch
        self.num_params = vm.num_params
        self.num_residuals = 2 * self.dim
        self._column = _state_column_mode(vm)

    # ------------------------------------------------------------------
    def cost(self, params: np.ndarray) -> np.ndarray:
        """Per-start state-prep infidelity, shape ``(S,)``."""
        out = self.vm.evaluate(params)
        cols = out if self._column else out[:, :, 0]
        overlap = cols @ self.target.conj()
        return 1.0 - np.abs(overlap) ** 2

    def residuals(self, params: np.ndarray) -> np.ndarray:
        out = self.vm.evaluate(params)
        cols = out if self._column else out[:, :, 0]
        diff = cols - self._aligned_targets(cols)
        return np.concatenate([diff.real, diff.imag], axis=1)

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual matrix ``(S, 2D)`` and Jacobian ``(S, 2D, P)``."""
        u, grad = self.vm.evaluate_with_grad(params)
        cols = u if self._column else u[:, :, 0]
        diff = cols - self._aligned_targets(cols)
        r = np.concatenate([diff.real, diff.imag], axis=1)
        flat = grad if self._column else grad[:, :, :, 0]
        jac = np.concatenate([flat.real, flat.imag], axis=2).transpose(
            0, 2, 1
        )
        return r, np.ascontiguousarray(jac)

    def _aligned_targets(self, cols: np.ndarray) -> np.ndarray:
        overlap = cols @ self.target.conj()
        mag = np.abs(overlap)
        safe = np.where(mag > 1e-300, mag, 1.0)
        phase = np.where(mag > 1e-300, overlap / safe, 1.0)
        return phase[:, None] * self.target


# ----------------------------------------------------------------------
# Cost <-> infidelity conversions and target dispatch
# ----------------------------------------------------------------------


def infidelity_from_cost(
    sum_sq_residuals: float | np.ndarray, dim: int
) -> float | np.ndarray:
    """Convert a least-squares cost ``sum(r^2)`` back to Eq. (1).

    Accepts a scalar or an array of costs (batched multi-start)."""
    return sum_sq_residuals / (2.0 * dim)


def state_infidelity_from_cost(
    sum_sq_residuals: float | np.ndarray,
) -> float | np.ndarray:
    """Convert a state-prep cost ``sum(r^2)`` to ``1 - |overlap|^2``.

    With unit-norm states ``sum(r^2) = 2 * (1 - |overlap|)``, so
    ``|overlap| = 1 - c/2`` and the infidelity is ``c - c^2/4``.
    Accepts a scalar or an array of costs (batched multi-start)."""
    c = sum_sq_residuals
    return c - 0.25 * c * c


def state_success_cost(success_threshold: float) -> float:
    """The ``sum(r^2)`` value at which the state-prep infidelity
    reaches ``success_threshold`` (inverse of
    :func:`state_infidelity_from_cost`)."""
    t = min(max(success_threshold, 0.0), 1.0)
    return 2.0 * (1.0 - math.sqrt(1.0 - t))


def is_state_target(target) -> bool:
    """True when ``target`` selects the state-preparation cost: a
    :class:`~repro.utils.Statevector` or a 1-D amplitude vector (2-D
    arrays are unitary-fit targets)."""
    if isinstance(target, Statevector):
        return True
    return np.asarray(target).ndim == 1


def as_target_array(target) -> np.ndarray:
    """Coerce an instantiation target into its complex128 array form:
    2-D for a unitary fit, 1-D for state preparation."""
    if isinstance(target, Statevector):
        target = target.amplitudes
    return np.asarray(target, dtype=np.complex128)
