"""Hilbert–Schmidt cost and residual functions (paper Eq. 1).

The infidelity ``L(theta) = 1 - |Tr(U_target^dag U(theta))| / D`` is
minimized in least-squares form: the residual vector stacks the real and
imaginary parts of ``U(theta) - phase * U_target`` where ``phase`` is
the optimal global-phase alignment.  Then

    ``sum(r^2) = 2 * D * L(theta)``

so driving the residuals to zero is exactly minimizing Eq. (1).  The
Jacobian uses the TNVM's forward-mode gradient with the phase treated
as locally constant (the standard Gauss–Newton approximation, as in
BQSKit's CERES residual functions).
"""

from __future__ import annotations

import numpy as np

from ..tnvm.vm import TNVM, BatchedTNVM, Differentiation

__all__ = [
    "HilbertSchmidtResiduals",
    "BatchedHilbertSchmidtResiduals",
    "infidelity_from_cost",
]


class HilbertSchmidtResiduals:
    """Residuals + Jacobian for instantiating a circuit to a target.

    Parameters
    ----------
    vm:
        A gradient-capable TNVM for the circuit.
    target:
        The target unitary, shape ``(D, D)``.
    """

    def __init__(self, vm: TNVM, target: np.ndarray):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT TNVM")
        dim = vm.dim
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (dim, dim):
            raise ValueError(
                f"target shape {target.shape} does not match circuit "
                f"dimension {dim}"
            )
        self.vm = vm
        self.target = target
        self.dim = dim
        self.num_params = vm.num_params
        self.num_residuals = 2 * dim * dim

    # ------------------------------------------------------------------
    # ``params`` passes straight through to the VM (the writers index
    # any sequence), and the overlap trace is the O(D^2) elementwise
    # form ``sum(conj(target) * u)`` — ``Tr(T^dag U)`` without the
    # O(D^3) matmul, mirroring the batched path's einsum.
    def cost(self, params: np.ndarray) -> float:
        """The Eq. (1) infidelity at ``params`` (no gradient work)."""
        u = self.vm.evaluate(params)
        trace = np.vdot(self.target, u)
        return float(1.0 - abs(trace) / self.dim)

    def residuals(self, params: np.ndarray) -> np.ndarray:
        u = self.vm.evaluate(params)
        diff = u - self._aligned_target(u)
        return np.concatenate([diff.real.ravel(), diff.imag.ravel()])

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual vector (2D^2,) and Jacobian (2D^2, P)."""
        u, grad = self.vm.evaluate_with_grad(params)
        diff = u - self._aligned_target(u)
        r = np.concatenate([diff.real.ravel(), diff.imag.ravel()])
        # Explicit column count: reshape(0, -1) is invalid, and a
        # constant circuit's Jacobian is the empty (2D^2, 0) matrix.
        flat = grad.reshape(self.num_params, self.dim * self.dim)
        jac = np.concatenate([flat.real, flat.imag], axis=1).T
        return r, np.ascontiguousarray(jac)

    def _aligned_target(self, u: np.ndarray) -> np.ndarray:
        trace = np.vdot(self.target, u)
        mag = abs(trace)
        phase = trace / mag if mag > 1e-300 else 1.0
        return phase * self.target


class BatchedHilbertSchmidtResiduals:
    """Batched residuals + Jacobian: ``S`` starts per evaluation.

    The same Eq. (1) least-squares form as
    :class:`HilbertSchmidtResiduals`, computed for every row of a
    ``(S, P)`` parameter matrix in one vectorized
    :class:`~repro.tnvm.vm.BatchedTNVM` sweep.  Phase alignment is
    per-start.
    """

    def __init__(self, vm: BatchedTNVM, target: np.ndarray):
        if vm.diff is not Differentiation.GRADIENT:
            raise ValueError("residuals require a GRADIENT BatchedTNVM")
        dim = vm.dim
        target = np.asarray(target, dtype=np.complex128)
        if target.shape != (dim, dim):
            raise ValueError(
                f"target shape {target.shape} does not match circuit "
                f"dimension {dim}"
            )
        self.vm = vm
        self.target = target
        self.dim = dim
        self.batch = vm.batch
        self.num_params = vm.num_params
        self.num_residuals = 2 * dim * dim

    # ------------------------------------------------------------------
    def cost(self, params: np.ndarray) -> np.ndarray:
        """Per-start Eq. (1) infidelity, shape ``(S,)``."""
        u = self.vm.evaluate(params)
        trace = np.einsum("ij,bij->b", self.target.conj(), u)
        return 1.0 - np.abs(trace) / self.dim

    def residuals(self, params: np.ndarray) -> np.ndarray:
        u = self.vm.evaluate(params)
        diff = u - self._aligned_targets(u)
        b = u.shape[0]
        return np.concatenate(
            [diff.real.reshape(b, -1), diff.imag.reshape(b, -1)], axis=1
        )

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual matrix ``(S, 2D^2)`` and Jacobian ``(S, 2D^2, P)``."""
        u, grad = self.vm.evaluate_with_grad(params)
        diff = u - self._aligned_targets(u)
        b = u.shape[0]
        r = np.concatenate(
            [diff.real.reshape(b, -1), diff.imag.reshape(b, -1)], axis=1
        )
        flat = grad.reshape(b, self.num_params, self.dim * self.dim)
        jac = np.concatenate([flat.real, flat.imag], axis=2).transpose(
            0, 2, 1
        )
        return r, np.ascontiguousarray(jac)

    def _aligned_targets(self, u: np.ndarray) -> np.ndarray:
        trace = np.einsum("ij,bij->b", self.target.conj(), u)
        mag = np.abs(trace)
        safe = np.where(mag > 1e-300, mag, 1.0)
        phase = np.where(mag > 1e-300, trace / safe, 1.0)
        return phase[:, None, None] * self.target


def infidelity_from_cost(sum_sq_residuals: float, dim: int) -> float:
    """Convert a least-squares cost ``sum(r^2)`` back to Eq. (1).

    Accepts a scalar or an array of costs (batched multi-start)."""
    return sum_sq_residuals / (2.0 * dim)
