"""A naive Levenberg–Marquardt optimizer (paper sections V-C, VI-A).

The paper deliberately pairs the TNVM with a simple LM implementation to
isolate the evaluation pipeline's contribution; this module is that
optimizer.  It is also reused verbatim by the baseline framework so the
instantiation benchmarks measure evaluation speed, not optimizer
differences.

Implementation: classic Marquardt-damped normal equations — solve
``(J^T J + mu * diag(J^T J)) dx = -J^T r``, escalate ``mu`` (x10)
until a step reduces the cost, decay it (/10) on acceptance.  The
step-size convergence test fires only on *accepted* steps: a tiny step
under heavy damping means the damping is winning, not that the
optimizer converged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["LMOptions", "LMResult", "levenberg_marquardt"]


@dataclass(frozen=True)
class LMOptions:
    """Stopping and damping knobs for the LM loop."""

    max_iterations: int = 150
    #: initial damping, relative to the Marquardt diag(J^T J) scaling
    initial_mu: float = 1e-3
    #: rejection escalation factor
    mu_up: float = 10.0
    #: acceptance decay factor
    mu_down: float = 10.0
    max_mu: float = 1e16
    gradient_tolerance: float = 1e-12
    #: relative step tolerance, tested on accepted steps only; near
    #: machine epsilon so quadratic convergence polishes past tight
    #: success thresholds before declaring a stationary point
    step_tolerance: float = 3e-16
    #: stop immediately once sum(r^2) falls below this (short-circuit)
    success_cost: float | None = None


@dataclass
class LMResult:
    """Outcome of one LM run."""

    params: np.ndarray
    cost: float  # final sum of squared residuals
    iterations: int
    num_evaluations: int
    converged: bool
    stop_reason: str


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x0: np.ndarray,
    options: LMOptions | None = None,
) -> LMResult:
    """Minimize ``sum(residual_fn(x)[0]**2)`` from ``x0``.

    ``residual_fn`` returns ``(r, J)`` with ``J[i, k] = dr_i / dx_k``.
    """
    opts = options or LMOptions()
    x = np.asarray(x0, dtype=np.float64).copy()
    r, jac = residual_fn(x)
    cost = float(r @ r)
    n_eval = 1

    if x.size == 0:
        return LMResult(
            params=x, cost=cost, iterations=0, num_evaluations=1,
            converged=opts.success_cost is not None
            and cost <= opts.success_cost,
            stop_reason="no-parameters",
        )

    jtj = jac.T @ jac
    jtr = jac.T @ r
    mu = opts.initial_mu
    nu = opts.mu_up

    stop_reason = "max-iterations"
    iteration = 0
    for iteration in range(1, opts.max_iterations + 1):
        if opts.success_cost is not None and cost <= opts.success_cost:
            stop_reason = "success-threshold"
            break
        if float(np.max(np.abs(jtr), initial=0.0)) < opts.gradient_tolerance:
            stop_reason = "gradient-tolerance"
            break
        # Marquardt scaling: damp proportionally to diag(J^T J) so the
        # trust region respects per-parameter curvature.
        diag = np.clip(jtj.diagonal(), 1e-8, None)

        # Inner damping escalation: climb mu until a step is accepted.
        accepted = False
        while mu <= opts.max_mu:
            try:
                step = np.linalg.solve(jtj + mu * np.diag(diag), -jtr)
            except np.linalg.LinAlgError:
                mu *= nu
                continue
            candidate = x + step
            r_new, jac_new = residual_fn(candidate)
            n_eval += 1
            cost_new = float(r_new @ r_new)
            if cost_new < cost:
                x, r, jac, cost = candidate, r_new, jac_new, cost_new
                jtj = jac.T @ jac
                jtr = jac.T @ r
                mu = max(mu / opts.mu_down, 1e-15)
                accepted = True
                break
            mu *= nu
        if not accepted:
            stop_reason = "damping-limit"
            break
        # Convergence by step size only counts for *accepted* steps; a
        # tiny step under heavy damping means the damping is winning,
        # not that the optimizer converged.
        if float(np.linalg.norm(step)) < opts.step_tolerance * (
            float(np.linalg.norm(x)) + opts.step_tolerance
        ):
            stop_reason = "step-tolerance"
            break
    else:
        iteration = opts.max_iterations

    if opts.success_cost is not None and cost <= opts.success_cost:
        stop_reason = "success-threshold"

    return LMResult(
        params=x,
        cost=cost,
        iterations=iteration,
        num_evaluations=n_eval,
        converged=stop_reason in ("success-threshold", "gradient-tolerance"),
        stop_reason=stop_reason,
    )
