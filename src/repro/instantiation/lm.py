"""A naive Levenberg–Marquardt optimizer (paper sections V-C, VI-A).

The paper deliberately pairs the TNVM with a simple LM implementation to
isolate the evaluation pipeline's contribution; this module is that
optimizer.  It is also reused verbatim by the baseline framework so the
instantiation benchmarks measure evaluation speed, not optimizer
differences.

Implementation: classic Marquardt-damped normal equations — solve
``(J^T J + mu * diag(J^T J)) dx = -J^T r``, escalate ``mu`` (x10)
until a step reduces the cost, decay it (/10) on acceptance.  The
step-size convergence test fires only on *accepted* steps: a tiny step
under heavy damping means the damping is winning, not that the
optimizer converged.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LMOptions",
    "LMResult",
    "levenberg_marquardt",
    "batched_levenberg_marquardt",
]


@dataclass(frozen=True)
class LMOptions:
    """Stopping and damping knobs for the LM loop."""

    max_iterations: int = 150
    #: initial damping, relative to the Marquardt diag(J^T J) scaling
    initial_mu: float = 1e-3
    #: rejection escalation factor
    mu_up: float = 10.0
    #: acceptance decay factor
    mu_down: float = 10.0
    max_mu: float = 1e16
    gradient_tolerance: float = 1e-12
    #: relative step tolerance, tested on accepted steps only; near
    #: machine epsilon so quadratic convergence polishes past tight
    #: success thresholds before declaring a stationary point
    step_tolerance: float = 3e-16
    #: stop immediately once sum(r^2) falls below this (short-circuit)
    success_cost: float | None = None


@dataclass
class LMResult:
    """Outcome of one LM run."""

    params: np.ndarray
    cost: float  # final sum of squared residuals
    iterations: int
    num_evaluations: int
    converged: bool
    stop_reason: str


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x0: np.ndarray,
    options: LMOptions | None = None,
) -> LMResult:
    """Minimize ``sum(residual_fn(x)[0]**2)`` from ``x0``.

    ``residual_fn`` returns ``(r, J)`` with ``J[i, k] = dr_i / dx_k``.
    """
    opts = options or LMOptions()
    x = np.asarray(x0, dtype=np.float64).copy()
    r, jac = residual_fn(x)
    cost = float(r @ r)
    n_eval = 1

    if x.size == 0:
        return LMResult(
            params=x,
            cost=cost if np.isfinite(cost) else float("inf"),
            iterations=0, num_evaluations=1,
            converged=opts.success_cost is not None
            and cost <= opts.success_cost,
            stop_reason="no-parameters",
        )

    if not np.isfinite(cost):
        # A start whose very first evaluation is NaN/Inf (pathological
        # target or start point) has no usable normal equations; fail
        # it with an infinite cost so the multi-start scan can never
        # pick it and the infidelity stays well-defined.
        return LMResult(
            params=x, cost=float("inf"), iterations=0, num_evaluations=1,
            converged=False, stop_reason="non-finite",
        )

    jtj = jac.T @ jac
    jtr = jac.T @ r
    mu = opts.initial_mu
    nu = opts.mu_up

    stop_reason = "max-iterations"
    iteration = 0
    for iteration in range(1, opts.max_iterations + 1):
        if opts.success_cost is not None and cost <= opts.success_cost:
            stop_reason = "success-threshold"
            break
        if float(np.max(np.abs(jtr), initial=0.0)) < opts.gradient_tolerance:
            stop_reason = "gradient-tolerance"
            break
        # Marquardt scaling: damp proportionally to diag(J^T J) so the
        # trust region respects per-parameter curvature.
        diag = np.clip(jtj.diagonal(), 1e-8, None)

        # Inner damping escalation: climb mu until a step is accepted.
        accepted = False
        while mu <= opts.max_mu:
            try:
                step = np.linalg.solve(jtj + mu * np.diag(diag), -jtr)
            except np.linalg.LinAlgError:
                mu *= nu
                continue
            candidate = x + step
            r_new, jac_new = residual_fn(candidate)
            n_eval += 1
            cost_new = float(r_new @ r_new)
            if cost_new < cost:
                x, r, jac, cost = candidate, r_new, jac_new, cost_new
                jtj = jac.T @ jac
                jtr = jac.T @ r
                mu = max(mu / opts.mu_down, 1e-15)
                accepted = True
                break
            mu *= nu
        if not accepted:
            stop_reason = "damping-limit"
            break
        if not (np.all(np.isfinite(jtr)) and np.all(np.isfinite(jtj))):
            # The accepted point lowered the cost but its Jacobian
            # carries NaN/Inf — no further step can be trusted; stop
            # at the last finite-cost point instead of spinning the
            # damping loop on garbage normal equations.
            stop_reason = "non-finite"
            break
        # Convergence by step size only counts for *accepted* steps; a
        # tiny step under heavy damping means the damping is winning,
        # not that the optimizer converged.
        if float(np.linalg.norm(step)) < opts.step_tolerance * (
            float(np.linalg.norm(x)) + opts.step_tolerance
        ):
            stop_reason = "step-tolerance"
            break
    else:
        iteration = opts.max_iterations

    if opts.success_cost is not None and cost <= opts.success_cost:
        stop_reason = "success-threshold"

    return LMResult(
        params=x,
        cost=cost,
        iterations=iteration,
        num_evaluations=n_eval,
        converged=stop_reason in ("success-threshold", "gradient-tolerance"),
        stop_reason=stop_reason,
    )


def batched_levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x0: np.ndarray,
    options: LMOptions | None = None,
    should_abandon: Callable[[np.ndarray, np.ndarray], bool] | None = None,
) -> list[LMResult]:
    """Run ``S`` independent LM minimizations as one vectorized loop.

    ``residual_fn`` maps an ``(S, P)`` parameter matrix to ``(R, J)``
    with shapes ``(S, n_res)`` and ``(S, n_res, P)`` — typically
    :meth:`BatchedHilbertSchmidtResiduals.residuals_and_jacobian` over
    a :class:`~repro.tnvm.vm.BatchedTNVM`.

    Each start runs the exact :func:`levenberg_marquardt` decision
    sequence, but the ``S`` state machines advance in *lockstep
    rounds*: every round performs one batched normal-equation solve
    and one batched residual evaluation covering every live start's
    next candidate — whether that start is proposing a fresh iteration
    step or retrying the same iteration under escalated damping.  One
    round therefore costs one vectorized sweep regardless of how many
    starts are mid-escalation, and starts retire individually
    (success / gradient / step tolerance / damping limit / iteration
    budget) without stalling the rest.

    ``should_abandon(live, cost)`` is consulted once per round after
    per-start retirement; returning ``True`` stops all still-live
    starts with ``stop_reason='abandoned'``.  The caller uses this to
    reproduce the sequential engine's multi-start short-circuit (once
    every start a sequential run *would* have executed is finished,
    the rest are moot).

    Returns one :class:`LMResult` per start, in start order.
    """
    opts = options or LMOptions()
    X = np.array(x0, dtype=np.float64, copy=True)
    if X.ndim != 2:
        raise ValueError(f"x0 must be (starts, params), got {X.shape}")
    S, P = X.shape

    R, J = residual_fn(X)
    cost = np.einsum("sr,sr->s", R, R)
    n_eval = np.ones(S, dtype=int)

    if P == 0:
        success = (
            cost <= opts.success_cost
            if opts.success_cost is not None
            else np.zeros(S, dtype=bool)
        )
        return [
            LMResult(
                params=X[s],
                cost=float(cost[s]),
                iterations=0,
                num_evaluations=1,
                converged=bool(success[s]),
                stop_reason="no-parameters",
            )
            for s in range(S)
        ]

    JtJ = J.transpose(0, 2, 1) @ J  # (S, P, P)
    Jtr = np.einsum("srp,sr->sp", J, R)  # (S, P)
    mu = np.full(S, opts.initial_mu)
    nu = opts.mu_up
    live = np.ones(S, dtype=bool)
    #: a "fresh" start is at the top of a new LM iteration; a stale one
    #: is retrying the same iteration with escalated damping
    fresh = np.ones(S, dtype=bool)
    iters = np.zeros(S, dtype=int)
    diag = np.empty((S, P))
    stop = np.array(["max-iterations"] * S, dtype=object)
    ar = np.arange(P)

    while live.any():
        # --- iteration-top bookkeeping for fresh starts -------------
        # (the scalar loop's success / gradient / budget tests)
        top = live & fresh
        if top.any():
            # Budget first: the scalar loop simply never enters
            # iteration max+1, so no top-of-loop test fires there.
            spent = top & (iters >= opts.max_iterations)
            # stop array already says "max-iterations"
            live &= ~spent
            top &= ~spent
            iters[top] += 1
            if opts.success_cost is not None:
                done = top & (cost <= opts.success_cost)
                stop[done] = "success-threshold"
                live &= ~done
                top &= ~done
            flat = top & (
                np.max(np.abs(Jtr), axis=1, initial=0.0)
                < opts.gradient_tolerance
            )
            stop[flat] = "gradient-tolerance"
            live &= ~flat
            top &= ~flat
            # Non-finite guard: a start whose cost or normal equations
            # went NaN/Inf cannot produce a trustworthy step (and its
            # NaN would silently fail every comparison below); retire
            # it here, at its last finite-cost point if it has one.
            bad = top & (
                ~np.isfinite(cost) | ~np.isfinite(Jtr).all(axis=1)
            )
            if bad.any():
                stop[bad] = "non-finite"
                cost[bad] = np.where(
                    np.isfinite(cost[bad]), cost[bad], np.inf
                )
                live &= ~bad
                top &= ~bad
            # Marquardt scaling, as in the scalar loop: damp
            # proportionally to diag(J^T J) so the trust region
            # respects per-parameter curvature.
            diag[top] = np.clip(JtJ[top][:, ar, ar], 1e-8, None)
            fresh &= ~top

        if should_abandon is not None and should_abandon(live, cost):
            stop[live] = "abandoned"
            live[:] = False
            break
        if not live.any():
            break

        # --- one batched solve round for every live start -----------
        idx = np.where(live)[0]
        A = JtJ[idx].copy()
        A[:, ar, ar] += mu[idx, None] * diag[idx]
        rhs = -Jtr[idx]
        ok = np.ones(len(idx), dtype=bool)
        steps = np.zeros((len(idx), P))
        try:
            # Explicit trailing vector axis: 2-D ``b`` would be read
            # as one matrix, not a stack of vectors.
            steps = np.linalg.solve(A, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            for t in range(len(idx)):
                try:
                    steps[t] = np.linalg.solve(A[t], rhs[t])
                except np.linalg.LinAlgError:
                    ok[t] = False
        solved = idx[ok]
        mu[idx[~ok]] *= nu

        # --- one batched evaluation round ---------------------------
        if solved.size:
            candidates = X.copy()
            candidates[solved] += steps[ok]
            R_new, J_new = residual_fn(candidates)
            cost_new = np.einsum("sr,sr->s", R_new, R_new)
            n_eval[solved] += 1

            improved = np.zeros(S, dtype=bool)
            improved[solved] = cost_new[solved] < cost[solved]
            if improved.any():
                w = np.where(improved)[0]
                X[w] = candidates[w]
                R[w] = R_new[w]
                J[w] = J_new[w]
                cost[w] = cost_new[w]
                JtJ[w] = J_new[w].transpose(0, 2, 1) @ J_new[w]
                Jtr[w] = np.einsum("srp,sr->sp", J_new[w], R_new[w])
                mu[w] = np.maximum(mu[w] / opts.mu_down, 1e-15)
                fresh[w] = True
                # Step-size convergence, accepted steps only (as in
                # the scalar loop: a tiny rejected step just means the
                # damping is winning).
                sw = steps[ok][np.isin(solved, w)]
                norm_step = np.linalg.norm(sw, axis=1)
                norm_x = np.linalg.norm(X[w], axis=1)
                tiny = norm_step < opts.step_tolerance * (
                    norm_x + opts.step_tolerance
                )
                small = w[tiny]
                stop[small] = "step-tolerance"
                live[small] = False
            rejected = np.zeros(S, dtype=bool)
            rejected[solved] = ~improved[solved]
            mu[rejected] *= nu

        # A start whose damping just overflowed stops exactly where
        # the scalar inner loop would have given up.
        over = live & ~fresh & (mu > opts.max_mu)
        stop[over] = "damping-limit"
        live &= ~over

    if opts.success_cost is not None:
        final = cost <= opts.success_cost
        stop[final] = "success-threshold"

    return [
        LMResult(
            params=X[s],
            cost=float(cost[s]),
            iterations=int(iters[s]),
            num_evaluations=int(n_eval[s]),
            converged=stop[s] in ("success-threshold", "gradient-tolerance"),
            stop_reason=str(stop[s]),
        )
        for s in range(S)
    ]
