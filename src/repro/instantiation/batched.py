"""Batched multi-start instantiation (paper sections II-B and V-C).

The sequential :class:`~repro.instantiation.instantiater.Instantiater`
runs its ``S`` starts one after another through a scalar TNVM; every
start re-pays the Python bytecode-dispatch overhead of the evaluation
sweep.  :class:`BatchedInstantiater` instead advances all starts
through one :class:`~repro.tnvm.vm.BatchedTNVM` — each LM iteration
performs a single vectorized forward/gradient contraction and a single
batched normal-equation solve for every live start, amortizing the
sweep overhead across the whole multi-start population.

Semantics match the sequential engine: starts draw their initial
guesses in the same RNG order, each start follows the scalar LM
decision sequence, and the multi-start short-circuit is reproduced
exactly — once every start a sequential run *would* have executed has
finished (and the best of them succeeded), the remaining starts are
abandoned, so ``starts_used`` and the winning start agree with the
sequential engine.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import telemetry
from ..circuit.circuit import QuditCircuit
from ..jit.cache import ExpressionCache
from ..tensornet.contract import OutputContract
from ..tnvm.vm import BatchedTNVM, Differentiation
from .cost import (
    BatchedHilbertSchmidtResiduals,
    BatchedStateResiduals,
    infidelity_from_cost,
    is_state_target,
    state_infidelity_from_cost,
    state_success_cost,
)
from .instantiater import (
    SUCCESS_THRESHOLD,
    InstantiationResult,
    draw_guess,
    record_fit,
    scan_winner,
)
from .lm import LMOptions, batched_levenberg_marquardt

__all__ = ["BatchedInstantiater"]


class BatchedInstantiater:
    """Reusable batched multi-start instantiation engine for one PQC.

    The constructor performs the AOT compilation once; batched TNVMs
    are built lazily per distinct start count and cached, so repeated
    ``instantiate(..., starts=S)`` calls with the same ``S`` reuse one
    arena (the Listing 3 amortization, extended with a batch axis).
    """

    def __init__(
        self,
        circuit: QuditCircuit | None = None,
        precision: str = "f64",
        cache: ExpressionCache | None = None,
        success_threshold: float = SUCCESS_THRESHOLD,
        lm_options: LMOptions | None = None,
        program=None,
        backend: str = "auto",
        contract: OutputContract | None = None,
    ):
        if circuit is None and program is None:
            raise ValueError("pass a circuit or an AOT-compiled program")
        start = time.perf_counter()
        self.circuit = circuit
        self.backend = backend
        # ``program`` lets an owning Instantiater share its compiled
        # bytecode instead of paying the AOT compile twice (and is the
        # only shape source for engines rehydrated in worker processes);
        # its compiled contract then governs.
        if program is not None:
            self.contract = OutputContract.for_program(program, contract)
            self.program = program
        else:
            self.contract = OutputContract.coerce(contract)
            self.program = circuit.compile(contract=self.contract)
        self.precision = precision
        self.cache = cache
        self.aot_seconds = time.perf_counter() - start
        self.success_threshold = success_threshold
        self.num_params = self.program.num_params
        # Encode the infidelity threshold as a residual-cost threshold
        # per target type (see Instantiater.__init__).
        self.lm_options = dataclasses.replace(
            lm_options or LMOptions(),
            success_cost=2.0 * self.program.dim * success_threshold,
        )
        self._state_lm_options = dataclasses.replace(
            self.lm_options,
            success_cost=state_success_cost(success_threshold),
        )
        self._vms: dict[int, BatchedTNVM] = {}

    def _vm_for(self, batch: int) -> BatchedTNVM:
        vm = self._vms.get(batch)
        if vm is None:
            t0 = time.perf_counter()
            vm = BatchedTNVM(
                self.program,
                batch=batch,
                precision=self.precision,
                diff=Differentiation.GRADIENT,
                cache=self.cache,
                backend=self.backend,
                contract=self.contract,
            )
            self.aot_seconds += time.perf_counter() - t0
            self._vms[batch] = vm
        return vm

    def instantiate(
        self,
        target: np.ndarray,
        starts: int = 1,
        rng: np.random.Generator | int | None = None,
        x0: np.ndarray | None = None,
    ) -> InstantiationResult:
        """Fit the circuit to ``target``, all starts in one batch.

        ``target`` may be a ``(D, D)`` unitary (Eq. 1 fit) or a
        :class:`~repro.utils.Statevector` / 1-D amplitude vector
        (state preparation, ``O(D)`` residuals per start).

        ``x0`` seeds the first start; remaining starts draw uniform
        random parameters in ``[-2pi, 2pi)`` — the same draw order as
        the sequential engine, so a given ``rng`` seed produces the
        same start population.

        The engine's output contract restricts targets exactly as in
        :meth:`Instantiater.instantiate`: column engines serve only
        state-preparation fits; overlap engines don't instantiate.
        """
        if self.contract.kind == "overlap":
            raise ValueError(
                "an OVERLAP-contract engine cannot instantiate: the "
                "residual form needs column amplitudes, not the reduced "
                "scalar; build the engine with OutputContract.column(0)"
            )
        if self.contract.column_based and not is_state_target(target):
            raise ValueError(
                f"a {self.contract.describe()} engine only serves "
                "state-preparation targets; unitary fits need a "
                "full-unitary engine"
            )
        rng = np.random.default_rng(rng)
        num_starts = max(1, starts)
        guesses = np.empty((num_starts, self.num_params))
        for s in range(num_starts):
            guesses[s] = draw_guess(
                rng, self.num_params, x0 if s == 0 else None
            )

        vm = self._vm_for(num_starts)
        if is_state_target(target):
            residuals = BatchedStateResiduals(vm, target)
            options = self._state_lm_options
            to_infidelity = state_infidelity_from_cost
        else:
            residuals = BatchedHilbertSchmidtResiduals(vm, target)
            options = self.lm_options
            to_infidelity = None
        success_cost = options.success_cost

        def should_abandon(live: np.ndarray, cost: np.ndarray) -> bool:
            # The sequential engine stops after the first start s where
            # the best cost over starts 0..s reaches the threshold.
            # Once every start of such a prefix has finished, the
            # remaining starts cannot influence the result.
            best = np.inf
            for s in range(num_starts):
                if live[s]:
                    return False
                best = min(best, cost[s])
                if best <= success_cost:
                    return True
            return False

        t0 = time.perf_counter()
        with telemetry.tracer().span(
            "fit", category="instantiate",
            dim=vm.dim, starts=num_starts, strategy="batched",
        ):
            runs = batched_levenberg_marquardt(
                residuals.residuals_and_jacobian,
                guesses,
                options,
                should_abandon=should_abandon,
            )
        optimize_seconds = time.perf_counter() - t0

        # Winner selection replays the sequential scan, so the winning
        # start, ``starts_used`` and the short-circuit point agree with
        # the sequential engine.  Abandoned runs sit past the
        # short-circuit point by construction and are never scanned.
        best, used = scan_winner(
            runs, vm.dim, self.success_threshold, to_infidelity
        )

        infidelity = (
            to_infidelity(best.cost)
            if to_infidelity is not None
            else infidelity_from_cost(best.cost, vm.dim)
        )
        if not np.isfinite(infidelity):
            # Every start diverged to NaN/Inf: report an infinite (not
            # NaN) infidelity so callers' comparisons stay ordered.
            telemetry.metrics().counter("instantiate.nonfinite_fits").add()
            infidelity = float("inf")
        result = InstantiationResult(
            params=best.params,
            infidelity=infidelity,
            success=infidelity <= self.success_threshold,
            starts_used=used,
            total_iterations=sum(r.iterations for r in runs),
            total_evaluations=sum(r.num_evaluations for r in runs),
            aot_seconds=self.aot_seconds,
            optimize_seconds=optimize_seconds,
            runs=runs,
        )
        record_fit("batched", vm.dim, result)
        return result
