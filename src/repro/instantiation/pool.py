"""An LRU pool of :class:`Instantiater` engines keyed by circuit structure.

Synthesis workloads instantiate *many* circuits that share one template
shape: every frontier candidate of a search round, every gate-deletion
variant of a compression pass.  Each distinct shape costs an AOT
compile (tensor-network lowering, pathfinding, bytecode generation,
TNVM setup) that dwarfs the optimization itself on small templates —
the pool pays it once per shape and hands the compiled engine back for
every structurally identical candidate after that.

The key pairs :meth:`QuditCircuit.structure_key` — radices plus the
sequence of (expression, location, slot-binding) triples, exactly the
information the AOT compiler consumes — with the requested
:class:`~repro.tensornet.OutputContract`'s :meth:`key`, so a
full-unitary engine and a column-specialized engine for the same
template shape coexist in the cache (a synthesis run that interleaves
unitary and state-prep targets keeps both hot).  Hit/miss counters
feed the ``engine_cache_hits``/``engine_cache_misses`` fields of
:class:`~repro.synthesis.SynthesisResult`.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict

from .. import telemetry
from ..circuit.circuit import QuditCircuit
from ..jit.cache import ExpressionCache, global_cache
from ..tensornet.contract import OutputContract
from .instantiater import SUCCESS_THRESHOLD, Instantiater
from .lm import LMOptions

__all__ = ["EnginePool"]


class EnginePool:
    """Least-recently-used cache of reusable instantiation engines.

    Engines are constructed with the pool's settings (strategy,
    precision, threshold, LM options); a pooled engine serves *any*
    circuit whose :meth:`~QuditCircuit.structure_key` matches, because
    structurally identical circuits compile to the same TNVM program
    and a solution's parameters mean the same thing on either.
    """

    def __init__(
        self,
        capacity: int = 32,
        strategy: str = "auto",
        precision: str = "f64",
        cache: ExpressionCache | None = None,
        success_threshold: float = SUCCESS_THRESHOLD,
        lm_options: LMOptions | None = None,
        backend: str = "auto",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.strategy = strategy
        self.backend = backend
        self.precision = precision
        self.cache = cache
        self.success_threshold = success_threshold
        self.lm_options = lm_options
        # Per-pool counters that also feed the process-global telemetry
        # aggregates, so SynthesisResult fields stay exact per pool
        # while BENCH/trace artifacts see the whole-process totals.
        registry = telemetry.metrics()
        self._hits = registry.counter("engine_pool.hits").child()
        self._misses = registry.counter("engine_pool.misses").child()
        self._rehydrates = registry.counter("engine_pool.rehydrates").child()
        self._engines: OrderedDict[tuple, Instantiater] = OrderedDict()
        # Pickled SerializedEngine per structure key: the program store
        # parallel synthesis ships to worker processes.  Serialization
        # is paid once per shape, and the bytes survive engine eviction
        # (an evicted shape rehydrates from them instead of
        # recompiling).  Payloads are much smaller than live engines,
        # so their LRU runs at a multiple of the engine capacity — but
        # still bounded, or a long sweep would accumulate every shape
        # it ever serialized.
        self._payloads: OrderedDict[tuple, bytes] = OrderedDict()
        self._payload_capacity = 4 * capacity

    def __len__(self) -> int:
        return len(self._engines)

    @property
    def hits(self) -> int:
        """Engine-reuse count (also mirrored into the global
        ``engine_pool.hits`` telemetry counter)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """AOT-compile / rehydrate count (mirrored into
        ``engine_pool.misses``)."""
        return self._misses.value

    def engine_for(
        self, circuit: QuditCircuit, contract: OutputContract | None = None
    ) -> Instantiater:
        """The pooled engine for ``circuit``'s template shape under
        ``contract`` (default: full unitary).

        Distinct contracts are distinct cache entries — a column
        engine never evicts or shadows the full-unitary engine for the
        same shape.  A hit moves the engine to the front of the LRU
        order; a miss AOT-compiles a fresh engine and may evict the
        least recently used one to stay within ``capacity``.
        """
        contract = OutputContract.coerce(contract)
        key = (circuit.structure_key(), contract.key())
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            self._hits.add()
            return engine
        self._misses.add()
        payload = self._payloads.get(key)
        if payload is not None:
            self._payloads.move_to_end(key)
            # The shape was serialized before its engine was evicted:
            # rehydrating from the snapshot (source exec + TNVM setup)
            # is much cheaper than re-running the AOT compile and is
            # numerically identical.
            self._rehydrates.add()
            with telemetry.tracer().span(
                "engine.rehydrate", category="pool"
            ):
                engine = Instantiater.from_serialized(
                    pickle.loads(payload),
                    cache=(
                        self.cache if self.cache is not None
                        else global_cache()
                    ),
                )
        else:
            with telemetry.tracer().span(
                "engine.compile", category="pool",
                contract=str(contract),
            ):
                engine = Instantiater(
                    circuit,
                    precision=self.precision,
                    cache=self.cache,
                    success_threshold=self.success_threshold,
                    lm_options=self.lm_options,
                    strategy=self.strategy,
                    backend=self.backend,
                    contract=contract,
                )
            telemetry.metrics().histogram("engine_pool.aot_seconds").observe(
                engine.aot_seconds
            )
        self._engines[key] = engine
        while len(self._engines) > self.capacity:
            evicted_key, evicted = self._engines.popitem(last=False)
            # Snapshot on the way out: an evicted shape that was never
            # shipped to a worker would otherwise re-pay the full AOT
            # compile on its next hit, even though the payload LRU
            # exists precisely to make eviction cheap.  Serializing a
            # live engine costs far less than recompiling one.
            if evicted_key in self._payloads:
                self._payloads.move_to_end(evicted_key)
            else:
                self._store_payload(
                    evicted_key,
                    pickle.dumps(
                        evicted.serialize(),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                )
        return engine

    def _store_payload(self, key: tuple, payload: bytes) -> None:
        """Insert pickled snapshot bytes into the bounded payload LRU."""
        self._payloads[key] = payload
        while len(self._payloads) > self._payload_capacity:
            self._payloads.popitem(last=False)

    def serialized_bytes(
        self, circuit: QuditCircuit, contract: OutputContract | None = None
    ) -> bytes:
        """Pickled :class:`~repro.instantiation.SerializedEngine` bytes
        for ``circuit``'s template shape under ``contract``.

        Resolves the pooled engine first (compiling it here, once, on a
        miss — workers never pay AOT) and caches the pickled snapshot
        per (structure key, contract key), so shipping the same shape
        to many workers or tasks costs one serialization total.  Column
        payloads carry the contract and the column-specialized fused
        kernel source, so a spawn-rehydrated worker engine is
        bit-identical to the parent's.
        """
        contract = OutputContract.coerce(contract)
        key = (circuit.structure_key(), contract.key())
        payload = self._payloads.get(key)
        engine = self.engine_for(circuit, contract)
        if payload is None:
            payload = pickle.dumps(
                engine.serialize(), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._store_payload(key, payload)
        else:
            self._payloads.move_to_end(key)
        return payload

    def clear(self) -> None:
        """Drop all pooled engines and payloads (counters preserved)."""
        self._engines.clear()
        self._payloads.clear()

    def __repr__(self) -> str:
        return (
            f"<EnginePool {len(self._engines)}/{self.capacity} engines, "
            f"{self.hits} hits, {self.misses} misses>"
        )
