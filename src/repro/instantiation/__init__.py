"""Numerical instantiation: HS cost, Levenberg-Marquardt, multi-start."""

from .cost import HilbertSchmidtResiduals, infidelity_from_cost
from .gd import AdamOptions, AdamResult, InfidelityFunction, adam_minimize
from .instantiater import (
    SUCCESS_THRESHOLD,
    Instantiater,
    InstantiationResult,
    instantiate,
)
from .lm import LMOptions, LMResult, levenberg_marquardt

__all__ = [
    "Instantiater",
    "InstantiationResult",
    "instantiate",
    "SUCCESS_THRESHOLD",
    "HilbertSchmidtResiduals",
    "infidelity_from_cost",
    "LMOptions",
    "LMResult",
    "levenberg_marquardt",
    "AdamOptions",
    "AdamResult",
    "InfidelityFunction",
    "adam_minimize",
]
