"""Numerical instantiation: HS cost, Levenberg-Marquardt, multi-start."""

from .batched import BatchedInstantiater
from .cost import (
    BatchedHilbertSchmidtResiduals,
    BatchedStateResiduals,
    HilbertSchmidtResiduals,
    StateResiduals,
    as_target_array,
    infidelity_from_cost,
    is_state_target,
    state_infidelity_from_cost,
    state_success_cost,
)
from .gd import AdamOptions, AdamResult, InfidelityFunction, adam_minimize
from .instantiater import (
    AUTO_BATCH_MIN_STARTS,
    STRATEGIES,
    SUCCESS_THRESHOLD,
    Instantiater,
    InstantiationResult,
    SerializedEngine,
    instantiate,
)
from .lm import (
    LMOptions,
    LMResult,
    batched_levenberg_marquardt,
    levenberg_marquardt,
)
from .pool import EnginePool

__all__ = [
    "Instantiater",
    "BatchedInstantiater",
    "EnginePool",
    "InstantiationResult",
    "SerializedEngine",
    "instantiate",
    "STRATEGIES",
    "AUTO_BATCH_MIN_STARTS",
    "SUCCESS_THRESHOLD",
    "HilbertSchmidtResiduals",
    "BatchedHilbertSchmidtResiduals",
    "StateResiduals",
    "BatchedStateResiduals",
    "infidelity_from_cost",
    "state_infidelity_from_cost",
    "state_success_cost",
    "is_state_target",
    "as_target_array",
    "LMOptions",
    "LMResult",
    "levenberg_marquardt",
    "batched_levenberg_marquardt",
    "AdamOptions",
    "AdamResult",
    "InfidelityFunction",
    "adam_minimize",
]
