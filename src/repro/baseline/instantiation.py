"""Instantiation for the baseline framework.

Uses the *same* Levenberg–Marquardt optimizer and the same
phase-aligned Hilbert–Schmidt residual formulation as the OpenQudit
engine, so the instantiation benchmarks (Figures 6 and 7) compare
evaluation pipelines — dense per-iteration reconstruction versus the
AOT-compiled TNVM — rather than optimizers.
"""

from __future__ import annotations

import time

import numpy as np

from ..instantiation.instantiater import (
    SUCCESS_THRESHOLD,
    InstantiationResult,
)
from ..instantiation.lm import LMOptions, LMResult, levenberg_marquardt
from .circuit import BaselineCircuit
from .evaluator import DenseEvaluator

__all__ = ["BaselineResiduals", "BaselineInstantiater"]


class BaselineResiduals:
    """Phase-aligned HS residuals over the dense evaluator."""

    def __init__(self, evaluator: DenseEvaluator, target: np.ndarray):
        self.evaluator = evaluator
        self.target = np.asarray(target, dtype=np.complex128)
        self.dim = evaluator.dim

    def cost(self, params: np.ndarray) -> float:
        u = self.evaluator.get_unitary(params)
        trace = np.trace(self.target.conj().T @ u)
        return float(1.0 - abs(trace) / self.dim)

    def residuals_and_jacobian(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        u, grad = self.evaluator.get_unitary_and_grad(params)
        trace = np.trace(self.target.conj().T @ u)
        mag = abs(trace)
        phase = trace / mag if mag > 1e-300 else 1.0
        diff = u - phase * self.target
        r = np.concatenate([diff.real.ravel(), diff.imag.ravel()])
        flat = grad.reshape(grad.shape[0], -1)
        jac = np.concatenate([flat.real, flat.imag], axis=1).T
        return r, np.ascontiguousarray(jac)


class BaselineInstantiater:
    """Multi-start LM instantiation over the dense pipeline.

    API mirror of :class:`repro.instantiation.Instantiater`; note there
    is no AOT phase — the traditional pipeline pays per iteration
    instead.
    """

    def __init__(
        self,
        circuit: BaselineCircuit,
        success_threshold: float = SUCCESS_THRESHOLD,
        lm_options: LMOptions | None = None,
    ):
        self.circuit = circuit
        self.evaluator = DenseEvaluator(circuit)
        self.success_threshold = success_threshold
        base = lm_options or LMOptions()
        self.lm_options = LMOptions(
            max_iterations=base.max_iterations,
            initial_mu=base.initial_mu,
            mu_up=base.mu_up,
            mu_down=base.mu_down,
            max_mu=base.max_mu,
            gradient_tolerance=base.gradient_tolerance,
            step_tolerance=base.step_tolerance,
            success_cost=2.0 * circuit.dim * success_threshold,
        )

    def instantiate(
        self,
        target: np.ndarray,
        starts: int = 1,
        rng: np.random.Generator | int | None = None,
        x0: np.ndarray | None = None,
    ) -> InstantiationResult:
        rng = np.random.default_rng(rng)
        residuals = BaselineResiduals(self.evaluator, target)
        fn = residuals.residuals_and_jacobian
        dim = self.circuit.dim
        num_params = self.circuit.num_params

        t0 = time.perf_counter()
        best: LMResult | None = None
        runs: list[LMResult] = []
        used = 0
        for s in range(max(1, starts)):
            if s == 0 and x0 is not None:
                guess = np.asarray(x0, dtype=np.float64)
            else:
                guess = rng.uniform(-2 * np.pi, 2 * np.pi, num_params)
            run = levenberg_marquardt(fn, guess, self.lm_options)
            runs.append(run)
            used += 1
            if best is None or run.cost < best.cost:
                best = run
            if best.cost / (2.0 * dim) <= self.success_threshold:
                break
        optimize_seconds = time.perf_counter() - t0
        infidelity = best.cost / (2.0 * dim)
        return InstantiationResult(
            params=best.params,
            infidelity=infidelity,
            success=infidelity <= self.success_threshold,
            starts_used=used,
            total_iterations=sum(r.iterations for r in runs),
            total_evaluations=sum(r.num_evaluations for r in runs),
            aot_seconds=0.0,
            optimize_seconds=optimize_seconds,
            runs=runs,
        )
