"""Base classes for the baseline framework's gates.

This package reproduces the *traditional* numerical-compiler design the
paper contrasts against (Listing 1): every gate is a class with
``get_unitary`` and a separately hand-derived ``get_grad``, and the
circuit performs safety/equality checks on every append.  It serves as
the in-repo stand-in for BQSKit/Qiskit/Tket in all benchmarks (see
DESIGN.md substitutions).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["Gate", "DifferentiableUnitary", "ConstantGate"]


class Gate:
    """A quantum gate with a hand-written unitary implementation."""

    _num_qudits: int = 1
    _num_params: int = 0
    _radices: tuple[int, ...] = (2,)
    _qasm_name: str = "gate"

    @property
    def num_qudits(self) -> int:
        return self._num_qudits

    @property
    def num_params(self) -> int:
        return self._num_params

    @property
    def radices(self) -> tuple[int, ...]:
        return self._radices

    @property
    def dim(self) -> int:
        d = 1
        for r in self._radices:
            d *= r
        return d

    @property
    def name(self) -> str:
        return self._qasm_name

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        """The gate's unitary matrix at the given parameters."""
        raise NotImplementedError

    def check_params(self, params: Sequence[float]) -> None:
        if len(params) != self._num_params:
            raise ValueError(
                f"{self.name} expects {self._num_params} parameters, "
                f"got {len(params)}"
            )

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DifferentiableUnitary:
    """Mixin marking a gate as having a hand-derived gradient."""

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        """Gradient tensor of shape ``(num_params, dim, dim)``."""
        raise NotImplementedError


class ConstantGate(Gate, DifferentiableUnitary):
    """A parameterless gate defined by a fixed matrix."""

    _matrix: np.ndarray

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return self._matrix.copy()

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.zeros((0,) + self._matrix.shape, dtype=np.complex128)
