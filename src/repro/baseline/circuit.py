"""The baseline circuit with per-append safety and equality checks.

Traditional frameworks validate every gate placement eagerly: dimension
and radix compatibility, a numerical unitarity check of the gate matrix,
and an equality scan against the circuit's registered gate set (object
graphs rather than integer references).  OpenQudit's expression caching
exists precisely to avoid this repeated work; the Figure 4 construction
benchmark measures the difference.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from .gate import Gate

__all__ = ["BaselineOperation", "BaselineCircuit"]


class BaselineOperation:
    """A placed gate with its own parameter binding."""

    __slots__ = ("gate", "location", "params", "param_indices")

    def __init__(
        self,
        gate: Gate,
        location: tuple[int, ...],
        params: tuple[float, ...],
        param_indices: tuple[int, ...],
    ):
        self.gate = gate
        self.location = location
        self.params = params
        self.param_indices = param_indices

    @property
    def is_parameterized(self) -> bool:
        return bool(self.param_indices)

    def __repr__(self) -> str:
        return (
            f"BaselineOperation({self.gate.name}, loc={self.location})"
        )


class BaselineCircuit:
    """A circuit in the traditional object-graph style."""

    def __init__(self, radices: Sequence[int]):
        self.radices = tuple(int(r) for r in radices)
        self.operations: list[BaselineOperation] = []
        # Registered gate instances, keyed like a framework gate set:
        # hash on (type, params), equality confirmed by matrix compare.
        self.gate_set: dict[tuple, tuple[Gate, np.ndarray]] = {}
        self._num_params = 0

    @property
    def num_qudits(self) -> int:
        return len(self.radices)

    @property
    def dim(self) -> int:
        d = 1
        for r in self.radices:
            d *= r
        return d

    @property
    def num_params(self) -> int:
        return self._num_params

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[BaselineOperation]:
        return iter(self.operations)

    # ------------------------------------------------------------------
    def append_gate(
        self,
        gate: Gate,
        location: Sequence[int] | int,
        params: Sequence[float] | None = None,
        parameterized: bool | None = None,
    ) -> None:
        """Append a gate, performing the traditional eager validation.

        ``params`` fixes constants; omit it (or pass
        ``parameterized=True``) to allocate free circuit parameters.
        """
        if isinstance(location, int):
            location = (location,)
        location = tuple(int(q) for q in location)

        # --- safety checks, repeated on *every* append -----------------
        if len(set(location)) != len(location):
            raise ValueError(f"repeated qudit in location {location}")
        if len(location) != gate.num_qudits:
            raise ValueError(
                f"{gate.name} acts on {gate.num_qudits} qudits"
            )
        for q, r in zip(location, gate.radices):
            if not 0 <= q < self.num_qudits:
                raise ValueError(f"qudit {q} out of range")
            if self.radices[q] != r:
                raise ValueError(
                    f"gate radix {r} incompatible with wire {q}"
                )
        if parameterized is None:
            parameterized = params is None
        if params is None:
            params = tuple(0.0 for _ in range(gate.num_params))
        else:
            params = tuple(float(v) for v in params)
        if len(params) != gate.num_params:
            raise ValueError(
                f"{gate.name} expects {gate.num_params} parameters"
            )
        probe = gate.get_unitary(params)
        if probe.shape != (gate.dim, gate.dim):
            raise ValueError("gate matrix has the wrong shape")
        if not np.allclose(
            probe @ probe.conj().T, np.eye(gate.dim), atol=1e-8
        ):
            raise ValueError(f"{gate.name} is not unitary at {params}")

        # --- equality check against the registered gate set ------------
        # Hash-bucketed like real frameworks' gate sets, but equality is
        # confirmed with a full matrix comparison (the per-append
        # "equality check" cost the paper describes).
        reference = gate.get_unitary(params)
        key = (type(gate).__name__, params)
        known = self.gate_set.get(key)
        if known is None or not (
            known[1].shape == reference.shape
            and np.allclose(known[1], reference)
        ):
            self.gate_set[key] = (gate, reference)

        if parameterized:
            indices = tuple(
                range(self._num_params, self._num_params + gate.num_params)
            )
            self._num_params += gate.num_params
        else:
            indices = ()
        self.operations.append(
            BaselineOperation(gate, location, params, indices)
        )

    def depth(self) -> int:
        level = [0] * self.num_qudits
        for op in self.operations:
            start = max(level[q] for q in op.location)
            for q in op.location:
                level[q] = start + 1
        return max(level, default=0)
