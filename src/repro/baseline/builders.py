"""Baseline-framework versions of the benchmark circuits.

These mirror :mod:`repro.circuit.builders` gate-for-gate so the
Figure 4/6/7 benchmarks compare identical workloads across the two
frameworks.
"""

from __future__ import annotations

import math

import numpy as np

from . import gates as G
from .circuit import BaselineCircuit

__all__ = [
    "build_qft_circuit_baseline",
    "build_dtc_circuit_baseline",
    "build_qsearch_ansatz_baseline",
]

_H = G.HGate()
_CP = G.CPGate()
_SWAP = G.SwapGate()
_RX = G.RXGate()
_RZ = G.RZGate()
_RZZ = G.RZZGate()
_U3 = G.U3Gate()
_CX = G.CXGate()
_P3 = G.QutritPhaseGate()
_CSUM = G.CSUMGate()


def build_qft_circuit_baseline(
    n: int, include_swaps: bool = True
) -> BaselineCircuit:
    circ = BaselineCircuit([2] * n)
    for target in range(n):
        circ.append_gate(_H, target, ())
        for control in range(target + 1, n):
            angle = math.pi / (2 ** (control - target))
            circ.append_gate(_CP, (control, target), (angle,))
    if include_swaps:
        for q in range(n // 2):
            circ.append_gate(_SWAP, (q, n - 1 - q), ())
    return circ


def build_dtc_circuit_baseline(
    n: int, layers: int = 1, g: float = 0.95, seed: int = 0
) -> BaselineCircuit:
    rng = np.random.default_rng(seed)
    circ = BaselineCircuit([2] * n)
    for _ in range(layers):
        for q in range(n):
            circ.append_gate(_RX, q, (g * math.pi,))
        for start in (0, 1):
            for q in range(start, n - 1, 2):
                theta = float(rng.uniform(math.pi / 16, 3 * math.pi / 16))
                circ.append_gate(_RZZ, (q, q + 1), (theta,))
        for q in range(n):
            phi = float(rng.uniform(-math.pi, math.pi))
            circ.append_gate(_RZ, q, (phi,))
    return circ


def build_qsearch_ansatz_baseline(
    num_qudits: int, depth: int, radix: int = 2
) -> BaselineCircuit:
    if radix == 2:
        single, entangler = _U3, _CX
    elif radix == 3:
        single, entangler = _P3, _CSUM
    else:
        raise ValueError("baseline ansatz supports radix 2 and 3")
    circ = BaselineCircuit([radix] * num_qudits)
    for q in range(num_qudits):
        circ.append_gate(single, q, parameterized=True)
    if num_qudits == 1:
        return circ
    pairs = [(q, q + 1) for q in range(num_qudits - 1)]
    for block in range(depth):
        a, b = pairs[block % len(pairs)]
        circ.append_gate(entangler, (a, b), ())
        circ.append_gate(single, a, parameterized=True)
        circ.append_gate(single, b, parameterized=True)
    return circ
