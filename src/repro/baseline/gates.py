"""The baseline gate set, with hand-derived analytical gradients.

Each class follows the paper's Listing 1 verbatim pattern: boilerplate,
a ``get_unitary`` building the matrix with NumPy scalar trigonometry,
and a manually-derived ``get_grad``.  The length and delicacy of this
file *is the point* — it is the extensibility burden QGL removes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .gate import ConstantGate, DifferentiableUnitary, Gate

__all__ = [
    "U1Gate", "U2Gate", "U3Gate", "RXGate", "RYGate", "RZGate",
    "RZZGate", "PhaseGate", "HGate", "XGate", "YGate", "ZGate",
    "SGate", "TGate", "CXGate", "CZGate", "CPGate", "SwapGate",
    "CSUMGate", "QutritPhaseGate",
]

_SQ2 = 1.0 / math.sqrt(2.0)


class U3Gate(Gate, DifferentiableUnitary):
    """The paper's Listing 1 example, reproduced faithfully."""

    _num_qudits = 1
    _num_params = 3
    _radices = (2,)
    _qasm_name = "u3"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        ct = np.cos(params[0] / 2)
        st = np.sin(params[0] / 2)
        cp = np.cos(params[1])
        sp = np.sin(params[1])
        cl = np.cos(params[2])
        sl = np.sin(params[2])
        el = cl + 1j * sl
        ep = cp + 1j * sp
        return np.array(
            [
                [ct, -el * st],
                [ep * st, ep * el * ct],
            ],
            dtype=np.complex128,
        )

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        ct = np.cos(params[0] / 2)
        st = np.sin(params[0] / 2)
        cp = np.cos(params[1])
        sp = np.sin(params[1])
        cl = np.cos(params[2])
        sl = np.sin(params[2])
        el = cl + 1j * sl
        ep = cp + 1j * sp
        del_ = -sl + 1j * cl
        dep_ = -sp + 1j * cp
        return np.array(
            [
                [
                    [-0.5 * st, -0.5 * ct * el],
                    [0.5 * ct * ep, -0.5 * st * el * ep],
                ],
                [
                    [0, 0],
                    [st * dep_, ct * el * dep_],
                ],
                [
                    [0, -st * del_],
                    [0, ct * ep * del_],
                ],
            ],
            dtype=np.complex128,
        )


class U2Gate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 2
    _radices = (2,)
    _qasm_name = "u2"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        ep = np.exp(1j * params[0])
        el = np.exp(1j * params[1])
        return _SQ2 * np.array(
            [[1, -el], [ep, ep * el]], dtype=np.complex128
        )

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        ep = np.exp(1j * params[0])
        el = np.exp(1j * params[1])
        return _SQ2 * np.array(
            [
                [[0, 0], [1j * ep, 1j * ep * el]],
                [[0, -1j * el], [0, 1j * ep * el]],
            ],
            dtype=np.complex128,
        )


class U1Gate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 1
    _radices = (2,)
    _qasm_name = "u1"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.array(
            [[1, 0], [0, np.exp(1j * params[0])]], dtype=np.complex128
        )

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.array(
            [[[0, 0], [0, 1j * np.exp(1j * params[0])]]],
            dtype=np.complex128,
        )


class PhaseGate(U1Gate):
    _qasm_name = "p"


class RXGate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 1
    _radices = (2,)
    _qasm_name = "rx"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        c = np.cos(params[0] / 2)
        s = -1j * np.sin(params[0] / 2)
        return np.array([[c, s], [s, c]], dtype=np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        dc = -0.5 * np.sin(params[0] / 2)
        ds = -0.5j * np.cos(params[0] / 2)
        return np.array([[[dc, ds], [ds, dc]]], dtype=np.complex128)


class RYGate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 1
    _radices = (2,)
    _qasm_name = "ry"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        c = np.cos(params[0] / 2)
        s = np.sin(params[0] / 2)
        return np.array([[c, -s], [s, c]], dtype=np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        dc = -0.5 * np.sin(params[0] / 2)
        ds = 0.5 * np.cos(params[0] / 2)
        return np.array([[[dc, -ds], [ds, dc]]], dtype=np.complex128)


class RZGate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 1
    _radices = (2,)
    _qasm_name = "rz"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        em = np.exp(-0.5j * params[0])
        ep = np.exp(0.5j * params[0])
        return np.array([[em, 0], [0, ep]], dtype=np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        em = np.exp(-0.5j * params[0])
        ep = np.exp(0.5j * params[0])
        return np.array(
            [[[-0.5j * em, 0], [0, 0.5j * ep]]], dtype=np.complex128
        )


class RZZGate(Gate, DifferentiableUnitary):
    _num_qudits = 2
    _num_params = 1
    _radices = (2, 2)
    _qasm_name = "rzz"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        em = np.exp(-0.5j * params[0])
        ep = np.exp(0.5j * params[0])
        return np.diag([em, ep, ep, em]).astype(np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        em = -0.5j * np.exp(-0.5j * params[0])
        ep = 0.5j * np.exp(0.5j * params[0])
        return np.diag([em, ep, ep, em]).astype(np.complex128)[None]


class CPGate(Gate, DifferentiableUnitary):
    _num_qudits = 2
    _num_params = 1
    _radices = (2, 2)
    _qasm_name = "cp"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.diag(
            [1, 1, 1, np.exp(1j * params[0])]
        ).astype(np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.diag(
            [0, 0, 0, 1j * np.exp(1j * params[0])]
        ).astype(np.complex128)[None]


class HGate(ConstantGate):
    _qasm_name = "h"
    _matrix = _SQ2 * np.array([[1, 1], [1, -1]], dtype=np.complex128)


class XGate(ConstantGate):
    _qasm_name = "x"
    _matrix = np.array([[0, 1], [1, 0]], dtype=np.complex128)


class YGate(ConstantGate):
    _qasm_name = "y"
    _matrix = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


class ZGate(ConstantGate):
    _qasm_name = "z"
    _matrix = np.array([[1, 0], [0, -1]], dtype=np.complex128)


class SGate(ConstantGate):
    _qasm_name = "s"
    _matrix = np.array([[1, 0], [0, 1j]], dtype=np.complex128)


class TGate(ConstantGate):
    _qasm_name = "t"
    _matrix = np.array(
        [[1, 0], [0, np.exp(0.25j * np.pi)]], dtype=np.complex128
    )


class CXGate(ConstantGate):
    _num_qudits = 2
    _radices = (2, 2)
    _qasm_name = "cx"
    _matrix = np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
        dtype=np.complex128,
    )


class CZGate(ConstantGate):
    _num_qudits = 2
    _radices = (2, 2)
    _qasm_name = "cz"
    _matrix = np.diag([1, 1, 1, -1]).astype(np.complex128)


class SwapGate(ConstantGate):
    _num_qudits = 2
    _radices = (2, 2)
    _qasm_name = "swap"
    _matrix = np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
        dtype=np.complex128,
    )


def _csum_matrix(d: int) -> np.ndarray:
    m = np.zeros((d * d, d * d), dtype=np.complex128)
    for i in range(d):
        for j in range(d):
            m[i * d + (i + j) % d, i * d + j] = 1.0
    return m


class CSUMGate(ConstantGate):
    """Qutrit controlled-sum."""

    _num_qudits = 2
    _radices = (3, 3)
    _qasm_name = "csum"
    _matrix = _csum_matrix(3)


class QutritPhaseGate(Gate, DifferentiableUnitary):
    _num_qudits = 1
    _num_params = 2
    _radices = (3,)
    _qasm_name = "p3"

    def get_unitary(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        return np.diag(
            [1, np.exp(1j * params[0]), np.exp(1j * params[1])]
        ).astype(np.complex128)

    def get_grad(self, params: Sequence[float] = ()) -> np.ndarray:
        self.check_params(params)
        g0 = np.diag(
            [0, 1j * np.exp(1j * params[0]), 0]
        ).astype(np.complex128)
        g1 = np.diag(
            [0, 0, 1j * np.exp(1j * params[1])]
        ).astype(np.complex128)
        return np.stack([g0, g1])
