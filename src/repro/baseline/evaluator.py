"""Dense unitary and gradient evaluation (the traditional pipeline).

The circuit unitary is accumulated by expanding each gate to the full
Hilbert-space dimension and left-multiplying; gradients use the
prefix/suffix product chain rule

    ``dU/dtheta = R_k · dG_k · L_{k-1}``

where ``L``/``R`` are products of the gates before/after gate ``k``.
Every evaluation rebuilds each gate matrix from scratch with NumPy
scalar trigonometry and re-embeds it — the per-iteration work that the
TNVM's specialized bytecode avoids.
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import BaselineCircuit

__all__ = ["embed", "DenseEvaluator"]


def embed(
    matrix: np.ndarray,
    location: tuple[int, ...],
    radices: tuple[int, ...],
) -> np.ndarray:
    """Expand a gate matrix to the full system dimension.

    Tensor the gate with identity on the untouched wires and permute
    axes into wire order.
    """
    n = len(radices)
    rest = [q for q in range(n) if q not in location]
    rest_dim = math.prod(radices[q] for q in rest) if rest else 1
    full = np.kron(matrix, np.eye(rest_dim, dtype=matrix.dtype))
    order = list(location) + rest
    shape = tuple(radices[q] for q in order) * 2
    tensor = full.reshape(shape)
    perm = [order.index(q) for q in range(n)]
    perm = perm + [p + n for p in perm]
    dim = math.prod(radices)
    return tensor.transpose(perm).reshape(dim, dim)


class DenseEvaluator:
    """Unitary/gradient evaluation for a :class:`BaselineCircuit`."""

    def __init__(self, circuit: BaselineCircuit):
        self.circuit = circuit
        self.dim = circuit.dim

    # ------------------------------------------------------------------
    def _gate_params(self, op, params: np.ndarray) -> tuple[float, ...]:
        if op.is_parameterized:
            return tuple(params[j] for j in op.param_indices)
        return op.params

    def get_unitary(self, params: np.ndarray = ()) -> np.ndarray:
        params = np.asarray(params, dtype=np.float64)
        u = np.eye(self.dim, dtype=np.complex128)
        for op in self.circuit.operations:
            g = op.gate.get_unitary(self._gate_params(op, params))
            u = embed(g, op.location, self.circuit.radices) @ u
        return u

    def get_unitary_and_grad(
        self, params: np.ndarray = ()
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full unitary and gradient of shape ``(P, D, D)``."""
        params = np.asarray(params, dtype=np.float64)
        ops = self.circuit.operations
        n_ops = len(ops)
        dim = self.dim

        full_gates: list[np.ndarray] = []
        for op in ops:
            g = op.gate.get_unitary(self._gate_params(op, params))
            full_gates.append(embed(g, op.location, self.circuit.radices))

        # Prefix products L[k] = G_k ... G_1 (L[0] = I).
        prefixes = [np.eye(dim, dtype=np.complex128)]
        for g in full_gates:
            prefixes.append(g @ prefixes[-1])
        # Suffix products R[k] = G_m ... G_{k+1} (R[m] = I).
        suffixes = [np.eye(dim, dtype=np.complex128)] * (n_ops + 1)
        acc = np.eye(dim, dtype=np.complex128)
        for k in range(n_ops - 1, -1, -1):
            suffixes[k] = acc = acc @ full_gates[k]
        # suffixes[k] currently holds G_m ... G_k; shift so that
        # R_k = G_m ... G_{k+1}:
        suffix_after = [
            suffixes[k + 1] if k + 1 <= n_ops else None
            for k in range(n_ops)
        ]

        grad = np.zeros(
            (self.circuit.num_params, dim, dim), dtype=np.complex128
        )
        for k, op in enumerate(ops):
            if not op.is_parameterized:
                continue
            gate_grad = op.gate.get_grad(self._gate_params(op, params))
            for slot, j in enumerate(op.param_indices):
                dg = embed(
                    gate_grad[slot], op.location, self.circuit.radices
                )
                grad[j] += suffix_after[k] @ dg @ prefixes[k]
        return prefixes[-1], grad
