"""The baseline (traditional, Listing-1-style) compiler framework."""

from . import gates
from .builders import (
    build_dtc_circuit_baseline,
    build_qft_circuit_baseline,
    build_qsearch_ansatz_baseline,
)
from .circuit import BaselineCircuit, BaselineOperation
from .evaluator import DenseEvaluator, embed
from .gate import ConstantGate, DifferentiableUnitary, Gate
from .instantiation import BaselineInstantiater, BaselineResiduals

__all__ = [
    "Gate",
    "DifferentiableUnitary",
    "ConstantGate",
    "gates",
    "BaselineCircuit",
    "BaselineOperation",
    "DenseEvaluator",
    "embed",
    "BaselineInstantiater",
    "BaselineResiduals",
    "build_qft_circuit_baseline",
    "build_dtc_circuit_baseline",
    "build_qsearch_ansatz_baseline",
]
