"""Deterministic fault injection for chaos-testing candidate execution.

The executor's recovery paths (crash retry, deadlines, NaN quarantine,
serial fallback) are only trustworthy if they can be *provoked on
demand, deterministically* — including inside spawned worker
processes, where a test cannot reach with a monkeypatch.  This module
is that trigger: production code calls :func:`maybe_fault` at a named
fault point, and the injector consults the ``REPRO_FAULT`` environment
variable (inherited by ``spawn``/``forkserver`` children created after
it is set) to decide whether this particular hit should crash, hang,
or corrupt.

Spec grammar (``REPRO_FAULT=<kind>[@<point>]:<selector>``):

* kind — ``crash`` (``os._exit``, **worker processes only**; inert in
  the main process so a serial fallback cannot kill the parent),
  ``hang`` (sleep ``REPRO_FAULT_HANG`` seconds, default 3600),
  ``nan`` (returned to the caller, which corrupts its own numbers), or
  ``sigterm`` (``os.kill(getpid(), SIGTERM)``, **main process only** —
  the mirror asymmetry of ``crash`` — used to provoke the checkpoint
  subsystem's preemption flush);
* point — which :func:`maybe_fault` call site the spec arms; defaults
  to ``worker_fit`` (the executor's per-candidate hook, preserving the
  pre-point grammar).  The synthesis passes expose ``round`` at their
  round boundaries.  Hits at non-matching points neither fire nor
  claim ticks;
* selector — which hits fire:

  - ``always`` — every hit;
  - ``once`` — the first hit only (alias of ``first1``);
  - ``first<N>`` — the first ``N`` hits;
  - ``tick<N>`` — the ``N``-th hit only (0-based);
  - ``seed<K>`` — every hit whose ``key`` equals ``K`` (a "poison
    job" that fails on every retry).

Hit ordinals ("ticks") are claimed atomically across *all* processes
through marker files in ``REPRO_FAULT_DIR`` (``O_CREAT | O_EXCL`` —
each tick is claimed exactly once no matter how many workers race for
it), so ``once`` means once per run, not once per process.  Without a
fault dir the counter is process-local, which is only correct for
single-process use.

Why this is deterministic where it matters: *which* job claims a given
tick depends on scheduling, but candidate seeds derive from structure
keys, so a crashed-and-retried job reproduces its clean-run result
bit-for-bit regardless of which worker (or which attempt) computes it.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "FaultSpec",
    "KillReport",
    "parse_spec",
    "active_spec",
    "maybe_fault",
    "activate",
    "run_and_kill",
    "ENV_SPEC",
    "ENV_DIR",
    "ENV_HANG",
    "ENV_EXIT",
]

ENV_SPEC = "REPRO_FAULT"
ENV_DIR = "REPRO_FAULT_DIR"
ENV_HANG = "REPRO_FAULT_HANG"
ENV_EXIT = "REPRO_FAULT_EXIT"

KINDS = ("crash", "hang", "nan", "sigterm")

#: The fault point armed when a spec names none (the executor's
#: per-candidate hook, matching the pre-point spec grammar).
DEFAULT_POINT = "worker_fit"

#: Process-local tick counter, used only when no fault dir is set.
_local_ticks = 0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    #: "always", "first", "tick", or "seed"
    selector: str
    #: first N / tick N / seed K (unused for "always")
    value: int = 0
    #: The :func:`maybe_fault` call site this spec arms.
    point: str = DEFAULT_POINT

    def needs_tick(self) -> bool:
        return self.selector in ("first", "tick")

    def matches(self, tick: int | None, key: object) -> bool:
        if self.selector == "always":
            return True
        if self.selector == "first":
            return tick is not None and tick < self.value
        if self.selector == "tick":
            return tick is not None and tick == self.value
        # "seed": fire on a specific job identity, every attempt.
        return key == self.value


def parse_spec(text: str | None) -> FaultSpec | None:
    """Parse a ``REPRO_FAULT`` value; ``None``/empty disables."""
    if not text:
        return None
    head, _, selector = text.partition(":")
    kind, _, point = head.partition("@")
    point = point or DEFAULT_POINT
    if kind not in KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {KINDS}"
        )
    selector = selector or "once"
    if selector == "always":
        return FaultSpec(kind, "always", point=point)
    if selector == "once":
        return FaultSpec(kind, "first", 1, point=point)
    for prefix in ("first", "tick", "seed"):
        if selector.startswith(prefix):
            try:
                value = int(selector[len(prefix):])
            except ValueError:
                break
            return FaultSpec(kind, prefix, value, point=point)
    raise ValueError(
        f"unknown fault selector {selector!r}; expected always/once/"
        "first<N>/tick<N>/seed<K>"
    )


def active_spec() -> FaultSpec | None:
    """The spec currently in the environment (re-read on every call,
    so tests can flip it without touching module state)."""
    return parse_spec(os.environ.get(ENV_SPEC))


def _claim_tick(fault_dir: str | None) -> int:
    """Atomically claim the next global hit ordinal.

    With a fault dir, the claim is a marker file created with
    ``O_CREAT | O_EXCL`` — the filesystem guarantees exactly one
    process wins each ordinal.  Without one, a process-local counter
    is used (single-process runs only).
    """
    global _local_ticks
    if fault_dir is None:
        tick = _local_ticks
        _local_ticks += 1
        return tick
    n = 0
    while True:
        try:
            fd = os.open(
                os.path.join(fault_dir, f"tick-{n}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
            os.close(fd)
            return n
        except FileExistsError:
            n += 1


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def maybe_fault(point: str, key: object = None) -> str | None:
    """Consult the active spec at a named fault point.

    ``key`` identifies the unit of work (the executor passes the job's
    candidate seed) so ``seed<K>`` selectors can poison one specific
    job.  Hard faults act here: ``crash`` exits the worker process
    immediately (inert in the main process), ``hang`` sleeps.  Soft
    faults are returned — ``"nan"`` tells the caller to corrupt its own
    result, keeping the corruption at the caller's numerical boundary.

    Returns the kind that fired for soft faults, else ``None``.
    """
    spec = active_spec()
    if spec is None or spec.point != point:
        # A non-matching point must not claim ticks: a parent-side
        # "round" hit consuming "once" would defuse a worker spec.
        return None
    tick = (
        _claim_tick(os.environ.get(ENV_DIR)) if spec.needs_tick() else None
    )
    if not spec.matches(tick, key):
        return None
    if spec.kind == "crash":
        if _in_worker_process():
            os._exit(int(os.environ.get(ENV_EXIT, "23")))
        return None
    if spec.kind == "hang":
        time.sleep(float(os.environ.get(ENV_HANG, "3600")))
        return None
    if spec.kind == "sigterm":
        if not _in_worker_process():
            os.kill(os.getpid(), signal.SIGTERM)
        return None
    return spec.kind


@contextmanager
def activate(spec: str, fault_dir: str, hang_seconds: float | None = None):
    """Arm the injector for a ``with`` block (test helper).

    Sets the environment variables — the only channel that reaches
    spawned workers — and restores the previous values on exit.  Pass
    a fresh ``fault_dir`` per activation: tick markers persist, so a
    reused dir would continue the previous run's count.
    """
    parse_spec(spec)  # fail fast on a typo, before any worker sees it
    saved = {
        name: os.environ.get(name) for name in (ENV_SPEC, ENV_DIR, ENV_HANG)
    }
    os.environ[ENV_SPEC] = spec
    os.environ[ENV_DIR] = fault_dir
    if hang_seconds is not None:
        os.environ[ENV_HANG] = repr(float(hang_seconds))
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass(frozen=True)
class KillReport:
    """What :func:`run_and_kill` observed."""

    #: ``Process.exitcode`` after the run (negative = killed by signal).
    exitcode: int | None
    #: True when the harness delivered its signal (the pass was still
    #: running once the snapshot threshold was reached).
    killed: bool
    #: Checkpoint snapshots present in ``watch_dir`` afterwards.
    snapshots: int


def run_and_kill(
    target,
    args=(),
    *,
    watch_dir: str,
    snapshots: int = 1,
    kill_signal: int = signal.SIGKILL,
    poll_seconds: float = 0.05,
    timeout: float = 300.0,
    mp_context: str = "spawn",
) -> KillReport:
    """Run ``target(*args)`` in a subprocess and kill it mid-pass.

    The harness polls ``watch_dir`` until at least ``snapshots``
    checkpoint snapshot files exist — proof the pass is past its first
    round boundary — then delivers ``kill_signal`` (default SIGKILL,
    real unblockable process death, not a simulated exception) and
    reaps the subprocess.  ``target`` must be a module-level callable
    (it crosses a ``spawn`` pickle boundary).

    The kill races the pass by design: the victim may die mid-round,
    mid-snapshot-write, or even after finishing.  Every outcome must
    leave ``watch_dir`` resumable — that is the property under test.
    Raises :class:`TimeoutError` if the subprocess neither reaches the
    snapshot threshold nor exits within ``timeout`` seconds.
    """
    from ..checkpoint import snapshot_count

    ctx = multiprocessing.get_context(mp_context)
    proc = ctx.Process(target=target, args=tuple(args))
    proc.start()
    killed = False
    deadline = time.monotonic() + timeout
    try:
        while proc.is_alive():
            if snapshot_count(watch_dir) >= snapshots:
                os.kill(proc.pid, kill_signal)
                killed = True
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"subprocess produced fewer than {snapshots} "
                    f"snapshot(s) in {watch_dir} within {timeout}s"
                )
            time.sleep(poll_seconds)
        proc.join(timeout)
        if proc.is_alive():
            raise TimeoutError("killed subprocess failed to exit")
    finally:
        if proc.is_alive():
            proc.kill()
            proc.join(10.0)
    return KillReport(
        exitcode=proc.exitcode,
        killed=killed,
        snapshots=snapshot_count(watch_dir),
    )
