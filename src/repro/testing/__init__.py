"""Deterministic test harnesses for the synthesis stack.

Currently home to :mod:`repro.testing.faults`, the fault injector the
chaos suite uses to prove the executor's crash/hang/NaN recovery paths
are deterministic and result-preserving.
"""

from .faults import (
    FaultSpec,
    activate,
    active_spec,
    maybe_fault,
    parse_spec,
)

__all__ = [
    "FaultSpec",
    "activate",
    "active_spec",
    "maybe_fault",
    "parse_spec",
]
