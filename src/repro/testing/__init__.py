"""Deterministic test harnesses for the synthesis stack.

Currently home to :mod:`repro.testing.faults`, the fault injector the
chaos suite uses to prove the executor's crash/hang/NaN recovery paths
are deterministic and result-preserving, plus :func:`run_and_kill`,
the parent-kill harness the checkpoint/resume suite uses to exercise
real process death.
"""

from .faults import (
    FaultSpec,
    KillReport,
    activate,
    active_spec,
    maybe_fault,
    parse_spec,
    run_and_kill,
)

__all__ = [
    "FaultSpec",
    "KillReport",
    "activate",
    "active_spec",
    "maybe_fault",
    "parse_spec",
    "run_and_kill",
]
