"""The OpenQudit circuit library: circuits, gates, benchmark builders."""

from . import gates
from .builders import (
    FIG5_BENCHMARKS,
    build_dtc_circuit,
    build_qft_circuit,
    build_qsearch_ansatz,
    fig5_circuit,
)
from .circuit import Operation, QuditCircuit

__all__ = [
    "QuditCircuit",
    "Operation",
    "gates",
    "build_qft_circuit",
    "build_dtc_circuit",
    "build_qsearch_ansatz",
    "fig5_circuit",
    "FIG5_BENCHMARKS",
]
