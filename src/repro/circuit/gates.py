"""The standard gate library, defined in QGL text.

Every gate here is produced from a QGL definition (or from the
composability suite applied to one), demonstrating the extensibility
story of the paper: no hand-written unitaries or gradients anywhere in
this module.  Factories are memoized so repeated calls share one
symbolic object (and therefore one JIT artifact via the cache).

Qubit gates: ``u1 u2 u3 h x y z s sdg t tdg sx rx ry rz p cx cy cz ch
cp crz swap iswap rxx ryy rzz ccx cswap``.

Qudit gates: ``shift(d) clock(d) qudit_hadamard(d) csum(d)
qutrit_phase() embedded_u3(d, l0, l1) rdiag(d)``.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..expression import UnitaryExpression

__all__ = [
    "u1", "u2", "u3", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "cx", "cnot", "cy", "cz", "ch", "cp", "crz",
    "swap", "iswap", "rxx", "ryy", "rzz", "ccx", "cswap",
    "shift", "clock", "qudit_hadamard", "csum", "qutrit_phase",
    "embedded_u3", "rdiag",
]


def _qgl(source: str) -> UnitaryExpression:
    return UnitaryExpression(source)


# ----------------------------------------------------------------------
# Parameterized single-qubit gates
# ----------------------------------------------------------------------

@functools.cache
def u3() -> UnitaryExpression:
    """The universal single-qubit gate (paper Listing 2)."""
    return _qgl(
        """U3(theta, phi, lambda) {
            [[cos(theta/2), ~e^(i*lambda)*sin(theta/2)],
             [e^(i*phi)*sin(theta/2), e^(i*(phi+lambda))*cos(theta/2)]]
        }"""
    )


@functools.cache
def u2() -> UnitaryExpression:
    """U2(phi, lambda) = U3(pi/2, phi, lambda) — the paper's CSE example."""
    return _qgl(
        """U2(phi, lambda) {
            (1/sqrt(2)) * [[1, ~e^(i*lambda)],
                           [e^(i*phi), e^(i*(phi+lambda))]]
        }"""
    )


@functools.cache
def u1() -> UnitaryExpression:
    return _qgl("U1(lambda) { [[1, 0], [0, e^(i*lambda)]] }")


@functools.cache
def p() -> UnitaryExpression:
    """Phase gate (same matrix as U1, distinct name)."""
    return _qgl("P(lambda) { [[1, 0], [0, e^(i*lambda)]] }")


@functools.cache
def rx() -> UnitaryExpression:
    return _qgl(
        """RX(theta) {
            [[cos(theta/2), ~i*sin(theta/2)],
             [~i*sin(theta/2), cos(theta/2)]]
        }"""
    )


@functools.cache
def ry() -> UnitaryExpression:
    return _qgl(
        """RY(theta) {
            [[cos(theta/2), ~sin(theta/2)],
             [sin(theta/2), cos(theta/2)]]
        }"""
    )


@functools.cache
def rz() -> UnitaryExpression:
    return _qgl(
        """RZ(theta) {
            [[e^(~i*theta/2), 0],
             [0, e^(i*theta/2)]]
        }"""
    )


# ----------------------------------------------------------------------
# Constant single-qubit gates
# ----------------------------------------------------------------------

@functools.cache
def h() -> UnitaryExpression:
    return _qgl("H() { (1/sqrt(2)) * [[1, 1], [1, ~1]] }")


@functools.cache
def x() -> UnitaryExpression:
    return _qgl("X() { [[0, 1], [1, 0]] }")


@functools.cache
def y() -> UnitaryExpression:
    return _qgl("Y() { [[0, ~i], [i, 0]] }")


@functools.cache
def z() -> UnitaryExpression:
    return _qgl("Z() { [[1, 0], [0, ~1]] }")


@functools.cache
def s() -> UnitaryExpression:
    return _qgl("S() { [[1, 0], [0, i]] }")


@functools.cache
def sdg() -> UnitaryExpression:
    return _qgl("Sdg() { [[1, 0], [0, ~i]] }")


@functools.cache
def t() -> UnitaryExpression:
    return _qgl("T() { [[1, 0], [0, e^(i*pi/4)]] }")


@functools.cache
def tdg() -> UnitaryExpression:
    return _qgl("Tdg() { [[1, 0], [0, e^(~i*pi/4)]] }")


@functools.cache
def sx() -> UnitaryExpression:
    return _qgl(
        "SX() { (1/2) * [[1+i, 1-i], [1-i, 1+i]] }"
    )


# ----------------------------------------------------------------------
# Two-qubit gates
# ----------------------------------------------------------------------

@functools.cache
def cx() -> UnitaryExpression:
    """CNOT, built compositionally: a controlled X."""
    return UnitaryExpression(x().controlled().matrix, name="CX")


cnot = cx


@functools.cache
def cy() -> UnitaryExpression:
    return UnitaryExpression(y().controlled().matrix, name="CY")


@functools.cache
def cz() -> UnitaryExpression:
    return UnitaryExpression(z().controlled().matrix, name="CZ")


@functools.cache
def ch() -> UnitaryExpression:
    return UnitaryExpression(h().controlled().matrix, name="CH")


@functools.cache
def cp() -> UnitaryExpression:
    """Controlled phase (the QFT's entangling gate)."""
    return UnitaryExpression(p().controlled().matrix, name="CP")


@functools.cache
def crz() -> UnitaryExpression:
    return UnitaryExpression(rz().controlled().matrix, name="CRZ")


@functools.cache
def swap() -> UnitaryExpression:
    return _qgl(
        """SWAP() {
            [[1, 0, 0, 0],
             [0, 0, 1, 0],
             [0, 1, 0, 0],
             [0, 0, 0, 1]]
        }"""
    )


@functools.cache
def iswap() -> UnitaryExpression:
    return _qgl(
        """ISWAP() {
            [[1, 0, 0, 0],
             [0, 0, i, 0],
             [0, i, 0, 0],
             [0, 0, 0, 1]]
        }"""
    )


@functools.cache
def rxx() -> UnitaryExpression:
    return _qgl(
        """RXX(theta) {
            [[cos(theta/2), 0, 0, ~i*sin(theta/2)],
             [0, cos(theta/2), ~i*sin(theta/2), 0],
             [0, ~i*sin(theta/2), cos(theta/2), 0],
             [~i*sin(theta/2), 0, 0, cos(theta/2)]]
        }"""
    )


@functools.cache
def ryy() -> UnitaryExpression:
    return _qgl(
        """RYY(theta) {
            [[cos(theta/2), 0, 0, i*sin(theta/2)],
             [0, cos(theta/2), ~i*sin(theta/2), 0],
             [0, ~i*sin(theta/2), cos(theta/2), 0],
             [i*sin(theta/2), 0, 0, cos(theta/2)]]
        }"""
    )


@functools.cache
def rzz() -> UnitaryExpression:
    """The DTC benchmark's entangler (paper Listing 4)."""
    return _qgl(
        """RZZ(theta) {
            [[e^(~i*theta/2), 0, 0, 0],
             [0, e^(i*theta/2), 0, 0],
             [0, 0, e^(i*theta/2), 0],
             [0, 0, 0, e^(~i*theta/2)]]
        }"""
    )


# ----------------------------------------------------------------------
# Three-qubit gates
# ----------------------------------------------------------------------

@functools.cache
def ccx() -> UnitaryExpression:
    """Toffoli, as a doubly-controlled X."""
    return UnitaryExpression(
        x().controlled().controlled().matrix, name="CCX"
    )


@functools.cache
def cswap() -> UnitaryExpression:
    return UnitaryExpression(swap().controlled().matrix, name="CSWAP")


# ----------------------------------------------------------------------
# Qudit gates
# ----------------------------------------------------------------------

@functools.cache
def shift(d: int) -> UnitaryExpression:
    """The generalized Pauli-X: |j> -> |(j+1) mod d>."""
    m = np.zeros((d, d))
    for j in range(d):
        m[(j + 1) % d, j] = 1.0
    return UnitaryExpression.from_numpy(m, radices=(d,), name=f"X{d}")


@functools.cache
def clock(d: int) -> UnitaryExpression:
    """The generalized Pauli-Z: diag(1, w, w^2, ...), w = e^(2*pi*i/d)."""
    w = np.exp(2j * math.pi / d)
    return UnitaryExpression.from_numpy(
        np.diag(w ** np.arange(d)), radices=(d,), name=f"Z{d}"
    )


@functools.cache
def qudit_hadamard(d: int) -> UnitaryExpression:
    """The discrete-Fourier (generalized Hadamard) gate."""
    w = np.exp(2j * math.pi / d)
    m = w ** np.outer(np.arange(d), np.arange(d)) / math.sqrt(d)
    return UnitaryExpression.from_numpy(m, radices=(d,), name=f"H{d}")


@functools.cache
def csum(d: int = 3) -> UnitaryExpression:
    """The controlled-sum gate: |i, j> -> |i, (i+j) mod d>.

    The standard entangling gate for qudit synthesis (the qutrit
    circuits in paper Figure 5 use CSUM in place of CNOT).
    """
    m = np.zeros((d * d, d * d))
    for i in range(d):
        for j in range(d):
            m[i * d + (i + j) % d, i * d + j] = 1.0
    return UnitaryExpression.from_numpy(
        m, radices=(d, d), name=f"CSUM{d}"
    )


@functools.cache
def qutrit_phase() -> UnitaryExpression:
    """The two-parameter qutrit phase gate diag(1, e^(i a), e^(i b))
    used by the Figure 5 qutrit circuits."""
    return _qgl(
        """P3<3>(a, b) {
            [[1, 0, 0],
             [0, e^(i*a), 0],
             [0, 0, e^(i*b)]]
        }"""
    )


@functools.cache
def embedded_u3(d: int, l0: int, l1: int) -> UnitaryExpression:
    """A U3 rotation embedded in levels ``(l0, l1)`` of a ``d``-level
    qudit — the workhorse parameterized gate for qudit synthesis."""
    if not 0 <= l0 < l1 < d:
        raise ValueError("levels must satisfy 0 <= l0 < l1 < d")
    rows = []
    u3_entries = {
        (0, 0): "cos(theta/2)",
        (0, 1): "~e^(i*lambda)*sin(theta/2)",
        (1, 0): "e^(i*phi)*sin(theta/2)",
        (1, 1): "e^(i*(phi+lambda))*cos(theta/2)",
    }
    levels = {l0: 0, l1: 1}
    for r in range(d):
        row = []
        for c in range(d):
            if r in levels and c in levels:
                row.append(u3_entries[(levels[r], levels[c])])
            else:
                row.append("1" if r == c else "0")
        rows.append("[" + ", ".join(row) + "]")
    source = (
        f"EU3_{d}_{l0}{l1}<{d}>(theta, phi, lambda) {{ ["
        + ", ".join(rows)
        + "] }"
    )
    return _qgl(source)


@functools.cache
def rdiag(d: int) -> UnitaryExpression:
    """A (d-1)-parameter diagonal phase rotation on a d-level qudit."""
    entries = ["1"] + [f"e^(i*a{k})" for k in range(d - 1)]
    rows = []
    for r in range(d):
        rows.append(
            "[" + ", ".join(
                entries[r] if r == c else "0" for c in range(d)
            ) + "]"
        )
    names = ", ".join(f"a{k}" for k in range(d - 1))
    source = f"RDIAG{d}<{d}>({names}) {{ [" + ", ".join(rows) + "] }"
    return _qgl(source)
