"""QuditCircuit: the OpenQudit circuit representation.

The central performance idea (paper section V-B) is *expression
caching*: a gate's semantics are defined with QGL once, validated once
at :meth:`QuditCircuit.cache_operation` time, and thereafter appended to
the circuit via a lightweight integer reference — avoiding the repeated
per-append safety and equality checks that dominate construction time in
traditional frameworks.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..expression import UnitaryExpression
from ..jit.cache import ExpressionCache, canonical_key, global_cache
from ..symbolic.matrix import ExpressionMatrix
from ..tensornet.bytecode import Program
from ..tensornet.compiler import compile_network
from ..tensornet.network import ParamSlot, TensorNetwork

__all__ = ["Operation", "QuditCircuit"]


class Operation:
    """One placed gate: an expression reference, location, and slots."""

    __slots__ = ("ref", "location", "slots")

    def __init__(
        self, ref: int, location: tuple[int, ...], slots: tuple[ParamSlot, ...]
    ):
        self.ref = ref
        self.location = location
        self.slots = slots

    def __repr__(self) -> str:
        return f"Operation(ref={self.ref}, loc={self.location})"


class QuditCircuit:
    """A parameterized quantum circuit over qudits of mixed radices."""

    def __init__(self, radices: Sequence[int] | int):
        if isinstance(radices, int):
            raise TypeError(
                "pass explicit radices, e.g. QuditCircuit([2]*n) or "
                "QuditCircuit.pure(n)"
            )
        self.radices: tuple[int, ...] = tuple(int(r) for r in radices)
        if any(r < 2 for r in self.radices):
            raise ValueError("every radix must be >= 2")
        self._expressions: list[ExpressionMatrix] = []
        self._expr_keys: dict[tuple, int] = {}
        self._ops: list[Operation] = []
        self._num_params = 0
        self._version = 0
        self._vm_cache: dict = {}
        self._structure_cache: tuple[int, tuple] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def pure(radices: Sequence[int]) -> QuditCircuit:
        """Mirror of the paper's ``QuditCircuit::pure(vec![2; n])``."""
        return QuditCircuit(radices)

    @staticmethod
    def qubits(n: int) -> QuditCircuit:
        return QuditCircuit([2] * n)

    @staticmethod
    def qutrits(n: int) -> QuditCircuit:
        return QuditCircuit([3] * n)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_qudits(self) -> int:
        return len(self.radices)

    @property
    def dim(self) -> int:
        d = 1
        for r in self.radices:
            d *= r
        return d

    @property
    def num_params(self) -> int:
        return self._num_params

    @property
    def num_operations(self) -> int:
        return len(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def depth(self) -> int:
        """Circuit depth: longest wire-respecting chain of gates."""
        level = [0] * self.num_qudits
        for op in self._ops:
            start = max(level[q] for q in op.location)
            for q in op.location:
                level[q] = start + 1
        return max(level, default=0)

    def gate_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self._ops:
            name = self._expressions[op.ref].name or f"expr{op.ref}"
            counts[name] = counts.get(name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Expression caching (the fast-construction mechanism)
    # ------------------------------------------------------------------
    def cache_operation(
        self,
        expression: UnitaryExpression | ExpressionMatrix,
        check: bool = True,
    ) -> int:
        """Validate an expression once and return an integer reference.

        The validation (squareness, radix compatibility and a numeric
        unitarity spot-check) is the costly-but-necessary work that
        traditional frameworks repeat on every append; here it happens
        exactly once per distinct expression.
        """
        matrix = (
            expression.matrix
            if isinstance(expression, UnitaryExpression)
            else expression
        )
        key = canonical_key(matrix, grad=False, simplify=False)
        cached = self._expr_keys.get(key)
        if cached is not None:
            return cached
        if check:
            if matrix.shape[0] != matrix.shape[1]:
                raise ValueError("gate expressions must be square")
            if not matrix.radices:
                raise ValueError("gate expressions must carry radices")
            rng = np.random.default_rng(matrix.num_params or 1)
            probe = rng.uniform(-np.pi, np.pi, matrix.num_params)
            if not matrix.is_unitary(probe, tol=1e-7):
                raise ValueError(
                    f"expression {matrix.name or '?'} is not unitary"
                )
        ref = len(self._expressions)
        self._expressions.append(matrix)
        self._expr_keys[key] = ref
        return ref

    def expression(self, ref: int) -> ExpressionMatrix:
        return self._expressions[ref]

    # ------------------------------------------------------------------
    # Template cloning and extension (the synthesis-candidate fast path)
    # ------------------------------------------------------------------
    def copy(self) -> QuditCircuit:
        """A mutation-independent clone sharing the expression table.

        Expressions (and their canonical keys) are immutable, so the
        clone reuses them by reference — every cached ``ref`` of this
        circuit remains valid on the clone, which is what lets a
        synthesis layer generator extend thousands of candidate copies
        with O(1) ``append_ref`` calls and no re-validation.
        """
        clone = QuditCircuit(self.radices)
        clone._expressions = list(self._expressions)
        clone._expr_keys = dict(self._expr_keys)
        clone._ops = list(self._ops)  # Operations are never mutated
        clone._num_params = self._num_params
        return clone

    def structure_key(self) -> tuple:
        """A hashable key identifying the circuit's *template shape*.

        Two circuits share a key iff they have the same radices and the
        same sequence of (expression, location, slot-binding) triples —
        exactly the condition under which they AOT-compile to the same
        TNVM program, so the key is what an engine pool caches on.
        Parameter *values* are not part of a ``param`` slot's identity;
        ``const`` slot values are (they are folded into the bytecode).
        """
        if self._structure_cache is not None:
            version, key = self._structure_cache
            if version == self._version:
                return key
        ref_keys = {ref: key for key, ref in self._expr_keys.items()}
        key = (
            self.radices,
            tuple(
                (
                    ref_keys[op.ref],
                    op.location,
                    tuple(
                        (s.kind, s.index if s.kind == "param" else s.value)
                        for s in op.slots
                    ),
                )
                for op in self._ops
            ),
        )
        self._structure_cache = (self._version, key)
        return key

    def without_operation(
        self, index: int
    ) -> tuple["QuditCircuit", tuple[int, ...]]:
        """Clone with the operation at ``index`` deleted.

        Circuit parameters referenced only by the deleted gate vanish;
        the survivors are renumbered compactly in first-use order.
        Returns ``(circuit, kept)`` where ``kept[j]`` is the old index
        of the clone's parameter ``j`` — ``old_params[list(kept)]`` is
        the warm-start guess for re-instantiating the clone (the
        Section II-B gate-deletion loop).
        """
        n = len(self._ops)
        if not -n <= index < n:
            raise IndexError(f"operation index {index} out of range")
        if index < 0:
            index += n
        clone = QuditCircuit(self.radices)
        clone._expressions = list(self._expressions)
        clone._expr_keys = dict(self._expr_keys)
        remap: dict[int, int] = {}
        kept: list[int] = []
        for i, op in enumerate(self._ops):
            if i == index:
                continue
            slots = []
            for s in op.slots:
                if s.kind == "param":
                    j = remap.get(s.index)
                    if j is None:
                        j = len(kept)
                        remap[s.index] = j
                        kept.append(s.index)
                    slots.append(ParamSlot.param(j))
                else:
                    slots.append(s)
            clone._ops.append(Operation(op.ref, op.location, tuple(slots)))
        clone._num_params = len(kept)
        clone._version = len(clone._ops)
        return clone, tuple(kept)

    def append_circuit(
        self,
        other: QuditCircuit,
        location: Sequence[int] | None = None,
        params: Sequence[float] | None = None,
    ) -> tuple[int, ...]:
        """Append every operation of ``other`` at mapped wire locations.

        ``location[q]`` names the wire of *this* circuit that ``other``'s
        wire ``q`` lands on (identity when omitted).  With ``params``
        omitted, ``other``'s parameterized slots are re-allocated as
        fresh parameters of this circuit (sharing structure preserved)
        and the return value maps each new parameter back to ``other``'s
        parameter index; with ``params`` given, they are bound to those
        constant values instead (and ``()`` is returned).  This is the
        stitching primitive the partitioned synthesizer uses to mount a
        synthesized window back onto the wide circuit.
        """
        if location is None:
            location = tuple(range(other.num_qudits))
        location = tuple(int(q) for q in location)
        if len(location) != other.num_qudits:
            raise ValueError(
                f"location maps {len(location)} wires, other circuit "
                f"has {other.num_qudits}"
            )
        if params is not None and len(params) != other.num_params:
            raise ValueError(
                f"params has {len(params)} values, other circuit "
                f"has {other.num_params} parameters"
            )
        # Validate every mapped location up front so a failure cannot
        # leave this circuit with a partially appended (corrupt) tail.
        for op in other._ops:
            expr = other._expressions[op.ref]
            mapped = tuple(location[w] for w in op.location)
            if len(set(mapped)) != len(mapped):
                raise ValueError(
                    f"location mapping sends operation at {op.location} "
                    f"to repeated wire(s) {mapped}"
                )
            for q, r in zip(mapped, expr.radices):
                if not 0 <= q < self.num_qudits:
                    raise ValueError(f"qudit {q} out of range")
                if self.radices[q] != r:
                    raise ValueError(
                        f"gate radix {r} incompatible with wire {q} "
                        f"(radix {self.radices[q]})"
                    )
        ref_map: dict[int, int] = {}
        remap: dict[int, int] = {}
        added: list[int] = []
        for op in other._ops:
            ref = ref_map.get(op.ref)
            if ref is None:
                # Already validated when cached into ``other``.
                ref = self.cache_operation(other._expressions[op.ref], check=False)
                ref_map[op.ref] = ref
            slots = []
            for s in op.slots:
                if s.kind != "param":
                    slots.append(s)
                elif params is not None:
                    slots.append(ParamSlot.const(params[s.index]))
                else:
                    j = remap.get(s.index)
                    if j is None:
                        j = self._num_params + len(added)
                        remap[s.index] = j
                        added.append(s.index)
                    slots.append(ParamSlot.param(j))
            mapped = tuple(location[q] for q in op.location)
            self._ops.append(Operation(ref, mapped, tuple(slots)))
            self._version += 1
        self._num_params += len(added)
        return tuple(added)

    # ------------------------------------------------------------------
    # Appending gates
    # ------------------------------------------------------------------
    def append_ref(
        self, ref: int, location: Sequence[int] | int
    ) -> tuple[int, ...]:
        """Append by reference with *fresh* circuit parameters.

        Returns the indices of the newly-allocated circuit parameters.
        """
        expr = self._expressions[ref]
        new = tuple(
            range(self._num_params, self._num_params + expr.num_params)
        )
        slots = tuple(ParamSlot.param(j) for j in new)
        self._append(ref, location, slots)
        self._num_params += expr.num_params
        return new

    def append_ref_constant(
        self,
        ref: int,
        location: Sequence[int] | int,
        values: Sequence[float] = (),
    ) -> None:
        """Append by reference with all parameters fixed to constants
        (paper Listing 4's ``append_ref_constant``)."""
        expr = self._expressions[ref]
        if len(values) != expr.num_params:
            raise ValueError(
                f"{expr.name or 'gate'} expects {expr.num_params} values, "
                f"got {len(values)}"
            )
        slots = tuple(ParamSlot.const(v) for v in values)
        self._append(ref, location, slots)

    def append_ref_bound(
        self,
        ref: int,
        location: Sequence[int] | int,
        slots: Sequence[ParamSlot],
    ) -> None:
        """Append with explicit slot bindings (share or fix parameters)."""
        expr = self._expressions[ref]
        if len(slots) != expr.num_params:
            raise ValueError("slot arity mismatch")
        for slot in slots:
            if slot.kind == "param" and not 0 <= slot.index < self._num_params:
                raise ValueError(
                    f"slot references unknown circuit parameter {slot.index}"
                )
        self._append(ref, location, tuple(slots))

    def append(
        self,
        expression: UnitaryExpression | ExpressionMatrix,
        location: Sequence[int] | int,
        values: Sequence[float] | None = None,
    ) -> int:
        """Convenience: cache (if new) and append in one call."""
        ref = self.cache_operation(expression)
        if values is None:
            self.append_ref(ref, location)
        else:
            self.append_ref_constant(ref, location, values)
        return ref

    def _append(
        self,
        ref: int,
        location: Sequence[int] | int,
        slots: tuple[ParamSlot, ...],
    ) -> None:
        if isinstance(location, int):
            location = (location,)
        location = tuple(int(q) for q in location)
        expr = self._expressions[ref]
        if len(location) != expr.num_qudits:
            raise ValueError(
                f"{expr.name or 'gate'} acts on {expr.num_qudits} qudits, "
                f"location {location} names {len(location)}"
            )
        for q, r in zip(location, expr.radices):
            if not 0 <= q < self.num_qudits:
                raise ValueError(f"qudit {q} out of range")
            if self.radices[q] != r:
                raise ValueError(
                    f"gate radix {r} incompatible with wire {q} "
                    f"(radix {self.radices[q]})"
                )
        self._ops.append(Operation(ref, location, slots))
        self._version += 1

    # ------------------------------------------------------------------
    # Lowering and evaluation
    # ------------------------------------------------------------------
    def to_tensor_network(self) -> TensorNetwork:
        """Lower to the tensor-network representation (paper IV-A)."""
        operations = [
            (self._expressions[op.ref], op.location, op.slots)
            for op in self._ops
        ]
        return TensorNetwork.from_operations(
            self.radices, operations, self._num_params
        )

    def compile(
        self,
        fusion: bool = True,
        hoist_constants: bool = True,
        path_strategy: str = "auto",
        contract=None,
        verify: bool | None = None,
    ) -> Program:
        """AOT-compile to TNVM bytecode.

        ``contract`` is an :class:`~repro.tensornet.OutputContract`
        (``None`` = full unitary); column-based contracts compile a
        program whose dynamic section propagates a single column
        vector.  The keyword flags mirror
        :func:`repro.tensornet.compile_network` and exist for the
        ablation benchmarks.
        """
        return compile_network(
            self.to_tensor_network(),
            fusion=fusion,
            hoist_constants=hoist_constants,
            path_strategy=path_strategy,
            contract=contract,
            verify=verify,
        )

    def get_unitary(
        self,
        params: Sequence[float] = (),
        precision: str = "f64",
        cache: ExpressionCache | None = None,
    ) -> np.ndarray:
        """Evaluate the circuit unitary through a (memoized) TNVM."""
        from ..tnvm.vm import TNVM, Differentiation

        key = (self._version, precision)
        vm = self._vm_cache.get(key)
        if vm is None:
            self._vm_cache.clear()
            vm = TNVM(
                self.compile(),
                precision=precision,
                diff=Differentiation.NONE,
                cache=cache,
            )
            self._vm_cache[key] = vm
        # The VM's writers index any sequence; no re-tupling needed.
        return vm.evaluate(params).copy()

    def __getstate__(self) -> dict:
        # Memoized TNVMs hold compiled closures that cannot cross a
        # pickle boundary (checkpoint snapshots, spawn workers); drop
        # both caches — they rebuild lazily and deterministically.
        state = self.__dict__.copy()
        state["_vm_cache"] = {}
        state["_structure_cache"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"<QuditCircuit radices={list(self.radices)} "
            f"ops={len(self._ops)} params={self._num_params}>"
        )
