"""Scalable benchmark-circuit builders (paper sections V-B and V-C).

* :func:`build_qft_circuit` — the Quantum Fourier Transform used in the
  Figure 4 construction benchmark.
* :func:`build_dtc_circuit` — the Discrete Time Crystal Hamiltonian-
  simulation circuit from the Benchpress suite (paper Listing 4).
* :func:`build_qsearch_ansatz` — the Figure 5 family of PQCs used by
  the instantiation benchmarks (shallow/deep qubit and qutrit variants).
"""

from __future__ import annotations

import math

import numpy as np

from . import gates
from .circuit import QuditCircuit

__all__ = [
    "build_qft_circuit",
    "build_dtc_circuit",
    "build_qsearch_ansatz",
    "FIG5_BENCHMARKS",
    "fig5_circuit",
]


def build_qft_circuit(n: int, include_swaps: bool = True) -> QuditCircuit:
    """The n-qubit Quantum Fourier Transform.

    Gates are cached once and appended by integer reference with
    constant parameters; construction is therefore O(1) per gate with
    no repeated expression validation (the Figure 4 fast path).
    """
    circ = QuditCircuit.pure([2] * n)
    h_ref = circ.cache_operation(gates.h())
    cp_ref = circ.cache_operation(gates.cp())
    swap_ref = circ.cache_operation(gates.swap())
    for target in range(n):
        circ.append_ref_constant(h_ref, target)
        for control in range(target + 1, n):
            angle = math.pi / (2 ** (control - target))
            circ.append_ref_constant(
                cp_ref, (control, target), (angle,)
            )
    if include_swaps:
        for q in range(n // 2):
            circ.append_ref_constant(swap_ref, (q, n - 1 - q))
    return circ


def build_dtc_circuit(
    n: int,
    layers: int = 1,
    g: float = 0.95,
    seed: int = 0,
) -> QuditCircuit:
    """The Discrete Time Crystal benchmark circuit (paper Listing 4).

    Each Floquet layer applies RX(g*pi) to every qubit, RZZ with random
    couplings on the even and odd bonds, and RZ with random fields on
    every qubit — matching the Benchpress DTC generator's structure.
    """
    rng = np.random.default_rng(seed)
    circ = QuditCircuit.pure([2] * n)
    rx_ref = circ.cache_operation(gates.rx())
    rz_ref = circ.cache_operation(gates.rz())
    rzz_ref = circ.cache_operation(gates.rzz())
    for _ in range(layers):
        for q in range(n):
            circ.append_ref_constant(rx_ref, q, (g * math.pi,))
        for start in (0, 1):
            for q in range(start, n - 1, 2):
                theta = float(rng.uniform(math.pi / 16, 3 * math.pi / 16))
                circ.append_ref_constant(rzz_ref, (q, q + 1), (theta,))
        for q in range(n):
            phi = float(rng.uniform(-math.pi, math.pi))
            circ.append_ref_constant(rz_ref, q, (phi,))
    return circ


def build_qsearch_ansatz(
    num_qudits: int,
    depth: int,
    radix: int = 2,
) -> QuditCircuit:
    """A QSearch-style PQC (the paper's Figure 5 circuit family).

    The qubit version opens with a U3 on every wire, then applies
    ``depth`` entangling blocks — CNOT on a linear-chain pair followed
    by U3 on both wires.  The qutrit version substitutes CSUM for CNOT
    and the two-parameter qutrit phase gate (plus an embedded U3 pair
    for expressivity) for U3, as described for Figure 5.
    """
    if radix == 2:
        single, entangler = gates.u3(), gates.cx()
    elif radix == 3:
        single, entangler = gates.qutrit_phase(), gates.csum(3)
    else:
        single, entangler = gates.embedded_u3(radix, 0, 1), gates.csum(radix)

    circ = QuditCircuit.pure([radix] * num_qudits)
    s_ref = circ.cache_operation(single)
    e_ref = circ.cache_operation(entangler)

    for q in range(num_qudits):
        circ.append_ref(s_ref, q)
    if num_qudits == 1:
        return circ
    pairs = [(q, q + 1) for q in range(num_qudits - 1)]
    for block in range(depth):
        a, b = pairs[block % len(pairs)]
        circ.append_ref(e_ref, (a, b))
        circ.append_ref(s_ref, a)
        circ.append_ref(s_ref, b)
    return circ


#: The Figure 5/6/7 benchmark suite: name -> (qudits, depth, radix).
#: "Deep" is 8 entangling blocks (57 parameters) — near the edge of
#: what the paper's deliberately naive LM converges on from random
#: starts (see Discussion VI-A and EXPERIMENTS.md).
FIG5_BENCHMARKS: dict[str, tuple[int, int, int]] = {
    "2-qubit shallow": (2, 2, 2),
    "3-qubit shallow": (3, 4, 2),
    "3-qubit deep": (3, 8, 2),
    "2-qutrit shallow": (2, 2, 3),
    "3-qutrit shallow": (3, 4, 3),
}


def fig5_circuit(name: str) -> QuditCircuit:
    """Instantiate one of the named Figure 5 benchmark ansatz circuits."""
    try:
        qudits, depth, radix = FIG5_BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(FIG5_BENCHMARKS)}"
        ) from None
    return build_qsearch_ansatz(qudits, depth, radix)
