"""Contraction-path solvers (paper section IV-A hybrid strategy).

Finding the optimal contraction order is NP-hard; OpenQudit uses an
optimal solver for small networks (here an exhaustive dynamic program in
the style of Pfeifer-Haegeman-Verstraete) and a fast greedy heuristic in
the style of Gray & Kourtis's hyper-greedy baseline above the
``OPTIMAL_CUTOFF`` of 7 tensors.

A *path* is a list of pairs in the opt_einsum convention: each pair
names positions into the current list of intermediate tensors; the
contraction result is appended at the end of the list.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Sequence

__all__ = [
    "OPTIMAL_CUTOFF",
    "find_contraction_path",
    "optimal_path",
    "greedy_path",
    "path_cost",
]

OPTIMAL_CUTOFF = 7


def find_contraction_path(
    tensor_indices: Sequence[frozenset[int] | set[int]],
    index_dims: dict[int, int],
    open_indices: set[int] | frozenset[int],
    strategy: str = "auto",
) -> list[tuple[int, int]]:
    """Return a pairwise contraction path.

    ``strategy`` selects the solver: ``"auto"`` (the paper's hybrid —
    optimal below the cutoff, greedy above), ``"optimal"``, ``"greedy"``,
    or ``"sequential"`` (contract in gate order; the no-pathfinding
    ablation baseline).
    """
    tensor_indices = [frozenset(t) for t in tensor_indices]
    open_indices = frozenset(open_indices)
    if len(tensor_indices) <= 1:
        return []
    if strategy == "sequential":
        return _sequential_path(len(tensor_indices))
    if strategy == "optimal" or (
        strategy == "auto" and len(tensor_indices) <= OPTIMAL_CUTOFF
    ):
        return optimal_path(tensor_indices, index_dims, open_indices)
    if strategy in ("auto", "greedy"):
        return greedy_path(tensor_indices, index_dims, open_indices)
    raise ValueError(
        f"unknown path strategy {strategy!r}; choose auto, optimal, "
        "greedy, or sequential"
    )


def _sequential_path(n: int) -> list[tuple[int, int]]:
    """Left-fold path: ((T0 T1) T2) T3 ... — the naive gate-order
    accumulation a dense evaluator performs.

    Pair positions follow the opt_einsum convention (results append at
    the end of the working list), so folding T_k into the running
    product pairs position 0 (the next gate) with the last position.
    """
    if n < 2:
        return []
    path = [(0, 1)]
    for k in range(2, n):
        path.append((0, n - k))
    return path


def _contract_sets(
    a: frozenset[int],
    b: frozenset[int],
    open_indices: frozenset[int],
) -> frozenset[int]:
    """Result indices of a pairwise contraction.

    In a circuit network every index has at most two endpoints, so the
    shared non-open indices are exactly the summed ones.
    """
    shared = a & b
    keep = (a | b) - (shared - open_indices)
    return keep


def _pair_cost(
    a: frozenset[int], b: frozenset[int], index_dims: dict[int, int]
) -> float:
    """FLOP proxy: product of all dimensions involved in the pairing."""
    cost = 1.0
    for idx in a | b:
        cost *= index_dims[idx]
    return cost


def _size(indices: frozenset[int], index_dims: dict[int, int]) -> float:
    size = 1.0
    for idx in indices:
        size *= index_dims[idx]
    return size


def optimal_path(
    tensor_indices: list[frozenset[int]],
    index_dims: dict[int, int],
    open_indices: frozenset[int],
) -> list[tuple[int, int]]:
    """Exhaustive subset dynamic program (optimal total FLOP cost).

    ``best[S]`` is the minimal cost of fully contracting the tensor
    subset ``S`` into one intermediate; it is reached by splitting ``S``
    into two nonempty halves.  Exponential in the tensor count, hence
    the cutoff.
    """
    n = len(tensor_indices)
    if n > 16:
        # 3^n submask enumeration: refuse sizes that would hang.
        raise ValueError(
            f"optimal path solver is exponential; {n} tensors exceeds "
            "the supported limit (16) — use the greedy solver"
        )
    full = (1 << n) - 1

    result_idx: dict[int, frozenset[int]] = {}
    for i, t in enumerate(tensor_indices):
        result_idx[1 << i] = t

    def indices_of(mask: int) -> frozenset[int]:
        cached = result_idx.get(mask)
        if cached is not None:
            return cached
        # Indices that survive contraction of the subset: open indices
        # or indices with an endpoint outside the subset.
        counts: dict[int, int] = {}
        for i in range(n):
            if mask & (1 << i):
                for idx in tensor_indices[i]:
                    counts[idx] = counts.get(idx, 0) + 1
        outside: set[int] = set()
        for i in range(n):
            if not mask & (1 << i):
                outside.update(tensor_indices[i])
        keep = frozenset(
            idx
            for idx in counts
            if idx in open_indices or idx in outside
        )
        result_idx[mask] = keep
        return keep

    best_cost: dict[int, float] = {1 << i: 0.0 for i in range(n)}
    best_split: dict[int, tuple[int, int]] = {}

    # Iterate subsets by population count.
    masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        masks_by_size[mask.bit_count()].append(mask)

    for size in range(2, n + 1):
        for mask in masks_by_size[size]:
            best = math.inf
            split = None
            # Enumerate proper submasks; canonicalize by requiring the
            # lowest set bit to stay in the left half.
            low = mask & (-mask)
            sub = (mask - 1) & mask
            while sub:
                if sub & low:
                    other = mask ^ sub
                    ca = best_cost.get(sub, math.inf)
                    cb = best_cost.get(other, math.inf)
                    if ca + cb < best:
                        ia, ib = indices_of(sub), indices_of(other)
                        cost = ca + cb + _pair_cost(ia, ib, index_dims)
                        if cost < best:
                            best = cost
                            split = (sub, other)
                sub = (sub - 1) & mask
            best_cost[mask] = best
            best_split[mask] = split

    # Materialize the split tree as an opt_einsum-style pair list.
    pairs: list[tuple[int, int]] = []
    # position bookkeeping: list of masks in "current tensor list" order
    positions: list[int] = [1 << i for i in range(n)]

    def emit(mask: int) -> None:
        if mask.bit_count() == 1:
            return
        left, right = best_split[mask]
        emit(left)
        emit(right)
        i = positions.index(left)
        j = positions.index(right)
        a, b = min(i, j), max(i, j)
        pairs.append((a, b))
        del positions[b]
        del positions[a]
        positions.append(mask)

    emit(full)
    return pairs


def greedy_path(
    tensor_indices: list[frozenset[int]],
    index_dims: dict[int, int],
    open_indices: frozenset[int],
) -> list[tuple[int, int]]:
    """Greedy heuristic: repeatedly contract the connected pair that
    minimizes the size of the resulting intermediate (ties by FLOP
    cost), falling back to outer products only when the network is
    disconnected."""
    alive: dict[int, frozenset[int]] = dict(enumerate(tensor_indices))
    pairs: list[tuple[int, int]] = []
    # Map original position labels to current list positions lazily.
    order: list[int] = list(alive)
    next_label = len(tensor_indices)

    heap: list[tuple[float, float, int, int]] = []

    def push_pair(u: int, v: int) -> None:
        iu, iv = alive[u], alive[v]
        if not iu & iv:
            return
        keep = _contract_sets(iu, iv, open_indices)
        heapq.heappush(
            heap,
            (
                _size(keep, index_dims),
                _pair_cost(iu, iv, index_dims),
                min(u, v),
                max(u, v),
            ),
        )

    labels = list(alive)
    for u, v in itertools.combinations(labels, 2):
        push_pair(u, v)

    def emit(u: int, v: int) -> int:
        nonlocal next_label
        i = order.index(u)
        j = order.index(v)
        a, b = min(i, j), max(i, j)
        pairs.append((a, b))
        del order[b]
        del order[a]
        label = next_label
        next_label += 1
        order.append(label)
        alive[label] = _contract_sets(alive.pop(u), alive.pop(v), open_indices)
        return label

    while len(alive) > 1:
        chosen: tuple[int, int] | None = None
        while heap:
            _, _, u, v = heapq.heappop(heap)
            if u in alive and v in alive:
                chosen = (u, v)
                break
        if chosen is None:
            # Disconnected components: outer-product the two smallest.
            by_size = sorted(
                alive, key=lambda t: _size(alive[t], index_dims)
            )
            chosen = (by_size[0], by_size[1])
        new_label = emit(*chosen)
        for other in alive:
            if other != new_label:
                push_pair(new_label, other)
    return pairs


def path_cost(
    tensor_indices: Sequence[frozenset[int] | set[int]],
    index_dims: dict[int, int],
    open_indices: set[int] | frozenset[int],
    path: list[tuple[int, int]],
) -> float:
    """Total FLOP-proxy cost of a path (for tests and diagnostics)."""
    open_indices = frozenset(open_indices)
    current = [frozenset(t) for t in tensor_indices]
    total = 0.0
    for i, j in path:
        a, b = current[i], current[j]
        total += _pair_cost(a, b, index_dims)
        keep = _contract_sets(a, b, open_indices)
        for k in sorted((i, j), reverse=True):
            del current[k]
        current.append(keep)
    return total
