"""The AOT compiler: tensor network -> contraction tree -> bytecode.

``compile_network`` is the paper's ahead-of-time pipeline (section IV-A):

1. solve the contraction-ordering problem (optimal DP for <= 7 tensors,
   greedy heuristic above);
2. materialize the path as a binary contraction tree, pre-applying any
   traces symbolically at the leaves;
3. run the fusion pass — leaf transposes are pushed into the leaves'
   symbolic QGL expressions so the JIT emits pre-transposed matrices;
4. analyze parameter dependencies and serialize the tree into two-
   section bytecode, scheduling each contraction with the
   transpose-transpose-GEMM-transpose (TTGT) strategy.
"""

from __future__ import annotations

import math

from .. import telemetry
from ..jit.cache import canonical_key
from ..symbolic import expr as E
from ..symbolic.matrix import ExpressionMatrix
from .bytecode import BufferSpec, Instruction, Program
from .contract import OutputContract, specialize_network
from .network import TensorNetwork
from .path import find_contraction_path
from .tree import ContractionTree, TreeNode, build_contraction_tree

__all__ = ["compile_network", "plan_contraction"]


def plan_contraction(
    network: TensorNetwork, path_strategy: str = "auto"
) -> ContractionTree:
    """Solve the ordering problem and materialize the tree."""
    tensor_sets = [frozenset(t.indices) for t in network.tensors]
    path = find_contraction_path(
        tensor_sets,
        network.index_dims,
        set(network.open_indices),
        strategy=path_strategy,
    )
    return build_contraction_tree(network, path)


def compile_network(
    network: TensorNetwork,
    fusion: bool = True,
    hoist_constants: bool = True,
    path_strategy: str = "auto",
    contract: OutputContract | None = None,
    verify: bool | None = None,
) -> Program:
    """Compile a tensor network into TNVM bytecode.

    ``contract`` selects the output contract (default: full unitary).
    Column-based contracts specialize the network first — open input
    legs are fixed at the column's basis digits — so the emitted
    bytecode propagates ``(D,)`` vectors through the dynamic section
    and ``program.output_shape`` is ``(D, 1)``.

    The keyword flags exist for the ablation benchmarks:

    ``fusion=False``
        disables transpose fusion — leaf permutations become runtime
        ``TRANSPOSE`` instructions instead of pre-transposed JIT code;
    ``hoist_constants=False``
        disables the constant section — parameter-free subtrees are
        recomputed on every evaluation;
    ``path_strategy``
        ``"auto"`` (paper hybrid), ``"optimal"``, ``"greedy"``, or
        ``"sequential"`` (gate-order folding, no pathfinding).

    ``verify=True`` (or the ``REPRO_VERIFY=1`` environment switch)
    runs the :mod:`repro.analysis` bytecode verifier over the emitted
    program and raises
    :class:`~repro.analysis.VerificationError` if the compiler
    produced inconsistent bytecode; ``verify=False`` overrides the
    environment.
    """
    if not network.tensors:
        raise ValueError("cannot compile an empty tensor network")
    contract = OutputContract.coerce(contract)
    tracer = telemetry.tracer()
    with tracer.span(
        "compile_network", category="compile",
        tensors=len(network.tensors), contract=str(contract.key()),
    ):
        network = specialize_network(network, contract)
        with tracer.span("pathfind", category="pathfind",
                         strategy=path_strategy):
            tree = plan_contraction(network, path_strategy)
        with tracer.span("codegen", category="compile"):
            program = _CodeGen(
                tree, fusion=fusion, hoist=hoist_constants
            ).generate()
    program.contract = contract.program_key()
    telemetry.metrics().counter("compile.networks").add()
    from ..analysis import maybe_verify_program

    maybe_verify_program(
        program, verify=verify, subject="compiled program"
    )
    return program


class _CodeGen:
    def __init__(
        self,
        tree: ContractionTree,
        fusion: bool = True,
        hoist: bool = True,
    ):
        self.tree = tree
        self.fusion = fusion
        self.hoist = hoist
        self.network = tree.network
        self.dims = tree.network.index_dims
        self.program = Program(
            num_params=self.network.num_params,
            radices=self.network.radices,
        )
        self._expr_ids: dict[tuple, int] = {}
        #: node_id -> buffer id currently holding the node's data
        self._node_buf: dict[int, int] = {}

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        root = self.tree.root
        target = self.network.open_out + self.network.open_in
        # Contract-specialized networks have no open inputs: the
        # output degenerates from (D, D) to a (D, 1) column.
        dim_out = math.prod(
            self.dims[i] for i in self.network.open_out
        )
        dim_in = math.prod(self.dims[i] for i in self.network.open_in)
        if root.is_leaf:
            # A single-gate circuit: fuse the final permutation too.
            self._fuse_root_leaf(root, target, (dim_out, dim_in))
        self._fuse_or_mark_transposes(root)
        self._emit_node(root)

        # Bring the root into (outputs..., inputs...) order.
        root_buf = self._node_buf[root.node_id]
        if root.indices != target:
            perm = tuple(root.indices.index(i) for i in target)
            out_buf = self._new_buffer(
                dim_out * dim_in,
                root.params,
                constant=self._is_const(root.params),
            )
            self._append(
                root.params,
                Instruction(
                    opcode="TRANSPOSE",
                    a_buf=root_buf,
                    out_buf=out_buf,
                    shape=self._shape_of(root.indices),
                    perm=perm,
                    params=root.params,
                ),
            )
            root_buf = out_buf
        self.program.output_buffer = root_buf
        self.program.output_shape = (dim_out, dim_in)
        self.program.validate()
        return self.program

    # ------------------------------------------------------------------
    # Fusion pass: push leaf permutations into the symbolic expressions.
    # ------------------------------------------------------------------
    def _fuse_or_mark_transposes(self, node: TreeNode) -> None:
        """Pre-walk deciding target layouts; leaves get fused in place."""
        if node.is_leaf:
            return
        a, b = node.left, node.right
        summed = set(node.contracted)
        contracted_order = [i for i in a.indices if i in summed]
        a_free = [i for i in a.indices if i not in summed]
        b_free = [i for i in b.indices if i not in summed]
        a_target = tuple(a_free + contracted_order)
        b_target = tuple(contracted_order + b_free)
        m = math.prod(self.dims[i] for i in a_free)
        k = math.prod(self.dims[i] for i in contracted_order)
        n = math.prod(self.dims[i] for i in b_free)
        self._prepare_child(a, a_target, (m, k))
        self._prepare_child(b, b_target, (k, n))
        self._fuse_or_mark_transposes(a)
        self._fuse_or_mark_transposes(b)

    def _prepare_child(
        self,
        child: TreeNode,
        target: tuple[int, ...],
        matrix_shape: tuple[int, int],
    ) -> None:
        if child.indices == target:
            return
        if child.is_leaf and self.fusion:
            # FUSION: rewrite the leaf's expression so the JIT directly
            # produces the permuted matrix; no runtime TRANSPOSE.
            perm = tuple(child.indices.index(i) for i in target)
            shape = self._shape_of(child.indices)
            fused = child.tensor.expression.reshape_permute(
                shape, perm, matrix_shape
            )
            child.tensor.expression = fused
            child.indices = target

    # Root-level leaf fusion (root is a single gate covering the circuit).
    def _fuse_root_leaf(
        self,
        node: TreeNode,
        target: tuple[int, ...],
        matrix_shape: tuple[int, int],
    ) -> None:
        self._prepare_child(node, target, matrix_shape)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_node(self, node: TreeNode) -> int:
        done = self._node_buf.get(node.node_id)
        if done is not None:
            return done
        if node.is_leaf:
            buf = self._emit_leaf(node)
        else:
            buf = self._emit_contraction(node)
        self._node_buf[node.node_id] = buf
        return buf

    def _emit_leaf(self, node: TreeNode) -> int:
        tensor = node.tensor
        expr = tensor.expression
        # Bind constant slots into the expression at compile time; a
        # fully-constant gate moves to the constant section entirely.
        const_bindings = {
            expr.params[s]: tensor.slots[s].value
            for s in range(len(tensor.slots))
            if tensor.slots[s].kind == "const"
        }
        if const_bindings:
            expr = expr.bind(const_bindings)
        slots = tuple(
            slot.index for slot in tensor.slots if slot.kind == "param"
        )
        if len(slots) != expr.num_params:
            raise AssertionError(
                "slot/parameter mismatch after constant binding"
            )
        expr_id = self._intern_expression(expr)
        size = math.prod(self.dims[i] for i in node.indices)
        buf = self._new_buffer(size, node.params, constant=self._is_const(node.params))
        self._append(
            node.params,
            Instruction(
                opcode="WRITE",
                expr_id=expr_id,
                slots=slots,
                out_buf=buf,
                params=node.params,
            ),
        )
        return buf

    def _emit_contraction(self, node: TreeNode) -> int:
        a, b = node.left, node.right
        a_buf = self._emit_node(a)
        b_buf = self._emit_node(b)
        summed = set(node.contracted)
        contracted_order = [i for i in a.indices if i in summed]
        a_free = [i for i in a.indices if i not in summed]
        b_free = [i for i in b.indices if i not in summed]
        m = math.prod(self.dims[i] for i in a_free)
        k = math.prod(self.dims[i] for i in contracted_order)
        n = math.prod(self.dims[i] for i in b_free)

        a_target = tuple(a_free + contracted_order)
        b_target = tuple(contracted_order + b_free)
        a_buf = self._ensure_layout(a, a_buf, a_target)
        b_buf = self._ensure_layout(b, b_buf, b_target)

        out = self._new_buffer(m * n, node.params, constant=self._is_const(node.params))
        if not contracted_order:
            # Pure outer product: KRON of the flattened operands gives
            # the concatenated-index row-major layout directly.
            instr = Instruction(
                opcode="KRON",
                a_buf=a_buf,
                b_buf=b_buf,
                out_buf=out,
                a_shape=(m, 1),
                b_shape=(n, 1),
                params=node.params,
            )
        else:
            instr = Instruction(
                opcode="MATMUL",
                a_buf=a_buf,
                b_buf=b_buf,
                out_buf=out,
                a_shape=(m, k),
                b_shape=(k, n),
                params=node.params,
            )
        self._append(node.params, instr)
        return out

    def _ensure_layout(
        self, child: TreeNode, buf: int, target: tuple[int, ...]
    ) -> int:
        """Emit a TTGT transpose unless the layout already matches.

        Leaves were already fused by the pre-pass, so this only fires
        for internal intermediates whose natural (a_free..., b_free...)
        order differs from what the parent contraction needs.
        """
        if child.indices == target:
            return buf
        perm = tuple(child.indices.index(i) for i in target)
        size = math.prod(self.dims[i] for i in child.indices)
        out = self._new_buffer(
            size, child.params, constant=self._is_const(child.params)
        )
        self._append(
            child.params,
            Instruction(
                opcode="TRANSPOSE",
                a_buf=buf,
                out_buf=out,
                shape=self._shape_of(child.indices),
                perm=perm,
                params=child.params,
            ),
        )
        # Record the new canonical layout for this node's data.
        child.indices = target
        self._node_buf[child.node_id] = out
        return out

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _shape_of(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(self.dims[i] for i in indices)

    def _new_buffer(
        self, size: int, params: tuple[int, ...], constant: bool
    ) -> int:
        buf = BufferSpec(
            buffer_id=len(self.program.buffers),
            size=size,
            params=tuple(params),
            constant=constant,
        )
        self.program.buffers.append(buf)
        return buf.buffer_id

    def _is_const(self, params: tuple[int, ...]) -> bool:
        """Does this data belong in the constant section?"""
        return self.hoist and not params

    def _append(self, params: tuple[int, ...], instr: Instruction) -> None:
        if self._is_const(params):
            self.program.const_section.append(instr)
        else:
            self.program.dynamic_section.append(instr)

    def _intern_expression(self, expr: ExpressionMatrix) -> int:
        key = canonical_key(expr, grad=False, simplify=False)
        cached = self._expr_ids.get(key)
        if cached is not None:
            return cached
        expr_id = len(self.program.expressions)
        self.program.expressions.append(expr)
        self._expr_ids[key] = expr_id
        return expr_id
