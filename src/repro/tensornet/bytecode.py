"""The TNVM bytecode: Table II instruction set and program container.

Instructions act on abstract, labeled buffers.  The program is split
into two sections (paper section IV-A): a *constant* section executed
once at TNVM initialization (subtrees independent of every circuit
parameter) and a *dynamic* section executed on every evaluation.

Every instruction is annotated with the sorted set of circuit-parameter
indices its output depends on; the TNVM uses this to specialize each
instruction for forward-mode automatic differentiation.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, fields
from typing import Any

from ..symbolic.matrix import ExpressionMatrix

__all__ = [
    "OPCODES",
    "Instruction",
    "BufferSpec",
    "Program",
]

#: The Table II opcode set.
OPCODES = ("WRITE", "MATMUL", "KRON", "HADAMARD", "TRANSPOSE")


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction.

    Operand meaning by opcode (matching Table II):

    WRITE      ``expr_id``; ``out_buf``; ``slots`` maps the referenced
               expression's parameters to circuit parameter indices.
    MATMUL     ``a_buf (m,k)`` @ ``b_buf (k,n)`` -> ``out_buf (m,n)``;
               matrix shapes are carried in ``a_shape``/``b_shape``.
    KRON       Kronecker product of ``a_buf`` viewed as ``a_shape`` and
               ``b_buf`` viewed as ``b_shape``.
    HADAMARD   element-wise product, both operands viewed as ``a_shape``.
    TRANSPOSE  fused reshape(``shape``)-permute(``perm``)-reshape of
               ``a_buf`` into ``out_buf``.
    """

    opcode: str
    out_buf: int
    a_buf: int = -1
    b_buf: int = -1
    expr_id: int = -1
    slots: tuple[int, ...] = ()
    a_shape: tuple[int, ...] = ()
    b_shape: tuple[int, ...] = ()
    shape: tuple[int, ...] = ()
    perm: tuple[int, ...] = ()
    #: sorted circuit-parameter indices the output depends on
    params: tuple[int, ...] = ()

    def render(self) -> str:
        if self.opcode == "WRITE":
            return (
                f"WRITE     e{self.expr_id}{list(self.slots)} "
                f"-> b{self.out_buf}"
            )
        if self.opcode in ("MATMUL", "KRON", "HADAMARD"):
            return (
                f"{self.opcode:<9} b{self.a_buf}{list(self.a_shape)} "
                f"b{self.b_buf}{list(self.b_shape)} -> b{self.out_buf}"
            )
        return (
            f"TRANSPOSE b{self.a_buf} shape={list(self.shape)} "
            f"perm={list(self.perm)} -> b{self.out_buf}"
        )


@dataclass(frozen=True)
class BufferSpec:
    """An abstract buffer: flat element count plus parameter deps."""

    buffer_id: int
    size: int
    params: tuple[int, ...]
    constant: bool


@dataclass
class Program:
    """An AOT-compiled tensor-network bytecode program."""

    num_params: int
    radices: tuple[int, ...]
    expressions: list[ExpressionMatrix] = field(default_factory=list)
    buffers: list[BufferSpec] = field(default_factory=list)
    const_section: list[Instruction] = field(default_factory=list)
    dynamic_section: list[Instruction] = field(default_factory=list)
    output_buffer: int = -1
    output_shape: tuple[int, int] = (1, 1)
    #: the output contract's bytecode identity — ``("full",)`` or
    #: ``("column", j)`` (see :mod:`repro.tensornet.contract`); VMs
    #: shape their output views and backends from this
    contract: tuple[str | int, ...] = ("full",)

    @property
    def dim(self) -> int:
        return self.output_shape[0]

    @property
    def num_instructions(self) -> int:
        return len(self.const_section) + len(self.dynamic_section)

    @property
    def memory_elements(self) -> int:
        """Total complex elements across all buffers (the single
        contiguous region the TNVM allocates)."""
        return sum(b.size for b in self.buffers)

    def unique_expression_count(self) -> int:
        return len(self.expressions)

    # ------------------------------------------------------------------
    # Serialization (engine-pool sharing across processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Pickle the declared fields only.

        The fused program backend caches generated megakernels on the
        instance (``_fused_kernels``); those ship explicitly with
        :class:`~repro.instantiation.SerializedEngine`, so program
        bytes stay lean and cache state never leaks through
        :meth:`to_bytes`.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_bytes(self) -> bytes:
        """A compact, process-portable serialized form.

        Instructions and buffer specs are plain dataclasses and the
        expression matrices pickle through the symbolic layer's
        re-interning reducers, so a program AOT-compiled in one process
        can be shipped to a worker and rehydrated with
        :meth:`from_bytes` instead of re-paying the compile there.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(data: bytes) -> Program:
        """Rehydrate a program serialized with :meth:`to_bytes`."""
        program = pickle.loads(data)
        if not isinstance(program, Program):
            raise TypeError(
                f"serialized object is {type(program).__name__}, "
                "not a Program"
            )
        return program

    def disassemble(self) -> str:
        """Human-readable listing of both sections."""
        lines = [
            f"; program: {self.num_params} params, "
            f"{len(self.buffers)} buffers, "
            f"{self.memory_elements} complex elements",
        ]
        lines.append("; constant section")
        for instr in self.const_section:
            lines.append("  " + instr.render())
        lines.append("; dynamic section")
        for instr in self.dynamic_section:
            lines.append("  " + instr.render())
        lines.append(
            f"; output: b{self.output_buffer} "
            f"{self.output_shape[0]}x{self.output_shape[1]} "
            f"contract={self.contract!r}"
        )
        return "\n".join(lines)

    def validate(self) -> None:
        """Internal consistency checks (used heavily by tests)."""
        n_buf = len(self.buffers)
        n_expr = len(self.expressions)
        seen_written: set[int] = set()
        for section, constant in (
            (self.const_section, True),
            (self.dynamic_section, False),
        ):
            for instr in section:
                if instr.opcode not in OPCODES:
                    raise ValueError(f"bad opcode {instr.opcode}")
                if not 0 <= instr.out_buf < n_buf:
                    raise ValueError("out_buf out of range")
                if self.buffers[instr.out_buf].constant != constant:
                    raise ValueError(
                        "instruction writes a buffer of the wrong section"
                    )
                for operand in (instr.a_buf, instr.b_buf):
                    if operand == -1:
                        continue
                    if not 0 <= operand < n_buf:
                        raise ValueError("operand buffer out of range")
                    if operand not in seen_written:
                        raise ValueError(
                            f"buffer b{operand} read before written"
                        )
                if instr.opcode == "WRITE":
                    if not 0 <= instr.expr_id < n_expr:
                        raise ValueError("expr_id out of range")
                    expr = self.expressions[instr.expr_id]
                    if len(instr.slots) != expr.num_params:
                        raise ValueError("slot arity mismatch")
                seen_written.add(instr.out_buf)
        if self.output_buffer not in seen_written and self.buffers:
            raise ValueError("output buffer never written")
