"""AOT tensor-network compilation: lowering, pathfinding, bytecode."""

from .bytecode import OPCODES, BufferSpec, Instruction, Program
from .compiler import compile_network, plan_contraction
from .contract import (
    FULL_UNITARY,
    OutputContract,
    column_digits,
    specialize_network,
)
from .network import ParamSlot, TensorNetwork, TNTensor
from .path import (
    OPTIMAL_CUTOFF,
    find_contraction_path,
    greedy_path,
    optimal_path,
    path_cost,
)
from .tree import ContractionTree, TreeNode, build_contraction_tree

__all__ = [
    "TensorNetwork",
    "TNTensor",
    "ParamSlot",
    "compile_network",
    "plan_contraction",
    "OutputContract",
    "FULL_UNITARY",
    "column_digits",
    "specialize_network",
    "Program",
    "Instruction",
    "BufferSpec",
    "OPCODES",
    "find_contraction_path",
    "optimal_path",
    "greedy_path",
    "path_cost",
    "OPTIMAL_CUTOFF",
    "ContractionTree",
    "TreeNode",
    "build_contraction_tree",
]
