"""Output contracts: what a compiled engine promises to produce.

PR 5's state-preparation residuals consumed only ``U(theta) e_0`` —
the first column of the evaluated unitary — yet every engine still
propagated full ``D x D`` matrices through the dynamic section and
sliced at the end.  An :class:`OutputContract` makes "what does the
caller actually need" an explicit part of the compiled-engine API:

``FULL_UNITARY``
    the default: the program evaluates the whole ``(D, D)`` unitary.
``COLUMN(j)``
    the program evaluates the single column ``U(theta) e_j`` as a
    ``(D,)`` vector.  Specialization happens at the *network* level
    (:func:`specialize_network`): the open input legs are fixed at
    column ``j``'s basis digits, so first-layer gate tensors become
    sliced vectors and every downstream contraction the pathfinder
    emits is a matrix-vector (or smaller) product — ``O(D)`` per gate
    instead of ``O(D^2)``.
``OVERLAP(bra, j)``
    the scalar ``<bra| U(theta) e_j``.  Shares the column program's
    bytecode (same :meth:`program_key`); the reduction against the
    fixed bra happens inside the VM.

A contract has two identities:

* :meth:`program_key` — the *bytecode* identity: which compiled
  program can serve it.  ``OVERLAP`` maps to its column's key, so an
  overlap VM rides an existing column program.
* :meth:`key` — the full *engine* identity (includes the bra), used by
  :class:`~repro.instantiation.EnginePool` so full-unitary and column
  engines for one circuit shape coexist in the cache.

Numerical note: a column program's output agrees with the full
program's corresponding column to machine precision, and bit-exactly
across the column world's own configurations (closures/fused,
scalar/batched, worker counts, serialized rehydration).  Literal
bitwise identity *between* the two worlds is not promised: BLAS
matrix-matrix and matrix-vector kernels accumulate in different orders,
so even ``(A @ B)[:, 0]`` and ``A @ B[:, 0]`` differ in the last ulp
for ``D >= 3``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, replace
from typing import Any

from .network import TensorNetwork, TNTensor

__all__ = [
    "OutputContract",
    "FULL_UNITARY",
    "column_digits",
    "specialize_network",
]

_KINDS = ("full", "column", "overlap")


@dataclass(frozen=True)
class OutputContract:
    """One engine output contract (use the factory classmethods)."""

    kind: str = "full"
    column_index: int = 0
    #: fixed bra amplitudes (``overlap`` only), as a tuple of complex
    bra: tuple[complex, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"contract kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.column_index < 0:
            raise ValueError("column index must be >= 0")
        if self.kind == "overlap" and not self.bra:
            raise ValueError("overlap contract needs a non-empty bra")

    # -- factories -----------------------------------------------------
    @classmethod
    def full_unitary(cls) -> OutputContract:
        """The whole ``(D, D)`` unitary (the pre-contract behaviour)."""
        return cls("full")

    @classmethod
    def column(cls, index: int = 0) -> OutputContract:
        """The single column ``U(theta) e_index`` as a ``(D,)`` vector."""
        return cls("column", column_index=int(index))

    @classmethod
    def overlap(cls, bra: Any, column: int = 0) -> OutputContract:
        """The scalar ``<bra| U(theta) e_column``.

        ``bra`` is a 1-D amplitude sequence (or a ``Statevector``); it
        is captured as a tuple of complex, so the contract stays
        hashable and pickles with the engine payload.
        """
        amps = getattr(bra, "amplitudes", bra)
        return cls(
            "overlap",
            column_index=int(column),
            bra=tuple(complex(a) for a in amps),
        )

    @classmethod
    def coerce(cls, value: object) -> OutputContract:
        """``None`` means full unitary; anything else must already be a
        contract (no implicit string forms — the engine API is typed)."""
        if value is None:
            return _FULL
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"expected an OutputContract or None, got {type(value).__name__}"
        )

    @classmethod
    def from_program_key(cls, program_key: Iterable[Any]) -> OutputContract:
        """The plain contract a compiled program was specialized for."""
        pk = tuple(program_key)
        if pk == ("full",):
            return _FULL
        if len(pk) == 2 and pk[0] == "column":
            return cls.column(pk[1])
        raise ValueError(f"unknown program contract key {pk!r}")

    @classmethod
    def for_program(
        cls, program: object, contract: OutputContract | None = None
    ) -> OutputContract:
        """Resolve the contract a VM/engine should run ``program`` under.

        With ``contract=None`` the program's own compiled contract is
        used.  An explicit contract must agree with the program's
        bytecode identity — an ``OVERLAP(bra, j)`` may ride a
        ``COLUMN(j)`` program (same bytecode, VM-level reduction), but
        a column contract cannot reinterpret a full-unitary program or
        vice versa.
        """
        derived = cls.from_program_key(
            getattr(program, "contract", ("full",))
        )
        if contract is None:
            return derived
        contract = cls.coerce(contract)
        if contract.program_key() != derived.program_key():
            raise ValueError(
                f"contract {contract.describe()} does not match the "
                f"program's compiled contract {derived.describe()}; "
                "recompile with circuit.compile(contract=...)"
            )
        return contract

    # -- identities ----------------------------------------------------
    @property
    def column_based(self) -> bool:
        """True when the program propagates a vector, not a matrix."""
        return self.kind != "full"

    def program_key(self) -> tuple[str | int, ...]:
        """The bytecode identity: which compiled program serves this."""
        if self.kind == "full":
            return ("full",)
        return ("column", self.column_index)

    def key(self) -> tuple[object, ...]:
        """The full engine-cache identity (includes the bra)."""
        return (self.kind, self.column_index, self.bra)

    def output_shape(self, dim: int) -> tuple[int, int]:
        """The compiled program's 2-D output shape under this contract."""
        return (dim, dim) if self.kind == "full" else (dim, 1)

    def describe(self) -> str:
        if self.kind == "full":
            return "full"
        if self.kind == "column":
            return f"col[{self.column_index}]"
        return f"ovl[{self.column_index}]"


_FULL = OutputContract("full")

#: The default contract: evaluate the whole unitary.
FULL_UNITARY = _FULL


def column_digits(radices: Iterable[int], index: int) -> tuple[int, ...]:
    """Column ``index``'s basis digits, one per wire.

    The first wire is most significant (row-major basis ordering, the
    same convention as ``Statevector`` and the circuit unitary).
    """
    radices = tuple(int(r) for r in radices)
    dim = math.prod(radices) if radices else 1
    if not 0 <= index < dim:
        raise ValueError(
            f"column index {index} out of range for dimension {dim}"
        )
    digits = [0] * len(radices)
    rem = index
    for w in range(len(radices) - 1, -1, -1):
        digits[w] = rem % radices[w]
        rem //= radices[w]
    return tuple(digits)


def specialize_network(
    network: TensorNetwork, contract: OutputContract | None
) -> TensorNetwork:
    """Specialize a circuit network for a column-based contract.

    The open *input* legs are fixed at the contract column's basis
    digits: every tensor carrying one (the circuit's first layer, plus
    the identity stitches of untouched wires) has those axes sliced
    symbolically (:meth:`ExpressionMatrix.select_axes`), the fixed
    indices disappear from the network, and ``open_in`` becomes empty.
    The existing pathfinder, tree builder, and code generator then
    work unchanged — on a network whose every contraction chain is
    vector-sized on the input side.

    Full-unitary contracts return the network untouched.
    """
    contract = OutputContract.coerce(contract)
    if not contract.column_based:
        return network
    if set(network.open_out) & set(network.open_in):
        raise ValueError(
            "cannot column-specialize a network whose open input and "
            "output legs share an index"
        )
    digits = column_digits(network.radices, contract.column_index)
    digit_of = {
        idx: digits[w] for w, idx in enumerate(network.open_in)
    }
    tensors: list[TNTensor] = []
    for t in network.tensors:
        fixed = {
            ax: digit_of[idx]
            for ax, idx in enumerate(t.indices)
            if idx in digit_of
        }
        if not fixed:
            tensors.append(replace(t))
            continue
        shape = tuple(network.index_dims[i] for i in t.indices)
        kept = tuple(
            idx for ax, idx in enumerate(t.indices) if ax not in fixed
        )
        size = math.prod(network.index_dims[i] for i in kept)
        tensors.append(
            replace(
                t,
                expression=t.expression.select_axes(
                    shape, fixed, (size, 1)
                ),
                indices=kept,
            )
        )
    return TensorNetwork(
        tensors=tensors,
        index_dims={
            i: d
            for i, d in network.index_dims.items()
            if i not in digit_of
        },
        open_out=network.open_out,
        open_in=(),
        num_params=network.num_params,
        radices=network.radices,
    )
