"""Tensor-network lowering of parameterized quantum circuits.

Each gate becomes a tensor whose indices are the gate's output and input
wires (a two-qubit gate is a rank-4 tensor); the wires connecting gates
define the contracted indices, and the circuit's qudit boundary wires
remain open (paper section IV-A).

In a circuit-shaped network every index has at most two endpoints, so a
pairwise contraction always sums exactly the indices shared by the two
operands — this invariant is exploited by the path solvers and the
contraction tree.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..symbolic.matrix import ExpressionMatrix

__all__ = ["ParamSlot", "TNTensor", "TensorNetwork"]


@dataclass(frozen=True)
class ParamSlot:
    """Binding of one gate-parameter slot.

    ``kind`` is ``"param"`` (references circuit parameter ``index``) or
    ``"const"`` (fixed numeric ``value``).
    """

    kind: str
    index: int = -1
    value: float = 0.0

    @staticmethod
    def param(index: int) -> ParamSlot:
        return ParamSlot("param", index=index)

    @staticmethod
    def const(value: float) -> ParamSlot:
        return ParamSlot("const", value=float(value))


@dataclass
class TNTensor:
    """A gate tensor in the network.

    ``indices`` lists index ids in (outputs..., inputs...) order,
    matching the row-major reshape of the gate's unitary matrix.
    """

    tensor_id: int
    expression: ExpressionMatrix
    slots: tuple[ParamSlot, ...]
    indices: tuple[int, ...]
    location: tuple[int, ...]

    @property
    def param_indices(self) -> tuple[int, ...]:
        """Sorted unique circuit-parameter indices this tensor uses."""
        return tuple(
            sorted({s.index for s in self.slots if s.kind == "param"})
        )


@dataclass
class TensorNetwork:
    """A circuit lowered to tensors, indices, and open legs."""

    tensors: list[TNTensor] = field(default_factory=list)
    index_dims: dict[int, int] = field(default_factory=dict)
    #: open indices in (final outputs..., initial inputs...) order
    open_out: tuple[int, ...] = ()
    open_in: tuple[int, ...] = ()
    num_params: int = 0
    radices: tuple[int, ...] = ()

    @property
    def open_indices(self) -> tuple[int, ...]:
        return self.open_out + self.open_in

    @property
    def dim(self) -> int:
        d = 1
        for r in self.radices:
            d *= r
        return d

    def index_endpoints(self) -> dict[int, list[int]]:
        """Map index id -> tensor ids touching it (<= 2 in circuits)."""
        endpoints: dict[int, list[int]] = {i: [] for i in self.index_dims}
        for t in self.tensors:
            for idx in t.indices:
                endpoints[idx].append(t.tensor_id)
        return endpoints

    @staticmethod
    def from_operations(
        radices: Sequence[int],
        operations: Sequence[
            tuple[ExpressionMatrix, Sequence[int], Sequence[ParamSlot]]
        ],
        num_params: int,
    ) -> TensorNetwork:
        """Lower a gate sequence to a network.

        ``operations`` are (expression, qudit location, parameter slots)
        in time order.  A fresh index id is minted for each gate output;
        a wire's current frontier index feeds the next gate acting on it.
        """
        radices = tuple(int(r) for r in radices)
        net = TensorNetwork(num_params=num_params, radices=radices)
        next_index = 0

        def mint(dim: int) -> int:
            nonlocal next_index
            idx = next_index
            next_index += 1
            net.index_dims[idx] = dim
            return idx

        frontier = [mint(r) for r in radices]
        initial = tuple(frontier)

        for expression, location, slots in operations:
            location = tuple(int(q) for q in location)
            if len(set(location)) != len(location):
                raise ValueError(f"repeated qudit in location {location}")
            for q, r in zip(location, expression.radices):
                if radices[q] != r:
                    raise ValueError(
                        f"gate radix {r} does not match wire {q} "
                        f"radix {radices[q]}"
                    )
            ins = tuple(frontier[q] for q in location)
            outs = tuple(mint(radices[q]) for q in location)
            for q, idx in zip(location, outs):
                frontier[q] = idx
            net.tensors.append(
                TNTensor(
                    tensor_id=len(net.tensors),
                    expression=expression,
                    slots=tuple(slots),
                    indices=outs + ins,
                    location=location,
                )
            )
        # Wires never touched by a gate would make an input leg and an
        # output leg share one index id; stitch them with an explicit
        # identity tensor so every open leg is distinct.
        for q, r in enumerate(radices):
            if frontier[q] != initial[q]:
                continue
            out_idx = mint(r)
            net.tensors.append(
                TNTensor(
                    tensor_id=len(net.tensors),
                    expression=ExpressionMatrix.identity(
                        r, radices=(r,)
                    ),
                    slots=(),
                    indices=(out_idx, frontier[q]),
                    location=(q,),
                )
            )
            frontier[q] = out_idx
        net.open_out = tuple(frontier)
        net.open_in = initial
        return net
