"""Binary contraction trees with the fusion optimization pass.

A contraction path is materialized into a binary tree whose leaves are
gate tensors and whose internal nodes are pairwise contractions (paper
section IV-A).  Two optimizations run on the tree:

* **trace pre-application** — a leaf with a repeated index has the trace
  applied symbolically to its QGL expression, so the bytecode needs no
  trace capability;
* **transpose fusion** — when a leaf's first consumer needs its data in
  a permuted layout, the permutation is pushed into the leaf's symbolic
  expression and the runtime ``TRANSPOSE`` disappears: the JIT simply
  generates code for the already-transposed matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .network import TensorNetwork, TNTensor

__all__ = ["TreeNode", "ContractionTree", "build_contraction_tree"]


@dataclass
class TreeNode:
    """A node of the contraction tree."""

    node_id: int
    indices: tuple[int, ...]
    params: tuple[int, ...]  # sorted circuit-parameter indices
    # Leaf payload:
    tensor: TNTensor | None = None
    # Internal payload:
    left: TreeNode | None = None
    right: TreeNode | None = None
    contracted: tuple[int, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.tensor is not None

    def size(self, index_dims: dict[int, int]) -> int:
        return math.prod(index_dims[i] for i in self.indices)


@dataclass
class ContractionTree:
    """The materialized tree plus network metadata."""

    root: TreeNode
    network: TensorNetwork
    nodes: list[TreeNode] = field(default_factory=list)

    def leaves(self) -> list[TreeNode]:
        return [n for n in self.nodes if n.is_leaf]

    def internal(self) -> list[TreeNode]:
        return [n for n in self.nodes if not n.is_leaf]

    def constant_nodes(self) -> list[TreeNode]:
        """Nodes whose subtree depends on no circuit parameter."""
        return [n for n in self.nodes if not n.params]


def build_contraction_tree(
    network: TensorNetwork, path: list[tuple[int, int]]
) -> ContractionTree:
    """Materialize a pairwise path into a binary contraction tree.

    Leaf index order matches the gate tensor; an internal node's index
    order is (left free..., right free...), which is exactly the layout
    the TTGT matmul of its children produces.
    """
    nodes: list[TreeNode] = []
    open_set = set(network.open_indices)

    def new_leaf(tensor: TNTensor) -> TreeNode:
        tensor = _pretrace_if_needed(tensor)
        node = TreeNode(
            node_id=len(nodes),
            indices=tensor.indices,
            params=tensor.param_indices,
            tensor=tensor,
        )
        nodes.append(node)
        return node

    working = [new_leaf(t) for t in network.tensors]

    for i, j in path:
        a = working[i]
        b = working[j]
        shared = [
            idx for idx in a.indices if idx in set(b.indices)
        ]
        summed = tuple(idx for idx in shared if idx not in open_set)
        a_free = tuple(idx for idx in a.indices if idx not in summed)
        b_free = tuple(idx for idx in b.indices if idx not in summed)
        node = TreeNode(
            node_id=len(nodes),
            indices=a_free + b_free,
            params=tuple(sorted(set(a.params) | set(b.params))),
            left=a,
            right=b,
            contracted=summed,
        )
        nodes.append(node)
        for k in sorted((i, j), reverse=True):
            del working[k]
        working.append(node)

    if len(working) != 1:
        raise ValueError(
            f"path did not reduce the network to one tensor "
            f"({len(working)} remain)"
        )
    return ContractionTree(root=working[0], network=network, nodes=nodes)


def _pretrace_if_needed(tensor: TNTensor) -> TNTensor:
    """Apply trace symbolically when a leaf repeats an index.

    This happens for networks with immediately-closed loops (e.g. a
    cost-function network tracing ``U†·U(θ)``); the leaf expression is
    replaced by its pre-traced form so the bytecode never traces.
    """
    counts: dict[int, int] = {}
    for idx in tensor.indices:
        counts[idx] = counts.get(idx, 0) + 1
    repeated = [idx for idx, c in counts.items() if c > 1]
    if not repeated:
        return tensor
    k = len(tensor.indices) // 2
    outs, ins = tensor.indices[:k], tensor.indices[k:]
    pairs = []
    for idx in repeated:
        pairs.append((outs.index(idx), ins.index(idx)))
    traced_expr = tensor.expression.partial_trace_expr(pairs)
    kept = tuple(
        idx for idx in tensor.indices if counts[idx] == 1
    )
    return TNTensor(
        tensor_id=tensor.tensor_id,
        expression=traced_expr,
        slots=tensor.slots,
        indices=kept,
        location=tensor.location,
    )
