"""Durable checkpoint/resume for long-running synthesis passes.

The synthesis passes checkpoint their round-boundary state into a
:class:`CheckpointStore` (atomic write-then-rename snapshots with a
schema version and content integrity hash), latch SIGTERM/SIGINT via
:class:`PreemptionGuard` so preemption flushes a final snapshot before
tearing the worker pool down, and resume with
``synthesize(resume_from=...)`` — bit-identically, because candidate
seeds derive from structure keys rather than draw order.

See the README "Checkpoint & resume" section for the knob table and
resume semantics.
"""

from .preempt import PreemptedError, PreemptionGuard
from .state import (
    PassCheckpointer,
    config_fingerprint,
    load_resume_state,
    target_fingerprint,
)
from .store import (
    SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    CheckpointStore,
    atomic_write_json,
    snapshot_count,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointSchemaError",
    "CheckpointStore",
    "PassCheckpointer",
    "PreemptedError",
    "PreemptionGuard",
    "atomic_write_json",
    "config_fingerprint",
    "load_resume_state",
    "snapshot_count",
    "target_fingerprint",
]
