"""Cooperative preemption: turn SIGTERM/SIGINT into a clean flush.

Spot-instance reclaims, schedulers, and impatient operators all speak
the same protocol — a SIGTERM (or Ctrl-C) followed, after a grace
period, by SIGKILL.  :class:`PreemptionGuard` converts the first
signal into a *flag* instead of an exception so the synthesis round in
flight finishes, the pass flushes a final checkpoint at the next round
boundary, tears its executor down via the abandon path (no joins that
could outlive the grace period), and raises :class:`PreemptedError`
with the snapshot path a resume needs.

A second Ctrl-C escalates to an ordinary :class:`KeyboardInterrupt` —
the operator asked twice; stop immediately.
"""

from __future__ import annotations

import contextlib
import signal

__all__ = ["PreemptedError", "PreemptionGuard"]


class PreemptedError(RuntimeError):
    """A pass was preempted by a signal after flushing its state.

    ``snapshot_path`` names the final checkpoint (``None`` only when
    the pass had no checkpoint store to flush to); pass its directory
    to ``synthesize(resume_from=...)`` to continue bit-identically.
    """

    def __init__(
        self,
        signum: int,
        round_index: int,
        snapshot_path: str | None,
    ):
        self.signum = signum
        self.round_index = round_index
        self.snapshot_path = snapshot_path
        name = signal.Signals(signum).name
        where = (
            f"state flushed to {snapshot_path}; resume with "
            "resume_from=<checkpoint dir> to continue bit-identically"
            if snapshot_path is not None
            else "no checkpoint store configured, progress lost"
        )
        super().__init__(
            f"synthesis pass preempted by {name} after round "
            f"{round_index}; {where}"
        )


class PreemptionGuard:
    """Context manager that latches SIGTERM/SIGINT into ``pending``.

    Installs handlers on entry and restores the previous ones on exit.
    Signal handlers can only be installed from the main thread — when
    entered anywhere else (or where a signal is unsupported) the guard
    degrades to an inert flag, which is the right behaviour for passes
    driven from worker threads of a larger host process.
    """

    def __init__(self, signals=(signal.SIGTERM, signal.SIGINT)):
        self._signals = tuple(signals)
        self._previous: dict[int, object] = {}
        self._interrupts = 0
        self.pending: int | None = None

    def _handle(self, signum, frame):
        if signum == signal.SIGINT:
            self._interrupts += 1
            if self._interrupts > 1:
                raise KeyboardInterrupt
        self.pending = signum

    def __enter__(self) -> PreemptionGuard:
        for signum in self._signals:
            try:
                self._previous[signum] = signal.signal(
                    signum, self._handle
                )
            except (ValueError, OSError):
                pass  # non-main thread / unsupported signal: inert flag
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signum, previous)
        self._previous.clear()
