"""Pass-side checkpoint plumbing shared by the synthesis passes.

A synthesis pass wires a :class:`PassCheckpointer` between its rounds:
at every round boundary the checkpointer first checks the
:class:`~repro.checkpoint.preempt.PreemptionGuard` (SIGTERM/SIGINT →
flush a final snapshot, abandon the executor, raise
:class:`~repro.checkpoint.preempt.PreemptedError`), then applies the
cadence knobs (``every_rounds`` and/or ``every_seconds``) to decide
whether to write a periodic snapshot.

Snapshots are self-describing: alongside the pass state they carry the
pass ``kind``, a fingerprint of the synthesis *target*, and a
fingerprint of the search *configuration*.  :func:`load_resume_state`
refuses to resume a snapshot whose kind, target, or config differs
from the caller's — resuming an A* frontier against a different
unitary (or different heuristic weights) would silently produce a
wrong-but-plausible circuit, the worst failure mode a resume can have.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from .. import telemetry
from .preempt import PreemptedError, PreemptionGuard
from .store import CheckpointError, CheckpointStore

__all__ = [
    "PassCheckpointer",
    "config_fingerprint",
    "load_resume_state",
    "target_fingerprint",
]


def target_fingerprint(*arrays: np.ndarray, extra=()) -> str:
    """Content hash of the synthesis target (dtype + shape + bytes).

    ``extra`` admits non-array identity, e.g. a circuit structure key
    for passes whose target is an input circuit rather than a matrix.
    """
    digest = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(repr(arr.shape).encode())
        digest.update(arr.tobytes())
    for item in extra:
        digest.update(repr(item).encode())
    return digest.hexdigest()


def config_fingerprint(**fields) -> str:
    """Content hash of the knobs that shape a pass's search trajectory.

    Only knobs that change *which states are explored in which order*
    belong here — worker count and checkpoint cadence explicitly do
    not, because results are bit-identical across them.
    """
    digest = hashlib.sha256()
    for name in sorted(fields):
        digest.update(f"{name}={fields[name]!r};".encode())
    return digest.hexdigest()


def load_resume_state(
    resume_from,
    *,
    kind: str,
    target: str,
    config: str,
    keep: int = 3,
) -> tuple[CheckpointStore, dict, str]:
    """Open ``resume_from`` and return its newest compatible snapshot.

    ``resume_from`` is a checkpoint directory path or an existing
    :class:`CheckpointStore`.  Returns ``(store, payload, path)`` so
    the resumed pass keeps checkpointing into the same store.  Raises
    :class:`CheckpointError` when no valid snapshot exists or the
    snapshot belongs to a different pass kind, target, or config.
    """
    store = (
        resume_from
        if isinstance(resume_from, CheckpointStore)
        else CheckpointStore(resume_from, keep=keep)
    )
    loaded = store.load_latest()
    if loaded is None:
        raise CheckpointError(
            f"resume_from={store.directory!r} holds no valid checkpoint "
            "snapshot (none written yet, or every snapshot is corrupt)"
        )
    payload, path = loaded
    if payload.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} was written by a "
            f"{payload.get('kind')!r} pass, not {kind!r}; refusing to "
            "resume across pass types"
        )
    if payload.get("target") != target:
        raise CheckpointError(
            f"checkpoint {path} was written for a different synthesis "
            "target; resuming it here would silently synthesize the "
            "wrong unitary — point resume_from at the matching "
            "checkpoint directory or start a fresh pass"
        )
    if payload.get("config") != config:
        raise CheckpointError(
            f"checkpoint {path} was written under a different search "
            "configuration (threshold/heuristic/layer/expansion knobs); "
            "a resumed frontier is only bit-identical under the exact "
            "configuration that produced it"
        )
    telemetry.metrics().counter("checkpoint.resumes").add()
    telemetry.tracer().instant(
        "checkpoint.resume", category="checkpoint",
        kind=kind, round=payload.get("round"),
    )
    return store, payload, path


class PassCheckpointer:
    """Round-boundary driver: preemption check + cadence snapshots.

    Enter it as a context manager for the duration of the pass (this
    installs the signal guard) and call :meth:`round_boundary` between
    rounds with a zero-argument ``state_fn`` that captures the pass
    state; the function is only invoked when a snapshot is actually
    due, so cheap rounds stay cheap.
    """

    def __init__(
        self,
        store: CheckpointStore,
        *,
        kind: str,
        target: str,
        config: str,
        every_rounds: int | None = 1,
        every_seconds: float | None = None,
        executor=None,
    ):
        self.store = store
        self.kind = kind
        self.target = target
        self.config = config
        self.every_rounds = every_rounds
        self.every_seconds = every_seconds
        self.executor = executor
        self.guard = PreemptionGuard()
        self._last_write = time.monotonic()

    def __enter__(self) -> PassCheckpointer:
        self.guard.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self.guard.__exit__(*exc_info)

    def _payload(self, round_index: int, state: dict, complete: bool):
        return {
            "kind": self.kind,
            "target": self.target,
            "config": self.config,
            "round": round_index,
            "complete": complete,
            "state": state,
        }

    def _due(self, round_index: int) -> bool:
        if (
            self.every_rounds is not None
            and round_index % self.every_rounds == 0
        ):
            return True
        return (
            self.every_seconds is not None
            and time.monotonic() - self._last_write >= self.every_seconds
        )

    def write(self, round_index: int, state: dict) -> str:
        path = self.store.save(
            self._payload(round_index, state, complete=False)
        )
        self._last_write = time.monotonic()
        return path

    def round_boundary(self, round_index: int, state_fn) -> None:
        """Between-rounds hook: flush-and-raise on preemption, else
        write a periodic snapshot when the cadence says one is due.

        ``round_index`` counts *completed* rounds — the state returned
        by ``state_fn`` must describe exactly that boundary, so a
        resume replays no completed work and skips none.
        """
        if self.guard.pending is not None:
            path = self.write(round_index, state_fn())
            if self.executor is not None:
                self.executor.abandon()
            raise PreemptedError(self.guard.pending, round_index, path)
        if self._due(round_index):
            self.write(round_index, state_fn())

    def complete(self, round_index: int, result) -> str:
        """Record the finished pass so a later resume is a no-op that
        returns the stored result instead of redoing work."""
        payload = self._payload(round_index, {}, complete=True)
        payload["result"] = result
        path = self.store.save(payload)
        self._last_write = time.monotonic()
        return path
