"""Durable snapshot storage: atomic, versioned, integrity-checked.

A :class:`CheckpointStore` owns one directory of numbered snapshot
files.  Every snapshot is written *write-then-rename* — the payload
lands in a temporary file, is fsync'd, and only then atomically
renamed into place — so a crash, OOM kill, or preemption mid-write can
never leave a half-written file under a snapshot name; the worst case
is a stray ``.tmp-*`` file the next save ignores.

Each snapshot file carries a fixed envelope in front of the pickled
state::

    magic "RPCK" | schema version (u32 BE) | sha256(payload) | payload

The schema version gates *compatibility*: a snapshot written by a
different checkpoint schema is rejected with a pointed
:class:`CheckpointSchemaError` rather than being mis-decoded.  The
content hash gates *integrity*: a truncated or bit-flipped snapshot
fails verification and :meth:`CheckpointStore.load_latest` falls back
to the newest older snapshot that verifies (counted on the
``checkpoint.fallbacks`` telemetry counter), which is why the store
keeps the last ``keep`` snapshots instead of only the newest.

The module also exports :func:`atomic_write_json`, the same
write-then-rename discipline for plain JSON artifacts (benchmark
reports), and :func:`snapshot_count`, a cheap probe used by resume
logic and the parent-kill chaos harness.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import pickle
import re
import struct
import tempfile

from .. import telemetry

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointSchemaError",
    "CheckpointCorruptError",
    "CheckpointStore",
    "atomic_write_json",
    "snapshot_count",
]

logger = logging.getLogger(__name__)

#: Bumped whenever the snapshot *envelope or state layout* changes
#: incompatibly; a mismatch is a pointed error, never a silent decode.
SCHEMA_VERSION = 1

_MAGIC = b"RPCK"
_HEADER = struct.Struct(">4sI32s")  # magic, schema, sha256(payload)

_SNAPSHOT_RE = re.compile(r"^ckpt-(\d{8})\.rpck$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint/resume failures."""


class CheckpointSchemaError(CheckpointError):
    """A snapshot was written by an incompatible checkpoint schema."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot is truncated or fails its integrity hash."""


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a same-directory temp + rename."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    _fsync_directory(directory)


def atomic_write_json(path: str, obj, indent: int = 2) -> None:
    """Dump ``obj`` as JSON with the write-then-rename discipline.

    A process killed mid-dump leaves the previous file (or no file)
    intact instead of a truncated artifact that poisons downstream
    consumers (CI uploads, report mergers re-reading their own output).
    """
    blob = (json.dumps(obj, indent=indent) + "\n").encode()
    _atomic_write_bytes(path, blob)


def snapshot_count(directory: str) -> int:
    """Number of (renamed, hence complete-envelope) snapshot files in
    ``directory``; 0 when the directory does not exist yet."""
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    return sum(1 for name in names if _SNAPSHOT_RE.match(name))


class CheckpointStore:
    """A directory of atomic, integrity-hashed snapshot files.

    ``keep`` bounds how many snapshots survive pruning (newest kept);
    at least 2 is recommended so a snapshot corrupted *after* rename —
    disk trouble, a torn page — still leaves a valid predecessor for
    :meth:`load_latest` to fall back to.
    """

    def __init__(
        self,
        directory: str,
        keep: int = 3,
        schema: int = SCHEMA_VERSION,
    ):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = os.path.abspath(directory)
        self.keep = keep
        self.schema = schema
        os.makedirs(self.directory, exist_ok=True)
        registry = telemetry.metrics()
        self._writes = registry.counter("checkpoint.writes")
        self._bytes = registry.counter("checkpoint.bytes")
        self._fallbacks = registry.counter("checkpoint.fallbacks")

    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        """Snapshot paths, oldest first (sequence order)."""
        entries = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                entries.append((int(match.group(1)), name))
        return [
            os.path.join(self.directory, name)
            for _, name in sorted(entries)
        ]

    def _next_sequence(self) -> int:
        latest = 0
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                latest = max(latest, int(match.group(1)))
        return latest + 1

    def save(self, state: dict) -> str:
        """Persist ``state`` as the newest snapshot and prune old ones.

        The returned path names a file that is either fully present
        with a verifying hash or absent — never half-written.
        """
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            _HEADER.pack(
                _MAGIC, self.schema, hashlib.sha256(payload).digest()
            )
            + payload
        )
        seq = self._next_sequence()
        path = os.path.join(self.directory, f"ckpt-{seq:08d}.rpck")
        with telemetry.tracer().span(
            "checkpoint.write", category="checkpoint",
            bytes=len(blob), sequence=seq,
        ):
            _atomic_write_bytes(path, blob)
        self._writes.add()
        self._bytes.add(len(blob))
        for old in self.snapshots()[: -self.keep]:
            try:
                os.unlink(old)
            except OSError:
                pass  # already pruned by a concurrent saver
        return path

    # ------------------------------------------------------------------
    def _read(self, path: str) -> dict:
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < _HEADER.size:
            raise CheckpointCorruptError(
                f"checkpoint {path} is truncated "
                f"({len(blob)} bytes, header needs {_HEADER.size})"
            )
        magic, schema, digest = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise CheckpointCorruptError(
                f"checkpoint {path} has a foreign header "
                f"(magic {magic!r}); not a repro checkpoint"
            )
        if schema != self.schema:
            raise CheckpointSchemaError(
                f"checkpoint {path} was written with schema version "
                f"{schema}, this build reads version {self.schema}; "
                "re-run the pass from scratch (or load the snapshot "
                "with the matching repro version)"
            )
        payload = blob[_HEADER.size:]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorruptError(
                f"checkpoint {path} fails its integrity hash "
                "(truncated or corrupted payload)"
            )
        try:
            return pickle.loads(payload)
        except Exception as exc:  # corrupt beyond what the hash caught
            raise CheckpointCorruptError(
                f"checkpoint {path} verified but failed to decode: {exc}"
            ) from exc

    def load_latest(self) -> tuple[dict, str] | None:
        """The newest snapshot that verifies, as ``(state, path)``.

        Corrupt or truncated snapshots are skipped newest-to-oldest
        (each skip logged and counted on ``checkpoint.fallbacks``);
        a schema-version mismatch is raised immediately — falling back
        past an incompatible format would silently resume stale state.
        Returns ``None`` when no snapshot verifies (or none exists).
        """
        for path in reversed(self.snapshots()):
            try:
                return self._read(path), path
            except CheckpointCorruptError as exc:
                self._fallbacks.add()
                telemetry.tracer().instant(
                    "checkpoint.fallback", category="checkpoint",
                    path=os.path.basename(path),
                )
                logger.warning("skipping bad checkpoint: %s", exc)
        return None

    def __repr__(self) -> str:
        return (
            f"<CheckpointStore {self.directory!r} "
            f"{len(self.snapshots())} snapshot(s), keep={self.keep}>"
        )
