"""The OpenQudit matrix IR: a 2-D array of complex symbolic expressions.

After parsing, QGL definitions are lowered into this representation
(paper section III-B).  It supports the full composability suite —
matrix multiplication, Kronecker product, Hadamard product, substitution,
conjugation/transposition/dagger, controlled and inverse construction —
as well as symbolic differentiation and tensor reshape/permute (used by
the AOT compiler's fusion pass to push transposes into leaf expressions).

Elements are stored in a NumPy object array, which provides reshape and
axis permutation for free while each element remains a
:class:`~repro.symbolic.complexexpr.ComplexExpr`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from . import expr as E
from .complexexpr import CONE, CZERO, ComplexExpr
from .diff import differentiate_complex
from .expr import Expr

__all__ = ["ExpressionMatrix"]


class ExpressionMatrix:
    """A matrix of :class:`ComplexExpr` elements with named parameters.

    Parameters
    ----------
    elements:
        2-D nested sequence (or object ndarray) of ``ComplexExpr``.
    params:
        Ordered parameter names.  If omitted, the sorted free variables
        of all elements are used.
    radices:
        Qudit dimensions for the rows; the matrix must be square with
        dimension ``prod(radices)``.  If omitted the dimension must be a
        power of two and radices default to all-2 (paper section III-A).
    name:
        Optional display name (e.g. ``"U3"``).
    """

    __slots__ = ("_data", "params", "radices", "name")

    def __init__(
        self,
        elements,
        params: Sequence[str] | None = None,
        radices: Sequence[int] | None = None,
        name: str | None = None,
    ):
        data = np.empty(
            (len(elements), len(elements[0])), dtype=object
        ) if not isinstance(elements, np.ndarray) else None
        if data is not None:
            for i, row in enumerate(elements):
                if len(row) != data.shape[1]:
                    raise ValueError("ragged matrix rows")
                for j, elem in enumerate(row):
                    data[i, j] = _coerce_elem(elem)
        else:
            if elements.ndim != 2:
                raise ValueError("ExpressionMatrix must be 2-D")
            data = elements.astype(object, copy=True)
            for idx in np.ndindex(data.shape):
                data[idx] = _coerce_elem(data[idx])
        object.__setattr__(self, "_data", data)

        free: set[str] = set()
        for idx in np.ndindex(data.shape):
            free.update(data[idx].free_variables())
        if params is None:
            params = tuple(sorted(free))
        else:
            params = tuple(params)
            missing = free.difference(params)
            if missing:
                raise ValueError(
                    f"elements use undeclared parameters: {sorted(missing)}"
                )
        object.__setattr__(self, "params", params)

        dim = data.shape[0]
        if radices is None:
            # Default to qubits when the dimension is a power of two
            # (paper section III-A); otherwise leave radices unknown.
            # The strict "must be a power of two if radices omitted"
            # rule for gate *definitions* is enforced by the QGL parser.
            n = _log2_exact(dim) if dim == data.shape[1] else None
            radices = (2,) * n if n is not None else ()
        else:
            radices = tuple(int(r) for r in radices)
            if any(r < 2 for r in radices):
                raise ValueError("every radix must be >= 2")
            if math.prod(radices) != dim:
                raise ValueError(
                    f"radices {radices} imply dimension "
                    f"{math.prod(radices)}, matrix has {dim} rows"
                )
        object.__setattr__(self, "radices", radices)
        object.__setattr__(self, "name", name)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("ExpressionMatrix is immutable")

    def __reduce__(self):
        # The immutability guard breaks default slot-state pickling;
        # rebuild through the constructor (elements as nested lists so
        # the object ndarray never hits pickle directly).
        rows = [
            [self._data[i, j] for j in range(self._data.shape[1])]
            for i in range(self._data.shape[0])
        ]
        return (
            ExpressionMatrix,
            (rows, self.params, self.radices or None, self.name),
        )

    # ------------------------------------------------------------------
    # Basic constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(
        dim: int, radices: Sequence[int] | None = None
    ) -> ExpressionMatrix:
        rows = [
            [CONE if i == j else CZERO for j in range(dim)]
            for i in range(dim)
        ]
        return ExpressionMatrix(rows, params=(), radices=radices, name="I")

    @staticmethod
    def from_numpy(
        array: np.ndarray,
        radices: Sequence[int] | None = None,
        name: str | None = None,
    ) -> ExpressionMatrix:
        """Lift a constant numeric matrix into the IR."""
        array = np.asarray(array)
        rows = [
            [ComplexExpr.from_complex(complex(array[i, j]))
             for j in range(array.shape[1])]
            for i in range(array.shape[0])
        ]
        return ExpressionMatrix(rows, params=(), radices=radices, name=name)

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._data.shape

    @property
    def dim(self) -> int:
        return self._data.shape[0]

    @property
    def num_params(self) -> int:
        return len(self.params)

    @property
    def num_qudits(self) -> int:
        return len(self.radices)

    def __getitem__(self, key) -> ComplexExpr:
        return self._data[key]

    def elements(self) -> Iterable[tuple[tuple[int, int], ComplexExpr]]:
        for idx in np.ndindex(self._data.shape):
            yield idx, self._data[idx]

    def node_count(self) -> int:
        """Total node count across all element expressions."""
        return sum(e.node_count() for _, e in self.elements())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: ExpressionMatrix) -> ExpressionMatrix:
        if self.shape[1] != other.shape[0]:
            raise ValueError(
                f"matmul dimension mismatch: {self.shape} @ {other.shape}"
            )
        n, k = self.shape
        m = other.shape[1]
        out = np.empty((n, m), dtype=object)
        for i in range(n):
            for j in range(m):
                acc = CZERO
                for t in range(k):
                    a = self._data[i, t]
                    b = other._data[t, j]
                    if a.is_zero or b.is_zero:
                        continue
                    acc = acc + a * b
                out[i, j] = acc
        return ExpressionMatrix(
            out,
            params=_merge_params(self.params, other.params),
            radices=self.radices if self.radices else None,
        )

    def kron(self, other: ExpressionMatrix) -> ExpressionMatrix:
        """Kronecker product (paper section III-B)."""
        n1, m1 = self.shape
        n2, m2 = other.shape
        out = np.empty((n1 * n2, m1 * m2), dtype=object)
        for i1 in range(n1):
            for j1 in range(m1):
                a = self._data[i1, j1]
                for i2 in range(n2):
                    for j2 in range(m2):
                        b = other._data[i2, j2]
                        if a.is_zero or b.is_zero:
                            out[i1 * n2 + i2, j1 * m2 + j2] = CZERO
                        else:
                            out[i1 * n2 + i2, j1 * m2 + j2] = a * b
        return ExpressionMatrix(
            out,
            params=_merge_params(self.params, other.params),
            radices=tuple(self.radices) + tuple(other.radices),
        )

    def hadamard(self, other: ExpressionMatrix) -> ExpressionMatrix:
        """Element-wise product."""
        if self.shape != other.shape:
            raise ValueError("hadamard requires identical shapes")
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx] * other._data[idx]
        return ExpressionMatrix(
            out,
            params=_merge_params(self.params, other.params),
            radices=self.radices if self.radices else None,
        )

    def __add__(self, other: ExpressionMatrix) -> ExpressionMatrix:
        if self.shape != other.shape:
            raise ValueError("addition requires identical shapes")
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx] + other._data[idx]
        return ExpressionMatrix(
            out,
            params=_merge_params(self.params, other.params),
            radices=self.radices if self.radices else None,
        )

    def scale(self, factor: ComplexExpr | complex | float) -> ExpressionMatrix:
        if not isinstance(factor, ComplexExpr):
            factor = ComplexExpr.from_complex(complex(factor))
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx] * factor
        return ExpressionMatrix(
            out,
            params=_merge_params(self.params, factor.free_variables()),
            radices=self.radices if self.radices else None,
        )

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> ExpressionMatrix:
        return ExpressionMatrix(
            self._data.T.copy(),
            params=self.params,
            radices=self.radices if self.radices else None,
            name=_suffix(self.name, "T"),
        )

    def conjugate(self) -> ExpressionMatrix:
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx].conjugate()
        return ExpressionMatrix(
            out,
            params=self.params,
            radices=self.radices if self.radices else None,
            name=_suffix(self.name, "conj"),
        )

    def dagger(self) -> ExpressionMatrix:
        """Conjugate transpose — the inverse of a unitary gate."""
        return self.conjugate().transpose()

    inverse = dagger

    def trace(self) -> ComplexExpr:
        if self.shape[0] != self.shape[1]:
            raise ValueError("trace of non-square matrix")
        acc = CZERO
        for i in range(self.shape[0]):
            acc = acc + self._data[i, i]
        return acc

    def substitute(self, mapping: Mapping[str, Expr]) -> ExpressionMatrix:
        """Substitute parameter expressions into every element.

        Surviving parameters keep their declared order; variables
        introduced by the substitution are appended in first-use order.
        """
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx].substitute(mapping)
        params = [p for p in self.params if p not in mapping]
        seen = set(params)
        for p in self.params:
            if p in mapping:
                for name in E.free_variables(mapping[p]):
                    if name not in seen:
                        seen.add(name)
                        params.append(name)
        return ExpressionMatrix(
            out,
            params=tuple(params),
            radices=self.radices if self.radices else None,
            name=self.name,
        )

    def rename_params(self, mapping: Mapping[str, str]) -> ExpressionMatrix:
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx].rename_variables(mapping)
        params = tuple(mapping.get(p, p) for p in self.params)
        return ExpressionMatrix(
            out,
            params=params,
            radices=self.radices if self.radices else None,
            name=self.name,
        )

    def bind(self, values: Mapping[str, float]) -> ExpressionMatrix:
        """Fix some parameters to numeric constants."""
        mapping = {k: E.const(v) for k, v in values.items()}
        return self.substitute(mapping)

    def controlled(
        self, control_radix: int = 2, control_levels: Sequence[int] = (1,)
    ) -> ExpressionMatrix:
        """Add a control qudit in front of the gate.

        The gate applies when the control is in one of
        ``control_levels``; otherwise identity.  This is the on-the-fly
        composite-gate construction from paper section III-B.
        """
        levels = set(control_levels)
        if any(l < 0 or l >= control_radix for l in levels):
            raise ValueError("control level out of range for radix")
        dim = self.dim
        big = control_radix * dim
        out = np.empty((big, big), dtype=object)
        for idx in np.ndindex((big, big)):
            out[idx] = CZERO
        for c in range(control_radix):
            block = self._data if c in levels else None
            for i in range(dim):
                for j in range(dim):
                    if block is None:
                        out[c * dim + i, c * dim + j] = (
                            CONE if i == j else CZERO
                        )
                    else:
                        out[c * dim + i, c * dim + j] = block[i, j]
        return ExpressionMatrix(
            out,
            params=self.params,
            radices=(control_radix,) + tuple(self.radices),
            name=_suffix(self.name, "ctrl"),
        )

    def reshape_permute(
        self, shape: Sequence[int], perm: Sequence[int],
        out_shape: tuple[int, int],
    ) -> ExpressionMatrix:
        """Fused reshape-permute-reshape on the element array.

        This mirrors the TNVM ``TRANSPOSE`` instruction symbolically and
        is what the AOT fusion pass uses to pre-transpose leaf gates.
        """
        flat = self._data.reshape(tuple(shape))
        permuted = np.transpose(flat, tuple(perm))
        out = permuted.reshape(out_shape).copy()
        return ExpressionMatrix(
            out, params=self.params, radices=None,
            name=_suffix(self.name, "perm"),
        )

    def select_axes(
        self,
        shape: Sequence[int],
        fixed: Mapping[int, int],
        out_shape: tuple[int, int],
    ) -> ExpressionMatrix:
        """Fix tensor axes at basis values, symbolically.

        The elements are viewed as a tensor of ``shape``; each axis in
        ``fixed`` is indexed at its basis digit (dropping the axis) and
        the surviving elements are reshaped to the 2-D ``out_shape``.
        This is how the AOT compiler's output-contract specialization
        slices a first-layer gate at a fixed input column: the resulting
        expression keeps the full declared parameter list (some may no
        longer appear — e.g. a control branch sliced away), so WRITE
        slot arity is preserved and sliced gates stay interchangeable
        with their full forms in the bytecode.
        """
        tensor = self._data.reshape(tuple(shape))
        indexer = tuple(
            int(fixed[ax]) if ax in fixed else slice(None)
            for ax in range(len(shape))
        )
        out = tensor[indexer].reshape(out_shape).copy()
        return ExpressionMatrix(
            out, params=self.params, radices=None,
            name=_suffix(self.name, "sel"),
        )

    def partial_trace_expr(
        self, row_pairs: Sequence[tuple[int, int]]
    ) -> ExpressionMatrix:
        """Trace out paired (row-axis, col-axis) index pairs symbolically.

        ``row_pairs`` lists (output-qudit position, input-qudit position)
        pairs into the tensor view of shape ``radices + radices``; each
        pair is summed over.  Used when the contraction tree needs
        pre-traced leaf expressions (paper section IV-A).
        """
        import itertools

        rads = tuple(self.radices)
        n = len(rads)
        pairs = [(int(o), int(i)) for o, i in row_pairs]
        for o, i in pairs:
            if rads[o] != rads[i]:
                raise ValueError("traced qudit radices must match")
        traced_out = {o for o, _ in pairs}
        traced_in = {i for _, i in pairs}
        keep_out = [q for q in range(n) if q not in traced_out]
        keep_in = [q for q in range(n) if q not in traced_in]
        tensor = self._data.reshape(rads + rads)
        rows = math.prod(rads[q] for q in keep_out) if keep_out else 1
        cols = math.prod(rads[q] for q in keep_in) if keep_in else 1
        out = np.empty((rows, cols), dtype=object)
        out_ranges = [range(rads[q]) for q in keep_out]
        in_ranges = [range(rads[q]) for q in keep_in]
        trace_ranges = [range(rads[o]) for o, _ in pairs]
        for r, out_idx in enumerate(itertools.product(*out_ranges)):
            for c, in_idx in enumerate(itertools.product(*in_ranges)):
                acc = CZERO
                for tvals in itertools.product(*trace_ranges):
                    full = [0] * (2 * n)
                    for q, v in zip(keep_out, out_idx):
                        full[q] = v
                    for q, v in zip(keep_in, in_idx):
                        full[n + q] = v
                    for (o, i), v in zip(pairs, tvals):
                        full[o] = v
                        full[n + i] = v
                    acc = acc + tensor[tuple(full)]
                out[r, c] = acc
        return ExpressionMatrix(out, params=self.params, radices=None)

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def differentiate(self, name: str) -> ExpressionMatrix:
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = differentiate_complex(self._data[idx], name)
        return ExpressionMatrix(
            out,
            params=self.params,
            radices=self.radices if self.radices else None,
            name=_suffix(self.name, f"d/d{name}"),
        )

    def gradient(self) -> list["ExpressionMatrix"]:
        """Analytical gradient: one matrix per parameter, in order."""
        return [self.differentiate(p) for p in self.params]

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def evaluate(
        self, params: Sequence[float] | Mapping[str, float] = ()
    ) -> np.ndarray:
        """Numerically evaluate to a complex ndarray (reference path)."""
        env = self._env(params)
        out = np.empty(self.shape, dtype=np.complex128)
        for idx in np.ndindex(self.shape):
            out[idx] = self._data[idx].evaluate(env)
        return out

    def is_unitary(
        self, params: Sequence[float] | Mapping[str, float] = (),
        tol: float = 1e-9,
    ) -> bool:
        u = self.evaluate(params)
        return bool(
            np.allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=tol)
        )

    def _env(self, params) -> dict[str, float]:
        if isinstance(params, Mapping):
            return dict(params)
        params = list(params)
        if len(params) != len(self.params):
            raise ValueError(
                f"expected {len(self.params)} parameters "
                f"({self.params}), got {len(params)}"
            )
        return dict(zip(self.params, map(float, params)))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        nm = self.name or "ExpressionMatrix"
        return (
            f"<{nm} {self.shape[0]}x{self.shape[1]} "
            f"params={list(self.params)} radices={list(self.radices)}>"
        )


def _coerce_elem(elem) -> ComplexExpr:
    if isinstance(elem, ComplexExpr):
        return elem
    if isinstance(elem, Expr):
        return ComplexExpr(elem, E.ZERO)
    if isinstance(elem, (int, float)):
        return ComplexExpr(E.const(float(elem)), E.ZERO)
    if isinstance(elem, complex):
        return ComplexExpr.from_complex(elem)
    raise TypeError(f"invalid matrix element: {type(elem).__name__}")


def _merge_params(a: Sequence[str], b: Sequence[str]) -> tuple[str, ...]:
    seen = dict.fromkeys(a)
    seen.update(dict.fromkeys(b))
    return tuple(seen)


def _suffix(name: str | None, tag: str) -> str | None:
    return f"{name}.{tag}" if name else None


def _log2_exact(n: int) -> int | None:
    if n < 1 or n & (n - 1):
        return None
    return n.bit_length() - 1
