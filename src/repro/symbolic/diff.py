"""Symbolic differentiation engine (paper section III-B).

Differentiates real expression trees and complex (re, im) pairs with
respect to named variables.  This is the mechanism that lets OpenQudit
derive analytical gradients automatically from a single QGL definition,
replacing the hand-written matrix calculus of Listing 1.
"""

from __future__ import annotations

from . import expr as E
from .complexexpr import ComplexExpr
from .expr import Expr

__all__ = ["differentiate", "differentiate_complex", "gradient"]


def differentiate(root: Expr, name: str) -> Expr:
    """Return ``d(root)/d(name)`` as a new expression tree.

    The construction walks the DAG once, memoizing derivatives of shared
    subtrees, and rebuilds through the smart constructors so trivial
    zeros fold away immediately.
    """
    dmemo: dict[int, Expr] = {}
    for node in E.postorder(root):
        op = node.op
        if op in ("const", "pi"):
            d = E.ZERO
        elif op == "var":
            d = E.ONE if node.name == name else E.ZERO
        elif op == "+":
            a, b = node.children
            d = dmemo[id(a)] + dmemo[id(b)]
        elif op == "-":
            a, b = node.children
            d = dmemo[id(a)] - dmemo[id(b)]
        elif op == "~":
            (a,) = node.children
            d = -dmemo[id(a)]
        elif op == "*":
            a, b = node.children
            d = dmemo[id(a)] * b + a * dmemo[id(b)]
        elif op == "/":
            a, b = node.children
            da, db = dmemo[id(a)], dmemo[id(b)]
            if db.is_zero:
                d = da / b
            else:
                d = (da * b - a * db) / (b * b)
        elif op == "pow":
            a, b = node.children
            da, db = dmemo[id(a)], dmemo[id(b)]
            terms = E.ZERO
            if not da.is_zero:
                # b * a^(b-1) * da
                terms = terms + b * E.power(a, b - E.ONE) * da
            if not db.is_zero:
                # a^b * ln(a) * db
                terms = terms + node * E.ln(a) * db
            d = terms
        elif op == "sin":
            (a,) = node.children
            d = E.cos(a) * dmemo[id(a)]
        elif op == "cos":
            (a,) = node.children
            d = -(E.sin(a) * dmemo[id(a)])
        elif op == "exp":
            (a,) = node.children
            d = node * dmemo[id(a)]
        elif op == "ln":
            (a,) = node.children
            d = dmemo[id(a)] / a
        elif op == "sqrt":
            (a,) = node.children
            da = dmemo[id(a)]
            if da.is_zero:
                d = E.ZERO
            else:
                d = da / (E.TWO * node)
        else:  # pragma: no cover
            raise AssertionError(op)
        dmemo[id(node)] = d
    return dmemo[id(root)]


def differentiate_complex(z: ComplexExpr, name: str) -> ComplexExpr:
    """Differentiate a complex expression componentwise."""
    return ComplexExpr(
        differentiate(z.re, name), differentiate(z.im, name)
    )


def gradient(root: Expr, names: list[str]) -> list[Expr]:
    """Derivatives of ``root`` with respect to each name, in order."""
    return [differentiate(root, n) for n in names]
