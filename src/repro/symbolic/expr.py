"""Real-valued symbolic expression trees.

This module implements the scalar half of the OpenQudit symbolic IR
(paper section III-B).  Every matrix element in the IR is a pair of these
trees (one for the real part, one for the imaginary part); see
:mod:`repro.symbolic.complexexpr`.

Expressions are immutable and *hash-consed*: structurally identical
subtrees are represented by the same object, so common subexpressions are
shared for free.  This mirrors the e-graph-friendly design of the Rust
implementation and makes the JIT's common-subexpression elimination a
simple identity-based topological walk.

The operator set matches the paper's Table I cost model:

====================  =======================================
kind                  meaning
====================  =======================================
``const``             floating point literal
``var``               free variable (gate parameter)
``pi``                the constant pi
``+ - ~ * /``         arithmetic (``~`` is unary negation)
``pow``               power
``sin cos``           trigonometric functions
``exp ln sqrt``       exponential, natural log, square root
====================  =======================================
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator, Mapping

__all__ = [
    "Expr",
    "const",
    "var",
    "pi",
    "add",
    "sub",
    "neg",
    "mul",
    "div",
    "power",
    "sin",
    "cos",
    "exp",
    "ln",
    "sqrt",
    "ZERO",
    "ONE",
    "TWO",
    "HALF",
    "NEG_ONE",
    "PI",
    "free_variables",
    "substitute",
    "rename_variables",
    "evaluate",
    "to_sexpr",
    "from_sexpr",
    "node_count",
    "postorder",
]

# Operators with their arities.  ``const`` and ``var`` carry payloads and
# have no children.
_ARITY = {
    "const": 0,
    "var": 0,
    "pi": 0,
    "+": 2,
    "-": 2,
    "~": 1,
    "*": 2,
    "/": 2,
    "pow": 2,
    "sin": 1,
    "cos": 1,
    "exp": 1,
    "ln": 1,
    "sqrt": 1,
}

_FUNCTION_OPS = frozenset({"sin", "cos", "exp", "ln", "sqrt"})


class Expr:
    """An immutable, interned symbolic expression node.

    Do not call the constructor directly; use the factory functions
    (:func:`const`, :func:`var`, :func:`add`, ...) or the overloaded
    Python operators, which perform light local simplification.
    """

    __slots__ = ("op", "value", "name", "children", "_hash")

    _intern: dict[tuple, "Expr"] = {}

    def __new__(
        cls,
        op: str,
        children: tuple["Expr", ...] = (),
        value: float | None = None,
        name: str | None = None,
    ) -> Expr:
        if op not in _ARITY:
            raise ValueError(f"unknown expression operator: {op!r}")
        if len(children) != _ARITY[op]:
            raise ValueError(
                f"operator {op!r} expects {_ARITY[op]} children, "
                f"got {len(children)}"
            )
        key = (op, value, name, tuple(id(c) for c in children))
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __setattr__(self, *_args) -> None:
        raise AttributeError("Expr is immutable")

    def __reduce__(self):
        # Hash-consing breaks default pickling (``__new__`` needs the
        # operator), so route unpickling back through the constructor:
        # nodes re-intern in the target process and pickle's memo keeps
        # shared subtrees shared, preserving the DAG shape the JIT's
        # identity-based CSE walks.
        return (Expr, (self.op, self.children, self.value, self.name))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Interning makes identity equivalent to structural equality.
        return self is other

    # ------------------------------------------------------------------
    # Python operator sugar
    # ------------------------------------------------------------------
    def __add__(self, other: Expr | float) -> Expr:
        return add(self, _coerce(other))

    def __radd__(self, other: Expr | float) -> Expr:
        return add(_coerce(other), self)

    def __sub__(self, other: Expr | float) -> Expr:
        return sub(self, _coerce(other))

    def __rsub__(self, other: Expr | float) -> Expr:
        return sub(_coerce(other), self)

    def __mul__(self, other: Expr | float) -> Expr:
        return mul(self, _coerce(other))

    def __rmul__(self, other: Expr | float) -> Expr:
        return mul(_coerce(other), self)

    def __truediv__(self, other: Expr | float) -> Expr:
        return div(self, _coerce(other))

    def __rtruediv__(self, other: Expr | float) -> Expr:
        return div(_coerce(other), self)

    def __neg__(self) -> Expr:
        return neg(self)

    def __pow__(self, other: Expr | float) -> Expr:
        return power(self, _coerce(other))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the node is a literal constant or pi."""
        return self.op in ("const", "pi")

    @property
    def is_zero(self) -> bool:
        return self.op == "const" and self.value == 0.0

    @property
    def is_one(self) -> bool:
        return self.op == "const" and self.value == 1.0

    def constant_value(self) -> float | None:
        """The numeric value if the node is a literal, else None."""
        if self.op == "const":
            return self.value
        if self.op == "pi":
            return math.pi
        return None

    def __repr__(self) -> str:
        return f"Expr({to_sexpr(self)})"

    def __str__(self) -> str:
        return to_infix(self)


def _coerce(x: Expr | float | int) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, float)):
        return const(float(x))
    raise TypeError(f"cannot coerce {type(x).__name__} to Expr")


# ----------------------------------------------------------------------
# Factory functions (smart constructors with local folding)
# ----------------------------------------------------------------------

def const(value: float) -> Expr:
    """A floating-point literal."""
    value = float(value)
    if value == 0.0:
        value = 0.0  # normalize -0.0
    return Expr("const", value=value)


def var(name: str) -> Expr:
    """A free variable (a gate parameter such as ``theta``)."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return Expr("var", name=name)


def pi() -> Expr:
    """The constant pi (cost 0 in the Table I model)."""
    return Expr("pi")


ZERO = const(0.0)
ONE = const(1.0)
TWO = const(2.0)
HALF = const(0.5)
NEG_ONE = const(-1.0)
PI = pi()


def add(a: Expr, b: Expr) -> Expr:
    if a.is_zero:
        return b
    if b.is_zero:
        return a
    av, bv = a.constant_value(), b.constant_value()
    if a.op == "const" and b.op == "const":
        return const(av + bv)
    return Expr("+", (a, b))


def sub(a: Expr, b: Expr) -> Expr:
    if b.is_zero:
        return a
    if a.is_zero:
        return neg(b)
    if a.op == "const" and b.op == "const":
        return const(a.value - b.value)
    if a is b:
        return ZERO
    return Expr("-", (a, b))


def neg(a: Expr) -> Expr:
    if a.op == "const":
        return const(-a.value)
    if a.op == "~":
        return a.children[0]
    return Expr("~", (a,))


def mul(a: Expr, b: Expr) -> Expr:
    if a.is_zero or b.is_zero:
        return ZERO
    if a.is_one:
        return b
    if b.is_one:
        return a
    if a.op == "const" and b.op == "const":
        return const(a.value * b.value)
    if a.op == "const" and a.value == -1.0:
        return neg(b)
    if b.op == "const" and b.value == -1.0:
        return neg(a)
    return Expr("*", (a, b))


def div(a: Expr, b: Expr) -> Expr:
    if b.is_zero:
        raise ZeroDivisionError("symbolic division by literal zero")
    if a.is_zero:
        return ZERO
    if b.is_one:
        return a
    if a.op == "const" and b.op == "const":
        return const(a.value / b.value)
    if a is b:
        return ONE
    return Expr("/", (a, b))


def power(a: Expr, b: Expr) -> Expr:
    if b.is_zero:
        return ONE
    if b.is_one:
        return a
    if a.op == "const" and b.op == "const":
        return const(a.value ** b.value)
    return Expr("pow", (a, b))


def sin(a: Expr) -> Expr:
    v = a.constant_value()
    if v is not None:
        return const(math.sin(v))
    if a.op == "~":
        return neg(sin(a.children[0]))
    return Expr("sin", (a,))


def cos(a: Expr) -> Expr:
    v = a.constant_value()
    if v is not None:
        return const(math.cos(v))
    if a.op == "~":
        return cos(a.children[0])
    return Expr("cos", (a,))


def exp(a: Expr) -> Expr:
    if a.is_zero:
        return ONE
    if a.op == "const":
        return const(math.exp(a.value))
    return Expr("exp", (a,))


def ln(a: Expr) -> Expr:
    if a.is_one:
        return ZERO
    if a.op == "const":
        if a.value <= 0:
            raise ValueError("ln of non-positive literal")
        return const(math.log(a.value))
    return Expr("ln", (a,))


def sqrt(a: Expr) -> Expr:
    if a.op == "const":
        if a.value < 0:
            raise ValueError("sqrt of negative literal")
        return const(math.sqrt(a.value))
    return Expr("sqrt", (a,))


_FACTORIES: dict[str, Callable[..., Expr]] = {
    "+": add,
    "-": sub,
    "~": neg,
    "*": mul,
    "/": div,
    "pow": power,
    "sin": sin,
    "cos": cos,
    "exp": exp,
    "ln": ln,
    "sqrt": sqrt,
}


def build(op: str, children: Iterable[Expr]) -> Expr:
    """Rebuild a node through the smart constructors.

    Used by passes (substitution, e-graph extraction) that reconstruct
    trees bottom-up and want local folding applied uniformly.
    """
    children = tuple(children)
    if op == "pi":
        return PI
    factory = _FACTORIES.get(op)
    if factory is None:
        raise ValueError(f"cannot build leaf operator {op!r} without payload")
    return factory(*children)


# ----------------------------------------------------------------------
# Traversal and structural utilities
# ----------------------------------------------------------------------

def postorder(root: Expr) -> Iterator[Expr]:
    """Yield each distinct subexpression once, children before parents."""
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in seen:
                    stack.append((child, False))


def node_count(root: Expr) -> int:
    """Number of distinct nodes in the expression DAG."""
    return sum(1 for _ in postorder(root))


def free_variables(root: Expr) -> tuple[str, ...]:
    """Sorted tuple of free variable names appearing in the expression."""
    names = {n.name for n in postorder(root) if n.op == "var"}
    return tuple(sorted(names))


def substitute(root: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace variables by expressions, rebuilding with local folding."""
    memo: dict[int, Expr] = {}
    for node in postorder(root):
        if node.op == "var":
            memo[id(node)] = mapping.get(node.name, node)
        elif node.op in ("const", "pi"):
            memo[id(node)] = node
        else:
            memo[id(node)] = build(
                node.op, (memo[id(c)] for c in node.children)
            )
    return memo[id(root)]


def rename_variables(root: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename free variables according to ``mapping``."""
    return substitute(
        root, {old: var(new) for old, new in mapping.items()}
    )


def evaluate(root: Expr, env: Mapping[str, float]) -> float:
    """Numerically evaluate the expression under a variable binding.

    This is the slow reference evaluator; the JIT in :mod:`repro.jit`
    produces much faster compiled closures.
    """
    memo: dict[int, float] = {}
    for node in postorder(root):
        op = node.op
        if op == "const":
            v = node.value
        elif op == "pi":
            v = math.pi
        elif op == "var":
            try:
                v = float(env[node.name])
            except KeyError:
                raise KeyError(
                    f"no binding for variable {node.name!r}"
                ) from None
        else:
            args = [memo[id(c)] for c in node.children]
            if op == "+":
                v = args[0] + args[1]
            elif op == "-":
                v = args[0] - args[1]
            elif op == "~":
                v = -args[0]
            elif op == "*":
                v = args[0] * args[1]
            elif op == "/":
                v = args[0] / args[1]
            elif op == "pow":
                v = args[0] ** args[1]
            elif op == "sin":
                v = math.sin(args[0])
            elif op == "cos":
                v = math.cos(args[0])
            elif op == "exp":
                v = math.exp(args[0])
            elif op == "ln":
                v = math.log(args[0])
            elif op == "sqrt":
                v = math.sqrt(args[0])
            else:  # pragma: no cover - guarded by _ARITY
                raise AssertionError(op)
        memo[id(node)] = v
    return memo[id(root)]


# ----------------------------------------------------------------------
# S-expression round-tripping (shared syntax with the e-graph)
# ----------------------------------------------------------------------

def to_sexpr(root: Expr) -> str:
    """Serialize to an s-expression, e.g. ``(* 2 (sin x))``."""
    parts: dict[int, str] = {}
    for node in postorder(root):
        if node.op == "const":
            v = node.value
            parts[id(node)] = repr(int(v)) if v == int(v) else repr(v)
        elif node.op == "var":
            parts[id(node)] = node.name
        elif node.op == "pi":
            parts[id(node)] = "pi"
        else:
            inner = " ".join(parts[id(c)] for c in node.children)
            parts[id(node)] = f"({node.op} {inner})"
    return parts[id(root)]


def from_sexpr(text: str) -> Expr:
    """Parse an s-expression produced by :func:`to_sexpr`."""
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    pos = 0

    def parse() -> Expr:
        nonlocal pos
        if pos >= len(tokens):
            raise ValueError("unexpected end of s-expression")
        tok = tokens[pos]
        pos += 1
        if tok == "(":
            op = tokens[pos]
            pos += 1
            children = []
            while tokens[pos] != ")":
                children.append(parse())
            pos += 1
            return build(op, children)
        if tok == ")":
            raise ValueError("unexpected ')'")
        if tok == "pi":
            return PI
        try:
            return const(float(tok))
        except ValueError:
            return var(tok)

    result = parse()
    if pos != len(tokens):
        raise ValueError("trailing tokens in s-expression")
    return result


_INFIX = {"+": "+", "-": "-", "*": "*", "/": "/"}


def to_infix(root: Expr) -> str:
    """Human-readable infix rendering (for repr and error messages)."""
    parts: dict[int, str] = {}
    for node in postorder(root):
        if node.op == "const":
            v = node.value
            parts[id(node)] = repr(int(v)) if v == int(v) else repr(v)
        elif node.op == "var":
            parts[id(node)] = node.name
        elif node.op == "pi":
            parts[id(node)] = "pi"
        elif node.op == "~":
            parts[id(node)] = f"-({parts[id(node.children[0])]})"
        elif node.op == "pow":
            a, b = node.children
            parts[id(node)] = f"({parts[id(a)]})^({parts[id(b)]})"
        elif node.op in _INFIX:
            a, b = node.children
            sym = _INFIX[node.op]
            parts[id(node)] = f"({parts[id(a)]} {sym} {parts[id(b)]})"
        else:
            inner = ", ".join(parts[id(c)] for c in node.children)
            parts[id(node)] = f"{node.op}({inner})"
    return parts[id(root)]
