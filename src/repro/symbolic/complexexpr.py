"""Complex symbolic expressions as (real, imaginary) pairs of real trees.

The OpenQudit IR stores each matrix element as "a data structure
containing separate symbolic trees for its real and imaginary parts"
(paper section III-B).  :class:`ComplexExpr` is that data structure.

Complex arithmetic is lowered eagerly: ``e^(i*x)`` becomes
``(cos x, sin x)``, products use the usual (ac - bd, ad + bc) form, and
so on.  All trigonometric content is therefore canonicalized to ``sin``
and ``cos`` for uniform processing by the e-graph and the JIT.
"""

from __future__ import annotations

from collections.abc import Mapping

from . import expr as E
from .expr import Expr

__all__ = ["ComplexExpr", "CZERO", "CONE", "CI"]


class ComplexExpr:
    """An immutable complex-valued symbolic expression.

    Attributes
    ----------
    re, im:
        Real expression trees for the real and imaginary components.
    """

    __slots__ = ("re", "im")

    def __init__(self, re: Expr | float, im: Expr | float = 0.0):
        object.__setattr__(self, "re", E._coerce(re))
        object.__setattr__(self, "im", E._coerce(im))

    def __setattr__(self, *_args) -> None:
        raise AttributeError("ComplexExpr is immutable")

    def __reduce__(self):
        # The immutability guard breaks default slot-state pickling;
        # rebuild through the constructor instead.
        return (ComplexExpr, (self.re, self.im))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_complex(z: complex) -> ComplexExpr:
        """Lift a numeric complex literal."""
        return ComplexExpr(E.const(z.real), E.const(z.imag))

    @staticmethod
    def from_real(e: Expr | float) -> ComplexExpr:
        return ComplexExpr(e, E.ZERO)

    @staticmethod
    def i() -> ComplexExpr:
        return CI

    @staticmethod
    def cis(angle: Expr) -> ComplexExpr:
        """``e^(i*angle)`` lowered to ``cos(angle) + i*sin(angle)``."""
        return ComplexExpr(E.cos(angle), E.sin(angle))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return self.re.is_zero and self.im.is_zero

    @property
    def is_one(self) -> bool:
        return self.re.is_one and self.im.is_zero

    @property
    def is_real(self) -> bool:
        return self.im.is_zero

    @property
    def is_constant(self) -> bool:
        return not self.free_variables()

    def constant_value(self) -> complex | None:
        """Numeric value if both components are literals, else None."""
        rv = self.re.constant_value()
        iv = self.im.constant_value()
        if rv is None or iv is None:
            return None
        return complex(rv, iv)

    def free_variables(self) -> tuple[str, ...]:
        names = set(E.free_variables(self.re))
        names.update(E.free_variables(self.im))
        return tuple(sorted(names))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ComplexExpr) -> ComplexExpr:
        other = _coerce(other)
        return ComplexExpr(self.re + other.re, self.im + other.im)

    __radd__ = __add__

    def __sub__(self, other: ComplexExpr) -> ComplexExpr:
        other = _coerce(other)
        return ComplexExpr(self.re - other.re, self.im - other.im)

    def __rsub__(self, other: ComplexExpr) -> ComplexExpr:
        return _coerce(other).__sub__(self)

    def __neg__(self) -> ComplexExpr:
        return ComplexExpr(-self.re, -self.im)

    def __mul__(self, other: ComplexExpr) -> ComplexExpr:
        other = _coerce(other)
        a, b, c, d = self.re, self.im, other.re, other.im
        return ComplexExpr(a * c - b * d, a * d + b * c)

    __rmul__ = __mul__

    def __truediv__(self, other: ComplexExpr) -> ComplexExpr:
        other = _coerce(other)
        if other.is_zero:
            raise ZeroDivisionError("complex symbolic division by zero")
        if other.im.is_zero:
            return ComplexExpr(self.re / other.re, self.im / other.re)
        a, b, c, d = self.re, self.im, other.re, other.im
        denom = c * c + d * d
        return ComplexExpr(
            (a * c + b * d) / denom, (b * c - a * d) / denom
        )

    def __rtruediv__(self, other: ComplexExpr) -> ComplexExpr:
        return _coerce(other).__truediv__(self)

    def conjugate(self) -> ComplexExpr:
        return ComplexExpr(self.re, -self.im)

    def scale(self, factor: Expr | float) -> ComplexExpr:
        factor = E._coerce(factor)
        return ComplexExpr(self.re * factor, self.im * factor)

    def exp(self) -> ComplexExpr:
        """``e^z`` for ``z = x + iy``: ``e^x * (cos y + i sin y)``."""
        if self.im.is_zero:
            return ComplexExpr(E.exp(self.re), E.ZERO)
        if self.re.is_zero:
            return ComplexExpr.cis(self.im)
        mag = E.exp(self.re)
        return ComplexExpr(mag * E.cos(self.im), mag * E.sin(self.im))

    def __pow__(self, n: int) -> ComplexExpr:
        """Integer powers by repeated multiplication."""
        if not isinstance(n, int):
            raise TypeError("ComplexExpr only supports integer powers")
        if n < 0:
            return CONE / (self ** (-n))
        result = CONE
        base = self
        k = n
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, Expr]) -> ComplexExpr:
        return ComplexExpr(
            E.substitute(self.re, mapping), E.substitute(self.im, mapping)
        )

    def rename_variables(self, mapping: Mapping[str, str]) -> ComplexExpr:
        return ComplexExpr(
            E.rename_variables(self.re, mapping),
            E.rename_variables(self.im, mapping),
        )

    def evaluate(self, env: Mapping[str, float]) -> complex:
        return complex(E.evaluate(self.re, env), E.evaluate(self.im, env))

    def node_count(self) -> int:
        return E.node_count(self.re) + E.node_count(self.im)

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexExpr):
            z = _try_complex(other)
            if z is None:
                return NotImplemented
            return self.constant_value() == z
        return self.re is other.re and self.im is other.im

    def __hash__(self) -> int:
        return hash((self.re, self.im))

    def __repr__(self) -> str:
        return f"ComplexExpr({self.re!s}, {self.im!s})"

    def __str__(self) -> str:
        if self.im.is_zero:
            return str(self.re)
        return f"({self.re}) + i*({self.im})"


def _coerce(x) -> ComplexExpr:
    if isinstance(x, ComplexExpr):
        return x
    if isinstance(x, Expr):
        return ComplexExpr(x, E.ZERO)
    if isinstance(x, complex):
        return ComplexExpr.from_complex(x)
    if isinstance(x, (int, float)):
        return ComplexExpr(E.const(float(x)), E.ZERO)
    raise TypeError(f"cannot coerce {type(x).__name__} to ComplexExpr")


def _try_complex(x) -> complex | None:
    if isinstance(x, (int, float, complex)):
        return complex(x)
    return None


CZERO = ComplexExpr(E.ZERO, E.ZERO)
CONE = ComplexExpr(E.ONE, E.ZERO)
CI = ComplexExpr(E.ZERO, E.ONE)
