"""Opt-in span tracing with Chrome-trace-event export.

Tracing is off by default and costs one module-global attribute load
plus a no-op method call per instrumented site (the
:class:`NoopTracer` singleton).  :func:`enable` swaps in a real
:class:`Tracer`; :func:`disable` swaps the no-op back and returns the
finished spans.

Spans nest per thread (a thread-local stack supplies parent ids) and
record wall time in the ``time.perf_counter`` domain.  For
cross-process merging each tracer also records ``wall_offset =
time.time() - time.perf_counter()`` at creation: on Linux
``perf_counter`` is CLOCK_MONOTONIC, whose epoch differs per boot but
not per process, yet we do not rely on that — worker spans are
re-based into the parent's perf domain through the two wall offsets,
which holds on any platform.

Export is the Chrome trace event format (the ``traceEvents`` array of
``ph: "X"`` complete events) loadable in Perfetto or chrome://tracing.
Nesting is implied by timestamp containment per (pid, tid) track, so
merged worker spans appear as their own process tracks.

Set ``REPRO_TRACE_LOG=1`` (or call ``enable(log_spans=True)``) to also
emit debug-level span start/stop records on the ``repro.telemetry``
logger.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "tracer",
    "tracing_enabled",
    "enable",
    "disable",
    "chrome_trace",
    "write_chrome_trace",
]

logger = logging.getLogger("repro.telemetry")


class Span:
    """One finished (or in-flight) timed region.

    ``start``/``end`` are ``perf_counter`` seconds in the *recording*
    process; ``wall_offset`` lets another process re-base them.
    """

    __slots__ = (
        "name",
        "category",
        "start",
        "end",
        "args",
        "span_id",
        "parent_id",
        "pid",
        "tid",
        "wall_offset",
    )

    def __init__(self, name, category, start, span_id, parent_id, pid, tid,
                 wall_offset, args=None):
        self.name = name
        self.category = category
        self.start = start
        self.end = None
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid
        self.wall_offset = wall_offset

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def state(self) -> dict:
        """A picklable dict (what workers ship back to the parent)."""
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "args": self.args,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "wall_offset": self.wall_offset,
        }

    @classmethod
    def from_state(cls, state: dict) -> Span:
        span = cls(
            state["name"], state["category"], state["start"],
            state["span_id"], state["parent_id"], state["pid"],
            state["tid"], state["wall_offset"], state.get("args"),
        )
        span.end = state["end"]
        return span

    def __repr__(self) -> str:
        dur = self.duration
        dur = f"{dur * 1e3:.3f}ms" if dur is not None else "open"
        return f"<Span {self.category}:{self.name} {dur}>"


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **args) -> None:
        """Attach/extend key-value args on the span."""
        if self._span.args is None:
            self._span.args = {}
        self._span.args.update(args)

    def __enter__(self) -> _SpanHandle:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self._span)


class _NoopHandle:
    """Shared do-nothing span handle."""

    __slots__ = ()
    span = None

    def set(self, **args) -> None:
        pass

    def __enter__(self) -> _NoopHandle:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_HANDLE = _NoopHandle()


class NoopTracer:
    """Stand-in used while tracing is disabled: every call is a
    constant-time no-op returning shared singletons."""

    __slots__ = ()
    enabled = False

    def span(self, name, category="repro", **args):
        return _NOOP_HANDLE

    def instant(self, name, category="repro", **args) -> None:
        pass

    def drain(self) -> list:
        return []

    def ingest(self, states, label=None) -> None:
        pass


class Tracer:
    """Thread-safe recording tracer with per-thread span nesting."""

    enabled = True

    def __init__(self, log_spans: bool | None = None):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._stack = threading.local()
        self._track_names: dict[int, str] = {}
        self.pid = os.getpid()
        self.wall_offset = time.time() - time.perf_counter()
        if log_spans is None:
            log_spans = os.environ.get("REPRO_TRACE_LOG", "") not in ("", "0")
        self._log = log_spans

    def _parent_id(self):
        stack = getattr(self._stack, "ids", None)
        return stack[-1] if stack else None

    def span(self, name: str, category: str = "repro", **args) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        with self._lock:
            span_id = next(self._ids)
        span = Span(
            name, category, time.perf_counter(), span_id, self._parent_id(),
            self.pid, threading.get_ident(), self.wall_offset,
            args or None,
        )
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        stack.append(span_id)
        if self._log:
            logger.debug("span start %s:%s", category, name)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = getattr(self._stack, "ids", None)
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif stack and span.span_id in stack:
            stack.remove(span.span_id)
        with self._lock:
            self._spans.append(span)
        if self._log:
            logger.debug(
                "span stop %s:%s %.3fms",
                span.category, span.name, (span.end - span.start) * 1e3,
            )

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration marker."""
        with self._lock:
            span_id = next(self._ids)
        now = time.perf_counter()
        span = Span(
            name, category, now, span_id, self._parent_id(),
            self.pid, threading.get_ident(), self.wall_offset, args or None,
        )
        span.end = now
        with self._lock:
            self._spans.append(span)

    def drain(self) -> list[Span]:
        """Remove and return all finished spans (oldest first)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def ingest(self, states: list[dict], label: str | None = None) -> None:
        """Merge spans shipped from another process.

        ``states`` are :meth:`Span.state` dicts recorded in the other
        process's ``perf_counter`` domain; their ``wall_offset`` lets
        us re-base timestamps into ours so all tracks share one clock.
        ``label`` names the source track (e.g. ``"worker-3"``) in the
        exported trace.
        """
        rebased = []
        for state in states:
            span = Span.from_state(state)
            shift = span.wall_offset - self.wall_offset
            span.start += shift
            if span.end is not None:
                span.end += shift
            span.wall_offset = self.wall_offset
            if label is not None:
                self._track_names.setdefault(span.pid, label)
            rebased.append(span)
        with self._lock:
            self._spans.extend(rebased)

    def spans(self) -> list[Span]:
        """A copy of the finished spans recorded so far."""
        with self._lock:
            return list(self._spans)

    def track_names(self) -> dict[int, str]:
        return dict(self._track_names)


def chrome_trace(spans: list[Span], track_names: dict[int, str] | None = None,
                 main_pid: int | None = None) -> dict:
    """Render spans as a Chrome trace event JSON object."""
    track_names = track_names or {}
    if main_pid is None:
        main_pid = os.getpid()
    events = []
    pids = set()
    for span in spans:
        if span.end is None:
            continue
        pids.add(span.pid)
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (span.end - span.start) * 1e6,
            "pid": span.pid,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for pid in sorted(pids):
        name = track_names.get(
            pid, "main" if pid == main_pid else f"worker-{pid}"
        )
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro {name}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: list[Span] | None = None,
                       track_names: dict[int, str] | None = None) -> dict:
    """Write the current (or given) spans as a Perfetto-loadable JSON
    file; returns the trace object."""
    current = tracer()
    if spans is None:
        spans = current.spans() if isinstance(current, Tracer) else []
    if track_names is None and isinstance(current, Tracer):
        track_names = current.track_names()
    main_pid = current.pid if isinstance(current, Tracer) else None
    trace = chrome_trace(spans, track_names, main_pid=main_pid)
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace


#: Module-global swapped by enable()/disable(); instrumented code does
#: ``telemetry.tracer().span(...)`` and pays a no-op when disabled.
_NOOP = NoopTracer()
_tracer: Tracer | NoopTracer = _NOOP


def tracer() -> Tracer | NoopTracer:
    """The active tracer (the no-op singleton when disabled)."""
    return _tracer


def tracing_enabled() -> bool:
    return _tracer.enabled


def enable(log_spans: bool | None = None) -> Tracer:
    """Turn on span recording; returns the live tracer (the existing
    one if already enabled)."""
    global _tracer
    if not isinstance(_tracer, Tracer):
        _tracer = Tracer(log_spans=log_spans)
    return _tracer


def disable() -> list[Span]:
    """Turn span recording off; returns whatever spans were recorded."""
    global _tracer
    spans = _tracer.drain()
    _tracer = _NOOP
    return spans
