"""Zero-dependency tracing + metrics for the synthesis stack.

Two complementary halves:

* **Metrics** (:mod:`repro.telemetry.metrics`) are always on: named
  counters, gauges, and histograms in a process-global registry
  (``telemetry.metrics()``), recorded with plain attribute adds.  The
  synthesis passes snapshot the registry around each run and attach
  the delta to ``SynthesisResult.metrics``.

* **Spans** (:mod:`repro.telemetry.tracer`) are opt-in: call
  ``telemetry.enable()`` before a run and ``telemetry.disable()``
  after, then ``telemetry.write_chrome_trace(path)`` (before
  disabling) to get a Perfetto/chrome://tracing-loadable timeline of
  compile → pathfind → fuse → instantiate → synthesize, including
  spans recorded inside spawned worker processes.

Telemetry is inert by contract: it never touches RNG state or
numerics, so synthesis results are bit-identical with tracing on or
off (enforced by ``tests/telemetry``).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta,
    metrics,
)
from .tracer import (
    NoopTracer,
    Span,
    Tracer,
    chrome_trace,
    disable,
    enable,
    tracer,
    tracing_enabled,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "delta",
    "metrics",
    "NoopTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "disable",
    "enable",
    "tracer",
    "tracing_enabled",
    "write_chrome_trace",
]
