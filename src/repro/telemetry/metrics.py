"""Counters, gauges, and histograms for the synthesis stack.

The registry is *always on*: recording a metric is a plain attribute
add with no locks on the hot path, cheap enough to leave enabled in
production runs (unlike spans, which are opt-in via
:mod:`repro.telemetry.tracer`).  Metrics never touch RNG state or
numerics, so they are provably inert with respect to synthesis
results.

Threading note: ``Counter.add`` / ``Histogram.observe`` are plain
in-place updates.  Under CPython's GIL a racing pair of threads can at
worst lose an increment; metric consumers (reports, BENCH artifacts)
tolerate that, and the engine stack is single-threaded per pass, so no
per-update lock is paid.  Metric *creation* is lock-protected.

Cross-process flow: worker processes snapshot their registry around
each task and ship the :func:`delta` back with the result; the parent
:meth:`MetricsRegistry.merge`\\ s it, so one registry describes the
whole run regardless of worker count.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "delta",
]


class Counter:
    """A monotonically increasing count (int or float).

    ``child()`` returns a new counter whose ``add`` also bumps this
    one — the pattern :class:`~repro.instantiation.EnginePool` uses so
    per-pool hit/miss counts stay exact while the registry counter
    aggregates across every pool in the process.
    """

    __slots__ = ("name", "_value", "_parent")

    def __init__(self, name: str, parent: Counter | None = None):
        self.name = name
        self._value = 0
        self._parent = parent

    def add(self, n=1) -> None:
        self._value += n
        if self._parent is not None:
            self._parent.add(n)

    @property
    def value(self):
        return self._value

    def child(self) -> Counter:
        """A per-instance counter that mirrors into this one."""
        return Counter(self.name, parent=self)

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Streaming count/sum/min/max over observed values."""

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def state(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def merge_state(self, state: dict) -> None:
        """Fold a shipped snapshot (or delta) into this histogram."""
        self.count += int(state.get("count", 0))
        self.sum += float(state.get("sum", 0.0))
        for key, keep in (("min", min), ("max", max)):
            other = state.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else keep(mine, other))

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} sum={self.sum:g}>"


class MetricsRegistry:
    """A name-keyed set of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instance after that; asking for an existing name with a
    different kind is an error (metric names are typed).
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, kind(name))
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """A flat, picklable view: counters/gauges as numbers,
        histograms as ``{count, sum, min, max, mean}`` dicts."""
        out: dict = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.state()
            else:
                out[name] = metric.value
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a shipped snapshot/delta (e.g. from a worker process)
        into this registry: counters and histograms accumulate, gauges
        take the incoming value."""
        if not snapshot:
            return
        for name, value in snapshot.items():
            if isinstance(value, dict):
                self.histogram(name).merge_state(value)
            elif isinstance(value, float) and not name.endswith(".gauge"):
                self.counter(name).add(value)
            elif isinstance(value, int):
                self.counter(name).add(value)
            else:
                self.gauge(name).set(value)

    def reset(self) -> None:
        """Drop every metric (mainly for tests)."""
        with self._lock:
            self._metrics.clear()


def delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters subtract; histograms subtract count/sum (their interval
    min/max is not derivable from endpoints, so it is omitted and the
    mean recomputed); metrics absent from ``before`` pass through.
    Zero-change entries are dropped, so the result reads as "the
    metrics this run produced".
    """
    out: dict = {}
    for name, now in after.items():
        was = before.get(name)
        if isinstance(now, dict):
            count = now.get("count", 0) - (
                was.get("count", 0) if isinstance(was, dict) else 0
            )
            total = now.get("sum", 0.0) - (
                was.get("sum", 0.0) if isinstance(was, dict) else 0.0
            )
            if count:
                out[name] = {
                    "count": count,
                    "sum": total,
                    "mean": total / count,
                }
        elif isinstance(now, (int, float)):
            diff = now - (was if isinstance(was, (int, float)) else 0)
            if diff:
                out[name] = diff
    return out


#: The process-wide registry every instrumented layer records into.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
