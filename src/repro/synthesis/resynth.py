"""Resynthesis passes: compression and window-partitioned synthesis.

:class:`Resynthesizer` is the paper's Section II-B compression loop —
delete a gate, re-instantiate the remainder against the original
unitary, keep the deletion if the fit still reaches threshold — the
workload whose "hundreds of instantiation calls per target" motivates
the engine's amortized AOT + batched multi-start design.

:class:`PartitionedSynthesizer` scales synthesis past direct search by
walking a wide circuit left-to-right in windows of at most ``window``
qudits, synthesizing each window's unitary with a
:class:`~repro.synthesis.SynthesisSearch`, and stitching the results
back onto the full register with
:meth:`QuditCircuit.append_circuit`.

Both passes evaluate candidates through the same
:class:`~repro.synthesis.executor.CandidateExecutor` layer as the
search: a compression scan proceeds in *waves* of deletion candidates
that are fitted as one batch (concurrently with ``workers > 1``), and
every candidate's RNG seed derives from its structure key, so results
are bit-identical across worker counts.
"""

from __future__ import annotations

import contextlib
import time
from collections.abc import Sequence

import numpy as np

from .. import telemetry
from ..checkpoint import (
    CheckpointStore,
    PassCheckpointer,
    config_fingerprint,
    load_resume_state,
    target_fingerprint,
)
from ..circuit.circuit import Operation, QuditCircuit
from ..instantiation.cost import as_target_array
from ..instantiation.instantiater import SUCCESS_THRESHOLD
from ..instantiation.lm import LMOptions
from ..instantiation.pool import EnginePool
from ..tensornet.contract import OutputContract
from ..testing.faults import maybe_fault
from ..utils.statevector import Statevector
from ..utils.unitary import hilbert_schmidt_infidelity
from .executor import CandidateExecutor, FitJob, candidate_seed, make_executor
from .result import SynthesisResult
from .search import (
    SynthesisSearch,
    _parallel_efficiency,
    _PassCounters,
    _resolve_pool,
    _run_round,
)

__all__ = ["Resynthesizer", "PartitionedSynthesizer", "SCAN_ORDERS"]

#: Valid gate-deletion scan orders for :class:`Resynthesizer`.
SCAN_ORDERS = ("backward", "forward", "entangler-first")


class Resynthesizer:
    """Gate-deletion compression against a fixed target unitary.

    Each pass scans the circuit in ``scan_order``, tentatively deleting
    one gate and re-instantiating the survivors (warm-started at their
    current values) against the target; the first deletion that still
    fits is kept and the scan restarts.  The engine pool makes repeat
    shapes — common once several gates have been removed from a regular
    template — reuse their AOT compile.

    ``scan_order`` selects which deletions are tried first:

    * ``"backward"`` (default) — last-appended gate first;
    * ``"forward"`` — first-appended gate first;
    * ``"entangler-first"`` — multi-qudit gates (back to front), then
      single-qudit gates: entangling blocks are both the expensive
      gates on hardware and the most likely to be redundant in an
      over-deep template, so trying them first tends to reach a
      cheaper circuit in fewer accepted deletions.

    ``scan_batch`` sets the wave size: that many deletion candidates
    are fitted as one executor batch before the scan decides (``None``
    = the whole scan as one wave).  The default of 1 reproduces the
    fully short-circuiting serial scan; raise it to the worker count
    (or ``None``) to trade some extra fits for concurrency.  The
    accepted deletion is always the first fitting one in scan order,
    and candidate seeds derive from structure keys, so for a given
    ``scan_batch`` the outcome is bit-identical across worker counts
    and batch scheduling.
    """

    def __init__(
        self,
        success_threshold: float = SUCCESS_THRESHOLD,
        starts: int = 8,
        strategy: str | None = None,
        precision: str | None = None,
        lm_options: LMOptions | None = None,
        pool: EnginePool | None = None,
        max_passes: int | None = None,
        scan_order: str = "backward",
        scan_batch: int | None = 1,
        workers: int = 1,
        executor: CandidateExecutor | None = None,
        backend: str | None = None,
        job_timeout: float | None = None,
        round_timeout: float | None = None,
        max_retries: int = 2,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = 1,
        checkpoint_seconds: float | None = None,
        checkpoint_keep: int = 3,
    ):
        if scan_order not in SCAN_ORDERS:
            raise ValueError(
                f"scan_order must be one of {SCAN_ORDERS}, "
                f"got {scan_order!r}"
            )
        if scan_batch is not None and scan_batch < 1:
            raise ValueError("scan_batch must be >= 1 (or None)")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if round_timeout is not None and round_timeout <= 0:
            raise ValueError("round_timeout must be positive (or None)")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if checkpoint_seconds is not None and checkpoint_seconds <= 0:
            raise ValueError("checkpoint_seconds must be positive (or None)")
        if checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        self.success_threshold = success_threshold
        self.starts = starts
        self.max_passes = max_passes
        self.scan_order = scan_order
        self.scan_batch = scan_batch
        # Fault-tolerance budgets (see SynthesisSearch): per-candidate
        # and per-wave wall clocks, and the crash-retry budget.
        self.job_timeout = job_timeout
        self.round_timeout = round_timeout
        self.max_retries = max_retries
        # Durability knobs (see SynthesisSearch): one snapshot per
        # ``checkpoint_every`` scan waves and/or ``checkpoint_seconds``.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_seconds = checkpoint_seconds
        self.checkpoint_keep = checkpoint_keep
        self.pool = _resolve_pool(
            pool, success_threshold, strategy, precision, lm_options, backend
        )
        if executor is not None and executor.pool is not self.pool:
            raise ValueError(
                "an injected executor must wrap the pass's engine pool"
            )
        if (
            executor is not None
            and workers != 1
            and workers != executor.workers
        ):
            raise ValueError(
                f"workers={workers} conflicts with the injected "
                f"executor's {executor.workers} worker(s); pass one or "
                "the other"
            )
        self.workers = executor.workers if executor is not None else workers
        self._executor = executor
        self._owns_executor = executor is None

    @property
    def executor(self) -> CandidateExecutor:
        if self._executor is None:
            self._executor = make_executor(
                self.pool,
                self.workers,
                max_retries=self.max_retries,
                job_timeout=self.job_timeout,
            )
        return self._executor

    def close(self) -> None:
        """Shut down worker processes this pass created."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> Resynthesizer:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _scan_indices(self, circuit: QuditCircuit) -> list[int]:
        """Deletion-candidate indices for one pass, in scan order."""
        n = circuit.num_operations
        if self.scan_order == "forward":
            return list(range(n))
        if self.scan_order == "backward":
            return list(reversed(range(n)))
        ops = list(circuit)
        entangling = [
            i for i in reversed(range(n)) if len(ops[i].location) > 1
        ]
        singles = [
            i for i in reversed(range(n)) if len(ops[i].location) <= 1
        ]
        return entangling + singles

    def _config_fingerprint(self) -> str:
        return config_fingerprint(
            pass_kind="resynth",
            success_threshold=self.success_threshold,
            starts=self.starts,
            max_passes=self.max_passes,
            scan_order=self.scan_order,
            scan_batch=self.scan_batch,
        )

    def resynthesize(
        self,
        circuit: QuditCircuit,
        params: Sequence[float] = (),
        target: np.ndarray | Statevector | None = None,
        rng: np.random.Generator | int | None = None,
        resume_from: str | CheckpointStore | None = None,
    ) -> SynthesisResult:
        """Compress ``circuit`` while preserving its unitary.

        ``target`` defaults to the circuit's own unitary at ``params``
        (resynthesis); pass an explicit target to compress toward a
        different unitary the circuit is known to reach.  A
        :class:`~repro.utils.Statevector` or 1-D amplitude vector
        compresses a state-preparation circuit instead: deletions are
        kept as long as ``U(theta)|0>`` still reaches the state, a
        strictly weaker constraint than preserving the full unitary —
        so state-prep compression typically deletes more gates.

        With ``checkpoint_dir`` set, the pass snapshots its scan
        position (compressed circuit so far, next pass/wave) at every
        wave boundary; ``resume_from`` continues a preempted or killed
        scan bit-identically — the wave in flight at the kill is
        re-run, completed waves are not.
        """
        t0 = time.perf_counter()
        params = np.asarray(params, dtype=np.float64)
        if target is None:
            target = circuit.get_unitary(params)
        else:
            target = as_target_array(target)
        # State-prep compression fits through column-contract engines
        # (the deletions only have to preserve ``U(theta)|0>``).
        contract = (
            OutputContract.column(0) if target.ndim == 1 else None
        )
        rng = np.random.default_rng(rng)
        base_seed = int(rng.integers(2**63))

        target_fp = target_fingerprint(
            target, extra=(circuit.structure_key(),)
        )
        config_fp = self._config_fingerprint()
        store: CheckpointStore | None = None
        resume_payload: dict | None = None
        if resume_from is not None:
            store, payload, _ = load_resume_state(
                resume_from,
                kind="resynth",
                target=target_fp,
                config=config_fp,
                keep=self.checkpoint_keep,
            )
            if payload["complete"]:
                return payload["result"]
            resume_payload = payload
        elif self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir, keep=self.checkpoint_keep
            )

        registry = telemetry.metrics()
        metrics0 = registry.snapshot()
        hits0, misses0 = self.pool.hits, self.pool.misses
        counters = _PassCounters()
        executor = self.executor
        round_index = 0
        resumed_from: int | None = None
        ck: PassCheckpointer | None = None
        if store is not None:
            ck = PassCheckpointer(
                store,
                kind="resynth",
                target=target_fp,
                config=config_fp,
                every_rounds=self.checkpoint_every,
                every_seconds=self.checkpoint_seconds,
                executor=executor,
            )
        resynth_span = telemetry.tracer().span(
            "resynthesize", category="synthesize",
            ops=circuit.num_operations, workers=executor.workers,
        )

        with contextlib.ExitStack() as stack:
            if ck is not None:
                stack.enter_context(ck)
            if resume_payload is not None:
                state = resume_payload["state"]
                base_seed = state["base_seed"]
                current = state["current"]
                cur_params = state["cur_params"]
                cur_inf = state["cur_inf"]
                # Re-enter the interrupted pass at the wave that was in
                # flight; the while loop's `passes += 1` restores the
                # stored pass number.
                passes = state["next_pass"] - 1
                resume_wave: int | None = state["next_wave"]
                improved = True
                round_index = resumed_from = int(resume_payload["round"])
                counters.calls.add(state["counters"]["calls"])
                counters.expanded.add(state["counters"]["expanded"])
                counters.busy.add(state["counters"]["busy"])
                counters.eval_wall.add(state["counters"]["eval_wall"])
            else:
                current = circuit.copy()
                x0 = params if len(params) == current.num_params else None
                [baseline] = _run_round(
                    executor,
                    [
                        FitJob(
                            current,
                            target,
                            self.starts,
                            candidate_seed(
                                base_seed, current.structure_key()
                            ),
                            x0,
                            contract=contract,
                            timeout=self.job_timeout,
                        )
                    ],
                    counters,
                    round_timeout=self.round_timeout,
                )
                cur_params, cur_inf = baseline.params, baseline.infidelity
                improved = cur_inf <= self.success_threshold
                passes = 0
                resume_wave = None

            next_wave = 0

            def scan_state() -> dict:
                # The scan's replay point: the compressed circuit so
                # far plus "next work is wave `next_wave` of pass
                # `passes`".  Scan order is a pure function of the
                # circuit, so the resumed pass recomputes it.
                return {
                    "base_seed": base_seed,
                    "current": current,
                    "cur_params": cur_params,
                    "cur_inf": cur_inf,
                    "next_pass": passes,
                    "next_wave": next_wave,
                    "counters": {
                        "calls": counters.calls.value,
                        "expanded": counters.expanded.value,
                        "busy": counters.busy.value,
                        "eval_wall": counters.eval_wall.value,
                    },
                }

            while improved and (
                self.max_passes is None or passes < self.max_passes
            ):
                improved = False
                passes += 1
                if current.num_operations <= 1:
                    break
                order = self._scan_indices(current)
                batch = self.scan_batch or len(order)
                first_wave = resume_wave if resume_wave is not None else 0
                resume_wave = None
                for wave_start in range(first_wave, len(order), batch):
                    # Wave boundary: state describes this wave as the
                    # next work, so a snapshot (or preemption flush)
                    # here never replays a completed wave.
                    next_wave = wave_start
                    maybe_fault("round", key=round_index)
                    if ck is not None:
                        ck.round_boundary(round_index, scan_state)
                    wave = order[wave_start:wave_start + batch]
                    jobs: list[FitJob] = []
                    candidates: list[QuditCircuit] = []
                    for i in wave:
                        candidate, kept = current.without_operation(i)
                        jobs.append(
                            FitJob(
                                candidate,
                                target,
                                self.starts,
                                candidate_seed(
                                    base_seed, candidate.structure_key()
                                ),
                                cur_params[list(kept)],
                                contract=contract,
                                timeout=self.job_timeout,
                            )
                        )
                        candidates.append(candidate)
                    counters.expanded.add(len(wave))
                    outcomes = _run_round(
                        executor, jobs, counters,
                        round_timeout=self.round_timeout,
                    )
                    round_index += 1
                    # Accept the first fitting deletion in scan order —
                    # the same winner regardless of how the wave was
                    # scheduled.
                    for candidate, outcome in zip(candidates, outcomes):
                        if outcome.infidelity <= self.success_threshold:
                            current = candidate
                            cur_params = outcome.params
                            cur_inf = outcome.infidelity
                            improved = True
                            registry.counter(
                                "resynth.deletions_accepted"
                            ).add()
                            break
                    if improved:
                        break  # rescan the shorter circuit

            registry.counter("resynth.passes").add(passes)
            resynth_span.set(
                passes=passes, examined=counters.expanded.value
            )
            resynth_span.__exit__(None, None, None)
            pass_metrics = telemetry.delta(metrics0, registry.snapshot())
            result = SynthesisResult(
                circuit=current,
                params=cur_params,
                infidelity=cur_inf,
                success=cur_inf <= self.success_threshold,
                instantiation_calls=counters.calls.value,
                engine_cache_hits=self.pool.hits - hits0,
                engine_cache_misses=self.pool.misses - misses0,
                nodes_expanded=counters.expanded.value,
                wall_seconds=time.perf_counter() - t0,
                workers=executor.workers,
                parallel_efficiency=_parallel_efficiency(executor, counters),
                metrics=pass_metrics,
                failed_candidates=int(
                    pass_metrics.get("executor.failed_candidates", 0)
                ),
                retries=int(pass_metrics.get("executor.retries", 0)),
                timed_out=int(pass_metrics.get("executor.timeouts", 0)),
                resumed_from_round=resumed_from,
            )
            if ck is not None:
                ck.complete(round_index, result)
            return result


class PartitionedSynthesizer:
    """Window-partitioned resynthesis for circuits too wide to search.

    Operations are grouped left-to-right into contiguous blocks whose
    wires fit in ``window`` qudits (a greedy linear partition); each
    block's unitary is synthesized independently by ``search`` and the
    solutions are stitched back in order, which reproduces the original
    circuit exactly because consecutive blocks are appended in the
    original operation order.  A window the search cannot solve falls
    back to its original gates, so the pass never breaks the circuit.
    """

    def __init__(
        self,
        search: SynthesisSearch | None = None,
        window: int = 3,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = 1,
        checkpoint_seconds: float | None = None,
        checkpoint_keep: int = 3,
    ):
        if window < 2:
            raise ValueError("window must span at least 2 qudits")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if checkpoint_seconds is not None and checkpoint_seconds <= 0:
            raise ValueError("checkpoint_seconds must be positive (or None)")
        if checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        self.search = search or SynthesisSearch()
        self.window = window
        # Durability knobs: one snapshot per ``checkpoint_every``
        # completed windows and/or ``checkpoint_seconds``; the stitched
        # prefix is stored, so a resume re-synthesizes at most the
        # window in flight.  The inner search keeps its own (per-window)
        # checkpoint knobs if its owner configured any.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_seconds = checkpoint_seconds
        self.checkpoint_keep = checkpoint_keep

    def _partition(
        self, circuit: QuditCircuit
    ) -> list[tuple[tuple[int, ...], list[Operation]]]:
        blocks: list[tuple[tuple[int, ...], list[Operation]]] = []
        qudits: set[int] = set()
        ops: list[Operation] = []
        for op in circuit:
            loc = set(op.location)
            if len(loc) > self.window:
                raise ValueError(
                    f"gate on {sorted(loc)} is wider than the "
                    f"{self.window}-qudit window"
                )
            if ops and len(qudits | loc) > self.window:
                blocks.append((tuple(sorted(qudits)), ops))
                qudits, ops = set(), []
            qudits |= loc
            ops.append(op)
        if ops:
            blocks.append((tuple(sorted(qudits)), ops))
        return blocks

    @staticmethod
    def _block_circuit(
        circuit: QuditCircuit,
        wires: tuple[int, ...],
        ops: list[Operation],
        params: np.ndarray,
    ) -> QuditCircuit:
        """The block as a standalone constant circuit on its own wires."""
        sub = QuditCircuit([circuit.radices[q] for q in wires])
        wire_map = {q: i for i, q in enumerate(wires)}
        for op in ops:
            ref = sub.cache_operation(circuit.expression(op.ref), check=False)
            values = [
                params[s.index] if s.kind == "param" else s.value
                for s in op.slots
            ]
            sub.append_ref_constant(
                ref, tuple(wire_map[q] for q in op.location), values
            )
        return sub

    def synthesize_circuit(
        self,
        circuit: QuditCircuit,
        params: Sequence[float] = (),
        rng: np.random.Generator | int | None = None,
        resume_from: str | CheckpointStore | None = None,
    ) -> SynthesisResult:
        """Re-express ``circuit`` (at ``params``) window by window in
        the search's gate set.

        With ``checkpoint_dir`` set, the stitched prefix and per-window
        reports are snapshotted after each window; ``resume_from``
        restores them and re-synthesizes only the window that was in
        flight (per-window seeds derive from the stored base seed, so
        the stitched result is bit-identical to an uninterrupted run).
        """
        t0 = time.perf_counter()
        params = np.asarray(params, dtype=np.float64)
        if len(params) != circuit.num_params:
            raise ValueError(
                f"expected {circuit.num_params} parameter values, "
                f"got {len(params)}"
            )
        rng = np.random.default_rng(rng)
        # Stable per-window seeds (index-derived, not draw-ordered), so
        # a window's result does not depend on how many windows precede
        # it or on how earlier windows were evaluated.
        base_seed = int(rng.integers(2**63))

        target_fp = target_fingerprint(
            params, extra=(circuit.structure_key(),)
        )
        config_fp = config_fingerprint(
            pass_kind="partitioned",
            window=self.window,
            search=self.search._config_fingerprint(),
        )
        store: CheckpointStore | None = None
        resume_payload: dict | None = None
        if resume_from is not None:
            store, payload, _ = load_resume_state(
                resume_from,
                kind="partitioned",
                target=target_fp,
                config=config_fp,
                keep=self.checkpoint_keep,
            )
            if payload["complete"]:
                return payload["result"]
            resume_payload = payload
        elif self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir, keep=self.checkpoint_keep
            )
        ck: PassCheckpointer | None = None
        if store is not None:
            ck = PassCheckpointer(
                store,
                kind="partitioned",
                target=target_fp,
                config=config_fp,
                every_rounds=self.checkpoint_every,
                every_seconds=self.checkpoint_seconds,
                executor=self.search.executor,
            )

        out = QuditCircuit(circuit.radices)
        out_params: list[float] = []
        windows: list[SynthesisResult] = []
        all_solved = True
        next_window = 0
        resumed_from: int | None = None
        if resume_payload is not None:
            state = resume_payload["state"]
            base_seed = state["base_seed"]
            out = state["out"]
            out_params = state["out_params"]
            windows = state["windows"]
            all_solved = state["all_solved"]
            next_window = resumed_from = int(resume_payload["round"])

        def window_state() -> dict:
            # The stitched prefix is the replay point: windows before
            # `round` are done (their gates already in `out`), windows
            # from `round` on have not started.
            return {
                "base_seed": base_seed,
                "out": out,
                "out_params": list(out_params),
                "windows": windows,
                "all_solved": all_solved,
            }

        blocks = self._partition(circuit)
        with contextlib.ExitStack() as stack:
            if ck is not None:
                stack.enter_context(ck)
            for index, (wires, ops) in enumerate(blocks):
                if index < next_window:
                    continue  # restored from the stitched prefix
                maybe_fault("round", key=index)
                if ck is not None:
                    ck.round_boundary(index, window_state)
                sub = self._block_circuit(circuit, wires, ops, params)
                with telemetry.tracer().span(
                    "window", category="synthesize",
                    index=index, wires=list(wires), ops=len(ops),
                ):
                    result = self.search.synthesize(
                        sub.get_unitary(()),
                        radices=sub.radices,
                        rng=candidate_seed(base_seed, ("window", index)),
                    )
                windows.append(result)
                if result.success:
                    added = out.append_circuit(
                        result.circuit, location=wires
                    )
                    out_params.extend(result.params[j] for j in added)
                else:
                    # Fall back to the original gates for this window.
                    all_solved = False
                    for op, sub_op in zip(ops, sub):
                        ref = out.cache_operation(
                            circuit.expression(op.ref), check=False
                        )
                        out.append_ref_constant(
                            ref,
                            op.location,
                            [s.value for s in sub_op.slots],
                        )

        final_params = np.asarray(out_params, dtype=np.float64)
        infidelity = (
            hilbert_schmidt_infidelity(
                circuit.get_unitary(params), out.get_unitary(final_params)
            )
            if len(out)
            else 0.0
        )
        efficiencies = [
            (w.parallel_efficiency, w.wall_seconds)
            for w in windows
            if w.parallel_efficiency is not None
        ]
        total_eff_wall = sum(wall for _, wall in efficiencies)
        merged_metrics = telemetry.MetricsRegistry()
        for w in windows:
            merged_metrics.merge(w.metrics)
        result = SynthesisResult(
            circuit=out,
            params=final_params,
            infidelity=infidelity,
            success=all_solved
            and infidelity
            <= self.search.success_threshold * max(1, len(windows)),
            instantiation_calls=sum(w.instantiation_calls for w in windows),
            engine_cache_hits=sum(w.engine_cache_hits for w in windows),
            engine_cache_misses=sum(w.engine_cache_misses for w in windows),
            nodes_expanded=sum(w.nodes_expanded for w in windows),
            failed_candidates=sum(w.failed_candidates for w in windows),
            retries=sum(w.retries for w in windows),
            timed_out=sum(w.timed_out for w in windows),
            wall_seconds=time.perf_counter() - t0,
            windows=windows,
            workers=self.search.workers,
            parallel_efficiency=(
                sum(eff * wall for eff, wall in efficiencies)
                / total_eff_wall
                if total_eff_wall > 0
                else None
            ),
            metrics=merged_metrics.snapshot(),
            resumed_from_round=resumed_from,
        )
        if ck is not None:
            ck.complete(len(blocks), result)
        return result
