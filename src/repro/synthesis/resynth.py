"""Resynthesis passes: compression and window-partitioned synthesis.

:class:`Resynthesizer` is the paper's Section II-B compression loop —
delete a gate, re-instantiate the remainder against the original
unitary, keep the deletion if the fit still reaches threshold — the
workload whose "hundreds of instantiation calls per target" motivates
the engine's amortized AOT + batched multi-start design.

:class:`PartitionedSynthesizer` scales synthesis past direct search by
walking a wide circuit left-to-right in windows of at most ``window``
qudits, synthesizing each window's unitary with a
:class:`~repro.synthesis.SynthesisSearch`, and stitching the results
back onto the full register with
:meth:`QuditCircuit.append_circuit`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit.circuit import Operation, QuditCircuit
from ..instantiation.instantiater import SUCCESS_THRESHOLD
from ..instantiation.lm import LMOptions
from ..instantiation.pool import EnginePool
from ..utils.unitary import hilbert_schmidt_infidelity
from .result import SynthesisResult
from .search import SynthesisSearch, _pooled_fit, _resolve_pool

__all__ = ["Resynthesizer", "PartitionedSynthesizer"]


class Resynthesizer:
    """Gate-deletion compression against a fixed target unitary.

    Each pass scans the circuit back-to-front, tentatively deleting one
    gate and re-instantiating the survivors (warm-started at their
    current values) against the target; the first deletion that still
    fits is kept and the scan restarts.  The engine pool makes repeat
    shapes — common once several gates have been removed from a regular
    template — reuse their AOT compile.
    """

    def __init__(
        self,
        success_threshold: float = SUCCESS_THRESHOLD,
        starts: int = 8,
        strategy: str | None = None,
        precision: str | None = None,
        lm_options: LMOptions | None = None,
        pool: EnginePool | None = None,
        max_passes: int | None = None,
    ):
        self.success_threshold = success_threshold
        self.starts = starts
        self.max_passes = max_passes
        self.pool = _resolve_pool(
            pool, success_threshold, strategy, precision, lm_options
        )

    def _fit(
        self,
        circuit: QuditCircuit,
        target: np.ndarray,
        rng: np.random.Generator,
        x0: np.ndarray | None,
        counters: dict,
    ) -> tuple[np.ndarray, float]:
        return _pooled_fit(
            self.pool, circuit, target, self.starts, rng, x0, counters
        )

    def resynthesize(
        self,
        circuit: QuditCircuit,
        params: Sequence[float] = (),
        target: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> SynthesisResult:
        """Compress ``circuit`` while preserving its unitary.

        ``target`` defaults to the circuit's own unitary at ``params``
        (resynthesis); pass an explicit target to compress toward a
        different unitary the circuit is known to reach.
        """
        t0 = time.perf_counter()
        params = np.asarray(params, dtype=np.float64)
        if target is None:
            target = circuit.get_unitary(params)
        rng = np.random.default_rng(rng)
        hits0, misses0 = self.pool.hits, self.pool.misses
        counters = {"calls": 0, "examined": 0}

        current = circuit.copy()
        x0 = params if len(params) == current.num_params else None
        cur_params, cur_inf = self._fit(current, target, rng, x0, counters)

        improved = cur_inf <= self.success_threshold
        passes = 0
        while improved and (
            self.max_passes is None or passes < self.max_passes
        ):
            improved = False
            passes += 1
            for i in reversed(range(current.num_operations)):
                if current.num_operations <= 1:
                    break
                candidate, kept = current.without_operation(i)
                counters["examined"] += 1
                cand_params, cand_inf = self._fit(
                    candidate,
                    target,
                    rng,
                    cur_params[list(kept)],
                    counters,
                )
                if cand_inf <= self.success_threshold:
                    current, cur_params, cur_inf = (
                        candidate,
                        cand_params,
                        cand_inf,
                    )
                    improved = True
                    break  # rescan the shorter circuit

        return SynthesisResult(
            circuit=current,
            params=cur_params,
            infidelity=cur_inf,
            success=cur_inf <= self.success_threshold,
            instantiation_calls=counters["calls"],
            engine_cache_hits=self.pool.hits - hits0,
            engine_cache_misses=self.pool.misses - misses0,
            nodes_expanded=counters["examined"],
            wall_seconds=time.perf_counter() - t0,
        )


class PartitionedSynthesizer:
    """Window-partitioned resynthesis for circuits too wide to search.

    Operations are grouped left-to-right into contiguous blocks whose
    wires fit in ``window`` qudits (a greedy linear partition); each
    block's unitary is synthesized independently by ``search`` and the
    solutions are stitched back in order, which reproduces the original
    circuit exactly because consecutive blocks are appended in the
    original operation order.  A window the search cannot solve falls
    back to its original gates, so the pass never breaks the circuit.
    """

    def __init__(
        self,
        search: SynthesisSearch | None = None,
        window: int = 3,
    ):
        if window < 2:
            raise ValueError("window must span at least 2 qudits")
        self.search = search or SynthesisSearch()
        self.window = window

    def _partition(
        self, circuit: QuditCircuit
    ) -> list[tuple[tuple[int, ...], list[Operation]]]:
        blocks: list[tuple[tuple[int, ...], list[Operation]]] = []
        qudits: set[int] = set()
        ops: list[Operation] = []
        for op in circuit:
            loc = set(op.location)
            if len(loc) > self.window:
                raise ValueError(
                    f"gate on {sorted(loc)} is wider than the "
                    f"{self.window}-qudit window"
                )
            if ops and len(qudits | loc) > self.window:
                blocks.append((tuple(sorted(qudits)), ops))
                qudits, ops = set(), []
            qudits |= loc
            ops.append(op)
        if ops:
            blocks.append((tuple(sorted(qudits)), ops))
        return blocks

    @staticmethod
    def _block_circuit(
        circuit: QuditCircuit,
        wires: tuple[int, ...],
        ops: list[Operation],
        params: np.ndarray,
    ) -> QuditCircuit:
        """The block as a standalone constant circuit on its own wires."""
        sub = QuditCircuit([circuit.radices[q] for q in wires])
        wire_map = {q: i for i, q in enumerate(wires)}
        for op in ops:
            ref = sub.cache_operation(circuit.expression(op.ref), check=False)
            values = [
                params[s.index] if s.kind == "param" else s.value
                for s in op.slots
            ]
            sub.append_ref_constant(
                ref, tuple(wire_map[q] for q in op.location), values
            )
        return sub

    def synthesize_circuit(
        self,
        circuit: QuditCircuit,
        params: Sequence[float] = (),
        rng: np.random.Generator | int | None = None,
    ) -> SynthesisResult:
        """Re-express ``circuit`` (at ``params``) window by window in
        the search's gate set."""
        t0 = time.perf_counter()
        params = np.asarray(params, dtype=np.float64)
        if len(params) != circuit.num_params:
            raise ValueError(
                f"expected {circuit.num_params} parameter values, "
                f"got {len(params)}"
            )
        rng = np.random.default_rng(rng)

        out = QuditCircuit(circuit.radices)
        out_params: list[float] = []
        windows: list[SynthesisResult] = []
        all_solved = True
        for wires, ops in self._partition(circuit):
            sub = self._block_circuit(circuit, wires, ops, params)
            result = self.search.synthesize(
                sub.get_unitary(()),
                radices=sub.radices,
                rng=int(rng.integers(2**32)),
            )
            windows.append(result)
            if result.success:
                added = out.append_circuit(result.circuit, location=wires)
                out_params.extend(result.params[j] for j in added)
            else:
                # Fall back to the original gates for this window.
                all_solved = False
                for op, sub_op in zip(ops, sub):
                    ref = out.cache_operation(
                        circuit.expression(op.ref), check=False
                    )
                    out.append_ref_constant(
                        ref,
                        op.location,
                        [s.value for s in sub_op.slots],
                    )

        final_params = np.asarray(out_params, dtype=np.float64)
        infidelity = (
            hilbert_schmidt_infidelity(
                circuit.get_unitary(params), out.get_unitary(final_params)
            )
            if len(out)
            else 0.0
        )
        return SynthesisResult(
            circuit=out,
            params=final_params,
            infidelity=infidelity,
            success=all_solved
            and infidelity
            <= self.search.success_threshold * max(1, len(windows)),
            instantiation_calls=sum(w.instantiation_calls for w in windows),
            engine_cache_hits=sum(w.engine_cache_hits for w in windows),
            engine_cache_misses=sum(w.engine_cache_misses for w in windows),
            nodes_expanded=sum(w.nodes_expanded for w in windows),
            wall_seconds=time.perf_counter() - t0,
            windows=windows,
        )
