"""Search-based circuit synthesis driven by the instantiation engine.

The first compiler workload built *above* the engine (paper section
II-B): bottom-up template search (:class:`SynthesisSearch`), circuit
compression (:class:`Resynthesizer`), and window-partitioned scaling
(:class:`PartitionedSynthesizer`), all running their inner loops
through pooled, batched :class:`~repro.instantiation.Instantiater`
engines.
"""

from .executor import (
    CandidateExecutor,
    FitJob,
    ProcessCandidateExecutor,
    SerialCandidateExecutor,
    candidate_seed,
    make_executor,
)
from .layers import CustomLayerGenerator, LayerGenerator, QSearchLayerGenerator
from .result import SynthesisResult
from .resynth import SCAN_ORDERS, PartitionedSynthesizer, Resynthesizer
from .search import SynthesisSearch, infer_radices

__all__ = [
    "LayerGenerator",
    "QSearchLayerGenerator",
    "CustomLayerGenerator",
    "SynthesisResult",
    "SynthesisSearch",
    "Resynthesizer",
    "PartitionedSynthesizer",
    "SCAN_ORDERS",
    "infer_radices",
    "CandidateExecutor",
    "SerialCandidateExecutor",
    "ProcessCandidateExecutor",
    "FitJob",
    "make_executor",
    "candidate_seed",
]
