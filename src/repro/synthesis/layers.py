"""Layer generators: the template grammar a synthesis search explores.

A :class:`LayerGenerator` defines the search space bottom-up, QSearch
style: :meth:`~LayerGenerator.initial` produces the root template (a
single-qudit gate on every wire) and :meth:`~LayerGenerator.successors`
extends a template by one entangling block per allowed coupling —
entangler on the pair, then a single-qudit gate on each touched wire.

Expansion is O(1) per gate: the generator caches each gate expression
into the root circuit once (paying validation and canonical-key
hashing there), remembers the integer refs, and — because
:meth:`QuditCircuit.copy` shares the expression table — extends every
descendant candidate with plain ``append_ref`` calls.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator, Mapping, Sequence
from typing import Protocol, runtime_checkable

from ..circuit import gates
from ..circuit.circuit import QuditCircuit
from ..expression import UnitaryExpression
from ..symbolic.matrix import ExpressionMatrix

__all__ = [
    "LayerGenerator",
    "QSearchLayerGenerator",
    "CustomLayerGenerator",
]


@runtime_checkable
class LayerGenerator(Protocol):
    """The template grammar contract consumed by the search passes."""

    def initial(self, radices: Sequence[int]) -> QuditCircuit:
        """The root template for a circuit with the given radices."""
        ...

    def successors(self, circuit: QuditCircuit) -> Iterator[QuditCircuit]:
        """One-layer extensions of a template produced by this
        generator (or a :meth:`QuditCircuit.copy` descendant of one)."""
        ...


def _as_matrix(
    expression: UnitaryExpression | ExpressionMatrix,
) -> ExpressionMatrix:
    if isinstance(expression, UnitaryExpression):
        return expression.matrix
    return expression


class _BlockLayerGenerator:
    """Shared machinery: per-radix singles, entangler blocks, O(1) refs."""

    def __init__(self, couplings: Sequence[tuple[int, int]] | None = None):
        self._couplings = (
            None
            if couplings is None
            else tuple((int(a), int(b)) for a, b in couplings)
        )
        # id(ExpressionMatrix) -> ref in the root's expression table.
        # Valid for every copy() descendant of a root built by this
        # generator; foreign circuits fall back to cache_operation.
        self._ref_hints: dict[int, int] = {}

    # Subclasses provide the gate set ------------------------------------
    def single_for(self, radix: int) -> ExpressionMatrix:
        raise NotImplementedError

    def entanglers_for(
        self, radix_a: int, radix_b: int
    ) -> Sequence[ExpressionMatrix]:
        raise NotImplementedError

    # --------------------------------------------------------------------
    def pairs(self, radices: Sequence[int]) -> list[tuple[int, int]]:
        """The couplings explored on a circuit of these radices."""
        n = len(radices)
        if self._couplings is not None:
            for a, b in self._couplings:
                if not (0 <= a < n and 0 <= b < n) or a == b:
                    raise ValueError(f"invalid coupling ({a}, {b})")
            return list(self._couplings)
        return [(a, b) for a in range(n) for b in range(a + 1, n)]

    def _ref(self, circuit: QuditCircuit, matrix: ExpressionMatrix) -> int:
        ref = self._ref_hints.get(id(matrix))
        if ref is not None:
            with contextlib.suppress(IndexError):
                if circuit.expression(ref) is matrix:
                    return ref
        ref = circuit.cache_operation(matrix)
        self._ref_hints[id(matrix)] = ref
        return ref

    def initial(self, radices: Sequence[int]) -> QuditCircuit:
        circuit = QuditCircuit(radices)
        for q, radix in enumerate(circuit.radices):
            circuit.append_ref(self._ref(circuit, self.single_for(radix)), q)
        # Warm the entangler refs on the root so every descendant copy
        # inherits them and successor expansion never re-hashes.
        for a, b in self.pairs(circuit.radices):
            for ent in self.entanglers_for(
                circuit.radices[a], circuit.radices[b]
            ):
                self._ref(circuit, ent)
        return circuit

    def successors(self, circuit: QuditCircuit) -> Iterator[QuditCircuit]:
        for a, b in self.pairs(circuit.radices):
            ra, rb = circuit.radices[a], circuit.radices[b]
            for ent in self.entanglers_for(ra, rb):
                child = circuit.copy()
                child.append_ref(self._ref(child, ent), (a, b))
                child.append_ref(self._ref(child, self.single_for(ra)), a)
                child.append_ref(self._ref(child, self.single_for(rb)), b)
                yield child


class QSearchLayerGenerator(_BlockLayerGenerator):
    """The default QSearch-style gate set, chosen per wire radix.

    Qubits get U3 + CNOT (the paper's Figure 5 family), qutrits the
    two-parameter phase gate + CSUM, and higher radices an embedded U3
    + CSUM — mirroring :func:`repro.circuit.build_qsearch_ansatz`, so a
    depth-``d`` search node is exactly ``build_qsearch_ansatz``'s
    ansatz with ``d`` blocks placed freely instead of on a chain.
    Mixed-radix pairs have no default entangler and are skipped unless
    explicit ``couplings`` exclude them anyway.
    """

    def __init__(
        self,
        single: UnitaryExpression | ExpressionMatrix | None = None,
        entangler: UnitaryExpression | ExpressionMatrix | None = None,
        couplings: Sequence[tuple[int, int]] | None = None,
    ):
        super().__init__(couplings)
        self._single = None if single is None else _as_matrix(single)
        self._entangler = None if entangler is None else _as_matrix(entangler)
        if self._single is not None and self._single.num_qudits != 1:
            raise ValueError("single-qudit gate must act on 1 qudit")
        if self._entangler is not None and self._entangler.num_qudits != 2:
            raise ValueError("entangler must act on 2 qudits")

    def single_for(self, radix: int) -> ExpressionMatrix:
        if self._single is not None:
            if self._single.radices[0] != radix:
                raise ValueError(
                    f"single-qudit gate has radix {self._single.radices[0]}, "
                    f"wire has radix {radix}"
                )
            return self._single
        if radix == 2:
            return gates.u3().matrix
        if radix == 3:
            return gates.qutrit_phase().matrix
        return gates.embedded_u3(radix, 0, 1).matrix

    def entanglers_for(
        self, radix_a: int, radix_b: int
    ) -> Sequence[ExpressionMatrix]:
        if self._entangler is not None:
            if tuple(self._entangler.radices) != (radix_a, radix_b):
                return ()
            return (self._entangler,)
        if radix_a != radix_b:
            return ()  # no default entangler across radices
        if radix_a == 2:
            return (gates.cx().matrix,)
        return (gates.csum(radix_a).matrix,)


class CustomLayerGenerator(_BlockLayerGenerator):
    """A gate set built from arbitrary :class:`UnitaryExpression`\\ s.

    ``single`` is one expression (applied to every wire) or a mapping
    from radix to expression; ``entanglers`` is any number of two-qudit
    expressions — each coupling is expanded once per radix-compatible
    entangler, so richer native gate sets widen the branching factor
    rather than requiring a new generator class.
    """

    def __init__(
        self,
        single: (
            UnitaryExpression
            | ExpressionMatrix
            | Mapping[int, UnitaryExpression | ExpressionMatrix]
        ),
        entanglers: (
            UnitaryExpression
            | ExpressionMatrix
            | Sequence[UnitaryExpression | ExpressionMatrix]
        ),
        couplings: Sequence[tuple[int, int]] | None = None,
    ):
        super().__init__(couplings)
        if isinstance(single, Mapping):
            self._singles = {
                int(r): _as_matrix(e) for r, e in single.items()
            }
        else:
            m = _as_matrix(single)
            self._singles = {m.radices[0]: m}
        for radix, m in self._singles.items():
            if m.num_qudits != 1 or m.radices[0] != radix:
                raise ValueError(
                    f"single-qudit gate for radix {radix} must act on "
                    f"one radix-{radix} qudit"
                )
        if isinstance(entanglers, (UnitaryExpression, ExpressionMatrix)):
            entanglers = (entanglers,)
        self._entanglers = tuple(_as_matrix(e) for e in entanglers)
        if not self._entanglers:
            raise ValueError("at least one entangler is required")
        for m in self._entanglers:
            if m.num_qudits != 2:
                raise ValueError(
                    f"entangler {m.name or '?'} must act on 2 qudits"
                )

    def single_for(self, radix: int) -> ExpressionMatrix:
        try:
            return self._singles[radix]
        except KeyError:
            raise ValueError(
                f"gate set has no single-qudit gate for radix {radix}"
            ) from None

    def entanglers_for(
        self, radix_a: int, radix_b: int
    ) -> Sequence[ExpressionMatrix]:
        return tuple(
            m
            for m in self._entanglers
            if tuple(m.radices) == (radix_a, radix_b)
        )
