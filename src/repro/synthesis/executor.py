"""Candidate-evaluation executors: the parallel frontier layer.

Candidates produced by one synthesis round — all successors of a
frontier expansion, all gate-deletion variants of a compression scan
wave — are independent instantiation problems.  This module evaluates
such a batch through a :class:`CandidateExecutor`:

* :class:`SerialCandidateExecutor` runs the batch in-process through
  the shared :class:`~repro.instantiation.EnginePool` (the seed
  behaviour, minus the draw-order RNG coupling);
* :class:`ProcessCandidateExecutor` fans the batch out over a process
  pool.  Workers never AOT-compile: the parent pool compiles each new
  template shape once, snapshots it as a pickled
  :class:`~repro.instantiation.SerializedEngine` (TNVM bytecode +
  JIT'd expression source), and ships the snapshot with the task; a
  per-worker LRU rehydrates and reuses engines per shape.

Determinism: each candidate's multi-start RNG is seeded by
:func:`candidate_seed` — a stable hash of the pass's base seed and the
candidate's structure key — never by draw order, so serial and
parallel evaluation of the same batch return bit-identical results no
matter how the work is scheduled.

Fault tolerance: a dead worker breaks the whole
``ProcessPoolExecutor``, so :meth:`ProcessCandidateExecutor.run`
rebuilds the pool and resubmits only the unresolved jobs (the
structure-keyed seeding makes the retried results bit-identical to a
fault-free run).  Per-job retry budgets quarantine poison candidates
as failed :class:`FitOutcome`\\ s instead of sinking the pass,
per-job/per-round deadlines bound stragglers, non-finite fit results
degrade to failed outcomes instead of poisoning the frontier, and
repeated pool breakage falls back to in-process serial evaluation.
Every recovery event rides telemetry (``executor.retries`` /
``.quarantined`` / ``.timeouts`` / ``.pool_rebuilds`` /
``.serial_fallbacks`` / ``.nonfinite_results`` /
``.failed_candidates``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..circuit.circuit import QuditCircuit
from ..instantiation.cost import as_target_array, is_state_target
from ..instantiation.instantiater import Instantiater
from ..instantiation.pool import EnginePool
from ..jit.cache import ExpressionCache
from ..tensornet.contract import OutputContract
from ..testing.faults import maybe_fault
from ..utils.statevector import state_prep_infidelity
from ..utils.unitary import hilbert_schmidt_infidelity

__all__ = [
    "FitJob",
    "FitOutcome",
    "CandidateExecutor",
    "SerialCandidateExecutor",
    "ProcessCandidateExecutor",
    "make_executor",
    "candidate_seed",
    "NEEDS_PAYLOAD",
]


def candidate_seed(base_seed: int, key: object) -> int:
    """A stable per-candidate RNG seed.

    Derived from the pass's base seed and the candidate's identity
    (typically its :meth:`~QuditCircuit.structure_key`) through SHA-256,
    so the seed depends on *what* is being fitted, never on the order
    candidates happen to be drawn or scheduled in — the property that
    makes serial and parallel evaluation bit-identical.
    """
    digest = hashlib.sha256(repr((base_seed, key)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FitJob:
    """One candidate fit: circuit, target, and its derived seed.

    ``target`` is a ``(D, D)`` unitary (Eq. 1 fit) or a 1-D amplitude
    vector (state preparation); the engines dispatch on the shape, so
    both target types flow through the same executors, process pool,
    and shipped-engine payloads.  ``contract`` selects the engine's
    :class:`~repro.tensornet.OutputContract` (``None`` = full
    unitary); state-prep passes set ``OutputContract.column(0)`` so
    the whole fit runs through a column-specialized engine.

    ``timeout`` is this job's wall-clock budget in seconds (measured
    from the submission of its attempt); a straggler past it is
    abandoned as a failed outcome.  ``None`` falls back to the
    executor's default ``job_timeout`` (itself ``None`` = unbounded).
    """

    circuit: QuditCircuit
    target: np.ndarray
    starts: int
    seed: int
    x0: np.ndarray | None = None
    contract: OutputContract | None = None
    timeout: float | None = None


@dataclass
class FitOutcome:
    """Result of one candidate fit plus its engine-side wall time."""

    params: np.ndarray
    infidelity: float
    busy_seconds: float
    #: True when the candidate had parameters and hit an engine (the
    #: condition under which passes count an instantiation call).
    engine_call: bool
    #: True when the fit never produced a usable result (quarantined
    #: crash, deadline, non-finite numbers); ``infidelity`` is then
    #: ``inf``, so the candidate can never win a round or a frontier
    #: slot, and ``failure`` names the reason.
    failed: bool = False
    failure: str = ""


def _constant_outcome(job: FitJob) -> FitOutcome:
    """A fully constant candidate has nothing to optimize."""
    t0 = time.perf_counter()
    unitary = job.circuit.get_unitary(())
    if is_state_target(job.target):
        infidelity = state_prep_infidelity(job.target, unitary)
    else:
        infidelity = hilbert_schmidt_infidelity(as_target_array(job.target), unitary)
    return FitOutcome(
        params=np.empty(0),
        infidelity=infidelity,
        busy_seconds=time.perf_counter() - t0,
        engine_call=False,
    )


def _failed_outcome(job: FitJob, reason: str) -> FitOutcome:
    """The degraded result for a candidate that could not be fitted.

    Infinite infidelity (like a hopeless fit, never ``NaN``) keeps
    every downstream comparison well-behaved: the candidate loses all
    round scans, never reaches a success threshold, and the search
    skips it when filling the frontier.
    """
    telemetry.metrics().counter("executor.failed_candidates").add()
    telemetry.tracer().instant(
        "candidate.failed", category="executor", reason=reason, seed=job.seed
    )
    return FitOutcome(
        params=np.zeros(job.circuit.num_params),
        infidelity=float("inf"),
        busy_seconds=0.0,
        engine_call=False,
        failed=True,
        failure=reason,
    )


def _guarded_outcome(
    job: FitJob, params: np.ndarray, infidelity: float, busy: float
) -> FitOutcome:
    """Wrap a fit result, degrading non-finite numbers to a failure.

    The LM loops already refuse to *accept* non-finite steps, but a
    target or start that evaluates to NaN/Inf on the very first sweep
    still surfaces here; converting it to a failed outcome keeps the
    garbage out of the frontier and out of warm-start vectors.
    """
    if not np.isfinite(infidelity) or not np.all(np.isfinite(params)):
        telemetry.metrics().counter("executor.nonfinite_results").add()
        return _failed_outcome(job, "non-finite")
    return FitOutcome(
        params=params,
        infidelity=infidelity,
        busy_seconds=busy,
        engine_call=True,
    )


class CandidateExecutor:
    """Protocol: evaluate a batch of candidate fits against one pool."""

    workers: int = 1
    pool: EnginePool

    def run(
        self, jobs: list[FitJob], round_timeout: float | None = None
    ) -> list[FitOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def abandon(self) -> None:
        """Tear down without waiting on in-flight work (preemption
        path: the grace period may not cover a join).  Serial
        executors have nothing in flight, so this is just close."""
        self.close()

    def __enter__(self) -> CandidateExecutor:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialCandidateExecutor(CandidateExecutor):
    """In-process batch evaluation through the shared engine pool."""

    def __init__(self, pool: EnginePool):
        self.pool = pool
        self.workers = 1

    def run(
        self, jobs: list[FitJob], round_timeout: float | None = None
    ) -> list[FitOutcome]:
        deadline = (
            None if round_timeout is None
            else time.monotonic() + round_timeout
        )
        outcomes = []
        for job in jobs:
            if deadline is not None and time.monotonic() > deadline:
                # An in-process fit cannot be interrupted mid-flight;
                # the round budget is enforced between jobs.
                telemetry.metrics().counter("executor.timeouts").add()
                outcomes.append(_failed_outcome(job, "round-timeout"))
                continue
            if job.circuit.num_params == 0:
                outcomes.append(_constant_outcome(job))
                continue
            engine = self.pool.engine_for(job.circuit, job.contract)
            t0 = time.perf_counter()
            result = engine.instantiate(
                job.target, starts=job.starts, rng=job.seed, x0=job.x0
            )
            outcomes.append(
                _guarded_outcome(
                    job,
                    result.params,
                    result.infidelity,
                    time.perf_counter() - t0,
                )
            )
        return outcomes


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: Rehydrated engines per (process, structure key): each worker pays
#: one cheap rehydration (source exec + TNVM setup) per shape, then
#: reuses the engine — including its lazily built batched VMs — for
#: every later task on that shape.
_WORKER_ENGINES: OrderedDict = OrderedDict()
_WORKER_CAPACITY = 32

#: One expression cache per worker process: engines rehydrated for
#: different template shapes share their gate-level
#: ``CompiledExpression`` objects (seeded from the payloads), so e.g.
#: the batched writer variant of U3 is generated once per worker, not
#: once per rehydrated engine.
_WORKER_CACHE: ExpressionCache | None = None

#: Sentinel a worker returns for a key-only task whose engine is not
#: in its LRU: the parent resubmits that task with the payload.
NEEDS_PAYLOAD = "__needs_payload__"


def _worker_expression_cache() -> ExpressionCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ExpressionCache()
    return _WORKER_CACHE


def _worker_fit(
    key: tuple,
    payload: bytes | None,
    target: np.ndarray,
    starts: int,
    seed: int,
    x0: np.ndarray | None,
    trace: bool = False,
):
    """Task body: rehydrate (or reuse) the shape's engine and fit.

    ``payload`` is None for a key-only task (the payload-dedup
    steady state); if the worker's LRU misses — a fresh worker, or the
    shape was evicted — it signals :data:`NEEDS_PAYLOAD` instead of
    fitting, and the parent resubmits with the snapshot bytes.

    Telemetry rides the result tuple: the worker always ships the
    metrics its task produced (a registry delta), and when the parent
    had tracing on (``trace=True``) it also records spans locally and
    ships their states so the parent merges one coherent timeline
    tagged with this worker's pid.  The fit itself never consults
    either, so results are bit-identical with tracing on or off.

    The :func:`~repro.testing.faults.maybe_fault` hook at the top is
    the chaos suite's handle on this process: an armed ``REPRO_FAULT``
    can kill the worker here (exercising the parent's pool-rebuild
    retry), hang it (exercising the job deadline), or flag the result
    for NaN corruption (exercising the non-finite quarantine).  With
    no spec armed the hook is a single ``os.environ`` read.
    """
    fault = maybe_fault("worker_fit", key=seed)
    registry = telemetry.metrics()
    metrics_before = registry.snapshot()
    if trace:
        telemetry.enable()
    try:
        with telemetry.tracer().span("worker_task", category="executor"):
            engine = _WORKER_ENGINES.get(key)
            if engine is None:
                if payload is None:
                    return NEEDS_PAYLOAD
                with telemetry.tracer().span(
                    "engine.rehydrate", category="executor"
                ):
                    engine = Instantiater.from_serialized(
                        pickle.loads(payload),
                        cache=_worker_expression_cache(),
                    )
                _WORKER_ENGINES[key] = engine
                while len(_WORKER_ENGINES) > _WORKER_CAPACITY:
                    _WORKER_ENGINES.popitem(last=False)
            else:
                _WORKER_ENGINES.move_to_end(key)
            t0 = time.perf_counter()
            result = engine.instantiate(
                target, starts=starts, rng=seed, x0=x0
            )
            busy = time.perf_counter() - t0
            params, infidelity = result.params, result.infidelity
            if fault == "nan":
                params = np.full_like(params, np.nan)
                infidelity = float("nan")
            if not np.isfinite(infidelity) or not np.all(
                np.isfinite(params)
            ):
                # Never ship garbage parameters across the pipe: the
                # parent will degrade this to a failed outcome, but
                # normalize here too so a partially-written result
                # can't leak NaN into any consumer.
                params = np.zeros_like(params)
                infidelity = float("inf")
    finally:
        # Per-task enable/disable keeps the worker's tracer empty
        # between tasks (and inert when the parent stops tracing).
        spans = (
            [span.state() for span in telemetry.disable()] if trace else []
        )
    return (
        params,
        infidelity,
        busy,
        spans,
        telemetry.delta(metrics_before, registry.snapshot()),
    )


@dataclass
class _PendingFit:
    """Parent-side state of one not-yet-resolved process-pool job."""

    job: FitJob
    key: tuple
    payload: bytes
    retries: int = 0
    #: next submission must carry the payload (worker signalled
    #: NEEDS_PAYLOAD, or the pool was rebuilt with cold workers)
    force_payload: bool = False
    shipped_payload: bool = field(default=False, compare=False)


class ProcessCandidateExecutor(CandidateExecutor):
    """Process-pool batch evaluation with shipped compiled engines.

    The parent resolves every job through ``pool.engine_for`` exactly
    like the serial executor (so AOT compiles happen once, here, and
    the pool's hit/miss counters agree between serial and parallel
    runs), then submits ``(structure key, engine snapshot, target,
    starts, seed, x0)`` tasks.  The process pool is created lazily on
    first use and persists across batches, so worker-side engine
    caches amortize across a whole synthesis pass.

    Payload dedup: the pickled engine snapshot (10-40KB per shape)
    ships only with the *first* batch that fits a shape; later tasks
    for the shape are key-only — target + seed + a structure key — and
    a worker whose LRU misses (a fresh process, or an evicted shape)
    signals :data:`NEEDS_PAYLOAD`, which makes the parent resubmit
    that one task with the snapshot.  Steady-state traffic therefore
    carries no engine bytes at all; the ``payloads_shipped`` /
    ``payloads_skipped`` counters expose the split.

    Failure posture: a crashed worker breaks the whole
    ``ProcessPoolExecutor``, so :meth:`run` collects whatever results
    completed, rebuilds the pool, and resubmits only the unresolved
    jobs — each at most ``max_retries`` times before it is quarantined
    as a failed outcome.  After ``max_pool_rebuilds`` rebuilds within
    one :meth:`run`, the remaining jobs are evaluated in-process
    through a :class:`SerialCandidateExecutor` instead of erroring the
    pass (structure-keyed seeds make the fallback bit-identical).
    ``job_timeout`` (overridable per :class:`FitJob`) and the
    per-round budget bound stragglers; a timed-out round tears the
    pool down without waiting (hung workers are killed, not joined).
    """

    def __init__(
        self,
        pool: EnginePool,
        workers: int,
        mp_context: str | None = None,
        max_retries: int = 2,
        max_pool_rebuilds: int = 2,
        job_timeout: float | None = None,
    ):
        if workers < 2:
            raise ValueError("ProcessCandidateExecutor needs workers >= 2")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        self.pool = pool
        self.workers = workers
        self.max_retries = max_retries
        self.max_pool_rebuilds = max_pool_rebuilds
        self.job_timeout = job_timeout
        #: shapes at least one completed batch has shipped to the pool
        self._shipped: set[tuple] = set()
        self.payloads_shipped = 0
        self.payloads_skipped = 0
        self.payload_resends = 0
        #: set by ``__exit__``: the owner declared this executor done,
        #: so a later ``run()`` is a bug, not a restart request.
        self._terminal = False
        if mp_context is None:
            # forkserver gives cheap per-worker forks from a clean
            # server process (no inherited BLAS/OpenMP thread state, no
            # 3.12+ fork-with-threads deprecation); fall back to plain
            # fork, then to the platform default (spawn).  Either way,
            # compiled engines travel via the pickled payload, never
            # via inheritance.
            methods = multiprocessing.get_all_start_methods()
            for preferred in ("forkserver", "fork"):
                if preferred in methods:
                    mp_context = preferred
                    break
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        # Engine-defining pool settings, folded into the worker-side
        # engine key: if workers are ever shared across pools (e.g. a
        # future cross-pass executor registry), a shape rehydrated
        # under one pool's thresholds must not serve another's.
        self._settings_key = (
            pool.strategy,
            pool.precision,
            pool.success_threshold,
            pool.lm_options,
            pool.backend,
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            ctx = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context is not None
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    @staticmethod
    def _attempt_timeout(
        attempt_start: float,
        job_timeout: float | None,
        round_deadline: float | None,
    ) -> float | None:
        """Seconds to wait on one future: the tighter of the job's
        own budget (from its attempt's submission) and the round
        deadline; ``None`` = wait forever."""
        deadlines = []
        if job_timeout is not None:
            deadlines.append(attempt_start + job_timeout)
        if round_deadline is not None:
            deadlines.append(round_deadline)
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def run(
        self, jobs: list[FitJob], round_timeout: float | None = None
    ) -> list[FitOutcome]:
        if self._terminal:
            raise RuntimeError(
                "this ProcessCandidateExecutor was closed by its context "
                "manager and is done; build a new executor (an explicit "
                "close() instead leaves it restartable)"
            )
        registry = telemetry.metrics()
        tracer = telemetry.tracer()
        round_deadline = (
            None if round_timeout is None
            else time.monotonic() + round_timeout
        )
        outcomes: list[FitOutcome | None] = [None] * len(jobs)
        # The parent always resolves the payload — one engine_for per
        # job, the same hit/miss pattern as the serial executor, and
        # the bytes are on hand for needs-payload and crash-retry
        # resubmissions — but attaches it to a task only for shapes no
        # completed batch has shipped yet.
        pending: dict[int, _PendingFit] = {}
        for i, job in enumerate(jobs):
            if job.circuit.num_params == 0:
                outcomes[i] = _constant_outcome(job)
                continue
            contract = OutputContract.coerce(job.contract)
            payload = self.pool.serialized_bytes(job.circuit, contract)
            key = (
                self._settings_key,
                job.circuit.structure_key(),
                contract.key(),
            )
            pending[i] = _PendingFit(job=job, key=key, payload=payload)

        rebuilds = 0
        timed_out = False
        try:
            while pending:
                if (
                    round_deadline is not None
                    and time.monotonic() > round_deadline
                ):
                    for i in sorted(pending):
                        registry.counter("executor.timeouts").add()
                        outcomes[i] = _failed_outcome(
                            pending[i].job, "round-timeout"
                        )
                    pending.clear()
                    break
                executor = self._ensure_executor()
                attempt_start = time.monotonic()
                batch_new: set[tuple] = set()
                futures: list[tuple[int, object]] = []
                broken = False
                for i in sorted(pending):
                    entry = pending[i]
                    ship = (
                        entry.force_payload
                        or entry.key not in self._shipped
                    )
                    entry.shipped_payload = ship
                    if ship:
                        # Every task of a newly seen shape in this
                        # batch carries the payload: the batch may fan
                        # out across all workers, none of which has
                        # the engine yet.
                        batch_new.add(entry.key)
                        self.payloads_shipped += 1
                        if entry.force_payload:
                            self.payload_resends += 1
                            entry.force_payload = False
                    else:
                        self.payloads_skipped += 1
                    try:
                        futures.append((
                            i,
                            executor.submit(
                                _worker_fit,
                                entry.key,
                                entry.payload if ship else None,
                                entry.job.target,
                                entry.job.starts,
                                entry.job.seed,
                                entry.job.x0,
                                telemetry.tracing_enabled(),
                            ),
                        ))
                    except BrokenProcessPool:
                        # The pool died under an earlier submission;
                        # everything unsubmitted stays pending.
                        broken = True
                        break
                for i, future in futures:
                    job_timeout = (
                        pending[i].job.timeout
                        if pending[i].job.timeout is not None
                        else self.job_timeout
                    )
                    try:
                        result = future.result(
                            timeout=self._attempt_timeout(
                                attempt_start, job_timeout, round_deadline
                            )
                        )
                    except FuturesTimeout:
                        # The straggler may be hung, not just slow:
                        # abandon the result either way, and tear the
                        # pool down at the end of the run so the
                        # occupied worker is reclaimed, not reused.
                        future.cancel()
                        timed_out = True
                        registry.counter("executor.timeouts").add()
                        reason = (
                            "round-timeout"
                            if round_deadline is not None
                            and time.monotonic() >= round_deadline
                            else "timeout"
                        )
                        outcomes[i] = _failed_outcome(
                            pending.pop(i).job, reason
                        )
                        continue
                    except BrokenProcessPool:
                        broken = True
                        continue  # stays pending for the retry pass
                    entry = pending[i]
                    if result == NEEDS_PAYLOAD:
                        if entry.shipped_payload:
                            raise RuntimeError(
                                "worker demanded a payload that was "
                                "attached"
                            )
                        # The worker's LRU evicted the shape (or the
                        # task landed on a worker the first batch never
                        # reached): resend with the bytes next pass.
                        entry.force_payload = True
                        continue
                    outcomes[i] = self._outcome(entry.job, result)
                    del pending[i]
                if not broken:
                    self._shipped |= batch_new
                    continue
                # --- crash recovery -----------------------------------
                # A dead worker broke the pool: everything that had
                # completed was already harvested above (done futures
                # keep their results); what remains is retried on a
                # fresh pool, within a per-job budget.
                rebuilds += 1
                registry.counter("executor.pool_rebuilds").add()
                tracer.instant(
                    "pool.rebuild", category="executor",
                    rebuilds=rebuilds, unresolved=len(pending),
                )
                for i in sorted(pending):
                    entry = pending[i]
                    entry.retries += 1
                    if entry.retries > self.max_retries:
                        # A candidate that keeps killing workers is
                        # poison: fail it so the round (and the pass)
                        # survive without it.
                        registry.counter("executor.quarantined").add()
                        outcomes[i] = _failed_outcome(
                            entry.job, "quarantined"
                        )
                        del pending[i]
                    else:
                        registry.counter("executor.retries").add()
                self._abandon()  # also clears _shipped: cold workers
                if pending and rebuilds > self.max_pool_rebuilds:
                    # The pool keeps dying under jobs that are still
                    # within their own retry budgets — stop burning
                    # workers and finish the round in-process.
                    registry.counter("executor.serial_fallbacks").add()
                    tracer.instant(
                        "serial.fallback", category="executor",
                        jobs=len(pending),
                    )
                    order = sorted(pending)
                    remaining_budget = (
                        None if round_deadline is None
                        else max(0.0, round_deadline - time.monotonic())
                    )
                    serial = SerialCandidateExecutor(self.pool).run(
                        [pending[i].job for i in order],
                        round_timeout=remaining_budget,
                    )
                    for i, outcome in zip(order, serial):
                        outcomes[i] = outcome
                    pending.clear()
        except KeyboardInterrupt:
            # Ctrl-C must not block on in-flight fits: cancel queued
            # work, kill the workers, and leave the executor
            # restartable (the old shutdown(wait=True) path could hang
            # for a full LM fit — or forever, on a hung worker).
            self._abandon()
            raise
        except BaseException:
            # An unexpected error (pickling, protocol) leaves the pool
            # in an unknown state; drop it so the next run() rebuilds
            # a fresh pool instead of failing forever.
            self.close()
            raise
        if timed_out:
            # At least one worker may still be executing an abandoned
            # task (or be hung outright); recycle the pool so the next
            # round starts with responsive workers.
            self._abandon()
        return outcomes  # type: ignore[return-value]

    def _outcome(self, job: FitJob, result) -> FitOutcome:
        params, infidelity, busy, span_states, metrics_delta = result
        if span_states:
            # Re-base the worker's spans into this process's clock and
            # add them as a separate track tagged by the worker's pid.
            telemetry.tracer().ingest(
                span_states, label=f"worker-{span_states[0]['pid']}"
            )
        if metrics_delta:
            telemetry.metrics().merge(metrics_delta)
        return _guarded_outcome(job, params, infidelity, busy)

    def _abandon(self) -> None:
        """Tear the pool down without waiting on in-flight work.

        Used when workers may be dead, hung, or mid-task after an
        interrupt: queued tasks are cancelled, worker processes are
        killed rather than joined, and the executor stays restartable
        (the next :meth:`run` builds a fresh pool and re-ships
        payloads).
        """
        executor, self._executor = self._executor, None
        self._shipped.clear()
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass  # already dead, or never fully started
        executor.shutdown(wait=False, cancel_futures=True)

    def abandon(self) -> None:
        """Public non-waiting teardown (see :meth:`_abandon`); the
        checkpoint subsystem's preemption flush calls this so SIGTERM
        handling never joins possibly-wedged workers."""
        self._abandon()

    def close(self) -> None:
        """Shut the pool down cleanly (idempotent; the executor stays
        restartable — the next :meth:`run` builds a fresh pool)."""
        if self._executor is not None:
            # wait=True: the pool is idle (run() drains its futures),
            # and a non-waiting shutdown races the management thread
            # against pipe teardown, spraying harmless-but-noisy
            # "Bad file descriptor" tracebacks at interpreter exit.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # The next pool starts with cold workers: everything must
        # ship again.
        self._shipped.clear()

    def __exit__(self, *_exc) -> None:
        self.close()
        self._terminal = True


def make_executor(
    pool: EnginePool,
    workers: int = 1,
    mp_context: str | None = None,
    max_retries: int = 2,
    max_pool_rebuilds: int = 2,
    job_timeout: float | None = None,
) -> CandidateExecutor:
    """The executor for a worker count: serial at 1, processes above.

    The fault-tolerance knobs (``max_retries``, ``max_pool_rebuilds``,
    ``job_timeout``) only apply to the process executor; serial
    evaluation has no workers to lose."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return SerialCandidateExecutor(pool)
    return ProcessCandidateExecutor(
        pool,
        workers,
        mp_context=mp_context,
        max_retries=max_retries,
        max_pool_rebuilds=max_pool_rebuilds,
        job_timeout=job_timeout,
    )
