"""Candidate-evaluation executors: the parallel frontier layer.

Candidates produced by one synthesis round — all successors of a
frontier expansion, all gate-deletion variants of a compression scan
wave — are independent instantiation problems.  This module evaluates
such a batch through a :class:`CandidateExecutor`:

* :class:`SerialCandidateExecutor` runs the batch in-process through
  the shared :class:`~repro.instantiation.EnginePool` (the seed
  behaviour, minus the draw-order RNG coupling);
* :class:`ProcessCandidateExecutor` fans the batch out over a process
  pool.  Workers never AOT-compile: the parent pool compiles each new
  template shape once, snapshots it as a pickled
  :class:`~repro.instantiation.SerializedEngine` (TNVM bytecode +
  JIT'd expression source), and ships the snapshot with the task; a
  per-worker LRU rehydrates and reuses engines per shape.

Determinism: each candidate's multi-start RNG is seeded by
:func:`candidate_seed` — a stable hash of the pass's base seed and the
candidate's structure key — never by draw order, so serial and
parallel evaluation of the same batch return bit-identical results no
matter how the work is scheduled.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..circuit.circuit import QuditCircuit
from ..instantiation.cost import as_target_array, is_state_target
from ..instantiation.instantiater import Instantiater
from ..instantiation.pool import EnginePool
from ..tensornet.contract import OutputContract
from ..jit.cache import ExpressionCache
from ..utils.statevector import state_prep_infidelity
from ..utils.unitary import hilbert_schmidt_infidelity

__all__ = [
    "FitJob",
    "FitOutcome",
    "CandidateExecutor",
    "SerialCandidateExecutor",
    "ProcessCandidateExecutor",
    "make_executor",
    "candidate_seed",
    "NEEDS_PAYLOAD",
]


def candidate_seed(base_seed: int, key: object) -> int:
    """A stable per-candidate RNG seed.

    Derived from the pass's base seed and the candidate's identity
    (typically its :meth:`~QuditCircuit.structure_key`) through SHA-256,
    so the seed depends on *what* is being fitted, never on the order
    candidates happen to be drawn or scheduled in — the property that
    makes serial and parallel evaluation bit-identical.
    """
    digest = hashlib.sha256(repr((base_seed, key)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FitJob:
    """One candidate fit: circuit, target, and its derived seed.

    ``target`` is a ``(D, D)`` unitary (Eq. 1 fit) or a 1-D amplitude
    vector (state preparation); the engines dispatch on the shape, so
    both target types flow through the same executors, process pool,
    and shipped-engine payloads.  ``contract`` selects the engine's
    :class:`~repro.tensornet.OutputContract` (``None`` = full
    unitary); state-prep passes set ``OutputContract.column(0)`` so
    the whole fit runs through a column-specialized engine."""

    circuit: QuditCircuit
    target: np.ndarray
    starts: int
    seed: int
    x0: np.ndarray | None = None
    contract: OutputContract | None = None


@dataclass
class FitOutcome:
    """Result of one candidate fit plus its engine-side wall time."""

    params: np.ndarray
    infidelity: float
    busy_seconds: float
    #: True when the candidate had parameters and hit an engine (the
    #: condition under which passes count an instantiation call).
    engine_call: bool


def _constant_outcome(job: FitJob) -> FitOutcome:
    """A fully constant candidate has nothing to optimize."""
    t0 = time.perf_counter()
    unitary = job.circuit.get_unitary(())
    if is_state_target(job.target):
        infidelity = state_prep_infidelity(job.target, unitary)
    else:
        infidelity = hilbert_schmidt_infidelity(as_target_array(job.target), unitary)
    return FitOutcome(
        params=np.empty(0),
        infidelity=infidelity,
        busy_seconds=time.perf_counter() - t0,
        engine_call=False,
    )


class CandidateExecutor:
    """Protocol: evaluate a batch of candidate fits against one pool."""

    workers: int = 1
    pool: EnginePool

    def run(self, jobs: list[FitJob]) -> list[FitOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "CandidateExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialCandidateExecutor(CandidateExecutor):
    """In-process batch evaluation through the shared engine pool."""

    def __init__(self, pool: EnginePool):
        self.pool = pool
        self.workers = 1

    def run(self, jobs: list[FitJob]) -> list[FitOutcome]:
        outcomes = []
        for job in jobs:
            if job.circuit.num_params == 0:
                outcomes.append(_constant_outcome(job))
                continue
            engine = self.pool.engine_for(job.circuit, job.contract)
            t0 = time.perf_counter()
            result = engine.instantiate(
                job.target, starts=job.starts, rng=job.seed, x0=job.x0
            )
            outcomes.append(
                FitOutcome(
                    params=result.params,
                    infidelity=result.infidelity,
                    busy_seconds=time.perf_counter() - t0,
                    engine_call=True,
                )
            )
        return outcomes


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: Rehydrated engines per (process, structure key): each worker pays
#: one cheap rehydration (source exec + TNVM setup) per shape, then
#: reuses the engine — including its lazily built batched VMs — for
#: every later task on that shape.
_WORKER_ENGINES: OrderedDict = OrderedDict()
_WORKER_CAPACITY = 32

#: One expression cache per worker process: engines rehydrated for
#: different template shapes share their gate-level
#: ``CompiledExpression`` objects (seeded from the payloads), so e.g.
#: the batched writer variant of U3 is generated once per worker, not
#: once per rehydrated engine.
_WORKER_CACHE: ExpressionCache | None = None

#: Sentinel a worker returns for a key-only task whose engine is not
#: in its LRU: the parent resubmits that task with the payload.
NEEDS_PAYLOAD = "__needs_payload__"


def _worker_expression_cache() -> ExpressionCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ExpressionCache()
    return _WORKER_CACHE


def _worker_fit(
    key: tuple,
    payload: bytes | None,
    target: np.ndarray,
    starts: int,
    seed: int,
    x0: np.ndarray | None,
    trace: bool = False,
):
    """Task body: rehydrate (or reuse) the shape's engine and fit.

    ``payload`` is None for a key-only task (the payload-dedup
    steady state); if the worker's LRU misses — a fresh worker, or the
    shape was evicted — it signals :data:`NEEDS_PAYLOAD` instead of
    fitting, and the parent resubmits with the snapshot bytes.

    Telemetry rides the result tuple: the worker always ships the
    metrics its task produced (a registry delta), and when the parent
    had tracing on (``trace=True``) it also records spans locally and
    ships their states so the parent merges one coherent timeline
    tagged with this worker's pid.  The fit itself never consults
    either, so results are bit-identical with tracing on or off.
    """
    registry = telemetry.metrics()
    metrics_before = registry.snapshot()
    if trace:
        telemetry.enable()
    try:
        with telemetry.tracer().span("worker_task", category="executor"):
            engine = _WORKER_ENGINES.get(key)
            if engine is None:
                if payload is None:
                    return NEEDS_PAYLOAD
                with telemetry.tracer().span(
                    "engine.rehydrate", category="executor"
                ):
                    engine = Instantiater.from_serialized(
                        pickle.loads(payload),
                        cache=_worker_expression_cache(),
                    )
                _WORKER_ENGINES[key] = engine
                while len(_WORKER_ENGINES) > _WORKER_CAPACITY:
                    _WORKER_ENGINES.popitem(last=False)
            else:
                _WORKER_ENGINES.move_to_end(key)
            t0 = time.perf_counter()
            result = engine.instantiate(
                target, starts=starts, rng=seed, x0=x0
            )
            busy = time.perf_counter() - t0
    finally:
        # Per-task enable/disable keeps the worker's tracer empty
        # between tasks (and inert when the parent stops tracing).
        spans = (
            [span.state() for span in telemetry.disable()] if trace else []
        )
    return (
        result.params,
        result.infidelity,
        busy,
        spans,
        telemetry.delta(metrics_before, registry.snapshot()),
    )


class ProcessCandidateExecutor(CandidateExecutor):
    """Process-pool batch evaluation with shipped compiled engines.

    The parent resolves every job through ``pool.engine_for`` exactly
    like the serial executor (so AOT compiles happen once, here, and
    the pool's hit/miss counters agree between serial and parallel
    runs), then submits ``(structure key, engine snapshot, target,
    starts, seed, x0)`` tasks.  The process pool is created lazily on
    first use and persists across batches, so worker-side engine
    caches amortize across a whole synthesis pass.

    Payload dedup: the pickled engine snapshot (10-40KB per shape)
    ships only with the *first* batch that fits a shape; later tasks
    for the shape are key-only — target + seed + a structure key — and
    a worker whose LRU misses (a fresh process, or an evicted shape)
    signals :data:`NEEDS_PAYLOAD`, which makes the parent resubmit
    that one task with the snapshot.  Steady-state traffic therefore
    carries no engine bytes at all; the ``payloads_shipped`` /
    ``payloads_skipped`` counters expose the split.
    """

    def __init__(
        self,
        pool: EnginePool,
        workers: int,
        mp_context: str | None = None,
    ):
        if workers < 2:
            raise ValueError("ProcessCandidateExecutor needs workers >= 2")
        self.pool = pool
        self.workers = workers
        #: shapes at least one completed batch has shipped to the pool
        self._shipped: set[tuple] = set()
        self.payloads_shipped = 0
        self.payloads_skipped = 0
        self.payload_resends = 0
        if mp_context is None:
            # forkserver gives cheap per-worker forks from a clean
            # server process (no inherited BLAS/OpenMP thread state, no
            # 3.12+ fork-with-threads deprecation); fall back to plain
            # fork, then to the platform default (spawn).  Either way,
            # compiled engines travel via the pickled payload, never
            # via inheritance.
            methods = multiprocessing.get_all_start_methods()
            for preferred in ("forkserver", "fork"):
                if preferred in methods:
                    mp_context = preferred
                    break
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        # Engine-defining pool settings, folded into the worker-side
        # engine key: if workers are ever shared across pools (e.g. a
        # future cross-pass executor registry), a shape rehydrated
        # under one pool's thresholds must not serve another's.
        self._settings_key = (
            pool.strategy,
            pool.precision,
            pool.success_threshold,
            pool.lm_options,
            pool.backend,
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            ctx = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context is not None
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    def run(self, jobs: list[FitJob]) -> list[FitOutcome]:
        outcomes: list[FitOutcome | None] = [None] * len(jobs)
        # (index, key, payload bytes, job, future); the parent always
        # resolves the payload — one engine_for per job, the same
        # hit/miss pattern as the serial executor, and the bytes are
        # on hand for a needs-payload retry — but attaches it to the
        # task only for shapes no completed batch has shipped yet.
        submitted: list[tuple[int, tuple, bytes, FitJob, object]] = []
        executor = None
        batch_new: set[tuple] = set()
        for i, job in enumerate(jobs):
            if job.circuit.num_params == 0:
                outcomes[i] = _constant_outcome(job)
                continue
            contract = OutputContract.coerce(job.contract)
            payload = self.pool.serialized_bytes(job.circuit, contract)
            key = (
                self._settings_key,
                job.circuit.structure_key(),
                contract.key(),
            )
            ship = key not in self._shipped
            if ship:
                # Every task of a newly seen shape in this batch
                # carries the payload: the batch may fan out across
                # all workers, none of which has the engine yet.
                batch_new.add(key)
                self.payloads_shipped += 1
            else:
                self.payloads_skipped += 1
            if executor is None:
                executor = self._ensure_executor()
            future = executor.submit(
                _worker_fit,
                key,
                payload if ship else None,
                job.target,
                job.starts,
                job.seed,
                job.x0,
                telemetry.tracing_enabled(),
            )
            submitted.append((i, key, payload, job, future))
        try:
            retries: list[tuple[int, object]] = []
            for i, key, payload, job, future in submitted:
                result = future.result()
                if result == NEEDS_PAYLOAD:
                    # The worker's LRU evicted the shape (or the task
                    # landed on a worker the first batch never
                    # reached): resend this one task with the bytes.
                    self.payloads_shipped += 1
                    self.payload_resends += 1
                    retries.append((
                        i,
                        executor.submit(
                            _worker_fit,
                            key,
                            payload,
                            job.target,
                            job.starts,
                            job.seed,
                            job.x0,
                            telemetry.tracing_enabled(),
                        ),
                    ))
                    continue
                outcomes[i] = self._outcome(result)
            for i, future in retries:
                result = future.result()
                if result == NEEDS_PAYLOAD:
                    raise RuntimeError(
                        "worker demanded a payload that was attached"
                    )
                outcomes[i] = self._outcome(result)
            self._shipped |= batch_new
        except BaseException:
            # A dead worker leaves a ProcessPoolExecutor permanently
            # broken; drop it so the next run() rebuilds a fresh pool
            # instead of failing forever.
            self.close()
            raise
        return outcomes  # type: ignore[return-value]

    def _outcome(self, result) -> FitOutcome:
        params, infidelity, busy, span_states, metrics_delta = result
        if span_states:
            # Re-base the worker's spans into this process's clock and
            # add them as a separate track tagged by the worker's pid.
            telemetry.tracer().ingest(
                span_states, label=f"worker-{span_states[0]['pid']}"
            )
        if metrics_delta:
            telemetry.metrics().merge(metrics_delta)
        return FitOutcome(
            params=params,
            infidelity=infidelity,
            busy_seconds=busy,
            engine_call=True,
        )

    def close(self) -> None:
        if self._executor is not None:
            # wait=True: the pool is idle (run() drains its futures),
            # and a non-waiting shutdown races the management thread
            # against pipe teardown, spraying harmless-but-noisy
            # "Bad file descriptor" tracebacks at interpreter exit.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # The next pool starts with cold workers: everything must
        # ship again.
        self._shipped.clear()


def make_executor(
    pool: EnginePool,
    workers: int = 1,
    mp_context: str | None = None,
) -> CandidateExecutor:
    """The executor for a worker count: serial at 1, processes above."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return SerialCandidateExecutor(pool)
    return ProcessCandidateExecutor(pool, workers, mp_context=mp_context)
